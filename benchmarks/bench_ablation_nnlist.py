"""Ablation — the candidate-list width nn.

The paper fixes nn = 30 (the book recommends 15-40).  The width trades
construction cost (scan width, random numbers) against solution quality and
fallback frequency; this bench sweeps both sides.
"""

from __future__ import annotations

import sys

import pytest

from repro.core import ACOParams, AntSystem
from repro.experiments.harness import construction_model_time
from repro.simt.device import TESLA_C1060
from repro.util.tables import Table

pytestmark = pytest.mark.benchmark(group="ablation-nn")

WIDTHS = (5, 10, 20, 30, 40, 60)


def test_nn_sweep_model():
    table = Table(
        ["nn", "pcb442 (ms)", "pr1002 (ms)"],
        title="NNList kernel (v6): modeled construction time vs nn (C1060)",
    )
    for nn in WIDTHS:
        row = [nn]
        for name in ("pcb442", "pr1002"):
            row.append(f"{construction_model_time(6, name, TESLA_C1060, nn=nn) * 1e3:.1f}")
        table.add_row(row)
    print("\n" + table.render(), file=sys.stderr)


def test_cost_tradeoff_has_interior_structure():
    """Narrow lists pay fallbacks (0.62 n / nn per ant); wide lists pay scan
    width.  The model must not be monotone-free garbage: cost at nn=60 must
    exceed cost at the interior sweet spot."""
    times = {
        nn: construction_model_time(6, "pr1002", TESLA_C1060, nn=nn) for nn in WIDTHS
    }
    best = min(times, key=lambda k: times[k])
    assert best < 60  # the optimum is interior, not "the wider the better"


def test_quality_insensitive_to_width_early_on(kroC100):
    """Early-iteration quality is only mildly width-sensitive — narrow lists
    act greedier (sometimes better after few iterations), wide lists explore
    more.  The knob's real lever is *cost*, which the sweep above shows; the
    qualities must stay within a modest band of each other."""
    results = {}
    for nn in (5, 30):
        colony = AntSystem(
            kroC100, ACOParams(seed=77, nn=nn), construction=6, pheromone=1
        )
        results[nn] = colony.run(8).best_length
    ratio = max(results.values()) / min(results.values())
    assert ratio < 1.25, results


@pytest.mark.parametrize("nn", [10, 30])
def test_functional_construction_width(benchmark, kroC100, nn):
    colony = AntSystem(
        kroC100, ACOParams(seed=1234, nn=nn), device=TESLA_C1060, construction=6
    )
    colony.run_iteration()
    benchmark.extra_info["nn"] = nn
    benchmark(colony.run_iteration)
