"""Ablation — tabu-list placement and representation (kernel v4 vs v5).

Table II's version 5 moves the tabu list into shared memory (a win while the
word layout fits) but degrades to bit-packing on large instances, whose
modulo/shift arithmetic and occupancy cost eventually *lose* to the
global-memory version — v5 is slower than v4 on pr2392 in the paper.
"""

from __future__ import annotations

import sys

import pytest

from repro.core import ACOParams, AntSystem
from repro.core.construction.nnlist import tabu_layout
from repro.experiments.harness import construction_model_time
from repro.simt.device import TESLA_C1060, TESLA_M2050
from repro.util.tables import Table

pytestmark = pytest.mark.benchmark(group="ablation-tabu")


def test_layout_table():
    table = Table(
        ["instance", "n", "C1060 layout", "ants/block", "M2050 layout", "ants/block"],
        title="tabu representation chosen per instance",
    )
    from repro.tsp.suite import PAPER_INSTANCE_NAMES, suite_entry

    for name in PAPER_INSTANCE_NAMES:
        n = suite_entry(name).n
        lc = tabu_layout(n, TESLA_C1060)
        lm = tabu_layout(n, TESLA_M2050)
        table.add_row([name, n, lc.mode, lc.ants_per_block, lm.mode, lm.ants_per_block])
    print("\n" + table.render(), file=sys.stderr)


def test_shared_tabu_wins_and_bitwise_costs_are_modeled():
    """Version 5 beats version 4 wherever the word layout fits (the paper's
    small/medium rows), and the large-instance bit-packing costs — extra
    integer ops, shrinking ants-per-block — are present in the ledgers.

    Note: the paper's outright v5-slower-than-v4 *inversion* at pr2392 is a
    known model gap (the fitted occupancy knees under-penalise the resident-
    warp collapse; see EXPERIMENTS.md "Known gaps") — asserted here is the
    structural machinery, not the inversion itself.
    """
    small_v4 = construction_model_time(4, "kroC100", TESLA_C1060)
    small_v5 = construction_model_time(5, "kroC100", TESLA_C1060)
    assert small_v5 < small_v4

    # At pr2392 the C1060 is forced to the bit-packed layout with far fewer
    # ants per block than the word layout would allow.
    layout = tabu_layout(2392, TESLA_C1060)
    assert layout.mode == "bitwise"
    assert layout.ants_per_block < 64
    # ... which drops the effective parallelism of the v5 launch well below
    # the v4 launch on the same instance.
    from repro.core.construction.nnlist import (
        NNListConstruction,
        NNListSharedConstruction,
    )

    _, l4 = NNListConstruction().predict_stats(2392, 2392, 30, TESLA_C1060)
    _, l5 = NNListSharedConstruction().predict_stats(2392, 2392, 30, TESLA_C1060)
    occ4 = l4.occupancy(TESLA_C1060)
    occ5 = l5.occupancy(TESLA_C1060)
    # v4 keeps full SM occupancy (it is merely grid-limited); v5's 16 KB
    # tabu block pins it to ~2 resident warps per SM.
    assert occ5.occupancy < 0.2 * occ4.occupancy
    assert occ5.effective_parallelism < occ4.effective_parallelism


def test_bitwise_layout_integer_overhead():
    from repro.core.construction.nnlist import NNListSharedConstruction

    word_stats, _ = NNListSharedConstruction().predict_stats(100, 100, 30, TESLA_C1060)
    bit_stats, _ = NNListSharedConstruction().predict_stats(1002, 1002, 30, TESLA_C1060)
    # per-candidate int ops are strictly higher in bitwise mode
    per_cand_word = word_stats.int_ops / (100 * 99 * 30)
    per_cand_bit = bit_stats.int_ops / (1002 * 1001 * 30)
    assert per_cand_bit > per_cand_word


@pytest.mark.parametrize("version", [4, 5])
def test_functional_tabu_placement(benchmark, kroC100, version):
    colony = AntSystem(
        kroC100, ACOParams(seed=1234), device=TESLA_C1060, construction=version
    )
    colony.run_iteration()
    benchmark.extra_info["version"] = version
    benchmark(colony.run_iteration)
