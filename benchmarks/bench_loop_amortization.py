"""Amortized run-loop throughput: what bulk RNG + hoisting + report_every buy.

The amortized hot path restructures every iteration around the paper's
lesson — pay per-step overhead once per *iteration* (or once per engine),
not once per step:

* **bulk RNG** — one ``uniform_block`` pregeneration per iteration instead
  of one ``uniform()`` call per construction step;
* **WorkBuffers hoisting** — per-engine scratch (visited masks, roulette
  buffers, deposit indices) allocated once and reused across iterations;
* **``report_every=K``** — host transfers, best-record bookkeeping and
  ``IterationReport`` materialization only at K-boundaries, with best-so-far
  folded on the backend in between.

This benchmark measures iterations/sec for K in {1, 10, 50} x B in
{1, 16, 64} on the default backend and compares each point against the
**pre-amortisation baseline**: ``BatchEngine(amortize=False)`` run with
``report_every=1``, which restores the per-step-draw, allocate-per-call,
report-every-iteration behaviour of the pre-hoisting engine.  Results are
bit-identical across all rows (pinned by the equivalence suite); only the
wall-clock differs.

Results go to ``BENCH_loop.json`` at the repository root; the schema is
pinned by ``benchmarks/conftest.py`` (``validate_bench_loop``).

Run:  python benchmarks/bench_loop_amortization.py [--iterations 50]
      [--instance att48] [--out BENCH_loop.json] [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.backend import resolve_backend
from repro.core import ACOParams, BatchEngine
from repro.tsp import load_instance

BATCH_SIZES = (1, 16, 64)
REPORT_EVERY = (1, 10, 50)
CONSTRUCTIONS = (4, 8)
PHEROMONE = 1
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_loop.json"

QUICK_BATCH_SIZES = (1, 4)
QUICK_REPORT_EVERY = (1, 2)
QUICK_CONSTRUCTIONS = (4,)


def measure_group(
    instance, params, backend, B, iterations, construction, report_every, repeats=5
) -> list[dict]:
    """Time one (construction, B) group: the baseline plus every K point.

    All points of a group are timed **round-robin** — one repeat of each per
    sweep, best-of-``repeats`` kept — so every row shares the same noise
    window and the speedup ratios stay meaningful on busy machines.  A short
    untimed warm-up run per engine absorbs first-touch costs (arena and
    block allocation, instance-matrix caches) beforehand.
    """
    points = [(1, False)] + [(K, True) for K in report_every]
    best = [float("inf")] * len(points)
    for sweep in range(repeats):
        # Fresh engines every sweep: every point then times the *same*
        # early iterations (colony convergence changes per-step work — the
        # candidate-list fallback rate grows as pheromone concentrates, and
        # that drift would otherwise leak into the comparison).
        engines = []
        for K, amortize in points:
            engine = BatchEngine.replicas(
                instance,
                params,
                replicas=B,
                construction=construction,
                pheromone=PHEROMONE,
                backend=backend,
                amortize=amortize,
            )
            engine.run(min(2, iterations), report_every=K)
            backend.synchronize()
            engines.append(engine)
        # Rotate the starting point each sweep: sustained-load clock decay
        # otherwise systematically favours whichever point runs first.
        for i in [(j + sweep) % len(points) for j in range(len(points))]:
            K = points[i][0]
            t0 = time.perf_counter()
            engines[i].run(iterations, report_every=K)
            backend.synchronize()
            best[i] = min(best[i], time.perf_counter() - t0)
    rows = []
    for (K, amortize), seconds in zip(points, best):
        rows.append(
            {
                "construction": construction,
                "B": B,
                "report_every": K,
                "amortized": amortize,
                "seconds": round(seconds, 4),
                "iters_per_sec": round(iterations / seconds, 2),
                "colony_iters_per_sec": round(B * iterations / seconds, 2),
                "speedup_vs_baseline": round(best[0] / seconds, 2),
            }
        )
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instance", default="att48")
    parser.add_argument("--iterations", type=int, default=100)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny grid for CI smoke runs (B in {1,4}, K in {1,2}, v4 only)",
    )
    args = parser.parse_args()

    batch_sizes = QUICK_BATCH_SIZES if args.quick else BATCH_SIZES
    report_every = QUICK_REPORT_EVERY if args.quick else REPORT_EVERY
    constructions = QUICK_CONSTRUCTIONS if args.quick else CONSTRUCTIONS
    iterations = min(args.iterations, 4) if args.quick else args.iterations

    instance = load_instance(args.instance)
    params = ACOParams(seed=1)
    backend = resolve_backend(None)

    rows = []
    for construction in constructions:
        for B in batch_sizes:
            group = measure_group(
                instance, params, backend, B, iterations, construction, report_every
            )
            rows.extend(group)
            for row in group:
                kind = "amortized" if row["amortized"] else "baseline "
                print(
                    f"v{construction} B={B:3d} K={row['report_every']:2d} {kind} "
                    f"{row['seconds']:7.3f}s  {row['iters_per_sec']:8.1f} it/s  "
                    f"{row['speedup_vs_baseline']:5.2f}x vs baseline"
                )

    payload = {
        "instance": args.instance,
        "iterations": iterations,
        "pheromone": PHEROMONE,
        "backend": backend.name,
        "batch_sizes": list(batch_sizes),
        "report_every": list(report_every),
        "results": rows,
    }
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import validate_bench_loop

    validate_bench_loop(payload)
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
