"""Local-search quality per wall-second: 2-opt on vs off at a fixed budget.

Throughput benchmarks answer "how many colony-iterations per second"; this
one answers the question users actually care about — *how good a tour do I
hold after T seconds of wall clock*.  Each variant (AS/ACS/MMAS) runs twice
under an identical wall budget: once plain, once with the batched
nn-restricted 2-opt stage polishing the iteration-best tour at every report
boundary (``--local-search 2opt``).  2-opt spends wall time the plain run
would have used for more ACO iterations, so the comparison captures the
real trade: fewer-but-polished iterations vs more-but-raw ones.

Timing protocol: the six configs of one sweep are measured **interleaved
round-robin with a rotated starting point** (this box's wall clock drifts
±30 % between windows; only co-scheduled measurements compare fairly —
same protocol as ``bench_variant_throughput``).  Every sweep uses fresh
engines and a fresh seed shared by all six configs, so ls-on/ls-off pairs
are seed-matched; the reported figure is the **median best length** over
sweeps.  The wall budget is enforced through the engine's ``on_boundary``
deadline seam, so runs stop at the first report boundary past the budget.

Results go to ``BENCH_ls.json`` at the repository root; the schema is
pinned by ``benchmarks/conftest.py`` (``validate_bench_ls``).

The default budget (0.25 s) sits in the still-improving regime on att48 —
by ~1 s every variant has essentially converged on this instance and the
off/on medians collapse together; raise ``--wall`` when pointing the
benchmark at larger instances.

Run:  python benchmarks/bench_local_search.py [--wall 0.25] [--repeats 5]
      [--instance att48] [--out BENCH_ls.json] [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

from repro.backend import resolve_backend
from repro.core import ACOParams, BatchEngine

VARIANTS = ("as", "acs", "mmas")
LS_MODES = ("none", "2opt")
REPORT_EVERY = 5
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_ls.json"

QUICK_WALL = 0.25
QUICK_REPEATS = 2
QUICK_REPORT_EVERY = 2

#: effectively "until the deadline fires" — the run is wall-bounded
_MANY_ITERATIONS = 10_000_000


def _make_engine(instance, seed, backend, variant, ls):
    return BatchEngine.replicas(
        instance,
        ACOParams(seed=seed),
        replicas=1,
        variant=variant,
        backend=backend,
        local_search=ls,
    )


def _run_budget(engine, backend, wall, report_every):
    """One wall-bounded run; returns (best_length, iterations_run, seconds)."""
    t0 = time.perf_counter()
    deadline = t0 + wall

    def expired(update) -> bool:
        backend.synchronize()
        return time.perf_counter() >= deadline

    batch = engine.run(
        _MANY_ITERATIONS, report_every=report_every, on_boundary=expired
    )
    backend.synchronize()
    seconds = time.perf_counter() - t0
    return int(batch.best_length), int(batch.iterations_run), seconds


def measure(instance, backend, wall, repeats, report_every) -> list[dict]:
    """All (variant, ls) configs, seed-matched and interleaved per sweep."""
    configs = [(v, ls) for v in VARIANTS for ls in LS_MODES]
    # Untimed warm-up on throwaway engines: first-touch costs (distance and
    # nn-list caches, arena shapes) must not land inside anyone's budget.
    for variant, ls in configs:
        _make_engine(instance, 1, backend, variant, ls).run(
            2, report_every=report_every
        )
    backend.synchronize()

    bests: dict[tuple, list[int]] = {c: [] for c in configs}
    iters: dict[tuple, list[int]] = {c: [] for c in configs}
    for sweep in range(repeats):
        seed = 1 + sweep
        engines = {c: _make_engine(instance, seed, backend, *c) for c in configs}
        order = [configs[(j + sweep) % len(configs)] for j in range(len(configs))]
        for config in order:
            best, ran, _ = _run_budget(
                engines[config], backend, wall, report_every
            )
            bests[config].append(best)
            iters[config].append(ran)

    rows = []
    for variant, ls in configs:
        lengths = bests[(variant, ls)]
        rows.append(
            {
                "variant": variant,
                "local_search": ls,
                "median_best": int(statistics.median_low(lengths)),
                "best": min(lengths),
                "lengths": lengths,
                "mean_iterations": round(
                    statistics.fmean(iters[(variant, ls)]), 1
                ),
            }
        )
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instance", default="att48")
    parser.add_argument(
        "--wall",
        type=float,
        default=0.25,
        help="wall budget per measured run, seconds",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny budget for CI smoke runs (0.25s wall, 2 repeats)",
    )
    args = parser.parse_args()

    wall = QUICK_WALL if args.quick else args.wall
    repeats = QUICK_REPEATS if args.quick else args.repeats
    report_every = QUICK_REPORT_EVERY if args.quick else REPORT_EVERY

    from repro.tsp import load_instance

    instance = load_instance(args.instance)
    backend = resolve_backend(None)

    rows = measure(instance, backend, wall, repeats, report_every)
    medians = {(r["variant"], r["local_search"]): r["median_best"] for r in rows}
    for row in rows:
        off = medians[(row["variant"], "none")]
        delta = off - row["median_best"]
        print(
            f"{row['variant']:4s} ls={row['local_search']:4s} "
            f"median {row['median_best']:6d}  best {row['best']:6d}  "
            f"{row['mean_iterations']:8.1f} iters  "
            + (f"(-{delta} vs plain)" if row["local_search"] != "none" else "")
        )

    payload = {
        "instance": args.instance,
        "wall_seconds": wall,
        "repeats": repeats,
        "report_every": report_every,
        "backend": backend.name,
        "variants": list(VARIANTS),
        "results": rows,
    }
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import validate_bench_ls

    validate_bench_ls(payload)
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
