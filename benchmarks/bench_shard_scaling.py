"""Throughput scaling of the router tier over N worker-process shards.

Measures numpy-backend requests/sec through ``ShardRouter`` fleets of
1, 2 and 4 worker shards, all serving the identical burst: ``sizes``
distinct instance geometries x ``--seeds-per-size`` seeds, with the
sizes *searched programmatically* so their bucket keys land on four
distinct shards of a 4-fleet (``shard_index`` uses one content hash, so
distinct-mod-4 keys are automatically balanced mod 2 as well — every
fleet sees an even spread).

Timing protocol (``interleaved-rotated-best-of``):

* every fleet is spawned **before** any timing and stays up for the
  whole run — process spawn, trunk connect and shared-memory publishing
  are lifecycle costs, not per-request costs, and never enter the timed
  window;
* one untimed warm-up burst per fleet absorbs first-touch costs (worker
  instance-cache fill, numpy warm paths);
* each sweep times one burst against every fleet, **rotating which
  fleet goes first** so sustained-load clock decay cannot systematically
  favour a configuration, and the per-fleet result is the best wall
  across sweeps;
* health probing is slowed to well past the burst wall and overflow
  spill is disabled, pinning pure hash routing for the whole window.

The artefact records ``host.cpus`` deliberately: on a single-CPU host
the engine work is CPU-bound and process shards mostly timeshare one
core, so the measured scaling is a floor — multi-core hosts (e.g. 4-vCPU
CI runners) overlap the per-shard engine threads for real.

Results go to ``BENCH_shard.json`` at the repository root; the schema is
pinned by ``benchmarks/conftest.py`` (``validate_bench_shard``).

Run:  python benchmarks/bench_shard_scaling.py [--iterations 30]
      [--repeats 7] [--seeds-per-size 4] [--out BENCH_shard.json] [--quick]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

from repro.backend import resolve_backend
from repro.core import ACOParams
from repro.serve.protocol import encode_request
from repro.serve.service import SolveRequest
from repro.shard import ShardConfig, ShardRouter, serve_router_tcp, shard_index
from repro.tsp import uniform_instance

SHARD_COUNTS = (1, 2, 4)
PROTOCOL = "interleaved-rotated-best-of"
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_shard.json"


def _request(n: int, seed: int, iterations: int) -> SolveRequest:
    return SolveRequest(
        instance=uniform_instance(n, seed=n),
        params=ACOParams(seed=seed),
        iterations=iterations,
    )


def pick_sizes(iterations: int, *, start: int = 16, fleet: int = 4) -> list[int]:
    """The first ``fleet`` sizes whose bucket keys route to ``fleet``
    distinct shards of a ``fleet``-wide deployment."""
    sizes: list[int] = []
    taken: set[int] = set()
    n = start
    while len(sizes) < fleet:
        idx = shard_index(_request(n, 1, iterations).bucket_key, fleet)
        if idx not in taken:
            taken.add(idx)
            sizes.append(n)
        n += 1
    return sizes


async def _run_burst(port: int, lines: list[bytes], timeout: float) -> float:
    """Wall seconds from first byte written to last result read."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        t0 = time.perf_counter()
        for line in lines:
            writer.write(line)
        await writer.drain()
        remaining = len(lines)
        while remaining:
            raw = await asyncio.wait_for(reader.readline(), timeout)
            if not raw:
                raise RuntimeError("router closed the burst connection")
            obj = json.loads(raw)
            if obj.get("type") == "error":
                raise RuntimeError(f"burst request failed: {obj}")
            if obj.get("type") == "result":
                remaining -= 1
        return time.perf_counter() - t0
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def measure(
    sizes: list[int],
    seeds_per_size: int,
    iterations: int,
    repeats: int,
    timeout: float,
) -> dict[int, float]:
    """Best burst wall per fleet size, every fleet long-lived throughout."""
    requests = [
        _request(n, seed, iterations)
        for n in sizes
        for seed in range(1, seeds_per_size + 1)
    ]
    lines = [encode_request(r, f"b{i}") for i, r in enumerate(requests)]
    config = ShardConfig(max_batch=max(2, seeds_per_size), max_wait=0.02)

    routers: dict[int, ShardRouter] = {}
    servers: dict[int, asyncio.AbstractServer] = {}
    ports: dict[int, int] = {}
    best: dict[int, float] = {s: float("inf") for s in SHARD_COUNTS}
    try:
        for shards in SHARD_COUNTS:
            # Slow probes + no spill: nothing but hash routing and solve
            # work inside the timed window.
            router = ShardRouter(
                shards, config, health_interval=60.0, spill_threshold=1e9
            )
            await router.start()
            server = await serve_router_tcp(router, "127.0.0.1", 0)
            routers[shards] = router
            servers[shards] = server
            ports[shards] = server.sockets[0].getsockname()[1]
        for shards in SHARD_COUNTS:  # untimed warm-up, one burst each
            await _run_burst(ports[shards], lines, timeout)
        for sweep in range(repeats):
            order = [
                SHARD_COUNTS[(i + sweep) % len(SHARD_COUNTS)]
                for i in range(len(SHARD_COUNTS))
            ]
            for shards in order:
                wall = await _run_burst(ports[shards], lines, timeout)
                best[shards] = min(best[shards], wall)
            print(
                f"sweep {sweep + 1}/{repeats}: "
                + "  ".join(
                    f"{s}sh {best[s]:.3f}s" for s in SHARD_COUNTS
                ),
                file=sys.stderr,
            )
    finally:
        for shards, server in servers.items():
            server.close()
            await server.wait_closed()
        for router in routers.values():
            await router.stop()
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=30)
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--seeds-per-size", type=int, default=4)
    parser.add_argument("--timeout", type=float, default=300.0)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny run for CI smoke (2 sweeps, 4 iterations, 2 seeds/size)",
    )
    args = parser.parse_args()

    iterations = min(args.iterations, 4) if args.quick else args.iterations
    repeats = min(args.repeats, 2) if args.quick else args.repeats
    seeds_per_size = 2 if args.quick else args.seeds_per_size

    sizes = pick_sizes(iterations)
    requests_per_burst = len(sizes) * seeds_per_size
    print(
        f"sizes {sizes} (distinct shards of a 4-fleet), "
        f"{requests_per_burst} requests/burst, {iterations} iterations",
        file=sys.stderr,
    )

    best = asyncio.run(
        measure(sizes, seeds_per_size, iterations, repeats, args.timeout)
    )

    rps = {s: requests_per_burst / best[s] for s in SHARD_COUNTS}
    rows = [
        {
            "shards": shards,
            "best_seconds": round(best[shards], 4),
            "requests_per_sec": round(rps[shards], 3),
            "speedup_vs_1": round(rps[shards] / rps[1], 3),
        }
        for shards in SHARD_COUNTS
    ]
    for row in rows:
        print(
            f"shards={row['shards']}  {row['best_seconds']:7.3f}s  "
            f"{row['requests_per_sec']:8.2f} req/s  "
            f"{row['speedup_vs_1']:5.2f}x vs 1",
        )

    payload = {
        "backend": resolve_backend(None).name,
        "iterations": iterations,
        "sizes": list(sizes),
        "seeds_per_size": seeds_per_size,
        "requests_per_burst": requests_per_burst,
        "repeats": repeats,
        "shard_counts": list(SHARD_COUNTS),
        "protocol": PROTOCOL,
        "host": {"cpus": os.cpu_count() or 1},
        "results": rows,
        "speedup_4_over_1": round(rps[4] / rps[1], 3),
    }
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import validate_bench_shard

    validate_bench_shard(payload)
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
