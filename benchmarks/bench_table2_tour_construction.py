"""Table II — tour-construction kernel versions 1-8 (Tesla C1060).

``test_regenerate_table2`` reproduces the paper's table through the
calibrated model (all seven instances, printed + saved); the benchmark
cases time the real functional kernels on att48 and kroC100, preserving the
paper's version ordering in measured wall-clock.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit_result
from repro.core import AntSystem
from repro.experiments.harness import run_experiment
from repro.simt.device import TESLA_C1060

pytestmark = pytest.mark.benchmark(group="table2")


def test_regenerate_table2(benchmark):
    result = benchmark.pedantic(run_experiment, args=("table2",), rounds=1, iterations=1)
    emit_result(result)
    assert result.metrics["ordering"]["mean"] >= 0.9
    assert result.metrics["v8_beats_v6_small"]
    assert result.metrics["v6_beats_v8_large"]


@pytest.mark.parametrize("version", range(1, 9))
def test_construction_kernel_att48(benchmark, att48, bench_params, version):
    """Functional simulation of one construction iteration, per version."""
    colony = AntSystem(
        att48, bench_params, device=TESLA_C1060, construction=version, pheromone=1
    )
    colony.run_iteration()  # warm caches / choice info

    benchmark.extra_info["version"] = version
    benchmark.extra_info["label"] = colony.construction.label
    benchmark(colony.run_iteration)


@pytest.mark.parametrize("version", [3, 6, 8])
def test_construction_kernel_kroC100(benchmark, kroC100, bench_params, version):
    """The three regime representatives on the 100-city instance."""
    colony = AntSystem(
        kroC100, bench_params, device=TESLA_C1060, construction=version, pheromone=1
    )
    colony.run_iteration()
    benchmark.extra_info["version"] = version
    benchmark(colony.run_iteration)
