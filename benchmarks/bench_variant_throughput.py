"""Variant throughput: what the one-engine redesign buys ACS and MMAS.

Before the variant redesign, ACS and MMAS ran as standalone numpy-only solo
loops — no batching, no bulk RNG, no arena hoisting, no ``report_every``
amortization.  Now all three variants ride the same
:class:`~repro.core.batch.BatchEngine`; this benchmark measures
colony-iterations/sec per variant across batch sizes so the cost of each
variant's extra work (ACS per-step local updates, MMAS clamp sweeps) is
visible relative to AS on identical substrate.

Timing protocol: all variants of one B-group are measured **interleaved
round-robin with a rotated starting point, best-of-``repeats``** — this
box's wall clock drifts ±30 % between windows, so only co-scheduled
measurements produce meaningful ratios (same protocol as
``bench_loop_amortization.measure_group``).

Results go to ``BENCH_variant.json`` at the repository root; the schema is
pinned by ``benchmarks/conftest.py`` (``validate_bench_variant``).

Run:  python benchmarks/bench_variant_throughput.py [--iterations 50]
      [--instance att48] [--out BENCH_variant.json] [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.backend import resolve_backend
from repro.core import ACOParams, BatchEngine

VARIANTS = ("as", "acs", "mmas")
BATCH_SIZES = (1, 8, 32)
REPORT_EVERY = 10
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_variant.json"

QUICK_BATCH_SIZES = (1, 4)
QUICK_REPORT_EVERY = 2


def measure_group(
    instance, params, backend, B, iterations, report_every, repeats=5
) -> list[dict]:
    """Time one B-group: every variant, interleaved and rotated.

    One repeat of each variant per sweep (rotating which goes first so
    sustained-load clock decay cannot systematically favour one), fresh
    engines every sweep (each variant then times the *same* early
    iterations), best-of-``repeats`` kept.  A short untimed warm-up run
    per engine absorbs first-touch costs (arena and block allocation,
    instance-matrix caches).
    """
    best = [float("inf")] * len(VARIANTS)
    for sweep in range(repeats):
        engines = []
        for variant in VARIANTS:
            engine = BatchEngine.replicas(
                instance,
                params,
                replicas=B,
                variant=variant,
                backend=backend,
            )
            engine.run(min(2, iterations), report_every=report_every)
            backend.synchronize()
            engines.append(engine)
        for i in [(j + sweep) % len(VARIANTS) for j in range(len(VARIANTS))]:
            t0 = time.perf_counter()
            engines[i].run(iterations, report_every=report_every)
            backend.synchronize()
            best[i] = min(best[i], time.perf_counter() - t0)
    as_seconds = best[VARIANTS.index("as")]
    rows = []
    for variant, seconds in zip(VARIANTS, best):
        rows.append(
            {
                "variant": variant,
                "B": B,
                "seconds": round(seconds, 4),
                "iters_per_sec": round(iterations / seconds, 2),
                "colony_iters_per_sec": round(B * iterations / seconds, 2),
                "relative_to_as": round(as_seconds / seconds, 2),
            }
        )
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instance", default="att48")
    parser.add_argument("--iterations", type=int, default=100)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny grid for CI smoke runs (B in {1,4}, 4 iterations)",
    )
    args = parser.parse_args()

    batch_sizes = QUICK_BATCH_SIZES if args.quick else BATCH_SIZES
    report_every = QUICK_REPORT_EVERY if args.quick else REPORT_EVERY
    iterations = min(args.iterations, 4) if args.quick else args.iterations

    from repro.tsp import load_instance

    instance = load_instance(args.instance)
    params = ACOParams(seed=1)
    backend = resolve_backend(None)

    rows = []
    for B in batch_sizes:
        group = measure_group(
            instance, params, backend, B, iterations, report_every
        )
        rows.extend(group)
        for row in group:
            print(
                f"{row['variant']:4s} B={B:3d} {row['seconds']:7.3f}s  "
                f"{row['colony_iters_per_sec']:9.1f} colony-it/s  "
                f"{row['relative_to_as']:5.2f}x vs as"
            )

    payload = {
        "instance": args.instance,
        "iterations": iterations,
        "backend": backend.name,
        "report_every": report_every,
        "batch_sizes": list(batch_sizes),
        "variants": list(VARIANTS),
        "results": rows,
    }
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import validate_bench_variant

    validate_bench_variant(payload)
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
