"""Figure 4(a) — NN-list tour construction speed-up (kernel v6 vs ACOTSP).

Regenerates the speed-up curves for both devices from the calibrated models
and benchmarks the two comparands functionally: the simulated GPU kernel
(vectorised) and the sequential engine, both on kroC100 with nn = 30.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit_result
from repro.core import AntSystem
from repro.experiments.harness import run_experiment
from repro.seq import SequentialAntSystem
from repro.simt.device import TESLA_C1060

pytestmark = pytest.mark.benchmark(group="fig4a")


def test_regenerate_fig4a(benchmark):
    result = benchmark.pedantic(run_experiment, args=("fig4a",), rounds=1, iterations=1)
    emit_result(result)
    for dev in ("c1060", "m2050"):
        assert result.metrics[dev]["crossover_match"]
        assert result.metrics[dev]["rise_monotone_fraction"] >= 0.8


def test_gpu_nnlist_construction(benchmark, kroC100, bench_params):
    colony = AntSystem(
        kroC100, bench_params, device=TESLA_C1060, construction=6, pheromone=1
    )
    colony.run_iteration()
    benchmark.extra_info["side"] = "gpu_v6"
    benchmark(colony.run_iteration)


def test_sequential_nnlist_construction(benchmark, kroC100):
    engine = SequentialAntSystem(kroC100, seed=1234, nn=30)
    engine.run_iteration(mode="nnlist")
    benchmark.extra_info["side"] = "sequential"
    benchmark(engine.run_iteration, "nnlist")
