"""Figure 4(b) — data-parallel construction speed-up (kernel v8 vs the
fully probabilistic sequential code)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit_result
from repro.core import AntSystem
from repro.experiments.harness import run_experiment
from repro.seq import SequentialAntSystem
from repro.simt.device import TESLA_M2050

pytestmark = pytest.mark.benchmark(group="fig4b")


def test_regenerate_fig4b(benchmark):
    result = benchmark.pedantic(run_experiment, args=("fig4b",), rounds=1, iterations=1)
    emit_result(result)
    for dev in ("c1060", "m2050"):
        assert result.metrics[dev]["crossover_match"]
        assert result.metrics[dev]["peak_log_error"] < 0.35


def test_gpu_dataparallel_construction(benchmark, kroC100, bench_params):
    colony = AntSystem(
        kroC100, bench_params, device=TESLA_M2050, construction=8, pheromone=1
    )
    colony.run_iteration()
    benchmark.extra_info["side"] = "gpu_v8"
    benchmark(colony.run_iteration)


def test_sequential_full_construction(benchmark, kroC100):
    engine = SequentialAntSystem(kroC100, seed=1234, nn=30)
    engine.run_iteration(mode="full")
    benchmark.extra_info["side"] = "sequential"
    benchmark(engine.run_iteration, "full")
