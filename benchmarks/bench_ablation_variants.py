"""Ablation — algorithm variants: AS kernels, ACS, and 2-opt polishing.

Beyond the paper: compares the Ant System (with the paper's best kernel
pair) against the Ant Colony System extension and measures the cost of a
2-opt polish, in both wall-clock (functional simulation) and quality.
"""

from __future__ import annotations

import sys

import pytest

from repro.core import ACOParams, ACSParams, AntColonySystem, AntSystem, MaxMinAntSystem
from repro.tsp import two_opt
from repro.util.tables import Table

pytestmark = pytest.mark.benchmark(group="ablation-variants")

ITERS = 8


def test_quality_comparison(kroC100):
    params = ACOParams(seed=55, nn=25)
    as_best = AntSystem(kroC100, params, construction=8, pheromone=1).run(ITERS).best_length
    acs_best = AntColonySystem(kroC100, params, ACSParams()).run(ITERS).best_length
    mmas_best = MaxMinAntSystem(kroC100, params).run(ITERS).best_length

    table = Table(["algorithm", "best length"], title=f"quality after {ITERS} iterations")
    table.add_row(["Ant System (v8 + v1 kernels)", as_best])
    table.add_row(["Ant Colony System", acs_best])
    table.add_row(["MAX-MIN Ant System", mmas_best])
    print("\n" + table.render(), file=sys.stderr)
    # Sanity band — no algorithm may be wildly off the others.
    lengths = [as_best, acs_best, mmas_best]
    assert (max(lengths) - min(lengths)) / min(lengths) < 0.3


def test_as_iteration(benchmark, kroC100):
    colony = AntSystem(kroC100, ACOParams(seed=55, nn=25), construction=8, pheromone=1)
    colony.run_iteration()
    benchmark.extra_info["algorithm"] = "ant_system"
    benchmark(colony.run_iteration)


def test_acs_iteration(benchmark, kroC100):
    acs = AntColonySystem(kroC100, ACOParams(seed=55, nn=25), ACSParams())
    acs.run_iteration()
    benchmark.extra_info["algorithm"] = "acs"
    benchmark(acs.run_iteration)


def test_mmas_iteration(benchmark, kroC100):
    mmas = MaxMinAntSystem(kroC100, ACOParams(seed=55, nn=25))
    mmas.run_iteration()
    benchmark.extra_info["algorithm"] = "mmas"
    benchmark(mmas.run_iteration)


def test_two_opt_polish(benchmark, kroC100):
    colony = AntSystem(kroC100, ACOParams(seed=55, nn=25), construction=8, pheromone=1)
    result = colony.run(3)
    dist = kroC100.distance_matrix()
    benchmark.extra_info["algorithm"] = "two_opt"
    res = benchmark(two_opt, result.best_tour, dist)
    assert res.length <= result.best_length
