"""Ablation — algorithm variants: AS kernels, ACS, and 2-opt polishing.

Beyond the paper: compares the Ant System (with the paper's best kernel
pair) against the Ant Colony System extension and measures the cost of a
2-opt polish, in both wall-clock (functional simulation) and quality.
"""

from __future__ import annotations

import sys

import pytest

from repro.core import ACOParams, ACSParams, AntColonySystem, AntSystem, MaxMinAntSystem
from repro.experiments.harness import run_replicas
from repro.tsp import two_opt
from repro.util.tables import Table

pytestmark = pytest.mark.benchmark(group="ablation-variants")

ITERS = 8
REPLICAS = 8


def test_batched_replica_iteration(benchmark, kroC100):
    """Throughput of one batched iteration advancing REPLICAS colonies."""
    from repro.core import BatchEngine

    engine = BatchEngine.replicas(
        kroC100, ACOParams(seed=55, nn=25), replicas=REPLICAS,
        construction=8, pheromone=1,
    )
    engine.run_iteration()
    benchmark.extra_info["algorithm"] = f"ant_system_batch_{REPLICAS}"
    benchmark(engine.run_iteration)


def test_quality_comparison(kroC100):
    params = ACOParams(seed=55, nn=25)
    # The AS row is REPLICAS seed-replicas dispatched through the batched
    # multi-colony engine (one vectorized batch, not a Python loop); each
    # row is bit-identical to a solo AntSystem run with that seed.
    as_batch = run_replicas(
        kroC100,
        replicas=REPLICAS,
        iterations=ITERS,
        params=params,
        construction=8,
        pheromone=1,
    )
    as_lengths = as_batch.best_lengths
    acs_best = AntColonySystem(kroC100, params, ACSParams()).run(ITERS).best_length
    mmas_best = MaxMinAntSystem(kroC100, params).run(ITERS).best_length

    table = Table(
        ["algorithm", "best length"],
        title=f"quality after {ITERS} iterations ({REPLICAS} AS replicas)",
    )
    table.add_row(
        [
            f"Ant System (v8 + v1, best of {REPLICAS})",
            f"{as_batch.best_length} (mean {as_lengths.mean():.0f})",
        ]
    )
    table.add_row(["Ant Colony System", acs_best])
    table.add_row(["MAX-MIN Ant System", mmas_best])
    print("\n" + table.render(), file=sys.stderr)
    # Sanity band — no algorithm may be wildly off the others.
    lengths = [int(as_lengths.mean()), acs_best, mmas_best]
    assert (max(lengths) - min(lengths)) / min(lengths) < 0.3


def test_as_iteration(benchmark, kroC100):
    colony = AntSystem(kroC100, ACOParams(seed=55, nn=25), construction=8, pheromone=1)
    colony.run_iteration()
    benchmark.extra_info["algorithm"] = "ant_system"
    benchmark(colony.run_iteration)


def test_acs_iteration(benchmark, kroC100):
    acs = AntColonySystem(kroC100, ACOParams(seed=55, nn=25), ACSParams())
    acs.run_iteration()
    benchmark.extra_info["algorithm"] = "acs"
    benchmark(acs.run_iteration)


def test_mmas_iteration(benchmark, kroC100):
    mmas = MaxMinAntSystem(kroC100, ACOParams(seed=55, nn=25))
    mmas.run_iteration()
    benchmark.extra_info["algorithm"] = "mmas"
    benchmark(mmas.run_iteration)


def test_two_opt_polish(benchmark, kroC100):
    colony = AntSystem(kroC100, ACOParams(seed=55, nn=25), construction=8, pheromone=1)
    result = colony.run(3)
    dist = kroC100.distance_matrix()
    benchmark.extra_info["algorithm"] = "two_opt"
    res = benchmark(two_opt, result.best_tour, dist)
    assert res.length <= result.best_length
