"""Backend throughput: the same batched engine on every available substrate.

For every *available* registered backend (numpy always; CuPy when a CUDA
device is present), measures the wall-clock of a ``BatchEngine`` run for
B in {1, 16, 64} colonies of one instance, under both kernel families:

* the **nn-list kernel** (v4) — interpreter/dispatch-dominated, where a
  device backend pays per-step launch overhead but wins on wide batches;
* the **data-parallel kernel** (v8) — element-work-dominated, the regime
  the paper's GPU mapping targets.

Rows report seconds, colony-iterations/sec and the speedup against the
numpy backend at the same (construction, B) point, so the artefact answers
the only question that matters for a backend: *when* does it pay.

Results are written to ``BENCH_backend.json`` at the repository root; the
schema is pinned by ``benchmarks/conftest.py`` (``validate_bench_backend``).

Run:  python benchmarks/bench_backend_throughput.py [--iterations 10]
      [--instance att48] [--out BENCH_backend.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.backend import available_backends, get_backend
from repro.core import ACOParams, BatchEngine
from repro.tsp import load_instance

BATCH_SIZES = (1, 16, 64)
CONSTRUCTIONS = (4, 8)
PHEROMONE = 1
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_backend.json"


def measure(instance, params, backend_name, B, iterations, construction) -> dict:
    """Time one B-wide batched run on one backend."""
    backend = get_backend(backend_name)
    engine = BatchEngine.replicas(
        instance,
        params,
        replicas=B,
        construction=construction,
        pheromone=PHEROMONE,
        backend=backend,
    )
    t0 = time.perf_counter()
    engine.run(iterations)
    backend.synchronize()
    seconds = time.perf_counter() - t0
    return {
        "backend": backend_name,
        "construction": construction,
        "B": B,
        "seconds": round(seconds, 4),
        "colonies_per_sec": round(B * iterations / seconds, 2),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instance", default="att48")
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args()

    instance = load_instance(args.instance)
    params = ACOParams(seed=1)
    availability = {
        info.name: {"available": info.available, "reason": info.reason}
        for info in available_backends()
    }
    runnable = [name for name, info in availability.items() if info["available"]]
    skipped = sorted(set(availability) - set(runnable))
    if skipped:
        print(f"skipping unavailable backends: {', '.join(skipped)}")

    rows = []
    numpy_seconds: dict[tuple[int, int], float] = {}
    for construction in CONSTRUCTIONS:
        for B in BATCH_SIZES:
            # numpy first: it is the speedup baseline for the other rows.
            for name in sorted(runnable, key=lambda k: k != "numpy"):
                row = measure(
                    instance, params, name, B, args.iterations, construction
                )
                if name == "numpy":
                    numpy_seconds[(construction, B)] = row["seconds"]
                base = numpy_seconds[(construction, B)]
                row["speedup_vs_numpy"] = round(base / row["seconds"], 2)
                rows.append(row)
                print(
                    f"v{construction} B={B:3d} {name:>6s}  "
                    f"{row['seconds']:7.3f}s  "
                    f"{row['colonies_per_sec']:8.1f} colony-iter/s  "
                    f"{row['speedup_vs_numpy']:5.2f}x vs numpy"
                )

    payload = {
        "instance": args.instance,
        "iterations": args.iterations,
        "pheromone": PHEROMONE,
        "backends": availability,
        "results": rows,
    }
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import validate_bench_backend

    validate_bench_backend(payload)
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
