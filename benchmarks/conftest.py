"""Shared benchmark fixtures and the table-emission helper.

Every benchmark module pairs two things:

* **artefact regeneration** — the calibrated model reproduces the paper's
  table/figure rows; the side-by-side comparison is printed (stderr, so it
  survives pytest's capture) and written to ``benchmarks/results/<id>.txt``;
* **functional timing** — pytest-benchmark times the *real* vectorised
  kernel simulations on small suite instances, giving measured wall-clock
  rows for the same code paths.
"""

from __future__ import annotations

import os
import sys

try:
    import pytest
except ImportError:  # pragma: no cover - schema-only consumers
    # The `gpu-aco bench` runner loads this module just for the BENCH_*
    # schemas/validators; those must not require the test toolchain.
    pytest = None

from repro.core import ACOParams
from repro.experiments.harness import ExperimentResult
from repro.tsp import load_instance

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# ------------------------------------------------------- BENCH_backend.json
#
# Schema of the artefact bench_backend_throughput.py writes at the repo
# root.  Kept here (next to the other benchmark helpers) so both the
# benchmark script and the test-suite validate the same contract.

#: top-level keys -> required type
BENCH_BACKEND_SCHEMA: dict[str, type] = {
    "instance": str,  # TSPLIB/suite instance name
    "iterations": int,  # iterations per measured run
    "pheromone": int,  # pheromone strategy version shared by all rows
    "backends": dict,  # backend name -> {"available": bool, "reason": str|None}
    "results": list,  # list of per-(backend, construction, B) row dicts
}

#: per-row keys -> required type
BENCH_BACKEND_ROW_SCHEMA: dict[str, type] = {
    "backend": str,  # registry key the row ran on
    "construction": int,  # construction strategy version
    "B": int,  # batched colony count
    "seconds": float,  # wall-clock of the batched run
    "colonies_per_sec": float,  # B * iterations / seconds
    "speedup_vs_numpy": float,  # numpy seconds / this backend's (1.0 on numpy)
}


def validate_bench_backend(payload: dict) -> None:
    """Assert ``payload`` matches the BENCH_backend.json schema above."""
    for key, typ in BENCH_BACKEND_SCHEMA.items():
        assert key in payload, f"BENCH_backend missing key {key!r}"
        assert isinstance(payload[key], typ), (
            f"BENCH_backend[{key!r}] should be {typ.__name__}, "
            f"got {type(payload[key]).__name__}"
        )
    assert payload["results"], "BENCH_backend has no result rows"
    for row in payload["results"]:
        for key, typ in BENCH_BACKEND_ROW_SCHEMA.items():
            assert key in row, f"BENCH_backend row missing key {key!r}"
            assert isinstance(row[key], typ), (
                f"BENCH_backend row[{key!r}] should be {typ.__name__}, "
                f"got {type(row[key]).__name__}"
            )
        assert row["backend"] in payload["backends"], (
            f"row backend {row['backend']!r} absent from availability map"
        )


# --------------------------------------------------------- BENCH_batch.json
#
# Schema of the artefact bench_batch_throughput.py writes at the repo root:
# sequential vs batched colonies/sec across B, the PR-2 baseline artefact.

#: top-level keys -> required type
BENCH_BATCH_SCHEMA: dict[str, type] = {
    "instance": str,  # TSPLIB/suite instance name
    "pheromone": int,  # pheromone strategy version shared by all rows
    "results": list,  # list of per-(construction, B) row dicts
}

#: per-row keys -> required type
BENCH_BATCH_ROW_SCHEMA: dict[str, type] = {
    "B": int,  # batched colony count
    "construction": int,  # construction strategy version
    "iterations": int,  # iterations per measured run
    "sequential_seconds": float,  # wall-clock of B sequential runs
    "batched_seconds": float,  # wall-clock of one B-wide batched run
    "speedup": float,  # sequential_seconds / batched_seconds
    "sequential_colonies_per_sec": float,
    "batched_colonies_per_sec": float,
}


def validate_bench_batch(payload: dict) -> None:
    """Assert ``payload`` matches the BENCH_batch.json schema above."""
    for key, typ in BENCH_BATCH_SCHEMA.items():
        assert key in payload, f"BENCH_batch missing key {key!r}"
        assert isinstance(payload[key], typ), (
            f"BENCH_batch[{key!r}] should be {typ.__name__}, "
            f"got {type(payload[key]).__name__}"
        )
    assert payload["results"], "BENCH_batch has no result rows"
    for row in payload["results"]:
        for key, typ in BENCH_BATCH_ROW_SCHEMA.items():
            assert key in row, f"BENCH_batch row missing key {key!r}"
            assert isinstance(row[key], typ), (
                f"BENCH_batch row[{key!r}] should be {typ.__name__}, "
                f"got {type(row[key]).__name__}"
            )
        assert row["B"] >= 1, f"row B={row['B']} must be positive"


# ---------------------------------------------------------- BENCH_loop.json
#
# Schema of the artefact bench_loop_amortization.py writes at the repo root:
# iterations/sec of the amortized device-resident loop (report_every = K,
# bulk RNG, hoisted WorkBuffers) against the pre-amortisation baseline
# (per-step draws, allocate-per-call, report every iteration).

#: top-level keys -> required type
BENCH_LOOP_SCHEMA: dict[str, type] = {
    "instance": str,  # TSPLIB/suite instance name
    "iterations": int,  # iterations per measured run
    "pheromone": int,  # pheromone strategy version shared by all rows
    "backend": str,  # backend every row ran on
    "batch_sizes": list,  # B values covered
    "report_every": list,  # K values covered (amortized rows)
    "results": list,  # list of per-(construction, B, K, amortized) rows
}

#: per-row keys -> required type
BENCH_LOOP_ROW_SCHEMA: dict[str, type] = {
    "construction": int,  # construction strategy version
    "B": int,  # batched colony count
    "report_every": int,  # K of this row (1 for the baseline)
    "amortized": bool,  # False = pre-amortisation reference path
    "seconds": float,  # wall-clock of the run
    "iters_per_sec": float,  # iterations / seconds
    "colony_iters_per_sec": float,  # B * iterations / seconds
    "speedup_vs_baseline": float,  # baseline seconds / this row's seconds
}


def validate_bench_loop(payload: dict) -> None:
    """Assert ``payload`` matches the BENCH_loop.json schema above."""
    for key, typ in BENCH_LOOP_SCHEMA.items():
        assert key in payload, f"BENCH_loop missing key {key!r}"
        assert isinstance(payload[key], typ), (
            f"BENCH_loop[{key!r}] should be {typ.__name__}, "
            f"got {type(payload[key]).__name__}"
        )
    assert payload["results"], "BENCH_loop has no result rows"
    seen_baselines = set()
    seen_amortized = set()
    for row in payload["results"]:
        for key, typ in BENCH_LOOP_ROW_SCHEMA.items():
            assert key in row, f"BENCH_loop row missing key {key!r}"
            assert isinstance(row[key], typ), (
                f"BENCH_loop row[{key!r}] should be {typ.__name__}, "
                f"got {type(row[key]).__name__}"
            )
        assert row["B"] in payload["batch_sizes"], (
            f"row B={row['B']} absent from batch_sizes"
        )
        if row["amortized"]:
            assert row["report_every"] in payload["report_every"], (
                f"row K={row['report_every']} absent from report_every"
            )
            seen_amortized.add((row["construction"], row["B"]))
        else:
            assert row["report_every"] == 1, "baseline rows must use K=1"
            seen_baselines.add((row["construction"], row["B"]))
    assert seen_amortized == seen_baselines, (
        "every (construction, B) point needs both baseline and amortized "
        f"rows; baselines={sorted(seen_baselines)} amortized={sorted(seen_amortized)}"
    )


# ------------------------------------------------------- BENCH_variant.json
#
# Schema of the artefact bench_variant_throughput.py writes at the repo
# root: colony-iterations/sec of the three engine variants (AS/ACS/MMAS)
# across batch sizes, all on the same amortized batched loop.

#: top-level keys -> required type
BENCH_VARIANT_SCHEMA: dict[str, type] = {
    "instance": str,  # TSPLIB/suite instance name
    "iterations": int,  # iterations per measured run
    "backend": str,  # backend every row ran on
    "report_every": int,  # K shared by all rows
    "batch_sizes": list,  # B values covered
    "variants": list,  # variant keys covered
    "results": list,  # list of per-(variant, B) rows
}

#: per-row keys -> required type
BENCH_VARIANT_ROW_SCHEMA: dict[str, type] = {
    "variant": str,  # "as" | "acs" | "mmas"
    "B": int,  # batched colony count
    "seconds": float,  # wall-clock of the run (best-of-N, interleaved)
    "iters_per_sec": float,  # iterations / seconds
    "colony_iters_per_sec": float,  # B * iterations / seconds
    "relative_to_as": float,  # AS seconds / this variant's (1.0 on as)
}


def validate_bench_variant(payload: dict) -> None:
    """Assert ``payload`` matches the BENCH_variant.json schema above."""
    for key, typ in BENCH_VARIANT_SCHEMA.items():
        assert key in payload, f"BENCH_variant missing key {key!r}"
        assert isinstance(payload[key], typ), (
            f"BENCH_variant[{key!r}] should be {typ.__name__}, "
            f"got {type(payload[key]).__name__}"
        )
    assert payload["results"], "BENCH_variant has no result rows"
    seen: dict[int, set] = {}
    for row in payload["results"]:
        for key, typ in BENCH_VARIANT_ROW_SCHEMA.items():
            assert key in row, f"BENCH_variant row missing key {key!r}"
            assert isinstance(row[key], typ), (
                f"BENCH_variant row[{key!r}] should be {typ.__name__}, "
                f"got {type(row[key]).__name__}"
            )
        assert row["variant"] in payload["variants"], (
            f"row variant {row['variant']!r} absent from variants"
        )
        assert row["B"] in payload["batch_sizes"], (
            f"row B={row['B']} absent from batch_sizes"
        )
        seen.setdefault(row["B"], set()).add(row["variant"])
    for B, variants in seen.items():
        assert variants == set(payload["variants"]), (
            f"B={B} missing variants: {set(payload['variants']) - variants}"
        )


# ------------------------------------------------------------ BENCH_ls.json
#
# Schema of the artefact bench_local_search.py writes at the repo root:
# quality-at-fixed-wall of the batched 2-opt local-search stage — for each
# variant, the median best tour length reached inside an identical wall
# budget with local search off vs on.

#: top-level keys -> required type
BENCH_LS_SCHEMA: dict[str, type] = {
    "instance": str,  # TSPLIB/suite instance name
    "wall_seconds": float,  # wall budget per measured run
    "repeats": int,  # seed-matched sweeps per config
    "report_every": int,  # K shared by all rows (ls fires at K-boundaries)
    "backend": str,  # backend every row ran on
    "variants": list,  # variant keys covered
    "results": list,  # list of per-(variant, local_search) rows
}

#: per-row keys -> required type
BENCH_LS_ROW_SCHEMA: dict[str, type] = {
    "variant": str,  # "as" | "acs" | "mmas"
    "local_search": str,  # "none" | "2opt"
    "median_best": int,  # median over sweeps of best length at budget
    "best": int,  # min over sweeps
    "lengths": list,  # the per-sweep best lengths behind the median
    "mean_iterations": float,  # ACO iterations completed inside the budget
}


def validate_bench_ls(payload: dict) -> None:
    """Assert ``payload`` matches the BENCH_ls.json schema above."""
    for key, typ in BENCH_LS_SCHEMA.items():
        assert key in payload, f"BENCH_ls missing key {key!r}"
        assert isinstance(payload[key], typ), (
            f"BENCH_ls[{key!r}] should be {typ.__name__}, "
            f"got {type(payload[key]).__name__}"
        )
    assert payload["results"], "BENCH_ls has no result rows"
    seen: dict[str, set] = {}
    for row in payload["results"]:
        for key, typ in BENCH_LS_ROW_SCHEMA.items():
            assert key in row, f"BENCH_ls row missing key {key!r}"
            assert isinstance(row[key], typ), (
                f"BENCH_ls row[{key!r}] should be {typ.__name__}, "
                f"got {type(row[key]).__name__}"
            )
        assert row["variant"] in payload["variants"], (
            f"row variant {row['variant']!r} absent from variants"
        )
        assert len(row["lengths"]) == payload["repeats"], (
            f"row has {len(row['lengths'])} lengths, expected "
            f"{payload['repeats']}"
        )
        seen.setdefault(row["variant"], set()).add(row["local_search"])
    for variant in payload["variants"]:
        assert seen.get(variant) == {"none", "2opt"}, (
            f"variant {variant!r} needs both a ls=none and a ls=2opt row; "
            f"got {sorted(seen.get(variant, ()))}"
        )


# --------------------------------------------------------- BENCH_shard.json
#
# Schema of the artefact bench_shard_scaling.py writes at the repo root:
# requests/sec through the ShardRouter tier for fleets of 1, 2 and 4
# worker-process shards, identical bursts, interleaved rotated best-of
# timing (fleets long-lived; spawn/warm-up outside the timed window).

#: top-level keys -> required type
BENCH_SHARD_SCHEMA: dict[str, type] = {
    "backend": str,  # backend every worker resolved
    "iterations": int,  # iterations per request
    "sizes": list,  # instance sizes, one per shard of a 4-fleet
    "seeds_per_size": int,  # requests per size in a burst
    "requests_per_burst": int,  # len(sizes) * seeds_per_size
    "repeats": int,  # timed sweeps per fleet (best-of)
    "shard_counts": list,  # fleet sizes covered, e.g. [1, 2, 4]
    "protocol": str,  # timing protocol identifier
    "host": dict,  # {"cpus": ...} — scaling context (see script docstring)
    "results": list,  # per-fleet rows
    "speedup_4_over_1": float,  # rps(4 shards) / rps(1 shard)
}

#: per-row keys -> required type
BENCH_SHARD_ROW_SCHEMA: dict[str, type] = {
    "shards": int,  # fleet size the row measured
    "best_seconds": float,  # best burst wall across sweeps
    "requests_per_sec": float,  # requests_per_burst / best_seconds
    "speedup_vs_1": float,  # rps(this fleet) / rps(1 shard)
}


def validate_bench_shard(payload: dict) -> None:
    """Assert ``payload`` matches the BENCH_shard.json schema above."""
    for key, typ in BENCH_SHARD_SCHEMA.items():
        assert key in payload, f"BENCH_shard missing key {key!r}"
        assert isinstance(payload[key], typ), (
            f"BENCH_shard[{key!r}] should be {typ.__name__}, "
            f"got {type(payload[key]).__name__}"
        )
    assert payload["results"], "BENCH_shard has no result rows"
    assert "cpus" in payload["host"], "BENCH_shard host block needs 'cpus'"
    assert payload["requests_per_burst"] == (
        len(payload["sizes"]) * payload["seeds_per_size"]
    ), "requests_per_burst disagrees with sizes x seeds_per_size"
    rps: dict[int, float] = {}
    for row in payload["results"]:
        for key, typ in BENCH_SHARD_ROW_SCHEMA.items():
            assert key in row, f"BENCH_shard row missing key {key!r}"
            assert isinstance(row[key], typ), (
                f"BENCH_shard row[{key!r}] should be {typ.__name__}, "
                f"got {type(row[key]).__name__}"
            )
        assert row["requests_per_sec"] > 0, "non-positive throughput row"
        rps[row["shards"]] = row["requests_per_sec"]
    assert sorted(rps) == sorted(payload["shard_counts"]), (
        f"rows cover fleets {sorted(rps)}, "
        f"declared {sorted(payload['shard_counts'])}"
    )
    assert {1, 4} <= set(rps), "BENCH_shard needs 1-shard and 4-shard rows"
    # The scaling contract: a 4-shard fleet must out-serve a single shard
    # under the interleaved protocol.
    assert rps[4] > rps[1], (
        f"4-shard fleet ({rps[4]} req/s) not above 1-shard ({rps[1]} req/s)"
    )
    assert payload["speedup_4_over_1"] > 1.0, (
        f"speedup_4_over_1 is {payload['speedup_4_over_1']}, expected > 1.0"
    )


#: script filename -> (artefact filename, validator); the `gpu-aco bench`
#: runner loads this registry to validate whatever a script wrote.
BENCH_ARTIFACTS: dict = {
    "bench_backend_throughput.py": ("BENCH_backend.json", validate_bench_backend),
    "bench_batch_throughput.py": ("BENCH_batch.json", validate_bench_batch),
    "bench_loop_amortization.py": ("BENCH_loop.json", validate_bench_loop),
    "bench_local_search.py": ("BENCH_ls.json", validate_bench_ls),
    "bench_shard_scaling.py": ("BENCH_shard.json", validate_bench_shard),
    "bench_variant_throughput.py": ("BENCH_variant.json", validate_bench_variant),
}

#: artefact filename -> validator, derived from the script registry above.
ARTIFACT_VALIDATORS: dict = {
    artefact: validator for artefact, validator in BENCH_ARTIFACTS.values()
}


def validate_bench_artifact(path, payload: dict | None = None) -> str:
    """Validate one ``BENCH_*.json`` artefact against its registered schema.

    Shared entry point for the ``gpu-aco bench`` runner, the test-suite and
    the CI ``lint-invariants`` job: dispatches on the file's basename through
    :data:`ARTIFACT_VALIDATORS` and returns the artefact name on success.
    ``payload`` skips the disk read when the caller already parsed the JSON.
    Raises ``ValueError`` for unregistered artefact names and ``AssertionError``
    (with a pointed message) for schema violations.
    """
    import json

    name = os.path.basename(str(path))
    validator = ARTIFACT_VALIDATORS.get(name)
    if validator is None:
        known = ", ".join(sorted(ARTIFACT_VALIDATORS))
        raise ValueError(f"no schema registered for {name!r} (known: {known})")
    if payload is None:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    validator(payload)
    return name


def emit_result(result: ExperimentResult) -> None:
    """Print an artefact comparison and persist it under results/."""
    text = result.render()
    print(f"\n{text}\n", file=sys.stderr)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{result.id}.txt"), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")


if pytest is not None:

    @pytest.fixture(scope="session")
    def att48():
        return load_instance("att48")

    @pytest.fixture(scope="session")
    def kroC100():
        return load_instance("kroC100")

    @pytest.fixture(scope="session")
    def a280():
        return load_instance("a280")

    @pytest.fixture(scope="session")
    def bench_params():
        """Paper parameters with a fixed seed for reproducible benchmark work."""
        return ACOParams(seed=1234)
