"""Shared benchmark fixtures and the table-emission helper.

Every benchmark module pairs two things:

* **artefact regeneration** — the calibrated model reproduces the paper's
  table/figure rows; the side-by-side comparison is printed (stderr, so it
  survives pytest's capture) and written to ``benchmarks/results/<id>.txt``;
* **functional timing** — pytest-benchmark times the *real* vectorised
  kernel simulations on small suite instances, giving measured wall-clock
  rows for the same code paths.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.core import ACOParams
from repro.experiments.harness import ExperimentResult
from repro.tsp import load_instance

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_result(result: ExperimentResult) -> None:
    """Print an artefact comparison and persist it under results/."""
    text = result.render()
    print(f"\n{text}\n", file=sys.stderr)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{result.id}.txt"), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")


@pytest.fixture(scope="session")
def att48():
    return load_instance("att48")


@pytest.fixture(scope="session")
def kroC100():
    return load_instance("kroC100")


@pytest.fixture(scope="session")
def a280():
    return load_instance("a280")


@pytest.fixture(scope="session")
def bench_params():
    """Paper parameters with a fixed seed for reproducible benchmark work."""
    return ACOParams(seed=1234)
