"""Table IV — pheromone-update kernel versions 1-5 (Tesla M2050)."""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit_result
from repro.core import ACOParams
from repro.core.pheromone import make_pheromone
from repro.core.state import ColonyState
from repro.experiments.harness import run_experiment
from repro.simt.device import TESLA_M2050
from repro.tsp.tour import random_tour, tour_lengths

pytestmark = pytest.mark.benchmark(group="table4")


def test_regenerate_table4(benchmark):
    result = benchmark.pedantic(run_experiment, args=("table4",), rounds=1, iterations=1)
    emit_result(result)
    assert result.metrics["ordering"]["mean"] >= 0.9
    assert result.metrics["mean_abs_log_ratio"] < 0.35


def test_atomics_native_vs_emulated_model():
    """The C1060/M2050 atomic gap (Table III row 1 vs Table IV row 1)."""
    from repro.experiments.harness import pheromone_model_time
    from repro.simt.device import TESLA_C1060

    for name in ("pcb442", "pr1002"):
        t_c = pheromone_model_time(1, name, TESLA_C1060)
        t_m = pheromone_model_time(1, name, TESLA_M2050)
        assert t_c > 2.0 * t_m


@pytest.fixture(scope="module")
def update_inputs(kroC100):
    state = ColonyState.create(kroC100, ACOParams(seed=5), TESLA_M2050)
    rng = np.random.default_rng(43)
    tours = np.stack([random_tour(state.n, rng) for _ in range(state.m)])
    lengths = tour_lengths(tours, state.dist)
    return state, tours, lengths


@pytest.mark.parametrize("version", range(1, 6))
def test_pheromone_update_kroC100(benchmark, update_inputs, version):
    state, tours, lengths = update_inputs
    strategy = make_pheromone(version)
    benchmark.extra_info["version"] = version
    benchmark(strategy.update, state, tours, lengths)
