"""Scaling-exponent analysis: do the kernels grow like the paper says?

Fits log-log slopes of modeled time vs instance size for every kernel
family and checks them against the exponents *implied by the paper's own
tables* (e.g. Table III's scatter-to-gather cells grow with slope ≈ 3.8 —
the 2n⁴ signature; the task-based construction cells with slope ≈ 2.1).
Slopes are calibration-independent: constants move intercepts, not slopes.
"""

from __future__ import annotations

import sys

import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.experiments.scaling import EXPECTED_EXPONENTS, scaling_exponent
from repro.simt.device import TESLA_C1060, TESLA_M2050
from repro.util.tables import Table

pytestmark = pytest.mark.benchmark(group="scaling")

#: Slopes implied by the paper's own table cells over the *large-scale*
#: columns (a280 onward — the smallest instances are launch-overhead and
#: occupancy dominated in the paper too, which is also why the model sweep
#: starts at n = 400): ln(t_last / t_a280) / ln(n_last / 280).
PAPER_IMPLIED = {
    "construction_v1": 2.26,  # Table II, a280 -> pr2392
    "construction_v3": 2.27,
    "construction_v4": 1.98,
    "construction_v7": 2.79,
    "pheromone_v1": 1.80,  # Table III, a280 -> pr1002
    "pheromone_v3": 3.75,
    "pheromone_v4": 3.95,
    "pheromone_v5": 4.71,  # inflated by the anomalous pr1002 cell
}


def test_exponent_table(benchmark):
    def build() -> Table:
        table = Table(
            ["subject", "C1060 slope", "M2050 slope", "paper-implied"],
            title="fitted log-log scaling exponents (modeled time vs n)",
        )
        for subject in sorted(EXPECTED_EXPONENTS):
            c = scaling_exponent(subject, TESLA_C1060)
            m = scaling_exponent(subject, TESLA_M2050)
            implied = PAPER_IMPLIED.get(subject)
            table.add_row(
                [subject, f"{c:.2f}", f"{m:.2f}", f"{implied:.2f}" if implied else "-"]
            )
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    text = table.render()
    print("\n" + text, file=sys.stderr)
    import os

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "scaling.txt"), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")


@pytest.mark.parametrize("subject", sorted(PAPER_IMPLIED))
def test_slope_tracks_paper_implied(subject):
    """The model's slope must sit within ±0.8 of the paper-implied slope —
    a strong structural check, untouched by calibration."""
    implied = PAPER_IMPLIED[subject]
    device = TESLA_C1060
    got = scaling_exponent(subject, device)
    assert abs(got - implied) <= 0.8, (subject, got, implied)
