"""Batched multi-colony throughput: colonies/sec vs the sequential loop.

Measures, for B in {1, 4, 16, 64} replicas of att48, the wall-clock of

* the **old sequential path**: B independent ``AntSystem.run`` calls, one
  Python-level iteration loop per colony;
* the **batched path**: one ``BatchEngine`` advancing all B colonies per
  iteration in vectorized numpy operations.

Both paths produce bit-identical per-colony results (the equivalence
property test pins this), so the comparison is pure execution-strategy.
Results are written to ``BENCH_batch.json`` at the repository root.

Two kernel families are measured: the nn-list kernel (v4, one dart per ant
per step — interpreter-overhead-dominated, where batching pays most) and
the data-parallel kernel (v8, n randoms per ant per step — element-work-
dominated, so the batched and sequential paths share most of their cost).
The achieved speedup is machine-dependent: the higher the numpy dispatch
overhead relative to memory-gather throughput, the closer the batched path
gets to the ideal B-fold amortization.

Run:  python benchmarks/bench_batch_throughput.py [--iterations 10]
      [--instance att48] [--out BENCH_batch.json]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import time
from pathlib import Path

from repro.core import ACOParams, AntSystem, BatchEngine
from repro.tsp import load_instance

BATCH_SIZES = (1, 4, 16, 64)
CONSTRUCTIONS = (4, 8)
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_batch.json"


def measure(
    instance, params: ACOParams, B: int, iterations: int, construction: int
) -> dict:
    """Time B sequential solo runs vs one B-wide batched run."""
    seeds = [params.seed + b for b in range(B)]

    t0 = time.perf_counter()
    seq_best = []
    for seed in seeds:
        colony = AntSystem(
            instance, dataclasses.replace(params, seed=seed),
            construction=construction, pheromone=1,
        )
        seq_best.append(colony.run(iterations).best_length)
    seq_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    engine = BatchEngine.replicas(
        instance, params, replicas=B, construction=construction, pheromone=1
    )
    batch = engine.run(iterations)
    batch_s = time.perf_counter() - t0

    assert [r.best_length for r in batch.results] == seq_best, (
        "batched results diverged from the sequential loop"
    )
    return {
        "B": B,
        "construction": construction,
        "iterations": iterations,
        "sequential_seconds": round(seq_s, 4),
        "batched_seconds": round(batch_s, 4),
        "speedup": round(seq_s / batch_s, 2),
        "sequential_colonies_per_sec": round(B * iterations / seq_s, 2),
        "batched_colonies_per_sec": round(B * iterations / batch_s, 2),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instance", default="att48")
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args()

    instance = load_instance(args.instance)
    params = ACOParams(seed=1)
    rows = []
    for construction in CONSTRUCTIONS:
        for B in BATCH_SIZES:
            row = measure(instance, params, B, args.iterations, construction)
            rows.append(row)
            print(
                f"v{construction} B={B:3d}  "
                f"sequential {row['sequential_seconds']:7.3f}s  "
                f"batched {row['batched_seconds']:7.3f}s  "
                f"speedup {row['speedup']:5.2f}x  "
                f"({row['batched_colonies_per_sec']:.1f} colony-iter/s)"
            )

    payload = {
        "instance": args.instance,
        "pheromone": 1,
        "results": rows,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
