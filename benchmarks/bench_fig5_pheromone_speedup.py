"""Figure 5 — pheromone-update speed-up (atomic + shared kernel vs ACOTSP)."""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit_result
from repro.core import ACOParams
from repro.core.pheromone import make_pheromone
from repro.core.state import ColonyState
from repro.experiments.harness import run_experiment
from repro.seq import SequentialAntSystem
from repro.simt.device import TESLA_M2050
from repro.tsp.tour import random_tour, tour_lengths

pytestmark = pytest.mark.benchmark(group="fig5")


def test_regenerate_fig5(benchmark):
    result = benchmark.pedantic(run_experiment, args=("fig5",), rounds=1, iterations=1)
    emit_result(result)
    for dev in ("c1060", "m2050"):
        assert result.metrics[dev]["peak_instance_match"]
        assert result.metrics[dev]["crossover_match"]
    # The emulation asymmetry: M2050 dominates C1060 everywhere.
    c = result.model_rows["Tesla C1060"]
    m = result.model_rows["Tesla M2050"]
    assert all(b > a for a, b in zip(c, m))


@pytest.fixture(scope="module")
def update_inputs(a280):
    state = ColonyState.create(a280, ACOParams(seed=5), TESLA_M2050)
    rng = np.random.default_rng(44)
    tours = np.stack([random_tour(state.n, rng) for _ in range(state.m)])
    return state, tours, tour_lengths(tours, state.dist)


def test_gpu_atomic_update_a280(benchmark, update_inputs):
    state, tours, lengths = update_inputs
    strategy = make_pheromone(1)
    benchmark.extra_info["side"] = "gpu_v1"
    benchmark(strategy.update, state, tours, lengths)


def test_sequential_update_a280(benchmark, a280, update_inputs):
    _, tours, lengths = update_inputs
    engine = SequentialAntSystem(a280, seed=1234, nn=30)
    benchmark.extra_info["side"] = "sequential"
    benchmark(engine.update_pheromone, tours, lengths)
