"""Ablation — the tile size θ of the scatter-to-gather pheromone kernels.

The paper's formula ``γ = 2 n^4 / θ`` says global traffic falls inversely
with θ; the shared-memory stream does not.  This bench sweeps θ through the
model (a280/pcb442 on the C1060) and times the functional path at two sizes.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.core import ACOParams
from repro.core.pheromone import ScatterGatherTiledPheromone
from repro.core.state import ColonyState
from repro.experiments.harness import pheromone_model_time
from repro.simt.device import TESLA_C1060
from repro.tsp.tour import random_tour, tour_lengths
from repro.util.tables import Table

pytestmark = pytest.mark.benchmark(group="ablation-tiling")

THETAS = (32, 64, 128, 256, 512)


def test_theta_sweep_model():
    table = Table(
        ["theta"] + [f"{name} (ms)" for name in ("a280", "pcb442")],
        title="scatter-to-gather + tiling: modeled update time vs theta (C1060)",
    )
    times = {}
    for theta in THETAS:
        row = [theta]
        for name in ("a280", "pcb442"):
            t = pheromone_model_time(4, name, TESLA_C1060, theta=theta) * 1e3
            times[(theta, name)] = t
            row.append(f"{t:.1f}")
        table.add_row(row)
    print("\n" + table.render(), file=sys.stderr)
    # Larger tiles reduce global traffic: time must not increase with theta.
    for name in ("a280", "pcb442"):
        series = [times[(t, name)] for t in THETAS]
        assert all(a >= b * 0.999 for a, b in zip(series, series[1:]))


def test_untiled_always_worst_at_scale():
    t_untiled = pheromone_model_time(5, "pcb442", TESLA_C1060)
    for theta in THETAS:
        assert pheromone_model_time(4, "pcb442", TESLA_C1060, theta=theta) < t_untiled


@pytest.mark.parametrize("theta", [64, 256])
def test_functional_tiled_update(benchmark, att48, theta):
    state = ColonyState.create(att48, ACOParams(seed=5), TESLA_C1060)
    rng = np.random.default_rng(9)
    tours = np.stack([random_tour(state.n, rng) for _ in range(state.m)])
    lengths = tour_lengths(tours, state.dist)
    strategy = ScatterGatherTiledPheromone(theta=theta)
    benchmark.extra_info["theta"] = theta
    benchmark(strategy.update, state, tours, lengths)
