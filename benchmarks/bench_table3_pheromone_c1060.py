"""Table III — pheromone-update kernel versions 1-5 (Tesla C1060)."""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit_result
from repro.core import ACOParams
from repro.core.pheromone import make_pheromone
from repro.core.state import ColonyState
from repro.experiments.harness import run_experiment
from repro.simt.device import TESLA_C1060
from repro.tsp.tour import random_tour, tour_lengths

pytestmark = pytest.mark.benchmark(group="table3")


def test_regenerate_table3(benchmark):
    result = benchmark.pedantic(run_experiment, args=("table3",), rounds=1, iterations=1)
    emit_result(result)
    assert result.metrics["ordering"]["mean"] >= 0.9
    assert result.metrics["slowdown_grows_with_n"]


@pytest.fixture(scope="module")
def update_inputs(att48):
    state = ColonyState.create(att48, ACOParams(seed=5), TESLA_C1060)
    rng = np.random.default_rng(42)
    tours = np.stack([random_tour(state.n, rng) for _ in range(state.m)])
    lengths = tour_lengths(tours, state.dist)
    return state, tours, lengths


@pytest.mark.parametrize("version", range(1, 6))
def test_pheromone_update_att48(benchmark, update_inputs, version):
    """Functional simulation of one pheromone update, per version."""
    state, tours, lengths = update_inputs
    strategy = make_pheromone(version)
    benchmark.extra_info["version"] = version
    benchmark.extra_info["label"] = strategy.label
    benchmark(strategy.update, state, tours, lengths)
