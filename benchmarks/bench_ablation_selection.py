"""Ablation — the data-parallel tile selection rule.

The paper's wording ("the city with the best absolute heuristic value is
selected from this partial best set") admits two readings: compare tile
winners by their random-weighted *product* (what the authors' later
I-Roulette formulation does; our default) or by raw choice value.  This
bench compares their cost (identical ledgers) and their solution quality.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.core import ACOParams, AntSystem
from repro.simt.device import TESLA_M2050

pytestmark = pytest.mark.benchmark(group="ablation-selection")


def _best_length(instance, rule, seed):
    colony = AntSystem(
        instance,
        ACOParams(seed=seed, nn=20),
        device=TESLA_M2050,
        construction=7,
        construction_options={"tile": 64, "tile_rule": rule},
    )
    return colony.run(6).best_length


def test_rules_have_identical_ledgers(a280):
    """The rules differ by one compare per tile — cost-wise a wash."""
    from repro.core.construction.dataparallel import DataParallelConstruction

    prod, _ = DataParallelConstruction(tile=64, tile_rule="product").predict_stats(
        280, 280, 20, TESLA_M2050
    )
    heur, _ = DataParallelConstruction(tile=64, tile_rule="heuristic").predict_stats(
        280, 280, 20, TESLA_M2050
    )
    assert heur.int_ops >= prod.int_ops
    assert heur.gmem_load_bytes == prod.gmem_load_bytes
    assert heur.rng_lcg == prod.rng_lcg


def test_quality_comparison(a280):
    rows = []
    for rule in ("product", "heuristic"):
        lengths = [_best_length(a280, rule, seed) for seed in (1, 2, 3)]
        rows.append((rule, float(np.mean(lengths))))
        print(f"tile_rule={rule}: mean best length {np.mean(lengths):.0f}", file=sys.stderr)
    # Both rules must produce sane tours (within 15% of each other).
    a, b = rows[0][1], rows[1][1]
    assert abs(a - b) / min(a, b) < 0.15


@pytest.mark.parametrize("rule", ["product", "heuristic"])
def test_functional_selection_rule(benchmark, kroC100, rule):
    colony = AntSystem(
        kroC100,
        ACOParams(seed=1234, nn=20),
        device=TESLA_M2050,
        construction=7,
        construction_options={"tile": 64, "tile_rule": rule},
    )
    colony.run_iteration()
    benchmark.extra_info["tile_rule"] = rule
    benchmark(colony.run_iteration)
