"""Tests for the asymptotic-scaling analysis — the paper's complexity story.

These tests validate the cost model's *structure* independently of the
calibrated constants: a fitted constant shifts curves up or down but can
never change a log-log slope, so the exponents below are pure consequences
of the count formulas (the paper's l = 2n⁴ etc.).
"""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.scaling import (
    DEFAULT_SIZES,
    EXPECTED_EXPONENTS,
    model_time_series,
    scaling_exponent,
)
from repro.simt.device import TESLA_C1060, TESLA_M2050


class TestExponentBands:
    @pytest.mark.parametrize("subject", sorted(EXPECTED_EXPONENTS))
    @pytest.mark.parametrize("device", [TESLA_C1060, TESLA_M2050], ids=["c1060", "m2050"])
    def test_exponent_within_band(self, subject, device):
        lo, hi = EXPECTED_EXPONENTS[subject]
        slope = scaling_exponent(subject, device)
        assert lo <= slope <= hi, (subject, device.name, slope)

    def test_scatter_gather_is_the_steepest(self):
        """The paper's central cost contrast in one inequality chain."""
        s_atomic = scaling_exponent("pheromone_v1", TESLA_C1060)
        s_gather = scaling_exponent("pheromone_v5", TESLA_C1060)
        assert s_gather > s_atomic + 1.0

    def test_nnlist_flattest_construction(self):
        s_task = scaling_exponent("construction_v3", TESLA_C1060)
        s_nn = scaling_exponent("construction_v4", TESLA_C1060)
        s_dp = scaling_exponent("construction_v7", TESLA_C1060)
        assert s_nn < s_task
        assert s_nn < s_dp

    def test_gpu_and_seq_construction_same_order(self):
        """Both sides of Fig. 4(b) are ~n³ — the speed-up saturates rather
        than growing forever."""
        gpu = scaling_exponent("construction_v7", TESLA_M2050)
        seq = scaling_exponent("seq_construct_full", TESLA_M2050)
        assert abs(gpu - seq) < 0.7


class TestSeries:
    def test_series_positive_and_increasing(self):
        times = model_time_series("pheromone_v4", TESLA_C1060)
        assert all(t > 0 for t in times)
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_custom_sizes(self):
        times = model_time_series("pheromone_v1", TESLA_M2050, sizes=(100, 200))
        assert len(times) == 2

    def test_unknown_subject(self):
        with pytest.raises(ExperimentError):
            model_time_series("pheromone_v9", TESLA_C1060)
        with pytest.raises(ExperimentError):
            model_time_series("seq_sort", TESLA_C1060)

    def test_too_few_sizes(self):
        with pytest.raises(ExperimentError):
            scaling_exponent("pheromone_v1", TESLA_C1060, sizes=(100,))

    def test_default_sweep_is_large_scale(self):
        assert min(DEFAULT_SIZES) >= 400  # past the launch-overhead regime
