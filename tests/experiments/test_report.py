"""Tests for EXPERIMENTS.md generation."""

from __future__ import annotations

import pytest

from repro.experiments.harness import run_experiment
from repro.experiments.report import (
    ALL_EXPERIMENT_IDS,
    generate_experiments_md,
    render_markdown_result,
)


class TestRenderResult:
    def test_table_artefact_section(self):
        md = render_markdown_result(run_experiment("table3"))
        assert md.startswith("## table3")
        assert "| row | source |" in md
        assert "Scatter to Gather" in md
        assert "mean |ln(model/paper)|" in md
        assert "version-ordering agreement" in md

    def test_figure_artefact_section(self):
        md = render_markdown_result(run_experiment("fig5"))
        assert "peak" in md
        assert "crossover match" in md
        assert "Tesla C1060" in md and "Tesla M2050" in md

    def test_paper_rows_interleaved(self):
        md = render_markdown_result(run_experiment("table4"))
        # every model row must be followed by its paper counterpart
        assert md.count("| model |") == md.count("| paper |")


class TestGenerate:
    @pytest.fixture(scope="class")
    def content(self):
        return generate_experiments_md()

    def test_all_artefacts_present(self, content):
        for exp_id in ALL_EXPERIMENT_IDS:
            assert f"## {exp_id}" in content

    def test_reading_guide_and_gaps(self, content):
        assert "Reading guide" in content
        assert "Known gaps" in content
        assert "pr2392" in content  # the documented fig4a gap

    def test_regeneration_command_stated(self, content):
        assert "python -m repro.experiments report" in content

    def test_matches_committed_file(self, content):
        """The committed EXPERIMENTS.md is exactly the generator's output."""
        import os

        path = os.path.join(os.path.dirname(__file__), "..", "..", "EXPERIMENTS.md")
        if not os.path.exists(path):  # pragma: no cover - fresh checkout
            pytest.skip("EXPERIMENTS.md not generated yet")
        committed = open(path, encoding="utf-8").read()
        assert committed == content
