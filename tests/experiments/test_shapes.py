"""Tests for the shape metrics."""

from __future__ import annotations

import pytest

from repro.experiments.paper_data import FigureSeries
from repro.experiments.shapes import (
    curve_metrics,
    mean_abs_log_ratio,
    ordering_agreement,
    row_log_errors,
)


class TestOrderingAgreement:
    def test_perfect_agreement(self):
        model = {1: [10.0, 20.0], 2: [5.0, 8.0], 3: [1.0, 2.0]}
        paper = {1: [11.0, 19.0], 2: [6.0, 9.0], 3: [0.5, 2.5]}
        out = ordering_agreement(model, paper)
        assert out["mean"] == pytest.approx(1.0)

    def test_inverted_column_detected(self):
        model = {1: [1.0], 2: [2.0], 3: [3.0]}
        paper = {1: [3.0], 2: [2.0], 3: [1.0]}
        out = ordering_agreement(model, paper)
        assert out["mean"] == pytest.approx(-1.0)

    def test_version_mismatch_raises(self):
        with pytest.raises(ValueError):
            ordering_agreement({1: [1.0]}, {1: [1.0], 2: [2.0]})


class TestLogErrors:
    def test_factor_two_is_ln2(self):
        model = {1: [2.0, 2.0]}
        paper = {1: [1.0, 1.0]}
        assert mean_abs_log_ratio(model, paper) == pytest.approx(0.6931, abs=1e-3)

    def test_per_row(self):
        model = {1: [1.0], 2: [4.0]}
        paper = {1: [1.0], 2: [1.0]}
        errs = row_log_errors(model, paper)
        assert errs[1] == pytest.approx(0.0)
        assert errs[2] == pytest.approx(1.386, abs=1e-3)


class TestCurveMetrics:
    SERIES = FigureSeries(
        "c1060",
        ("a", "b", "c", "d"),
        (0.5, 0.9, 2.0, 1.5),
        peak_value=2.0,
        peak_instance="c",
    )

    def test_perfect_curve(self):
        m = curve_metrics([0.5, 0.9, 2.0, 1.5], self.SERIES)
        assert m["peak_instance_match"] is True
        assert m["peak_log_error"] == pytest.approx(0.0)
        assert m["crossover_match"] is True
        assert m["spearman"] == pytest.approx(1.0)

    def test_shifted_crossover_within_one_still_matches(self):
        m = curve_metrics([0.5, 1.1, 2.0, 1.5], self.SERIES)
        assert m["crossover_match"] is True  # index 1 vs 2

    def test_never_crossing_mismatch(self):
        m = curve_metrics([0.1, 0.2, 0.3, 0.2], self.SERIES)
        assert m["crossover_match"] is False

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            curve_metrics([1.0], self.SERIES)

    def test_rise_monotone_fraction(self):
        m = curve_metrics([0.5, 0.4, 2.0, 1.0], self.SERIES)
        assert m["rise_monotone_fraction"] == pytest.approx(0.5)
