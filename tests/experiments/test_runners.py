"""Tests for the artefact runners — the shape claims of the reproduction.

These are the headline assertions of the whole repository: the calibrated
model must reproduce the *findings* of each table and figure.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import run_experiment


@pytest.fixture(scope="module")
def table2():
    return run_experiment("table2")


@pytest.fixture(scope="module")
def table3():
    return run_experiment("table3")


@pytest.fixture(scope="module")
def table4():
    return run_experiment("table4")


class TestTable2Shape:
    def test_ordering_agreement_high(self, table2):
        assert table2.metrics["ordering"]["mean"] >= 0.9

    def test_cells_within_factor_2_typically(self, table2):
        assert table2.metrics["mean_abs_log_ratio"] < 0.69  # factor 2

    def test_crossover_v8_vs_v6(self, table2):
        """The paper's headline: data parallelism wins small instances,
        NN-list kernels win the biggest."""
        assert table2.metrics["v8_beats_v6_small"] is True
        assert table2.metrics["v6_beats_v8_large"] is True

    def test_every_version_improves_on_baseline(self, table2):
        rows = table2.model_rows
        base = rows["Baseline Version"]
        for label, values in rows.items():
            if label in ("Baseline Version", "Total speed-up attained"):
                continue
            for i, v in enumerate(values):
                assert v < base[i], (label, i)

    def test_total_speedup_double_digit(self, table2):
        # paper: 11.6x - 62.8x
        model = table2.metrics["model_total_speedup"]
        assert all(s > 5 for s in model)


class TestTable3Shape:
    def test_ordering(self, table3):
        assert table3.metrics["ordering"]["mean"] >= 0.9

    def test_log_errors(self, table3):
        assert table3.metrics["mean_abs_log_ratio"] < 0.5

    def test_slowdown_grows(self, table3):
        assert table3.metrics["slowdown_grows_with_n"] is True

    def test_atomic_fastest_everywhere(self, table3):
        rows = table3.model_rows
        atomic = rows["Atomic Ins. + Shared Memory"]
        for label, values in rows.items():
            if label in ("Atomic Ins. + Shared Memory", "Total slow-down incurred"):
                continue
            for i, v in enumerate(values):
                assert v >= atomic[i] * 0.999, (label, i)

    def test_slowdown_thousands_at_pr1002(self, table3):
        assert table3.metrics["model_total_slowdown"][-1] > 1000


class TestTable4Shape:
    def test_ordering(self, table4):
        assert table4.metrics["ordering"]["mean"] >= 0.9

    def test_log_errors_tight(self, table4):
        assert table4.metrics["mean_abs_log_ratio"] < 0.3

    def test_m2050_atomics_faster_than_c1060(self, table3, table4):
        """Native float atomics: every Table IV atomic cell beats its
        Table III counterpart."""
        a_c = table3.model_rows["Atomic Ins. + Shared Memory"]
        a_m = table4.model_rows["Atomic Ins. + Shared Memory"]
        for c, m in zip(a_c, a_m):
            assert m < c


class TestFigures:
    @pytest.mark.parametrize("fig_id", ["fig4a", "fig4b", "fig5"])
    def test_crossovers_match(self, fig_id):
        res = run_experiment(fig_id)
        for dev in ("c1060", "m2050"):
            assert res.metrics[dev]["crossover_match"] is True, (fig_id, dev)

    @pytest.mark.parametrize("fig_id", ["fig4a", "fig4b", "fig5"])
    def test_rise_is_monotone(self, fig_id):
        res = run_experiment(fig_id)
        for dev in ("c1060", "m2050"):
            assert res.metrics[dev]["rise_monotone_fraction"] >= 0.8

    def test_fig4b_peaks_within_40pct(self):
        res = run_experiment("fig4b")
        for dev in ("c1060", "m2050"):
            assert res.metrics[dev]["peak_log_error"] < 0.35

    def test_fig5_peak_instances_match(self):
        res = run_experiment("fig5")
        for dev in ("c1060", "m2050"):
            assert res.metrics[dev]["peak_instance_match"] is True

    def test_fig5_m2050_dominates_c1060(self):
        """The float-atomic emulation story: the M2050 curve sits far above
        the C1060 curve at every size."""
        res = run_experiment("fig5")
        c = res.model_rows["Tesla C1060"]
        m = res.model_rows["Tesla M2050"]
        for a, b in zip(c, m):
            assert b > 2.5 * a

    def test_fig4a_sequential_wins_smallest(self):
        res = run_experiment("fig4a")
        for dev_label in ("Tesla C1060", "Tesla M2050"):
            assert res.model_rows[dev_label][0] < 1.0

    def test_fig5_c1060_sequential_wins_smallest(self):
        res = run_experiment("fig5")
        assert res.model_rows["Tesla C1060"][0] < 1.0
