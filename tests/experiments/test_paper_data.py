"""Tests for the transcribed paper data — internal consistency checks."""

from __future__ import annotations

import pytest

from repro.experiments import paper_data as pd


class TestTables:
    def test_table2_shape(self):
        assert len(pd.TABLE2_INSTANCES) == 7
        assert sorted(pd.TABLE2_MS) == list(range(1, 9))
        for row in pd.TABLE2_MS.values():
            assert len(row) == 7

    def test_table3_table4_shape(self):
        assert len(pd.TABLE3_INSTANCES) == 6
        for table in (pd.TABLE3_MS, pd.TABLE4_MS):
            assert sorted(table) == list(range(1, 6))
            for row in table.values():
                assert len(row) == 6

    def test_speedup_row_consistent_with_cells(self):
        """Table II's bottom row is v1/v8 (the paper's own arithmetic,
        within its printed rounding)."""
        for i in range(7):
            implied = pd.TABLE2_MS[1][i] / pd.TABLE2_MS[8][i]
            printed = pd.TABLE2_SPEEDUP_ROW[i]
            assert implied == pytest.approx(printed, rel=0.05)

    def test_slowdown_rows_consistent(self):
        for table, row in (
            (pd.TABLE3_MS, pd.TABLE3_SLOWDOWN_ROW),
            (pd.TABLE4_MS, pd.TABLE4_SLOWDOWN_ROW),
        ):
            for i in range(6):
                # The paper's tiny atomic cells are printed with 2 decimals,
                # so the implied ratios carry up to ~15 % rounding noise.
                implied = table[5][i] / table[1][i]
                assert implied == pytest.approx(row[i], rel=0.15)

    def test_paper_orderings_v1_worst_construction(self):
        for i in range(7):
            col = [pd.TABLE2_MS[v][i] for v in range(1, 9)]
            assert max(col) == col[0]  # baseline is always slowest

    def test_paper_atomic_always_fastest_update(self):
        for table in (pd.TABLE3_MS, pd.TABLE4_MS):
            for i in range(6):
                col = [table[v][i] for v in range(1, 6)]
                assert min(col) == col[0]

    def test_labels_cover_all_versions(self):
        assert sorted(pd.CONSTRUCTION_LABELS) == list(range(1, 9))
        assert sorted(pd.PHEROMONE_LABELS) == list(range(1, 6))


class TestFigures:
    @pytest.mark.parametrize("fig", [pd.FIG4A, pd.FIG4B, pd.FIG5])
    def test_devices_present(self, fig):
        assert set(fig) == {"c1060", "m2050"}

    def test_fig4_series_cover_table2_instances(self):
        for fig in (pd.FIG4A, pd.FIG4B):
            for series in fig.values():
                assert series.instances == pd.TABLE2_INSTANCES
                assert len(series.speedups) == 7

    def test_fig5_stops_at_pr1002(self):
        for series in pd.FIG5.values():
            assert series.instances == pd.TABLE3_INSTANCES

    def test_peaks_match_text_values(self):
        assert pd.FIG4A["c1060"].peak_value == 2.65
        assert pd.FIG4A["m2050"].peak_value == 3.00
        assert pd.FIG4B["c1060"].peak_value == 22.0
        assert pd.FIG4B["m2050"].peak_value == 29.0
        assert pd.FIG5["c1060"].peak_value == 3.87
        assert pd.FIG5["m2050"].peak_value == 18.77

    def test_peak_value_embedded_in_series(self):
        for fig in (pd.FIG4A, pd.FIG4B, pd.FIG5):
            for series in fig.values():
                idx = series.instances.index(series.peak_instance)
                assert series.speedups[idx] == pytest.approx(series.peak_value)

    def test_all_series_flagged_approximate(self):
        for fig in (pd.FIG4A, pd.FIG4B, pd.FIG5):
            for series in fig.values():
                assert series.approximate

    def test_m2050_dominates_c1060_in_figures(self):
        """Both figure families show the Fermi card above the C1060."""
        for fig in (pd.FIG4B, pd.FIG5):
            for a, b in zip(fig["c1060"].speedups, fig["m2050"].speedups):
                assert b > a
