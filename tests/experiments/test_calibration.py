"""Tests for the calibration store and fitter plumbing."""

from __future__ import annotations


from repro.experiments.calibrate import (
    CPU_FIT_BOUNDS,
    GPU_FIT_BOUNDS,
    calibration_targets_cpu,
    calibration_targets_gpu,
)
from repro.experiments.calibration import (
    CPU_CALIBRATION,
    GPU_CALIBRATION,
    cpu_cost_params,
    gpu_cost_params,
)
from repro.simt.device import TESLA_C1060, TESLA_M2050, DeviceSpec
from repro.simt.timing import CostParams


class TestStore:
    def test_both_devices_calibrated(self):
        assert TESLA_C1060.name in GPU_CALIBRATION
        assert TESLA_M2050.name in GPU_CALIBRATION

    def test_lookup(self):
        assert gpu_cost_params(TESLA_C1060) is GPU_CALIBRATION[TESLA_C1060.name]
        assert cpu_cost_params() is CPU_CALIBRATION

    def test_unknown_device_gets_defaults(self):
        ghost = DeviceSpec(
            name="Ghost 9000",
            compute_capability=9.0,
            sm_count=1,
            sp_per_sm=1,
            clock_hz=1e9,
            max_threads_per_sm=1024,
            max_threads_per_block=1024,
            warp_size=32,
            registers_per_sm=1024,
            shared_mem_per_sm=1024,
            l1_cache_per_sm=0,
            global_mem_bytes=1 << 30,
            bandwidth_bytes_s=1e9,
            bus_width_bits=64,
        )
        assert gpu_cost_params(ghost) == CostParams()

    def test_curand_at_least_lcg(self):
        """The physical constraint the bounded fit enforces."""
        for params in GPU_CALIBRATION.values():
            assert params.cycles_rng_curand >= params.cycles_rng_lcg

    def test_committed_values_inside_fit_bounds(self):
        for params in GPU_CALIBRATION.values():
            for field, (lo, hi) in GPU_FIT_BOUNDS.items():
                if field == "rng_curand_ratio":
                    ratio = params.cycles_rng_curand / params.cycles_rng_lcg
                    assert lo * 0.999 <= ratio <= hi * 1.001
                    continue
                value = getattr(params, field)
                assert lo * 0.999 <= value <= hi * 1.001, (field, value)
        for field, (lo, hi) in CPU_FIT_BOUNDS.items():
            value = getattr(CPU_CALIBRATION, field)
            assert lo * 0.999 <= value <= hi * 1.001, (field, value)

    def test_c1060_has_no_cache_hit(self):
        assert GPU_CALIBRATION[TESLA_C1060.name].cache_hit_fraction == 0.0

    def test_m2050_uses_cache(self):
        assert GPU_CALIBRATION[TESLA_M2050.name].cache_hit_fraction > 0.0


class TestTargets:
    def test_cpu_targets_cover_three_figures(self):
        targets = calibration_targets_cpu()
        kinds = {k for k, _, _, _ in targets}
        assert kinds == {"construct_nnlist", "construct_full", "update"}
        assert len(targets) == 7 + 7 + 6

    def test_cpu_targets_positive(self):
        for _, _, target, weight in calibration_targets_cpu():
            assert target > 0 and weight > 0

    def test_c1060_targets_count(self):
        targets = calibration_targets_gpu("c1060")
        assert len(targets) == 8 * 7 + 5 * 6  # Table II + Table III

    def test_m2050_targets_count(self):
        targets = calibration_targets_gpu("m2050")
        assert len(targets) == 5 * 6 + 2 * 7  # Table IV + two figure curves

    def test_target_fns_evaluate(self):
        fn, target, weight = calibration_targets_gpu("m2050")[0]
        value = fn(gpu_cost_params(TESLA_M2050))
        assert value > 0 and target > 0
