"""Tests for the experiment harness model helpers."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.harness import (
    ExperimentResult,
    construction_model_time,
    device_by_key,
    pheromone_model_time,
    run_experiment,
    sequential_model_time,
)
from repro.simt.device import TESLA_C1060, TESLA_M2050


class TestModelHelpers:
    def test_construction_time_positive_and_growing(self):
        t_small = construction_model_time(8, "att48", TESLA_C1060)
        t_big = construction_model_time(8, "pcb442", TESLA_C1060)
        assert 0 < t_small < t_big

    def test_include_choice_flag(self):
        with_choice = construction_model_time(3, "a280", TESLA_C1060)
        without = construction_model_time(3, "a280", TESLA_C1060, include_choice=False)
        assert with_choice > without

    def test_v1_never_includes_choice(self):
        a = construction_model_time(1, "a280", TESLA_C1060, include_choice=True)
        b = construction_model_time(1, "a280", TESLA_C1060, include_choice=False)
        assert a == b

    def test_pheromone_time_positive(self):
        assert pheromone_model_time(1, "att48", TESLA_M2050) > 0

    def test_sequential_kinds(self):
        nn = sequential_model_time("construct_nnlist", "a280")
        full = sequential_model_time("construct_full", "a280")
        upd = sequential_model_time("update", "a280")
        assert 0 < upd < nn < full

    def test_sequential_invalid_kind(self):
        with pytest.raises(ExperimentError):
            sequential_model_time("construct_greedy", "a280")

    def test_device_lookup(self):
        assert device_by_key("c1060") is TESLA_C1060
        with pytest.raises(ExperimentError):
            device_by_key("h100")

    def test_explicit_fallback_steps_respected(self):
        a = construction_model_time(4, "a280", TESLA_C1060, fallback_steps=0.0)
        b = construction_model_time(4, "a280", TESLA_C1060, fallback_steps=50_000.0)
        assert b > a

    def test_custom_params_override(self):
        from repro.simt.timing import CostParams

        slow = CostParams(launch_overhead_s=1.0)
        t = construction_model_time(8, "att48", TESLA_C1060, params=slow)
        assert t > 1.0


class TestRunService:
    def test_load_generator_packs_and_matches_solo(self):
        import numpy as np

        from repro.core import AntSystem
        from repro.experiments.harness import run_service
        from repro.serve import SolveRequest
        from repro.tsp import uniform_instance

        from repro.core import ACOParams

        instances = [uniform_instance(14, seed=900 + i) for i in range(4)]
        requests = [
            SolveRequest(
                instance=inst,
                params=ACOParams(seed=5 + i, nn=7),
                iterations=4,
                report_every=2,
            )
            for i, inst in enumerate(instances)
        ]
        load = run_service(requests, max_batch=2, max_wait=5.0, workers=2)
        assert load.stats.batches == 2
        assert load.stats.completed == 4
        assert load.wall_seconds > 0.0
        assert load.best_lengths.shape == (4,)
        for request, result, updates in zip(
            requests, load.results, load.updates
        ):
            assert len(updates) == 2
            solo = AntSystem(request.instance, request.params).run(4)
            assert result.best_length == solo.best_length
            np.testing.assert_array_equal(result.best_tour, solo.best_tour)

    def test_empty_burst_rejected(self):
        from repro.errors import ExperimentError
        from repro.experiments.harness import run_service

        with pytest.raises(ExperimentError):
            run_service([])


class TestRunExperiment:
    def test_unknown_id(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            run_experiment("table9")

    def test_registry_contains_all_artefacts(self):
        from repro.experiments.harness import EXPERIMENTS
        from repro.experiments import figures, tables  # noqa: F401

        assert set(EXPERIMENTS) >= {"table2", "table3", "table4", "fig4a", "fig4b", "fig5"}

    def test_result_render_smoke(self):
        res = run_experiment("table3")
        assert isinstance(res, ExperimentResult)
        text = res.render()
        assert "Atomic Ins." in text
        md = res.table().render()
        assert "model" in md
