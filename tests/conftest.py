"""Shared fixtures for the test-suite.

Keep fixture instances small: functional GPU simulation is vectorised but
tests run hundreds of cases.  The ``tiny``/``small``/``medium`` instances
are deterministic, so tests that assert exact values stay stable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ACOParams
from repro.simt.device import TESLA_C1060, TESLA_M2050
from repro.tsp import clustered_instance, grid_instance, uniform_instance


@pytest.fixture(scope="session")
def tiny_instance():
    """12 cities — small enough for literal executors and exhaustive checks."""
    return uniform_instance(12, seed=1201)


@pytest.fixture(scope="session")
def small_instance():
    """40 cities — the workhorse for functional kernel tests."""
    return uniform_instance(40, seed=4001)


@pytest.fixture(scope="session")
def medium_instance():
    """120 cities — large enough for tiled paths (tile = 64 -> 2 tiles)."""
    return grid_instance(120, seed=12001)


@pytest.fixture(scope="session")
def clustered_small():
    return clustered_instance(60, seed=6001, clusters=5)


@pytest.fixture(params=[TESLA_C1060, TESLA_M2050], ids=["c1060", "m2050"])
def device(request):
    """Parametrise a test over both paper devices."""
    return request.param


@pytest.fixture
def params():
    """Paper-default AS parameters with a fixed seed."""
    return ACOParams(seed=7)


@pytest.fixture
def np_rng():
    return np.random.default_rng(999)
