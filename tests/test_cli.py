"""Tests for the gpu-aco CLI and the experiments __main__."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.experiments.__main__ import main as exp_main


class TestDevicesCommand:
    def test_devices_lists_both(self, capsys):
        assert cli_main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "Tesla C1060" in out
        assert "Tesla M2050" in out
        assert "no (emulated)" in out


class TestSolveCommand:
    def test_solve_paper_instance(self, capsys):
        rc = cli_main(
            ["solve", "att48", "--iterations", "2", "--construction", "8",
             "--pheromone", "1", "--seed", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "best tour length" in out
        assert "Tesla M2050" in out

    def test_solve_device_selection(self, capsys):
        rc = cli_main(["solve", "att48", "--iterations", "1", "--device", "c1060"])
        assert rc == 0
        assert "Tesla C1060" in capsys.readouterr().out

    def test_solve_tsplib_file(self, tmp_path, capsys):
        from repro.tsp import uniform_instance, write_tsplib

        path = tmp_path / "demo.tsp"
        write_tsplib(uniform_instance(20, seed=1, name="demo"), path)
        rc = cli_main(["solve", str(path), "--iterations", "1", "--ants", "10"])
        assert rc == 0
        assert "demo" in capsys.readouterr().out

    def test_invalid_construction_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["solve", "att48", "--construction", "9"])

    def test_solve_replicas_batched(self, capsys):
        rc = cli_main(
            ["solve", "att48", "--iterations", "2", "--replicas", "3", "--seed", "5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 batched replicas" in out
        assert "best overall" in out
        # per-replica rows with consecutive seeds
        assert " 5 " in out and " 6 " in out and " 7 " in out


class TestBackendsCommand:
    def test_backends_lists_registry(self, capsys):
        assert cli_main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "numpy" in out
        assert "cupy" in out
        assert "registered array backends" in out

    def test_backends_reports_unavailability_reason(self, capsys):
        from repro.backend import CupyBackend

        available, reason = CupyBackend.probe()
        if available:
            pytest.skip("cupy importable here")
        assert cli_main(["backends"]) == 0
        out = capsys.readouterr().out
        # The cupy row must carry the probe failure, not a bare "no".
        assert reason.split(":")[0] in out

    def test_solve_with_backend_flag(self, capsys):
        rc = cli_main(
            ["solve", "att48", "--iterations", "1", "--backend", "numpy"]
        )
        assert rc == 0
        assert "[backend numpy]" in capsys.readouterr().out

    def test_solve_replicas_with_backend_flag(self, capsys):
        rc = cli_main(
            ["solve", "att48", "--iterations", "1", "--replicas", "2",
             "--backend", "numpy"]
        )
        assert rc == 0
        assert "[backend numpy]" in capsys.readouterr().out

    def test_solve_unavailable_backend_exits_cleanly(self, capsys):
        from repro.backend import CupyBackend

        if CupyBackend.probe()[0]:
            pytest.skip("cupy importable here")
        with pytest.raises(SystemExit, match="unavailable"):
            cli_main(["solve", "att48", "--iterations", "1", "--backend", "cupy"])

    def test_solve_unknown_backend_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            cli_main(["solve", "att48", "--backend", "tpu"])

    def test_sweep_with_backend_flag(self, capsys):
        rc = cli_main(
            ["sweep", "att48", "--iterations", "1", "--param", "rho=0.3",
             "--backend", "numpy"]
        )
        assert rc == 0
        assert "1 grid points" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_grid(self, capsys):
        rc = cli_main(
            ["sweep", "att48", "--iterations", "2", "--param", "rho=0.3,0.7",
             "--replicas", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 grid points x 2 replicas = 4 batched colonies" in out
        assert "parameter sweep" in out

    def test_sweep_bad_param_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["sweep", "att48", "--param", "rho"])

    def test_sweep_repeated_axis_extends(self, capsys):
        rc = cli_main(
            ["sweep", "att48", "--iterations", "1", "--param", "rho=0.2",
             "--param", "rho=0.8"]
        )
        assert rc == 0
        assert "2 grid points" in capsys.readouterr().out

    def test_sweep_unsweepable_field(self, capsys):
        rc = cli_main(["sweep", "att48", "--iterations", "1", "--param", "nn=5,10"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "cannot sweep" in err and "nn" in err


class TestReportEvery:
    def test_solve_report_every(self, capsys):
        rc = cli_main(
            ["solve", "att48", "--iterations", "4", "--report-every", "3"]
        )
        assert rc == 0
        assert "best tour length" in capsys.readouterr().out

    def test_solve_report_every_matches_default(self, capsys):
        cli_main(["solve", "att48", "--iterations", "3", "--seed", "9"])
        base = capsys.readouterr().out
        cli_main(
            ["solve", "att48", "--iterations", "3", "--seed", "9",
             "--report-every", "3"]
        )
        amortized = capsys.readouterr().out
        line = next(
            ln for ln in base.splitlines() if ln.startswith("best tour length")
        )
        assert line in amortized

    def test_replicas_report_every(self, capsys):
        rc = cli_main(
            ["solve", "att48", "--iterations", "4", "--replicas", "2",
             "--report-every", "2"]
        )
        assert rc == 0
        assert "best overall" in capsys.readouterr().out

    def test_sweep_report_every(self, capsys):
        rc = cli_main(
            ["sweep", "att48", "--iterations", "3", "--param", "rho=0.3,0.7",
             "--report-every", "3"]
        )
        assert rc == 0
        assert "2 grid points" in capsys.readouterr().out

    def test_invalid_report_every_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["solve", "att48", "--report-every", "0"])
        with pytest.raises(SystemExit):
            cli_main(
                ["sweep", "att48", "--param", "rho=0.5", "--report-every", "-2"]
            )


class TestBenchCommand:
    def test_bench_list(self, capsys):
        assert cli_main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "bench_loop_amortization.py" in out
        assert "BENCH_loop.json" in out

    def test_bench_no_name_lists(self, capsys):
        assert cli_main(["bench"]) == 0
        assert "bench_" in capsys.readouterr().out

    def test_bench_unknown_name(self):
        with pytest.raises(SystemExit, match="no benchmark matches"):
            cli_main(["bench", "does-not-exist"])

    def test_bench_ambiguous_name(self):
        with pytest.raises(SystemExit, match="ambiguous"):
            cli_main(["bench", "bench"])

    def test_bench_runs_and_validates(self, tmp_path, capsys):
        out = tmp_path / "BENCH_loop.json"
        rc = cli_main(["bench", "loop", "--", "--quick", "--out", str(out)])
        assert rc == 0
        assert out.is_file()
        captured = capsys.readouterr().out
        assert "validated" in captured
        payload = json.loads(out.read_text())
        assert payload["results"]
        assert any(not row["amortized"] for row in payload["results"])


def _bench_conftest():
    """Load benchmarks/conftest.py the way the CLI and CI job do."""
    import importlib.util
    import pathlib

    conftest = (
        pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "conftest.py"
    )
    spec = importlib.util.spec_from_file_location("_bench_conftest", conftest)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchArtifactValidation:
    def test_checked_in_artifacts_validate(self):
        # The CI lint-invariants job's exact contract: every BENCH_*.json
        # at the repo root passes its registered schema.
        import pathlib

        module = _bench_conftest()
        root = pathlib.Path(__file__).resolve().parents[1]
        artefacts = sorted(root.glob("BENCH_*.json"))
        assert artefacts, "no checked-in BENCH_*.json artefacts found"
        for path in artefacts:
            assert module.validate_bench_artifact(path) == path.name

    def test_every_registered_script_has_a_validator(self):
        module = _bench_conftest()
        for artefact, validator in module.BENCH_ARTIFACTS.values():
            assert module.ARTIFACT_VALIDATORS[artefact] is validator

    def test_unknown_artifact_name_rejected(self, tmp_path):
        module = _bench_conftest()
        bogus = tmp_path / "BENCH_bogus.json"
        bogus.write_text("{}")
        with pytest.raises(ValueError, match="no schema registered"):
            module.validate_bench_artifact(bogus)

    def test_schema_violation_raises(self, tmp_path):
        module = _bench_conftest()
        bad = tmp_path / "BENCH_batch.json"
        bad.write_text(json.dumps({"instance": "att48", "results": []}))
        with pytest.raises(AssertionError, match="BENCH_batch missing key"):
            module.validate_bench_artifact(bad)

    def test_payload_shortcut_skips_the_disk_read(self):
        module = _bench_conftest()
        with pytest.raises(AssertionError, match="no result rows"):
            module.validate_bench_artifact(
                "BENCH_batch.json",
                payload={"instance": "x", "pheromone": 1, "results": []},
            )


class TestSolveVariants:
    def test_solve_acs(self, capsys):
        rc = cli_main(
            ["solve", "att48", "--iterations", "2", "--variant", "acs"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "variant acs" in out
        assert "best tour length" in out

    def test_solve_mmas(self, capsys):
        rc = cli_main(
            ["solve", "att48", "--iterations", "2", "--variant", "mmas"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "variant mmas" in out
        assert "trail reinitialisations" in out

    def test_mmas_accepts_construction_choice(self, capsys):
        rc = cli_main(
            ["solve", "att48", "--iterations", "1", "--variant", "mmas",
             "--construction", "4"]
        )
        assert rc == 0

    def test_acs_rejects_construction(self):
        with pytest.raises(SystemExit, match="construction"):
            cli_main(
                ["solve", "att48", "--variant", "acs", "--construction", "5"]
            )

    def test_variants_reject_pheromone(self):
        for variant in ("acs", "mmas"):
            with pytest.raises(SystemExit, match="pheromone"):
                cli_main(
                    ["solve", "att48", "--variant", variant, "--pheromone", "2"]
                )

    def test_variants_compose_with_replicas(self, capsys):
        rc = cli_main(
            ["solve", "att48", "--iterations", "2", "--variant", "acs",
             "--replicas", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 batched replicas" in out and "variant acs" in out

    def test_variants_compose_with_report_every(self, capsys):
        rc = cli_main(
            ["solve", "att48", "--iterations", "4", "--variant", "mmas",
             "--report-every", "2"]
        )
        assert rc == 0
        assert "best tour length" in capsys.readouterr().out

    def test_variants_compose_with_replicas_and_report_every(self, capsys):
        rc = cli_main(
            ["solve", "att48", "--iterations", "4", "--variant", "mmas",
             "--replicas", "4", "--report-every", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "4 batched replicas" in out and "variant mmas" in out

    def test_variants_compose_with_backend(self, capsys):
        rc = cli_main(
            ["solve", "att48", "--iterations", "2", "--variant", "acs",
             "--backend", "numpy"]
        )
        assert rc == 0
        assert "backend numpy" in capsys.readouterr().out

    def test_variant_unavailable_backend_fails_loudly(self):
        # An explicitly requested unavailable backend is still a clean
        # usage error (strict resolution), not a silent fallback.
        import importlib.util

        if importlib.util.find_spec("cupy") is not None:
            pytest.skip("cupy installed; unavailable-backend path untestable")
        with pytest.raises(SystemExit, match="cupy"):
            cli_main(
                ["solve", "att48", "--variant", "acs", "--backend", "cupy"]
            )

    def test_sweep_variant_flag(self, capsys):
        rc = cli_main(
            ["sweep", "att48", "--iterations", "2", "--variant", "mmas",
             "--param", "rho=0.3,0.7", "--replicas", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "variant mmas" in out
        assert "4 batched colonies" in out

    def test_sweep_variant_rejects_owned_kernels(self):
        with pytest.raises(SystemExit, match="pheromone"):
            cli_main(
                ["sweep", "att48", "--variant", "acs", "--param", "rho=0.3",
                 "--pheromone", "2"]
            )
        with pytest.raises(SystemExit, match="construction"):
            cli_main(
                ["sweep", "att48", "--variant", "acs", "--param", "rho=0.3",
                 "--construction", "4"]
            )

    def test_serve_config_errors_exit_cleanly(self):
        # Service config errors must be usage messages, not tracebacks
        # out of asyncio.run.
        with pytest.raises(SystemExit, match="workers"):
            cli_main(["serve", "--workers", "0"])
        with pytest.raises(SystemExit, match="max_pending"):
            cli_main(["serve", "--max-pending", "2", "--max-batch", "8"])
        with pytest.raises(SystemExit, match="max_batch"):
            cli_main(["serve", "--max-batch", "0"])

    def test_variant_as_unchanged_defaults(self, capsys):
        # --variant as with no kernel flags keeps the paper defaults.
        rc = cli_main(["solve", "att48", "--iterations", "1", "--variant", "as"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "construction v8" in out and "pheromone v1" in out


class TestObservabilityFlags:
    def test_solve_profile_prints_phase_table(self, capsys):
        rc = cli_main(
            ["solve", "att48", "--iterations", "2", "--seed", "3", "--profile"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-phase wall-clock (profile)" in out
        assert "construct" in out and "host-sync" in out
        assert "total (phases)" in out

    def test_solve_profile_matches_unprofiled_result(self, capsys):
        # --profile routes through the engine at B=1; the result must not move.
        assert cli_main(["solve", "att48", "--iterations", "2", "--seed", "3"]) == 0
        plain = capsys.readouterr().out
        assert cli_main(
            ["solve", "att48", "--iterations", "2", "--seed", "3", "--profile"]
        ) == 0
        profiled = capsys.readouterr().out
        import re

        def get_best(out):
            return re.search(r"best (?:tour length|overall): (\d+)", out).group(1)

        assert get_best(plain) == get_best(profiled)

    def test_solve_trace_writes_chrome_json(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        rc = cli_main(
            ["solve", "att48", "--iterations", "2", "--replicas", "2",
             "--report-every", "2", "--trace", str(trace)]
        )
        assert rc == 0
        assert f"chrome trace written to {trace}" in capsys.readouterr().out
        payload = json.loads(trace.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        assert any(e["cat"] == "construct" for e in events)

    def test_profile_phase_sum_close_to_wall(self, capsys):
        rc = cli_main(
            ["solve", "att48", "--iterations", "4", "--replicas", "2",
             "--report-every", "2", "--profile"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        total_row = next(
            line for line in out.splitlines() if "total (phases)" in line
        )
        # Last column is the phases' share of the (unrounded) wall-clock.
        wall_pct = float(total_row.split()[-1].rstrip("%"))
        # The acceptance bound: phases within 10% of the measured wall.
        assert 90.0 <= wall_pct <= 100.5

    def test_stats_unreachable_server_fails_cleanly(self, capsys):
        rc = cli_main(["stats", "--port", "1"])  # nothing listens there
        assert rc == 1
        assert "cannot scrape stats" in capsys.readouterr().err

    def test_bench_json_list(self, capsys):
        assert cli_main(["bench", "--json", "--list"]) == 0
        payload = json.loads(capsys.readouterr().out)
        scripts = {row["script"] for row in payload}
        assert "bench_loop_amortization.py" in scripts

    def test_bench_json_run_validates(self, tmp_path, capsys):
        out = tmp_path / "BENCH_loop.json"
        rc = cli_main(
            ["bench", "--json", "loop", "--", "--quick", "--out", str(out)]
        )
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["script"] == "bench_loop_amortization.py"
        assert report["validated"] is True
        assert report["returncode"] == 0
        assert report["artefact"]["results"]


class TestCheckpointCLI:
    def _best(self, out: str) -> int:
        for line in out.splitlines():
            if line.startswith("best overall:"):
                return int(line.split()[2])
        raise AssertionError(f"no 'best overall' line in:\n{out}")

    def test_checkpoint_then_resume_matches_clean_run(self, tmp_path, capsys):
        ck = tmp_path / "ck.npz"
        base = ["solve", "att48", "--report-every", "3", "--seed", "5"]
        assert cli_main(base + ["--iterations", "6", "--checkpoint", str(ck)]) == 0
        assert ck.exists()
        capsys.readouterr()
        assert cli_main(
            base + ["--iterations", "12", "--resume", str(ck)]
        ) == 0
        resumed_out = capsys.readouterr().out
        assert "resumed from" in resumed_out
        assert cli_main(base + ["--iterations", "12", "--profile"]) == 0
        clean_out = capsys.readouterr().out
        assert self._best(resumed_out) == self._best(clean_out)

    def test_resume_at_or_past_target_is_a_noop(self, tmp_path, capsys):
        ck = tmp_path / "done.npz"
        base = ["solve", "att48", "--report-every", "2", "--seed", "3"]
        assert cli_main(base + ["--iterations", "4", "--checkpoint", str(ck)]) == 0
        capsys.readouterr()
        assert cli_main(base + ["--iterations", "4", "--resume", str(ck)]) == 0
        assert "nothing to run" in capsys.readouterr().out

    def test_checkpoint_every_validation(self, tmp_path):
        ck = tmp_path / "ck.npz"
        with pytest.raises(SystemExit):
            cli_main(["solve", "att48", "--checkpoint-every", "3"])
        with pytest.raises(SystemExit):
            cli_main(
                ["solve", "att48", "--report-every", "2", "--checkpoint",
                 str(ck), "--checkpoint-every", "3"]
            )

    def test_resume_from_garbage_fails_cleanly(self, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"not a checkpoint")
        with pytest.raises(SystemExit) as err:
            cli_main(["solve", "att48", "--iterations", "4", "--resume", str(bad)])
        assert "cannot resume" in str(err.value)

    def test_resume_config_mismatch_fails_cleanly(self, tmp_path):
        ck = tmp_path / "ck.npz"
        assert cli_main(
            ["solve", "att48", "--iterations", "4", "--report-every", "2",
             "--seed", "5", "--checkpoint", str(ck)]
        ) == 0
        with pytest.raises(SystemExit) as err:
            cli_main(
                ["solve", "att48", "--iterations", "8", "--seed", "6",
                 "--resume", str(ck)]
            )
        assert "cannot resume" in str(err.value)

    def test_health_unreachable_server_fails_cleanly(self, capsys):
        rc = cli_main(["stats", "--port", "1", "--health"])
        assert rc == 1
        assert "cannot scrape health" in capsys.readouterr().err


class TestExperimentsCommand:
    def test_single_artefact(self, capsys):
        assert exp_main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Scatter to Gather" in out
        assert "model" in out and "paper" in out

    def test_report_writes_file(self, tmp_path, capsys):
        path = tmp_path / "EXP.md"
        assert exp_main(["report", str(path)]) == 0
        content = path.read_text()
        assert "## table2" in content
        assert "## fig5" in content
        assert "Known gaps" in content

    def test_unknown_command(self, capsys):
        assert exp_main(["frobnicate"]) == 2

    def test_no_args_prints_usage(self, capsys):
        assert exp_main([]) == 2

    def test_cli_forwards_experiments(self, capsys):
        assert cli_main(["experiments", "fig5"]) == 0
        assert "pheromone update speed-up" in capsys.readouterr().out
