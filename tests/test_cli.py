"""Tests for the gpu-aco CLI and the experiments __main__."""

from __future__ import annotations

import pytest

from repro.cli import main as cli_main
from repro.experiments.__main__ import main as exp_main


class TestDevicesCommand:
    def test_devices_lists_both(self, capsys):
        assert cli_main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "Tesla C1060" in out
        assert "Tesla M2050" in out
        assert "no (emulated)" in out


class TestSolveCommand:
    def test_solve_paper_instance(self, capsys):
        rc = cli_main(
            ["solve", "att48", "--iterations", "2", "--construction", "8",
             "--pheromone", "1", "--seed", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "best tour length" in out
        assert "Tesla M2050" in out

    def test_solve_device_selection(self, capsys):
        rc = cli_main(["solve", "att48", "--iterations", "1", "--device", "c1060"])
        assert rc == 0
        assert "Tesla C1060" in capsys.readouterr().out

    def test_solve_tsplib_file(self, tmp_path, capsys):
        from repro.tsp import uniform_instance, write_tsplib

        path = tmp_path / "demo.tsp"
        write_tsplib(uniform_instance(20, seed=1, name="demo"), path)
        rc = cli_main(["solve", str(path), "--iterations", "1", "--ants", "10"])
        assert rc == 0
        assert "demo" in capsys.readouterr().out

    def test_invalid_construction_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["solve", "att48", "--construction", "9"])


class TestExperimentsCommand:
    def test_single_artefact(self, capsys):
        assert exp_main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Scatter to Gather" in out
        assert "model" in out and "paper" in out

    def test_report_writes_file(self, tmp_path, capsys):
        path = tmp_path / "EXP.md"
        assert exp_main(["report", str(path)]) == 0
        content = path.read_text()
        assert "## table2" in content
        assert "## fig5" in content
        assert "Known gaps" in content

    def test_unknown_command(self, capsys):
        assert exp_main(["frobnicate"]) == 2

    def test_no_args_prints_usage(self, capsys):
        assert exp_main([]) == 2

    def test_cli_forwards_experiments(self, capsys):
        assert cli_main(["experiments", "fig5"]) == 0
        assert "pheromone update speed-up" in capsys.readouterr().out
