"""Registry resolution, fallback behaviour, and the NumpyBackend protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import (
    BACKENDS,
    ArrayBackend,
    BackendInfo,
    CupyBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.backend.registry import ENV_VAR
from repro.errors import BackendError, BackendUnavailableError

CUPY_AVAILABLE = CupyBackend.probe()[0]


class TestRegistry:
    def test_numpy_and_cupy_registered(self):
        assert BACKENDS["numpy"] is NumpyBackend
        assert BACKENDS["cupy"] is CupyBackend

    def test_get_backend_numpy_singleton(self):
        a = get_backend("numpy")
        b = get_backend("numpy")
        assert isinstance(a, NumpyBackend)
        assert a is b

    def test_get_backend_unknown_name(self):
        with pytest.raises(BackendError, match="unknown backend 'tpu'"):
            get_backend("tpu")

    @pytest.mark.skipif(CUPY_AVAILABLE, reason="cupy importable here")
    def test_get_backend_unavailable_carries_reason(self):
        with pytest.raises(BackendUnavailableError, match="cupy") as exc_info:
            get_backend("cupy")
        assert exc_info.value.reason  # the import failure string

    def test_register_rejects_nameless(self):
        class Nameless(NumpyBackend):
            name = ""

        with pytest.raises(BackendError, match="no registry name"):
            register_backend(Nameless)

    def test_register_rejects_duplicate_name(self):
        class Impostor(NumpyBackend):
            name = "numpy"

        with pytest.raises(BackendError, match="already registered"):
            register_backend(Impostor)

    def test_available_backends_listing(self):
        infos = {info.name: info for info in available_backends()}
        assert infos["numpy"] == BackendInfo(
            name="numpy", available=True, accelerated=False, reason=None
        )
        cupy = infos["cupy"]
        assert cupy.accelerated
        if not cupy.available:
            assert cupy.reason  # unavailable entries must say why


class TestResolveBackend:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend(None).name == "numpy"

    def test_instance_passthrough(self):
        backend = get_backend("numpy")
        assert resolve_backend(backend) is backend

    def test_name_resolution(self):
        assert resolve_backend("numpy").name == "numpy"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert resolve_backend(None).name == "numpy"

    def test_env_var_empty_means_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "")
        assert resolve_backend(None).name == "numpy"

    def test_env_var_unknown_name_is_loud(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "tpu")
        with pytest.raises(BackendError, match="unknown backend"):
            resolve_backend(None)

    @pytest.mark.skipif(CUPY_AVAILABLE, reason="cupy importable here")
    def test_env_var_unavailable_falls_back_with_warning(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "cupy")
        with pytest.warns(RuntimeWarning, match="falling back to 'numpy'"):
            backend = resolve_backend(None)
        assert backend.name == "numpy"

    @pytest.mark.skipif(CUPY_AVAILABLE, reason="cupy importable here")
    def test_explicit_unavailable_is_strict(self):
        with pytest.raises(BackendUnavailableError):
            resolve_backend("cupy")


class TestNumpyBackendProtocol:
    """The named protocol ops must match bare numpy on the host backend."""

    @pytest.fixture()
    def bk(self) -> ArrayBackend:
        return get_backend("numpy")

    def test_identity_transfers(self, bk):
        a = np.arange(6.0)
        assert bk.from_host(a) is a  # no copy on host
        assert bk.to_host(a) is a
        bk.synchronize()  # no-op, must not raise

    def test_xp_is_numpy(self, bk):
        assert bk.xp is np

    def test_creation_ops(self, bk):
        assert bk.zeros((2, 3)).shape == (2, 3)
        assert bk.empty(4, dtype=np.int32).dtype == np.int32
        np.testing.assert_array_equal(bk.full(3, 7.0), np.full(3, 7.0))
        np.testing.assert_array_equal(bk.arange(5), np.arange(5))
        np.testing.assert_array_equal(bk.asarray([1, 2]), np.asarray([1, 2]))

    def test_math_ops_match_numpy(self, bk):
        rng = np.random.default_rng(7)
        x = rng.random((4, 5)) + 0.1
        np.testing.assert_array_equal(bk.power(x, 2.5), np.power(x, 2.5))
        np.testing.assert_array_equal(bk.cumsum(x, axis=1), np.cumsum(x, axis=1))
        np.testing.assert_array_equal(bk.argmax(x, axis=1), np.argmax(x, axis=1))
        np.testing.assert_array_equal(bk.argmin(x, axis=0), np.argmin(x, axis=0))
        idx = np.array([3, 0, 2])
        np.testing.assert_array_equal(
            bk.take(x, idx, axis=0), np.take(x, idx, axis=0)
        )
        order = np.argsort(x, axis=1)
        np.testing.assert_array_equal(
            bk.take_along_axis(x, order, 1), np.take_along_axis(x, order, 1)
        )

    def test_bincount_with_weights(self, bk):
        idx = np.array([0, 2, 2, 5])
        w = np.array([1.0, 0.5, 0.25, 2.0])
        np.testing.assert_array_equal(
            bk.bincount(idx, weights=w, minlength=8),
            np.bincount(idx, weights=w, minlength=8),
        )

    def test_scatter_add_accumulates_duplicates(self, bk):
        target = np.zeros(4)
        bk.scatter_add(target, np.array([1, 1, 3]), np.array([0.5, 0.25, 2.0]))
        np.testing.assert_array_equal(target, [0.0, 0.75, 0.0, 2.0])


class TestPowerIdentity:
    """pow(x, 1.0) == x bitwise — the contract the choice fast path rests on."""

    def test_power_one_is_bitwise_identity(self):
        rng = np.random.default_rng(11)
        x = rng.random(4096) * np.float64(10.0) ** rng.integers(-300, 300, 4096)
        powed = np.power(x, 1.0)
        np.testing.assert_array_equal(
            powed.view(np.uint64), x.view(np.uint64)
        )

    def test_power_one_batched_exponent_vector(self):
        rng = np.random.default_rng(13)
        x = rng.random((3, 5, 5))
        exps = np.ones(3)[:, None, None]
        np.testing.assert_array_equal(
            np.power(x, exps).view(np.uint64), x.view(np.uint64)
        )
