"""Tests for the pluggable array-backend subsystem."""
