"""WorkBuffers arena semantics: stable reuse, shape-checked reallocation."""

from __future__ import annotations

import numpy as np

from repro.backend import WorkBuffers, get_backend


def test_get_returns_same_buffer_for_same_key():
    wb = WorkBuffers(get_backend("numpy"))
    a = wb.get("k", (4, 3), np.float64)
    b = wb.get("k", (4, 3), np.float64)
    assert a is b
    assert a.shape == (4, 3) and a.dtype == np.float64


def test_get_reallocates_on_shape_or_dtype_change():
    wb = WorkBuffers(get_backend("numpy"))
    a = wb.get("k", (4,), np.float64)
    b = wb.get("k", (5,), np.float64)
    assert a is not b and b.shape == (5,)
    c = wb.get("k", (5,), np.int64)
    assert c is not b and c.dtype == np.int64


def test_distinct_keys_never_alias():
    wb = WorkBuffers(get_backend("numpy"))
    a = wb.get("x", (8,), np.float64)
    b = wb.get("y", (8,), np.float64)
    assert a is not b


def test_cached_builds_once():
    wb = WorkBuffers(get_backend("numpy"))
    calls = []

    def build():
        calls.append(1)
        return np.arange(3)

    a = wb.cached("c", build)
    b = wb.cached("c", build)
    assert a is b and len(calls) == 1


def test_nbytes_and_len_track_contents():
    wb = WorkBuffers(get_backend("numpy"))
    assert len(wb) == 0 and wb.nbytes == 0
    wb.get("k", (10,), np.float64)
    wb.cached("c", lambda: np.zeros(5))
    assert len(wb) == 2
    assert wb.nbytes == 10 * 8 + 5 * 8


def test_default_backend_resolution():
    wb = WorkBuffers()
    assert wb.backend.name == "numpy" or wb.backend is not None
