"""Backend threading through the engines, and the choice-kernel fast path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import get_backend
from repro.backend.registry import ENV_VAR
from repro.core import ACOParams, AntSystem, BatchEngine, ChoiceKernel
from repro.core.choice import compute_choice, compute_choice_batch
from repro.core.state import ColonyState
from repro.errors import BackendError
from repro.simt.device import TESLA_M2050
from repro.tsp import uniform_instance


@pytest.fixture(scope="module")
def instance():
    return uniform_instance(24, seed=77)


class TestEngineBackendParameter:
    def test_antsystem_explicit_numpy_identical_to_default(self, instance):
        base = AntSystem(instance, ACOParams(seed=5), construction=8, pheromone=1)
        named = AntSystem(
            instance, ACOParams(seed=5), construction=8, pheromone=1,
            backend="numpy",
        )
        r_base = base.run(iterations=3)
        r_named = named.run(iterations=3)
        assert r_base.best_length == r_named.best_length
        np.testing.assert_array_equal(r_base.best_tour, r_named.best_tour)
        np.testing.assert_array_equal(
            base.state.pheromone, named.state.pheromone
        )

    def test_batch_engine_backend_instance(self, instance):
        backend = get_backend("numpy")
        engine = BatchEngine.replicas(
            instance, ACOParams(seed=2), replicas=3, backend=backend
        )
        assert engine.backend is backend
        assert engine.state.backend is backend
        assert engine.rng.backend is backend
        batch = engine.run(iterations=2)
        assert batch.B == 3

    def test_unknown_backend_rejected(self, instance):
        with pytest.raises(BackendError, match="unknown backend"):
            BatchEngine(instance, ACOParams(seed=1), backend="tpu")

    def test_env_var_reaches_engine(self, instance, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        engine = BatchEngine(instance, ACOParams(seed=1))
        assert engine.backend.name == "numpy"

    def test_colony_state_create_accepts_backend(self, instance):
        st = ColonyState.create(
            instance, ACOParams(seed=1), TESLA_M2050, backend="numpy"
        )
        assert st.backend.name == "numpy"
        assert isinstance(st.pheromone, np.ndarray)


class TestChoiceFastPath:
    """alpha == 1 / beta == 1 skip the power pass without changing a bit."""

    def _states(self, instance, alpha, beta):
        engine = BatchEngine(
            instance, ACOParams(seed=3, alpha=alpha, beta=beta), construction=8
        )
        return engine.state

    @pytest.mark.parametrize(
        "alpha,beta", [(1.0, 2.0), (2.0, 1.0), (1.0, 1.0), (0.7, 3.2)]
    )
    def test_run_batch_matches_explicit_powers(self, instance, alpha, beta):
        bs = self._states(instance, alpha, beta)
        ChoiceKernel().run_batch(bs)
        expected = np.power(bs.pheromone, alpha) * np.power(bs.eta, beta)
        diag = np.arange(bs.n)
        expected[:, diag, diag] = 0.0
        np.testing.assert_array_equal(bs.choice_info, expected)

    def test_buffer_reused_across_iterations(self, instance):
        engine = BatchEngine(instance, ACOParams(seed=3), construction=8)
        engine.run_iteration()
        first = engine.state.choice_info
        engine.run_iteration()
        assert engine.state.choice_info is first  # same allocation, refreshed

    def test_buffer_not_shared_between_kernels(self, instance):
        a = BatchEngine(instance, ACOParams(seed=3), construction=8)
        b = BatchEngine(instance, ACOParams(seed=3), construction=8)
        a.run_iteration()
        b.run_iteration()
        assert a.state.choice_info is not b.state.choice_info

    def test_compute_choice_identity_exponents_alias_inputs(self):
        tau = np.random.default_rng(1).random((6, 6))
        eta = np.random.default_rng(2).random((6, 6))
        out = np.empty((6, 6))
        got = compute_choice(tau, eta, 1.0, 1.0, out=out)
        assert got is out
        np.testing.assert_array_equal(out, tau * eta)

    def test_compute_choice_batch_mixed_exponents(self):
        rng = np.random.default_rng(5)
        tau = rng.random((3, 4, 4))
        eta = rng.random((3, 4, 4))
        alpha = np.array([1.0, 2.0, 1.0])
        beta = np.array([2.0, 2.0, 2.0])
        got = compute_choice_batch(tau, eta, alpha, beta)
        expected = np.power(tau, alpha[:, None, None]) * np.power(
            eta, beta[:, None, None]
        )
        np.testing.assert_array_equal(got, expected)
