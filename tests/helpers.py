"""Test helpers: brute-force TSP ground truth for tiny instances.

Several tests validate heuristics against the *optimal* tour; for n <= 9 an
exhaustive permutation search is instant and unarguable.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.tsp.tour import close_tour, tour_length

__all__ = ["brute_force_optimum"]


def brute_force_optimum(dist: np.ndarray) -> tuple[np.ndarray, int]:
    """Optimal closed tour by exhaustive search (fixes city 0 first).

    Only feasible for small n (the call guards at n <= 10: 9! = 362 880
    permutations).

    Returns
    -------
    (tour, length):
        The optimal closed tour (``n + 1`` entries) and its length.
    """
    n = dist.shape[0]
    if n > 10:
        raise ValueError(f"brute force limited to n <= 10, got {n}")
    best_len: int | None = None
    best_perm: tuple[int, ...] | None = None
    for perm in itertools.permutations(range(1, n)):
        candidate = (0, *perm)
        length = int(
            sum(dist[candidate[i], candidate[(i + 1) % n]] for i in range(n))
        )
        if best_len is None or length < best_len:
            best_len = length
            best_perm = candidate
    assert best_perm is not None and best_len is not None
    tour = close_tour(np.array(best_perm, dtype=np.int32))
    assert tour_length(tour, dist) == best_len
    return tour, best_len
