"""Shared-memory instance cache: publish, resolve, dedup, cleanup.

Everything here runs in one process — ``SharedMemory`` attach-by-name
works within a process exactly as it does across the router/worker
boundary, so the digest verification, caching and error paths are
exercised without spawning workers (the cross-process path is covered by
the router e2e tests).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.checkpoint import instance_digest
from repro.errors import ServeError
from repro.shard import InstanceShmCache, resolve_shared_instance
from repro.shard.shm import _LOCAL_INSTANCES, shared_instance_stub
from repro.tsp import uniform_instance


@pytest.fixture(autouse=True)
def _clean_local_cache():
    _LOCAL_INSTANCES.clear()
    yield
    _LOCAL_INSTANCES.clear()


def test_wire_form_publishes_once_per_digest():
    cache = InstanceShmCache()
    try:
        inst = uniform_instance(12, seed=3)
        same = uniform_instance(12, seed=3)
        other = uniform_instance(14, seed=3)
        stub = cache.wire_form(inst)
        assert shared_instance_stub(stub)
        assert stub["digest"] == instance_digest(inst)
        assert stub["rows"] == 12
        # Equal content -> same block, no second publication.
        assert cache.wire_form(same)["shm"] == stub["shm"]
        assert len(cache) == 1
        assert cache.wire_form(other)["shm"] != stub["shm"]
        assert len(cache) == 2
    finally:
        cache.close()


def test_wire_form_matrix_instance_returns_none():
    from repro.tsp.instance import TSPInstance

    cache = InstanceShmCache()
    try:
        matrix = np.array([[0, 1], [1, 0]], dtype=np.int64)
        inst = TSPInstance(name="m", coords=None, explicit_matrix=matrix,
                           edge_weight_type="EXPLICIT")
        assert cache.wire_form(inst) is None
        assert len(cache) == 0
    finally:
        cache.close()


def test_resolve_roundtrip_and_worker_cache():
    cache = InstanceShmCache()
    try:
        inst = uniform_instance(10, seed=7)
        stub = cache.wire_form(inst)
        rebuilt = resolve_shared_instance(stub)
        np.testing.assert_array_equal(rebuilt.coords, inst.coords)
        assert rebuilt.name == inst.name
        assert rebuilt.edge_weight_type == inst.edge_weight_type
        assert instance_digest(rebuilt) == stub["digest"]
        # Second resolution is served from the per-process cache.
        assert resolve_shared_instance(stub) is rebuilt
    finally:
        cache.close()


def test_resolve_after_unlink_is_serve_error():
    cache = InstanceShmCache()
    inst = uniform_instance(10, seed=7)
    stub = cache.wire_form(inst)
    cache.close()
    with pytest.raises(ServeError, match="does not exist"):
        resolve_shared_instance(stub)


def test_resolve_digest_mismatch_is_serve_error():
    cache = InstanceShmCache()
    try:
        stub = cache.wire_form(uniform_instance(10, seed=7))
        forged = dict(stub, digest="0" * len(stub["digest"]))
        with pytest.raises(ServeError, match="digest check"):
            resolve_shared_instance(forged)
        # The failed resolution must not poison the worker cache.
        assert forged["digest"] not in _LOCAL_INSTANCES
        assert resolve_shared_instance(stub).name == stub["name"]
    finally:
        cache.close()


def test_resolve_malformed_stub_is_serve_error():
    with pytest.raises(ServeError, match="malformed"):
        resolve_shared_instance({"shm": "x"})  # no digest/rows
    with pytest.raises(ServeError, match="malformed"):
        resolve_shared_instance({"shm": "x", "digest": "d", "rows": "many"})


def test_resolve_short_block_is_serve_error():
    cache = InstanceShmCache()
    try:
        stub = cache.wire_form(uniform_instance(10, seed=7))
        lying = dict(stub, rows=10_000)
        with pytest.raises(ServeError, match="bytes"):
            resolve_shared_instance(lying)
    finally:
        cache.close()


def test_close_is_idempotent():
    cache = InstanceShmCache()
    cache.wire_form(uniform_instance(8, seed=1))
    cache.close()
    cache.close()
    assert len(cache) == 0
