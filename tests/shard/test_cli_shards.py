"""End-to-end ``gpu-aco serve --shards N``: real router process, real
worker fleet, real stats/health scrapes, real SIGINT drain."""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time

import numpy as np
import pytest

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGINT") or os.name == "nt",
    reason="POSIX signal semantics required",
)


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _env() -> dict:
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.abspath(src), env.get("PYTHONPATH")) if p
    )
    return env


def _spawn_router(port: int, shards: int) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--shards", str(shards), "--port", str(port),
            "--max-batch", "4", "--max-wait-ms", "20",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_env(),
        start_new_session=True,
    )


def _scrape(port: int, *extra: str) -> str:
    out = subprocess.run(
        [sys.executable, "-m", "repro.cli", "stats", "--port", str(port),
         *extra],
        env=_env(), capture_output=True, text=True, timeout=60,
    )
    assert out.returncode == 0, out.stderr
    return out.stdout


def test_shards_flag_rejects_negative():
    out = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve", "--shards", "-1"],
        env=_env(), capture_output=True, text=True, timeout=60,
    )
    assert out.returncode != 0
    assert "--shards must be >= 0" in out.stderr


def test_serve_shards_cli_roundtrip_stats_and_sigint_drain():
    port = _free_port()
    proc = _spawn_router(port, shards=2)
    try:
        banner = proc.stdout.readline()
        assert "routing on" in banner and "2 worker shard(s)" in banner

        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        rng = np.random.default_rng(42)
        for i, n in enumerate((20, 26)):
            request = {
                "id": f"t{i}",
                "instance": {
                    "name": f"u{n}",
                    "coords": rng.uniform(0, 100, size=(n, 2)).tolist(),
                },
                "iterations": 4,
                "params": {"seed": 3},
            }
            sock.sendall((json.dumps(request) + "\n").encode())
        stream = sock.makefile()
        finals = {}
        while len(finals) < 2:
            obj = json.loads(stream.readline())
            assert obj["type"] != "error", obj
            if obj["type"] == "result":
                finals[obj["id"]] = obj
        sock.close()
        assert all(f["best_length"] > 0 for f in finals.values())

        snap = json.loads(_scrape(port, "--json"))
        assert snap["source"] == "router"
        assert snap["submitted"] == 2
        assert snap["request_latency_seconds"]["count"] == 2
        assert snap["router"]["requests_routed"] == 2

        health = json.loads(_scrape(port, "--health", "--json"))
        assert health["source"] == "router"
        assert health["shards"] == 2
        assert health["shards_healthy"] == 2

        rendered = _scrape(port)
        assert "router stats" in rendered
        assert "router[requests_routed]" in rendered
        rendered = _scrape(port, "--health")
        assert "router health" in rendered
        assert "shard[0]" in rendered and "shard[1]" in rendered
    finally:
        os.killpg(proc.pid, signal.SIGINT)
        out, _ = proc.communicate(timeout=60)
    assert proc.returncode == 0, out
    assert "drained; fleet stopped." in out


def test_single_process_stats_json_stamps_service_source():
    """``--shards 0`` (the default) keeps today's path: the stats and
    health planes answer with ``source: service``."""
    port = _free_port()
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", str(port), "--max-batch", "2", "--max-wait-ms", "20",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=_env(), start_new_session=True,
    )
    try:
        banner = proc.stdout.readline()
        assert "serving on" in banner
        deadline = time.monotonic() + 15
        while True:
            try:
                socket.create_connection(("127.0.0.1", port), timeout=5).close()
                break
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.1)
        snap = json.loads(_scrape(port, "--json"))
        assert snap["source"] == "service"
        health = json.loads(_scrape(port, "--health", "--json"))
        assert health["source"] == "service"
        assert "per_shard" not in health
    finally:
        os.killpg(proc.pid, signal.SIGINT)
        proc.communicate(timeout=60)
