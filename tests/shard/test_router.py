"""Router tier end-to-end: routing, result parity, folded stats plane.

The e2e tests spawn real worker processes (``multiprocessing`` spawn
context) behind a real TCP front — the same stack ``gpu-aco serve
--shards N`` runs — and pin the acceptance contract: sharded results are
bit-identical to a solo :class:`~repro.core.engine.AntSystem` run, and
the router-aggregated histogram counts equal the sum of the per-shard
counts.  Plain ``asyncio.run`` throughout (no pytest-asyncio here).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core import ACOParams, AntSystem
from repro.errors import ServeError
from repro.serve import health_over_tcp, request_over_tcp, stats_over_tcp
from repro.serve.service import SolveRequest
from repro.shard import ShardConfig, ShardRouter, serve_router_tcp, shard_index
from repro.tsp import uniform_instance

ITERATIONS = 5
SIZES = (20, 26)


def _requests() -> list[SolveRequest]:
    reqs = []
    for n in SIZES:
        inst = uniform_instance(n, seed=n)
        for seed in (1, 2, 3):
            reqs.append(
                SolveRequest(
                    instance=inst, params=ACOParams(seed=seed),
                    iterations=ITERATIONS,
                )
            )
    return reqs


def _config() -> ShardConfig:
    return ShardConfig(max_batch=4, max_wait=0.02)


# --------------------------------------------------------------- unit layer


def test_shard_index_is_stable_and_in_range():
    keys = [r.bucket_key for r in _requests()]
    for nshards in (1, 2, 3, 5):
        for key in keys:
            idx = shard_index(key, nshards)
            assert 0 <= idx < nshards
            # Content hash: identical on every evaluation (builtin hash()
            # is salted per process and would not be).
            assert shard_index(key, nshards) == idx
    assert shard_index(keys[0], 1) == 0


def test_known_routing_spread():
    """Sizes 20/26/32 land on three distinct shards of a 3-fleet — the
    layout the chaos test and the CI smoke burst both rely on."""
    assignments = {
        n: shard_index(
            SolveRequest(
                instance=uniform_instance(n, seed=n),
                params=ACOParams(seed=1),
                iterations=6,
            ).bucket_key,
            3,
        )
        for n in (20, 26, 32)
    }
    assert sorted(assignments.values()) == [0, 1, 2], assignments


def test_router_constructor_validation():
    with pytest.raises(ServeError, match="shards must be >= 1"):
        ShardRouter(0)
    with pytest.raises(ServeError, match="max_routed"):
        ShardRouter(2, max_routed=0)


def test_submit_before_start_is_draining_error():
    async def _go():
        router = ShardRouter(2)
        with pytest.raises(ServeError, match="draining"):
            await router.submit({}, "r0", None, None)

    asyncio.run(_go())


# ---------------------------------------------------------------- e2e layer


def test_sharded_burst_bit_identical_with_exact_stats_fold():
    reqs = _requests()

    async def _go():
        async with ShardRouter(2, _config()) as router:
            server = await serve_router_tcp(router, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                results = await asyncio.gather(
                    *(
                        request_over_tcp(
                            "127.0.0.1", port, r,
                            req_id=f"r{i}", read_timeout=120,
                        )
                        for i, r in enumerate(reqs)
                    )
                )
                stats = await stats_over_tcp("127.0.0.1", port)
                health = await health_over_tcp("127.0.0.1", port)
            finally:
                server.close()
                await server.wait_closed()
            return results, stats, health

    results, stats, health = asyncio.run(_go())

    # Bit-identical to the solo engine, for every request in the burst.
    for (_updates, final), request in zip(results, reqs):
        solo = AntSystem(request.instance, request.params).run(
            request.iterations
        )
        assert final["best_length"] == solo.best_length
        assert final["best_tour"] == [int(c) for c in solo.best_tour]

    # The stats plane is a service-shaped payload stamped as the router's.
    assert stats["source"] == "router"
    assert stats["submitted"] == len(reqs)
    assert stats["completed"] == len(reqs)
    assert stats["router"]["requests_routed"] == len(reqs)
    assert stats["router"]["requests_shed"] == 0
    assert stats["router"]["shards_respawned"] == 0
    assert stats["router"]["outstanding"] == 0

    # Acceptance pin: the folded histogram count equals the sum of the
    # per-shard counts, exactly, for every distribution.
    per_shard = stats["per_shard"]
    for key in (
        "queue_wait_seconds",
        "batch_wall_seconds",
        "request_latency_seconds",
        "batch_rows",
    ):
        assert stats[key]["count"] == sum(
            shard[key]["count"] for shard in per_shard.values()
        )
        assert "samples" not in stats[key]
    assert stats["request_latency_seconds"]["count"] == len(reqs)
    assert sum(s["submitted"] for s in per_shard.values()) == len(reqs)

    # Health fold: every shard alive and accounted for.
    assert health["source"] == "router"
    assert health["shards"] == 2
    assert health["shards_healthy"] == 2
    assert health["accepting"] is True
    assert set(health["per_shard"]) == {"0", "1"}
    for summary in health["per_shard"].values():
        assert summary["state"] == "healthy"
        assert summary["outstanding"] == 0


def test_rolling_restart_keeps_serving():
    inst = uniform_instance(18, seed=18)

    def _request(seed: int) -> SolveRequest:
        return SolveRequest(
            instance=inst, params=ACOParams(seed=seed), iterations=4
        )

    async def _go():
        async with ShardRouter(1, _config()) as router:
            server = await serve_router_tcp(router, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                _, before = await request_over_tcp(
                    "127.0.0.1", port, _request(1), read_timeout=120
                )
                first_pid = router.shards[0].pid
                await asyncio.wait_for(router.rolling_restart(), 120)
                _, after = await request_over_tcp(
                    "127.0.0.1", port, _request(1), read_timeout=120
                )
                stats = await stats_over_tcp("127.0.0.1", port)
            finally:
                server.close()
                await server.wait_closed()
            return before, after, first_pid, router.shards[0].pid, stats

    before, after, pid_before, pid_after, stats = asyncio.run(_go())
    assert pid_after != pid_before  # genuinely a new worker process
    assert after["best_length"] == before["best_length"]
    assert after["best_tour"] == before["best_tour"]
    # Planned restarts are not failovers.
    assert stats["router"]["shards_respawned"] == 0
    # The replacement worker's stats plane starts fresh: only the second
    # request is visible post-restart.
    assert stats["submitted"] == 1
