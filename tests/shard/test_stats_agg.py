"""Router stats/health folding: exact sums, lossless histogram merges.

The fold operates on plain snapshot dicts (what the router scrapes off
each worker's wire), so these tests build per-shard payloads from real
:class:`~repro.serve.service.ServiceStats` objects and synthetic
histograms — no worker processes involved.
"""

from __future__ import annotations

from repro.obs import ReservoirHistogram
from repro.serve.service import ServiceStats
from repro.shard import fold_health, fold_stats
from repro.shard.stats import COUNTER_KEYS, HISTOGRAM_KEYS


def _shard_snapshot(shard: int, requests: int) -> dict:
    """A service-shaped snapshot with distinguishable per-shard numbers."""
    stats = ServiceStats()
    snap = stats.snapshot()
    snap["submitted"] = requests
    snap["completed"] = requests
    snap["batches"] = max(1, requests // 2)
    snap["rows_packed"] = requests
    snap["colony_iterations"] = requests * 5
    snap["engine_wall_seconds"] = 0.5 * (shard + 1)
    snap["flush_causes"] = {"max_batch": requests, "drain": 1}
    snap["batches_per_variant"] = {"as": requests}
    snap["rows_per_bucket"] = {f"n{20 + shard}": requests}
    for key in HISTOGRAM_KEYS:
        hist = ReservoirHistogram(key)
        for i in range(requests):
            hist.observe(shard * 100.0 + i)
        snap[key] = hist.snapshot()
    return snap


def test_service_snapshot_stamps_source():
    assert ServiceStats().snapshot()["source"] == "service"


def test_fold_stats_counters_sum_exactly():
    per_shard = {0: _shard_snapshot(0, 4), 1: _shard_snapshot(1, 6),
                 2: _shard_snapshot(2, 2)}
    agg = fold_stats(per_shard, router={"requests_routed": 12})
    assert agg["source"] == "router"
    for key in COUNTER_KEYS:
        assert agg[key] == sum(s[key] for s in per_shard.values()), key
    assert agg["engine_wall_seconds"] == sum(
        s["engine_wall_seconds"] for s in per_shard.values()
    )
    # Derived rates recomputed from summed numerators, not averaged.
    assert agg["mean_batch_size"] == round(
        agg["rows_packed"] / agg["batches"], 3
    )
    assert agg["colonies_per_second"] == round(
        agg["colony_iterations"] / agg["engine_wall_seconds"], 3
    )
    assert agg["router"] == {"requests_routed": 12}


def test_fold_stats_dict_counters_merge_keywise():
    per_shard = {0: _shard_snapshot(0, 4), 1: _shard_snapshot(1, 6)}
    agg = fold_stats(per_shard)
    assert agg["flush_causes"] == {"drain": 2, "max_batch": 10}
    assert agg["batches_per_variant"] == {"as": 10}
    assert agg["rows_per_bucket"] == {"n20": 4, "n21": 6}


def test_fold_stats_histograms_are_lossless():
    """The acceptance pin: aggregate count equals the sum of per-shard
    counts, min/max are the true extremes, quantiles span the union."""
    per_shard = {s: _shard_snapshot(s, 50) for s in range(4)}
    agg = fold_stats(per_shard)
    for key in HISTOGRAM_KEYS:
        assert agg[key]["count"] == sum(
            per_shard[s][key]["count"] for s in per_shard
        )
        assert agg[key]["min"] == 0.0
        assert agg[key]["max"] == 349.0
        assert agg[key]["total"] == sum(
            per_shard[s][key]["total"] for s in per_shard
        )
        # p50 of the union {0..49, 100..149, 200..249, 300..349} sits
        # between the second and third shard's ranges.
        assert 100.0 <= agg[key]["p50"] <= 300.0


def test_fold_stats_strips_samples_from_output():
    per_shard = {0: _shard_snapshot(0, 3)}
    agg = fold_stats(per_shard)
    for key in HISTOGRAM_KEYS:
        assert "samples" not in agg[key]
        assert "samples" not in agg["per_shard"]["0"][key]
    # ... without mutating the caller's input payloads.
    assert "samples" in per_shard[0]["queue_wait_seconds"]


def test_fold_stats_empty_fleet():
    agg = fold_stats({})
    assert agg["submitted"] == 0
    assert agg["mean_batch_size"] == 0.0
    assert agg["colonies_per_second"] == 0.0
    for key in HISTOGRAM_KEYS:
        assert agg[key]["count"] == 0


def test_fold_health_counts_dead_shards():
    live = {
        0: {"accepting": True, "queued": 2, "inflight_batches": 1,
            "workers_alive": 1, "last_batch_age_seconds": 4.0},
        2: {"accepting": True, "queued": 0, "inflight_batches": 0,
            "workers_alive": 1, "last_batch_age_seconds": 1.5},
    }
    summaries = {
        0: {"state": "healthy", "pid": 10},
        1: {"state": "dead", "pid": None},
        2: {"state": "healthy", "pid": 12},
    }
    health = fold_health(live, summaries, router={"shards_respawned": 1})
    assert health["source"] == "router"
    assert health["shards"] == 3
    assert health["shards_healthy"] == 2
    assert health["accepting"] is True
    assert health["queued"] == 2
    assert health["inflight_batches"] == 1
    assert health["workers_alive"] == 2
    assert health["last_batch_age_seconds"] == 1.5
    assert set(health["per_shard"]) == {"0", "1", "2"}
    assert health["per_shard"]["1"]["state"] == "dead"
    assert health["router"] == {"shards_respawned": 1}


def test_fold_health_no_live_probes():
    summaries = {0: {"state": "dead", "pid": None}}
    health = fold_health({}, summaries)
    assert health["accepting"] is False
    assert health["shards_healthy"] == 0
    assert health["last_batch_age_seconds"] is None
