"""Tests for the CPU cost model."""

from __future__ import annotations

import pytest

from repro.seq.cost import CpuCostParams, estimate_cpu_time
from repro.seq.counts import CpuOps


class TestEstimate:
    def test_zero_ops_zero_time(self):
        assert estimate_cpu_time(CpuOps(), CpuCostParams()) == 0.0

    def test_linear_in_counts(self):
        p = CpuCostParams()
        a = estimate_cpu_time(CpuOps(arith_ops=1e9), p)
        b = estimate_cpu_time(CpuOps(arith_ops=2e9), p)
        assert b == pytest.approx(2 * a)

    def test_class_weights(self):
        p = CpuCostParams(arith_ns=1.0, pow_ns=100.0)
        arith = estimate_cpu_time(CpuOps(arith_ops=1e6), p)
        pow_ = estimate_cpu_time(CpuOps(pow_calls=1e6), p)
        assert pow_ == pytest.approx(100 * arith)

    def test_random_refs_cost_more_than_streaming(self):
        p = CpuCostParams()
        seq = estimate_cpu_time(CpuOps(mem_seq_refs=1e6), p)
        rand = estimate_cpu_time(CpuOps(mem_rand_refs=1e6), p)
        assert rand > seq

    def test_known_value(self):
        p = CpuCostParams(
            arith_ns=1.0, mem_seq_ns=2.0, mem_rand_ns=4.0, rng_ns=8.0,
            pow_ns=16.0, branch_ns=32.0,
        )
        ops = CpuOps(
            arith_ops=1, mem_seq_refs=1, mem_rand_refs=1, rng_samples=1,
            pow_calls=1, branch_ops=1,
        )
        assert estimate_cpu_time(ops, p) == pytest.approx(63e-9)

    def test_with_overrides(self):
        p = CpuCostParams().with_overrides(pow_ns=5.0)
        assert p.pow_ns == 5.0
