"""Tests for the sequential Ant System engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ACOConfigError
from repro.seq.engine import (
    SequentialAntSystem,
    predict_construction_ops_for,
    predict_update_ops_for,
)
from repro.tsp.generator import uniform_instance
from repro.tsp.tour import tour_lengths, validate_tour


@pytest.fixture(scope="module")
def engine():
    return SequentialAntSystem(uniform_instance(36, seed=360), seed=11, nn=8)


class TestInitialisation:
    def test_tau0_is_m_over_cnn(self, engine):
        assert engine.tau0 > 0
        assert np.allclose(
            engine.pheromone[~np.eye(engine.n, dtype=bool)], engine.tau0
        )

    def test_diagonal_zero(self, engine):
        assert np.all(np.diag(engine.pheromone) == 0)

    def test_default_m_equals_n(self):
        e = SequentialAntSystem(uniform_instance(20, seed=1))
        assert e.m == 20

    def test_nn_clipped(self):
        e = SequentialAntSystem(uniform_instance(10, seed=1), nn=100)
        assert e.nn == 9

    def test_invalid_rho(self):
        with pytest.raises(ACOConfigError):
            SequentialAntSystem(uniform_instance(10, seed=1), rho=0.0)

    def test_invalid_ants(self):
        with pytest.raises(ACOConfigError):
            SequentialAntSystem(uniform_instance(10, seed=1), n_ants=0)


class TestChoiceInfo:
    def test_values(self, engine):
        choice = engine.compute_choice_info()
        expected = engine.pheromone[1, 2] ** engine.alpha * engine.eta[1, 2] ** engine.beta
        assert choice[1, 2] == pytest.approx(expected)

    def test_diagonal_zero(self, engine):
        assert np.all(np.diag(engine.compute_choice_info()) == 0)

    def test_positive_off_diagonal(self, engine):
        choice = engine.compute_choice_info()
        off = choice[~np.eye(engine.n, dtype=bool)]
        assert np.all(off > 0)


class TestConstruction:
    @pytest.mark.parametrize("mode", ["nnlist", "full"])
    def test_tours_valid(self, mode):
        e = SequentialAntSystem(uniform_instance(30, seed=301), seed=5, nn=8)
        choice = e.compute_choice_info()
        tours = e.construct_tours(choice, mode=mode)
        assert tours.shape == (30, 31)
        for t in tours:
            validate_tour(t, 30)

    def test_invalid_mode(self):
        e = SequentialAntSystem(uniform_instance(10, seed=1))
        with pytest.raises(ACOConfigError):
            e.construct_tours(e.compute_choice_info(), mode="greedy")

    def test_deterministic_given_seed(self):
        a = SequentialAntSystem(uniform_instance(25, seed=250), seed=3)
        b = SequentialAntSystem(uniform_instance(25, seed=250), seed=3)
        ta = a.construct_tours(a.compute_choice_info(), mode="nnlist")
        tb = b.construct_tours(b.compute_choice_info(), mode="nnlist")
        np.testing.assert_array_equal(ta, tb)

    def test_ledger_matches_prediction(self):
        e = SequentialAntSystem(uniform_instance(28, seed=280), seed=9, nn=6)
        from repro.seq.counts import CpuOps

        ops = CpuOps()
        e.construct_tours(e.compute_choice_info(), mode="nnlist", ops=ops)
        pred = predict_construction_ops_for(
            e.n, e.m, e.nn, "nnlist", fallback_steps=ops.fallback_steps
        )
        assert ops.approx_equal(pred), ops.diff(pred)


class TestPheromoneUpdate:
    def test_evaporation_and_deposit(self):
        e = SequentialAntSystem(uniform_instance(15, seed=150), seed=2, rho=0.5)
        choice = e.compute_choice_info()
        tours = e.construct_tours(choice, mode="full")
        lengths = tour_lengths(tours, e.dist)
        before = e.pheromone.copy()
        e.update_pheromone(tours, lengths)
        # every value evaporated at least; deposits only increase
        assert np.all(e.pheromone >= before * 0.5 - 1e-15)

    def test_symmetry_preserved(self):
        e = SequentialAntSystem(uniform_instance(15, seed=151), seed=2)
        choice = e.compute_choice_info()
        tours = e.construct_tours(choice, mode="full")
        lengths = tour_lengths(tours, e.dist)
        e.update_pheromone(tours, lengths)
        np.testing.assert_allclose(e.pheromone, e.pheromone.T)

    def test_deposit_amount_exact(self):
        e = SequentialAntSystem(uniform_instance(12, seed=152), seed=2, n_ants=1, rho=0.5)
        tours = np.array([list(range(12)) + [0]], dtype=np.int32)
        lengths = tour_lengths(tours, e.dist)
        tau_before = e.pheromone[0, 1]
        e.update_pheromone(tours, lengths)
        expected = tau_before * 0.5 + 1.0 / lengths[0]
        assert e.pheromone[0, 1] == pytest.approx(expected)
        assert e.pheromone[1, 0] == pytest.approx(expected)


class TestIterations:
    def test_best_tracking_monotone(self):
        e = SequentialAntSystem(uniform_instance(30, seed=303), seed=4, nn=8)
        bests = [e.run_iteration("nnlist").best_length for _ in range(6)]
        assert e.best_length == min(
            min(bests), e.best_length
        )  # best-so-far <= every iteration best
        assert e.best_length <= bests[0]

    def test_run_returns_results(self):
        e = SequentialAntSystem(uniform_instance(20, seed=304), seed=4)
        results = e.run(3, mode="full")
        assert len(results) == 3
        assert e.iterations_run == 3

    def test_run_invalid_iterations(self):
        e = SequentialAntSystem(uniform_instance(10, seed=1))
        with pytest.raises(ACOConfigError):
            e.run(0)

    def test_full_iteration_ledger_consistent(self):
        e = SequentialAntSystem(uniform_instance(24, seed=305), seed=8, nn=6)
        res = e.run_iteration(mode="full")
        pred = (
            e.predict_choice_ops(e.n)
            + predict_construction_ops_for(e.n, e.m, e.nn, "full")
            + predict_update_ops_for(e.n, e.m)
        )
        assert res.ops.approx_equal(pred), res.ops.diff(pred)


class TestUpdatePredictor:
    def test_cache_split_small_instance_mostly_sequential(self):
        ops = predict_update_ops_for(48, 48)
        assert ops.mem_rand_refs < ops.mem_seq_refs

    def test_cache_split_large_instance_mostly_random(self):
        ops = predict_update_ops_for(1002, 1002)
        # matrix is 8 MB >> LLC: all deposit refs are misses
        assert ops.mem_rand_refs == pytest.approx(4.0 * 1002 * 1002)

    def test_total_refs_conserved(self):
        for n in (48, 280, 1002):
            ops = predict_update_ops_for(n, n)
            total = ops.mem_seq_refs + ops.mem_rand_refs
            assert total == pytest.approx(2.0 * n * n + 4.0 * n * n)
