"""Tests for the CPU op ledger."""

from __future__ import annotations

import pytest

from repro.seq.counts import CpuOps


class TestCpuOps:
    def test_merge_sums(self):
        a = CpuOps(arith_ops=1, mem_seq_refs=2)
        b = CpuOps(arith_ops=3, rng_samples=4)
        a.merge(b)
        assert a.arith_ops == 4
        assert a.mem_seq_refs == 2
        assert a.rng_samples == 4

    def test_add_pure(self):
        a = CpuOps(arith_ops=1)
        b = CpuOps(arith_ops=2)
        c = a + b
        assert (a.arith_ops, b.arith_ops, c.arith_ops) == (1, 2, 3)

    def test_scaled(self):
        s = CpuOps(arith_ops=10, pow_calls=4).scaled(0.5)
        assert s.arith_ops == 5
        assert s.pow_calls == 2

    def test_scaled_negative_raises(self):
        with pytest.raises(ValueError):
            CpuOps().scaled(-0.1)

    def test_as_dict(self):
        d = CpuOps(branch_ops=7).as_dict()
        assert d["branch_ops"] == 7.0
        assert set(d) == {
            "arith_ops",
            "mem_seq_refs",
            "mem_rand_refs",
            "rng_samples",
            "pow_calls",
            "branch_ops",
            "fallback_steps",
        }

    def test_approx_equal(self):
        a = CpuOps(arith_ops=1.0)
        assert a.approx_equal(CpuOps(arith_ops=1.0 + 1e-12))
        assert not a.approx_equal(CpuOps(arith_ops=2.0))
