"""Smoke tests: every example script must run end to end.

Examples are documentation that executes; this module keeps them honest by
running each through a subprocess with scaled-down arguments.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
SRC_DIR = os.path.join(os.path.dirname(__file__), "..", "src")

CASES = [
    ("quickstart.py", []),
    ("kernel_showdown.py", ["--instance", "att48", "--iterations", "2"]),
    ("pheromone_strategies.py", ["--instance", "att48"]),
    ("tsplib_workflow.py", []),
    ("convergence_quality.py", ["--n", "50", "--iterations", "6", "--replicas", "2"]),
    ("acs_extension.py", ["--n", "60", "--iterations", "5"]),
    ("device_scaling.py", []),
]


def _env_with_src():
    """Subprocess env with src/ importable, independent of how pytest was
    launched (PYTHONPATH export vs the pyproject pythonpath setting)."""
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        SRC_DIR if not existing else os.pathsep.join([SRC_DIR, existing])
    )
    return env


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args, tmp_path):
    path = os.path.join(EXAMPLES_DIR, script)
    assert os.path.exists(path), f"example {script} missing"
    if script == "tsplib_workflow.py":
        args = ["--out-dir", str(tmp_path)]
    proc = subprocess.run(
        [sys.executable, path, *args],
        capture_output=True,
        text=True,
        timeout=240,
        env=_env_with_src(),
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script} produced no output"


def test_every_example_covered():
    """New example scripts must be added to the smoke-test matrix."""
    present = {
        f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py") and f != "__init__.py"
    }
    covered = {script for script, _ in CASES}
    assert present == covered, f"uncovered examples: {present - covered}"
