"""Framework behaviour: CLI surface, --json schema, exit codes, self-check."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import Severity, all_rules, get_rule, lint_paths, module_key

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_CORE = """\
import numpy as np


def sample(n):
    return np.random.rand(n)
"""

CLEAN = """\
def identity(x):
    return x
"""


class TestRegistry:
    def test_all_four_rule_families_registered(self):
        ids = [r.id for r in all_rules()]
        assert ids == [
            "backend-purity",
            "determinism",
            "host-sync",
            "lock-discipline",
        ]
        assert all(r.severity is Severity.ERROR for r in all_rules())
        assert all(r.description for r in all_rules())

    def test_unknown_rule_raises_with_known_ids(self):
        with pytest.raises(KeyError, match="lock-discipline"):
            get_rule("no-such-rule")


class TestModuleKey:
    def test_installed_package_paths_normalise(self):
        assert module_key("src/repro/core/batch.py") == "core/batch.py"
        assert (
            module_key("/opt/x/src/repro/tsp/local_search.py")
            == "tsp/local_search.py"
        )

    def test_scan_relative_paths_pass_through(self):
        assert module_key("core/batch.py") == "core/batch.py"
        assert module_key("./benchmarks/conftest.py") == "benchmarks/conftest.py"


class TestExitCodesAndJson:
    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "mod.py").write_text(CLEAN)
        monkeypatch.chdir(tmp_path)
        assert cli_main(["lint", "mod.py"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_error_finding_exits_one(self, tmp_path, monkeypatch, capsys):
        core = tmp_path / "core"
        core.mkdir()
        (core / "sampler.py").write_text(BAD_CORE)
        monkeypatch.chdir(tmp_path)
        assert cli_main(["lint", "core"]) == 1
        out = capsys.readouterr().out
        assert "determinism" in out
        assert "core/sampler.py:5" in out

    def test_json_schema(self, tmp_path, monkeypatch, capsys):
        core = tmp_path / "core"
        core.mkdir()
        (core / "sampler.py").write_text(BAD_CORE)
        monkeypatch.chdir(tmp_path)
        assert cli_main(["lint", "--json", "core"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "errors",
            "warnings",
            "files_checked",
            "parse_errors",
            "findings",
        }
        assert payload["errors"] == 1 and payload["files_checked"] == 1
        (finding,) = payload["findings"]
        assert set(finding) == {
            "file",
            "line",
            "col",
            "rule",
            "severity",
            "message",
            "snippet",
        }
        assert finding["rule"] == "determinism"
        assert finding["severity"] == "error"
        assert finding["file"] == "core/sampler.py"
        assert finding["line"] == 5
        assert finding["snippet"] == "return np.random.rand(n)"

    def test_rule_selection_narrows_the_run(self, tmp_path, monkeypatch, capsys):
        core = tmp_path / "core"
        core.mkdir()
        (core / "sampler.py").write_text(BAD_CORE)
        monkeypatch.chdir(tmp_path)
        assert cli_main(["lint", "--rule", "lock-discipline", "core"]) == 0
        capsys.readouterr()
        assert cli_main(["lint", "--rule", "determinism", "core"]) == 1
        capsys.readouterr()

    def test_unknown_rule_id_is_a_usage_error(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert cli_main(["lint", "--rule", "bogus", "."]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_a_usage_error(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert cli_main(["lint", "nope/"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "backend-purity",
            "determinism",
            "host-sync",
            "lock-discipline",
        ):
            assert rule_id in out

    def test_syntax_error_fails_the_gate(self, tmp_path, monkeypatch, capsys):
        (tmp_path / "broken.py").write_text("def oops(:\n")
        monkeypatch.chdir(tmp_path)
        assert cli_main(["lint", "--json", "broken.py"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        assert "broken.py" in payload["parse_errors"]


class TestSuppressionMechanics:
    def test_bare_ignore_silences_every_rule(self, lint_tree):
        res = lint_tree(
            {
                "core/sampler.py": """
                import numpy as np


                def sample(n):
                    return np.random.rand(n)  # lint: ignore
                """
            }
        )
        assert res.findings == []

    def test_standalone_comment_covers_the_next_line(self, lint_tree):
        res = lint_tree(
            {
                "core/sampler.py": """
                import numpy as np


                def sample(n):
                    # lint: ignore[determinism]
                    return np.random.rand(n)
                """
            }
        )
        assert res.findings == []

    def test_ignore_for_another_rule_does_not_cover(self, lint_tree):
        res = lint_tree(
            {
                "core/sampler.py": """
                import numpy as np


                def sample(n):
                    return np.random.rand(n)  # lint: ignore[host-sync]
                """
            }
        )
        assert [f.rule for f in res.findings] == ["determinism"]


class TestHeadSelfCheck:
    def test_lint_src_and_benchmarks_clean_at_head(self):
        # The CI gate's exact contract: the tree this test ships with
        # carries zero error-severity findings.
        res = lint_paths(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "benchmarks")]
        )
        assert res.parse_errors == {}
        assert [f.render() for f in res.findings] == []
        assert res.exit_code == 0
        assert res.files_checked > 100
