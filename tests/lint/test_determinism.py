"""determinism: unpinned randomness/time in engine scope, mutation-style."""

from __future__ import annotations

from .conftest import lines_of, rule_ids


class TestTruePositives:
    def test_np_random_in_core_fires(self, lint_tree):
        # The acceptance-criterion mutation: np.random added to a core/ file.
        res = lint_tree(
            {
                "core/sampler.py": """
                import numpy as np


                def sample(n):
                    return np.random.rand(n)
                """
            }
        )
        assert rule_ids(res) == ["determinism"]
        f = res.findings[0]
        assert f.file == "core/sampler.py"
        assert f.line == 6
        assert "numpy.random.rand" in f.message

    def test_stdlib_random_fires(self, lint_tree):
        res = lint_tree(
            {
                "rng/jitter.py": """
                import random


                def jitter():
                    return random.random()
                """
            }
        )
        assert rule_ids(res) == ["determinism"]

    def test_seeded_stdlib_random_still_fires_in_engine_scope(self, lint_tree):
        # Engine randomness must be DeviceRNG streams — a seeded
        # random.Random is only pinned as an exception in obs.metrics.
        res = lint_tree(
            {
                "core/noise.py": """
                import random

                RNG = random.Random(42)
                """
            }
        )
        assert rule_ids(res) == ["determinism"]

    def test_unseeded_default_rng_fires(self, lint_tree):
        res = lint_tree(
            {
                "tsp/shuffle.py": """
                import numpy as np


                def shuffle():
                    return np.random.default_rng()
                """
            }
        )
        assert rule_ids(res) == ["determinism"]
        assert "unseeded" in res.findings[0].message

    def test_wall_clock_read_fires(self, lint_tree):
        res = lint_tree(
            {
                "core/loop.py": """
                import time


                def run():
                    start = time.time()
                    mono = time.monotonic()
                    return start, mono
                """
            }
        )
        assert lines_of(res, "determinism") == [6, 7]

    def test_from_import_alias_is_resolved(self, lint_tree):
        res = lint_tree(
            {
                "core/loop.py": """
                from time import perf_counter


                def run():
                    return perf_counter()
                """
            }
        )
        assert rule_ids(res) == ["determinism"]


class TestDocumentedAllowlist:
    def test_perf_counter_allowed_in_phase_accounting_modules(self, lint_tree):
        # core/batch.py and tsp/local_search.py carry documented
        # observability-only allowlist entries (LintConfig).
        src = """
            from time import perf_counter


            def run(xp):
                return perf_counter()
        """
        res = lint_tree({"core/batch.py": src, "tsp/local_search.py": src})
        assert lines_of(res, "determinism") == []

    def test_time_time_not_covered_by_perf_counter_allowlist(self, lint_tree):
        res = lint_tree(
            {
                "core/batch.py": """
                import time


                def run():
                    return time.time()
                """
            }
        )
        assert rule_ids(res) == ["determinism"]

    def test_seeded_numpy_generator_is_the_sanctioned_idiom(self, lint_tree):
        # tsp/generator.py's construction pattern must stay clean.
        res = lint_tree(
            {
                "tsp/generator.py": """
                import numpy as np


                def make_rng(seed):
                    return np.random.default_rng(np.random.SeedSequence(seed))
                """
            }
        )
        assert res.findings == []

    def test_outside_engine_scope_is_exempt(self, lint_tree):
        res = lint_tree(
            {
                "serve/service.py": """
                import random
                import time


                def backoff(seed):
                    rng = random.Random(seed)
                    return rng, time.monotonic()
                """
            }
        )
        assert res.findings == []


class TestSuppression:
    def test_inline_ignore_silences_the_line(self, lint_tree):
        res = lint_tree(
            {
                "core/sampler.py": """
                import numpy as np


                def sample(n):
                    return np.random.rand(n)  # lint: ignore[determinism]
                """
            }
        )
        assert res.findings == []
