"""backend-purity: raw numpy in hot-path seam functions, mutation-style."""

from __future__ import annotations

from .conftest import lines_of, rule_ids

SEAM_VIOLATION = """
    import numpy as np


    def build(weights, xp):
        acc = xp.cumsum(weights, axis=1)
        darts = np.zeros(acc.shape[0])
        return acc, darts
"""


class TestTruePositives:
    def test_np_call_in_seam_function_fires(self, lint_tree):
        res = lint_tree({"core/batch.py": SEAM_VIOLATION})
        assert rule_ids(res) == ["backend-purity"]
        f = res.findings[0]
        assert f.file == "core/batch.py"
        assert f.line == 7  # the np.zeros line
        assert "np.zeros" in f.message
        assert "build" in f.message
        assert f.severity.value == "error"

    def test_import_alias_is_resolved(self, lint_tree):
        res = lint_tree(
            {
                "core/choice.py": """
                import numpy as numpy_mod


                def kernel(tau, xp):
                    return numpy_mod.power(tau, 2.0)
                """
            }
        )
        assert rule_ids(res) == ["backend-purity"]

    def test_every_hot_path_module_is_in_scope(self, lint_tree):
        files = {
            name: SEAM_VIOLATION
            for name in (
                "core/batch.py",
                "core/variant.py",
                "core/choice.py",
                "core/construction/dataparallel.py",
                "core/pheromone/base.py",
                "tsp/local_search.py",
            )
        }
        res = lint_tree(files)
        assert len(res.findings) == len(files)
        assert set(rule_ids(res)) == {"backend-purity"}


class TestFalsePositiveGuards:
    def test_dtype_and_constant_contexts_allowed(self, lint_tree):
        res = lint_tree(
            {
                "core/batch.py": """
                import numpy as np


                def kernel(w, xp):
                    a = w.astype(np.float64)
                    b = xp.where(w > 0, a, -np.inf)
                    info = np.finfo(np.float64)
                    d = np.dtype("int64")
                    return b, info, d
                """
            }
        )
        assert res.findings == []

    def test_host_staging_through_from_host_allowed(self, lint_tree):
        res = lint_tree(
            {
                "core/variant.py": """
                import numpy as np


                def stage(rows, bk):
                    return bk.from_host(np.stack(rows))
                """
            }
        )
        assert res.findings == []

    def test_non_seam_function_is_out_of_scope(self, lint_tree):
        # Solo host-path reference code has no xp in sight — exempt.
        res = lint_tree(
            {
                "tsp/local_search.py": """
                import numpy as np


                def two_opt_solo(tour, dist):
                    gains = np.empty(len(tour))
                    return np.argmax(gains)
                """
            }
        )
        assert res.findings == []

    def test_non_hot_module_is_out_of_scope(self, lint_tree):
        res = lint_tree({"core/report.py": SEAM_VIOLATION})
        assert res.findings == []

    def test_np_random_left_to_determinism_rule(self, lint_tree):
        res = lint_tree(
            {
                "core/batch.py": """
                import numpy as np


                def sample(xp):
                    return np.random.rand(4)
                """
            },
            rules=["backend-purity"],
        )
        assert res.findings == []


class TestSuppression:
    def test_inline_ignore_silences_the_line(self, lint_tree):
        res = lint_tree(
            {
                "core/batch.py": """
                import numpy as np


                def stage(rows, bk):
                    buf = np.empty(len(rows))  # lint: ignore[backend-purity]
                    bad = np.zeros(len(rows))
                    return bk.from_host(buf), bad
                """
            }
        )
        assert lines_of(res, "backend-purity") == [7]
