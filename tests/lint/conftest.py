"""Fixture-tree harness for the invariant-linter suite.

``lint_tree`` writes snippet files into a temp directory laid out like the
package (``core/batch.py``, ``serve/service.py`` …) and runs the linter
from inside it with relative paths — exactly how ``module_key`` classifies
real files, so rule scoping behaves identically to a ``src/`` run.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import lint_paths


@pytest.fixture
def lint_tree(tmp_path, monkeypatch):
    """Build ``{relative path: source}`` and lint it; returns LintResult."""

    def build(files: dict[str, str], *, rules: list[str] | None = None):
        roots: list[str] = []
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
            root = rel.split("/")[0]
            if root not in roots:
                roots.append(root)
        monkeypatch.chdir(tmp_path)
        return lint_paths(sorted(roots), rule_ids=rules)

    return build


def rule_ids(result):
    return [f.rule for f in result.findings]


def lines_of(result, rule):
    return [f.line for f in result.findings if f.rule == rule]
