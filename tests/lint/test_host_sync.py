"""host-sync: device→host transfers inside K-loop interiors, mutation-style."""

from __future__ import annotations

from .conftest import lines_of, rule_ids


class TestTruePositives:
    def test_transfer_methods_fire_inside_hot_region(self, lint_tree):
        res = lint_tree(
            {
                "core/engine.py": """
                def advance(state, xp):
                    # lint: hot-region
                    best = state.lengths.item()
                    host = state.backend.to_host(state.tours)
                    raw = state.lengths.get()
                    return best, host, raw
                """
            }
        )
        assert rule_ids(res) == ["host-sync"] * 3
        assert lines_of(res, "host-sync") == [4, 5, 6]
        assert res.findings[0].file == "core/engine.py"

    def test_implicit_scalar_sync_fires(self, lint_tree):
        res = lint_tree(
            {
                "core/engine.py": """
                def advance(lengths):
                    # lint: hot-region
                    return float(lengths.min())
                """
            }
        )
        assert rule_ids(res) == ["host-sync"]
        assert "float" in res.findings[0].message

    def test_decorator_marker_is_equivalent_to_comment(self, lint_tree):
        res = lint_tree(
            {
                "core/engine.py": """
                from repro.lint.markers import hot_region


                @hot_region
                def advance(lengths):
                    return lengths.item()
                """
            }
        )
        assert rule_ids(res) == ["host-sync"]

    def test_nested_closure_inherits_the_region(self, lint_tree):
        # A closure defined inside a K-loop interior runs per iteration.
        res = lint_tree(
            {
                "core/engine.py": """
                def advance(state):
                    # lint: hot-region
                    def peek():
                        return state.lengths.item()

                    return peek
                """
            }
        )
        assert rule_ids(res) == ["host-sync"]


class TestFalsePositiveGuards:
    def test_unmarked_function_is_out_of_scope(self, lint_tree):
        # Boundary-time code transfers by design (e.g. two_opt_batch's
        # ragged reversal loop) — only marked interiors are policed.
        res = lint_tree(
            {
                "core/engine.py": """
                def boundary(state):
                    return state.backend.to_host(state.tours)
                """
            }
        )
        assert res.findings == []

    def test_dict_get_with_key_not_flagged(self, lint_tree):
        res = lint_tree(
            {
                "core/engine.py": """
                def advance(cache, key):
                    # lint: hot-region
                    return cache.get(key, None)
                """
            }
        )
        assert res.findings == []

    def test_conversion_of_literal_not_flagged(self, lint_tree):
        res = lint_tree(
            {
                "core/engine.py": """
                def advance():
                    # lint: hot-region
                    return float("inf"), int(3)
                """
            }
        )
        assert res.findings == []


class TestSuppression:
    def test_inline_ignore_silences_the_line(self, lint_tree):
        res = lint_tree(
            {
                "core/engine.py": """
                def advance(flags):
                    # lint: hot-region
                    # Engine-constant branch select, synced once per run.
                    a = bool(flags.all())  # lint: ignore[host-sync]
                    b = bool(flags.any())
                    return a, b
                """
            }
        )
        assert lines_of(res, "host-sync") == [6]
