"""lock-discipline: guarded attributes mutated off-lock, mutation-style."""

from __future__ import annotations

from .conftest import lines_of, rule_ids

#: A ServiceStats-shaped fixture with the acceptance-criterion mutation:
#: a guarded counter bumped outside its lock.
UNGUARDED_STATS = """
    import threading
    from dataclasses import dataclass


    @dataclass
    class ServiceStats:
        submitted: int = 0  # guarded-by: _lock
        batches: int = 0  # guarded-by: _lock

        def __post_init__(self):
            self._lock = threading.Lock()

        def observe_submitted(self):
            with self._lock:
                self.submitted += 1

        def observe_batch(self):
            self.batches += 1
"""


class TestTruePositives:
    def test_unguarded_service_stats_mutation_fires(self, lint_tree):
        res = lint_tree({"serve/service.py": UNGUARDED_STATS})
        assert rule_ids(res) == ["lock-discipline"]
        f = res.findings[0]
        assert f.file == "serve/service.py"
        assert f.line == 19  # the bare `self.batches += 1`
        assert "batches" in f.message and "_lock" in f.message

    def test_plain_assignment_and_container_mutation_fire(self, lint_tree):
        res = lint_tree(
            {
                "serve/service.py": """
                import threading


                class Stats:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.total = 0.0  # guarded-by: _lock
                        self.rows = []  # guarded-by: _lock
                        self.causes = {}  # guarded-by: _lock

                    def record(self, wall, row, cause):
                        self.total = self.total + wall
                        self.rows.append(row)
                        self.causes[cause] = self.causes.get(cause, 0) + 1
                """
            }
        )
        assert rule_ids(res) == ["lock-discipline"] * 3
        assert lines_of(res, "lock-discipline") == [13, 14, 15]

    def test_loop_confined_state_mutated_from_worker_thread_fires(self, lint_tree):
        res = lint_tree(
            {
                "serve/service.py": """
                class Service:
                    def __init__(self):
                        self._buckets = {}  # guarded-by: loop

                    def _flush(self, key):
                        self._buckets.pop(key, None)

                    def _run_batch_sync(self, key):
                        # lint: worker-thread
                        self._buckets.pop(key, None)
                """
            }
        )
        assert rule_ids(res) == ["lock-discipline"]
        assert lines_of(res, "lock-discipline") == [11]
        assert "call_soon_threadsafe" in res.findings[0].message


class TestFalsePositiveGuards:
    def test_mutation_under_the_lock_is_clean(self, lint_tree):
        res = lint_tree(
            {
                "serve/service.py": """
                import threading


                class Stats:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0  # guarded-by: _lock

                    def observe(self):
                        with self._lock:
                            self.count += 1
                """
            }
        )
        assert res.findings == []

    def test_constructor_initialisation_is_exempt(self, lint_tree):
        # __init__/__post_init__ run before the object is shared, so even
        # an off-lock read-modify-write of a guarded attribute is fine.
        res = lint_tree(
            {
                "obs/metrics.py": """
                class Counter:
                    def __init__(self):
                        self.count = 0  # guarded-by: _lock
                        self.count += 1
                """
            }
        )
        assert res.findings == []

    def test_reads_are_never_flagged(self, lint_tree):
        # threading.Lock is not reentrant: unguarded read-only properties
        # are called from inside locked snapshot() blocks by design.
        res = lint_tree(
            {
                "serve/service.py": """
                import threading


                class Stats:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.batches = 0  # guarded-by: _lock
                        self.rows = 0  # guarded-by: _lock

                    @property
                    def mean_batch_size(self):
                        return self.rows / self.batches if self.batches else 0.0
                """
            }
        )
        assert res.findings == []

    def test_unannotated_attributes_are_out_of_scope(self, lint_tree):
        res = lint_tree(
            {
                "serve/service.py": """
                class Service:
                    def __init__(self):
                        self.count = 0

                    def bump(self):
                        self.count += 1
                """
            }
        )
        assert res.findings == []

    def test_loop_state_from_loop_side_code_is_clean(self, lint_tree):
        res = lint_tree(
            {
                "serve/service.py": """
                class Service:
                    def __init__(self):
                        self._buckets = {}  # guarded-by: loop

                    def submit(self, key, pending):
                        self._buckets.setdefault(key, []).append(pending)
                """
            }
        )
        assert res.findings == []


class TestSuppression:
    def test_inline_ignore_silences_the_line(self, lint_tree):
        res = lint_tree(
            {
                "serve/service.py": UNGUARDED_STATS.replace(
                    "self.batches += 1",
                    "self.batches += 1  # lint: ignore[lock-discipline]",
                )
            }
        )
        assert res.findings == []
