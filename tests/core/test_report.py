"""Tests for stage/iteration reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.report import IterationReport, StageReport
from repro.simt.counters import KernelStats
from repro.simt.device import TESLA_C1060, TESLA_M2050
from repro.simt.kernel import LaunchConfig
from repro.simt.timing import CostParams


def make_stage(stage: str, flops: float = 1e9) -> StageReport:
    return StageReport(
        stage=stage,
        kernel=f"{stage}_kernel",
        stats=KernelStats(flops=flops, kernel_launches=1),
        launch=LaunchConfig(grid=100, block=256),
    )


class TestStageReport:
    def test_modeled_time_positive(self):
        t = make_stage("construction").modeled_time(TESLA_C1060, CostParams())
        assert t > 0

    def test_effective_parallelism_bounds(self):
        par = make_stage("choice").effective_parallelism(TESLA_M2050)
        assert 0 < par <= 1

    def test_device_dependence(self):
        s = make_stage("construction", flops=1e10)
        t_c = s.modeled_time(TESLA_C1060, CostParams())
        t_m = s.modeled_time(TESLA_M2050, CostParams())
        assert t_c != t_m  # different peak rates


class TestIterationReport:
    def _report(self):
        return IterationReport(
            iteration=1,
            tours=np.zeros((2, 4), dtype=np.int32),
            lengths=np.array([10, 7], dtype=np.int64),
            stages=[make_stage("choice"), make_stage("construction"), make_stage("pheromone")],
        )

    def test_best_length(self):
        assert self._report().best_length == 7

    def test_construction_time_includes_choice(self):
        rep = self._report()
        p = CostParams()
        with_choice = rep.construction_time(TESLA_C1060, p, include_choice=True)
        without = rep.construction_time(TESLA_C1060, p, include_choice=False)
        assert with_choice > without

    def test_total_is_sum_of_stages(self):
        rep = self._report()
        p = CostParams()
        total = rep.total_time(TESLA_C1060, p)
        parts = sum(s.modeled_time(TESLA_C1060, p) for s in rep.stages)
        assert total == pytest.approx(parts)

    def test_pheromone_time(self):
        rep = self._report()
        assert rep.pheromone_time(TESLA_C1060, CostParams()) > 0
