"""Engine-level amortization mechanics: arena wiring, collect=False paths.

Complements ``tests/property/test_report_every.py`` (which pins the
numerical invariants across the 8x5 strategy grid) with white-box checks of
the machinery itself: the per-engine WorkBuffers arena is shared and stable
across iterations, non-boundary iterations skip report materialization, and
the baseline mode really strips the amortizations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import WorkBuffers
from repro.core import ACOParams, AntSystem, BatchEngine
from repro.tsp import uniform_instance


@pytest.fixture(scope="module")
def instance():
    return uniform_instance(14, seed=7)


def _engine(instance, **kwargs):
    kwargs.setdefault("construction", 4)
    kwargs.setdefault("pheromone", 1)
    return BatchEngine(
        instance, [ACOParams(seed=1, nn=5), ACOParams(seed=2, nn=5)], **kwargs
    )


def test_engine_owns_one_arena(instance):
    engine = _engine(instance)
    assert isinstance(engine.work, WorkBuffers)
    assert engine.state.work is engine.work
    assert engine.state.bulk_rng is True


def test_arena_buffers_stable_across_iterations(instance):
    engine = _engine(instance)
    engine.run_iteration()
    buffers_after_one = dict(engine.work._buffers)
    assert buffers_after_one, "construction should have populated the arena"
    engine.run_iteration()
    for key, buf in engine.work._buffers.items():
        assert buffers_after_one.get(key) is buf, f"{key} was reallocated"


def test_amortize_false_strips_arena(instance):
    engine = _engine(instance, amortize=False)
    assert engine.work is None
    assert engine.state.work is None
    assert engine.state.bulk_rng is False
    engine.run(2)  # still runs fine


def test_advance_collect_false_returns_no_stages(instance):
    engine = _engine(instance)
    engine._seed_fold()
    tours, lengths, ctx, stages = engine._advance(collect=False)
    assert stages is None
    assert tours.shape == (2, engine.state.m, engine.state.n + 1)
    assert lengths.shape == (2, engine.state.m)
    assert ctx.best_lengths.shape == (2,)
    _, _, _, stages2 = engine._advance(collect=True)
    assert len(stages2) == 2
    assert all(len(s) >= 2 for s in stages2)  # construction + pheromone


def test_strategy_collect_flag(instance):
    engine = _engine(instance)
    bs = engine.state
    engine.choice_kernel.run_batch(bs, collect=True)
    result = engine.construction.build_batch(bs, engine.rng, collect=False)
    assert result.reports == []
    lengths = np.ones((2, bs.m), dtype=np.int64) * 100
    reps = engine.pheromone.update_batch(bs, result.tours, lengths, collect=False)
    assert reps == []


def test_antsystem_shares_engine_arena(instance):
    colony = AntSystem(instance, ACOParams(seed=3, nn=5), construction=4)
    assert colony.work is colony.engine.work
    colony.run(2, report_every=2)


def test_choice_collect_false_still_refreshes(instance):
    engine = _engine(instance, construction=8)
    bs = engine.state
    reps = engine.choice_kernel.run_batch(bs, collect=False)
    assert reps == []
    assert bs.choice_info is not None
    assert bs.choice_info.shape == (2, bs.n, bs.n)
