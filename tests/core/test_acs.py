"""Tests for the Ant Colony System extension.

Construction/update internals are exercised on the retained solo reference
loop (:class:`~repro.core.reference.ReferenceAntColonySystem`); run-level
behaviour is exercised on the engine-backed :class:`AntColonySystem` view,
which the parity suite pins bit-identical to the reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ACOParams
from repro.core.acs import ACSParams, AntColonySystem
from repro.core.reference import ReferenceAntColonySystem
from repro.errors import ACOConfigError
from repro.simt.device import TESLA_C1060
from repro.tsp.generator import uniform_instance
from repro.tsp.tour import validate_tour


@pytest.fixture(scope="module")
def instance():
    return uniform_instance(35, seed=3535)


class TestParams:
    def test_defaults(self):
        p = ACSParams()
        assert p.q0 == 0.9
        assert p.xi == 0.1

    def test_q0_bounds(self):
        ACSParams(q0=0.0)
        ACSParams(q0=1.0)
        with pytest.raises(ACOConfigError):
            ACSParams(q0=1.5)

    def test_xi_bounds(self):
        with pytest.raises(ACOConfigError):
            ACSParams(xi=0.0)
        with pytest.raises(ACOConfigError):
            ACSParams(xi=1.2)


class TestInitialisation:
    def test_acs_tau0_smaller_than_as(self, instance):
        acs = AntColonySystem(instance, ACOParams(seed=1))
        # ACS tau0 = 1/(n C_nn) << AS tau0 = m/C_nn
        assert acs.tau0 < acs.state.tau0
        off = acs.state.pheromone[~np.eye(instance.n, dtype=bool)]
        assert np.allclose(off, acs.tau0)


class TestConstruction:
    def test_valid_tours(self, instance):
        acs = ReferenceAntColonySystem(instance, ACOParams(seed=2))
        tours, report = acs.construct()
        for t in tours:
            validate_tour(t, instance.n)
        assert report.stage == "construction"
        assert report.stats.rng_lcg > 0

    def test_q0_one_is_greedy(self, instance):
        """q0 = 1: every ant moves deterministically to the best candidate,
        so two runs from the same pheromone state make identical choices
        (starts differ by seed only)."""
        acs = ReferenceAntColonySystem(instance, ACOParams(seed=7), ACSParams(q0=1.0))
        choice = acs._choice_info()
        tours, _ = acs.construct()
        # verify the first step of ant 0 was the greedy argmax
        start = int(tours[0, 0])
        row = choice[start].copy()
        row[start] = -np.inf
        assert tours[0, 1] == int(np.argmax(row))

    def test_local_update_decays_toward_tau0(self, instance):
        acs = ReferenceAntColonySystem(instance, ACOParams(seed=3), ACSParams(xi=0.5))
        # inflate one edge artificially, then run a construction pass
        acs.state.pheromone[:, :] = acs.tau0 * 100
        np.fill_diagonal(acs.state.pheromone, 0.0)
        before = acs.state.pheromone.copy()
        acs.construct()
        # every visited edge moved toward tau0 (decreased)
        changed = acs.state.pheromone < before - 1e-18
        assert changed.any()
        assert np.all(acs.state.pheromone[changed] >= acs.tau0 - 1e-18)

    def test_local_update_preserves_symmetry(self, instance):
        acs = ReferenceAntColonySystem(instance, ACOParams(seed=4))
        acs.construct()
        np.testing.assert_allclose(acs.state.pheromone, acs.state.pheromone.T)


class TestGlobalUpdate:
    def test_only_best_edges_touched(self, instance):
        acs = ReferenceAntColonySystem(instance, ACOParams(seed=5), ACSParams(xi=0.01))
        best, _ = acs.run_iteration()
        tau_before = acs.state.pheromone.copy()
        report = acs.global_update()
        assert report.stage == "pheromone"
        diff = ~np.isclose(acs.state.pheromone, tau_before, rtol=1e-15, atol=0)
        # changed cells must be exactly the best tour's (symmetric) edges
        bt = acs.state.best_tour
        expected = np.zeros_like(diff)
        for a, b in zip(bt[:-1], bt[1:]):
            expected[a, b] = expected[b, a] = True
        assert not np.any(diff & ~expected)

    def test_deposit_strength(self, instance):
        acs = ReferenceAntColonySystem(instance, ACOParams(seed=6, rho=0.5))
        acs.run_iteration()
        bt = acs.state.best_tour
        a, b = int(bt[0]), int(bt[1])
        tau_before = float(acs.state.pheromone[a, b])
        acs.global_update()
        expected = 0.5 * tau_before + 0.5 / acs.state.best_length
        assert acs.state.pheromone[a, b] == pytest.approx(expected)


class TestRuns:
    def test_run_improves(self, instance):
        acs = AntColonySystem(instance, ACOParams(seed=8, nn=10))
        res = acs.run(12)
        assert res.best_length <= res.iteration_best_lengths[0]
        validate_tour(res.best_tour, instance.n)

    def test_run_invalid_iterations(self, instance):
        with pytest.raises(ACOConfigError):
            AntColonySystem(instance).run(0)

    def test_deterministic(self, instance):
        a = AntColonySystem(instance, ACOParams(seed=9)).run(4)
        b = AntColonySystem(instance, ACOParams(seed=9)).run(4)
        assert a.iteration_best_lengths == b.iteration_best_lengths

    def test_quality_comparable_to_as(self, instance):
        """ACS with exploitation should match or beat AS early on."""
        from repro.core import AntSystem

        acs = AntColonySystem(instance, ACOParams(seed=10, nn=10)).run(10)
        as_ = AntSystem(
            instance, ACOParams(seed=10, nn=10), construction=8, pheromone=1
        ).run(10)
        assert acs.best_length <= as_.best_length * 1.15

    def test_device_ledger_on_c1060(self, instance):
        acs = AntColonySystem(instance, ACOParams(seed=11), device=TESLA_C1060)
        _, reports = acs.run_iteration()
        assert all(r.stats.kernel_launches >= 1 for r in reports)
        from repro.experiments.calibration import gpu_cost_params

        t = sum(r.modeled_time(TESLA_C1060, gpu_cost_params(TESLA_C1060)) for r in reports)
        assert t > 0
