"""Tests for the AntSystem colony orchestrator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ACOParams, AntSystem
from repro.core.pheromone import make_pheromone
from repro.errors import ACOConfigError
from repro.simt.device import TESLA_C1060, TESLA_M2050
from repro.tsp.tour import validate_tour


class TestConstruction:
    def test_defaults(self, small_instance):
        colony = AntSystem(small_instance)
        assert colony.construction.version == 8
        assert colony.pheromone.version == 1
        assert colony.device is TESLA_M2050

    def test_strategy_selection_by_key(self, small_instance):
        colony = AntSystem(small_instance, construction="nnlist", pheromone="atomic")
        assert colony.construction.version == 4
        assert colony.pheromone.version == 2

    def test_strategy_options(self, small_instance):
        colony = AntSystem(
            small_instance,
            construction=7,
            construction_options={"tile": 64},
            pheromone=4,
            pheromone_options={"theta": 128},
        )
        assert colony.construction.tile == 64
        assert colony.pheromone.theta == 128

    def test_pheromone_instance_passthrough(self, small_instance):
        ph = make_pheromone(3)
        colony = AntSystem(small_instance, pheromone=ph)
        assert colony.pheromone is ph

    def test_rng_streams_sized_for_strategy(self, small_instance):
        task = AntSystem(small_instance, construction=3)
        data = AntSystem(small_instance, construction=7)
        assert task.rng.n_streams == small_instance.n  # m = n
        assert data.rng.n_streams == small_instance.n ** 2

    def test_curand_for_versions_1_2(self, small_instance):
        from repro.rng import XorwowRNG

        colony = AntSystem(small_instance, construction=2)
        assert isinstance(colony.rng, XorwowRNG)


class TestIteration:
    @pytest.mark.parametrize("cv", [1, 3, 4, 6, 7, 8])
    def test_iteration_produces_valid_tours(self, small_instance, cv):
        colony = AntSystem(
            small_instance, ACOParams(seed=5, nn=10), construction=cv, pheromone=1
        )
        rep = colony.run_iteration()
        assert rep.tours.shape == (small_instance.n, small_instance.n + 1)
        for t in rep.tours:
            validate_tour(t, small_instance.n)

    def test_stage_families_present(self, small_instance):
        colony = AntSystem(small_instance, construction=8, pheromone=1)
        rep = colony.run_iteration()
        stages = [s.stage for s in rep.stages]
        assert stages == ["choice", "construction", "pheromone"]

    def test_v1_has_no_choice_stage(self, small_instance):
        colony = AntSystem(small_instance, construction=1)
        rep = colony.run_iteration()
        assert [s.stage for s in rep.stages] == ["construction", "pheromone"]

    def test_stage_lookup(self, small_instance):
        colony = AntSystem(small_instance)
        rep = colony.run_iteration()
        assert rep.stage("pheromone").kernel == "atomic_shared"
        with pytest.raises(KeyError):
            rep.stage("warp_shuffle")

    def test_pheromone_evolves(self, small_instance):
        colony = AntSystem(small_instance, ACOParams(seed=5))
        before = colony.state.pheromone.copy()
        colony.run_iteration()
        assert not np.allclose(colony.state.pheromone, before)


class TestRun:
    def test_run_tracks_best(self, small_instance):
        colony = AntSystem(small_instance, ACOParams(seed=5, nn=10))
        result = colony.run(iterations=5)
        assert len(result.iteration_best_lengths) == 5
        assert result.best_length == min(
            result.best_length, min(result.iteration_best_lengths)
        )
        validate_tour(result.best_tour, small_instance.n)

    def test_run_invalid_iterations(self, small_instance):
        with pytest.raises(ACOConfigError):
            AntSystem(small_instance).run(0)

    def test_deterministic_given_seed(self, small_instance):
        a = AntSystem(small_instance, ACOParams(seed=9)).run(3)
        b = AntSystem(small_instance, ACOParams(seed=9)).run(3)
        assert a.iteration_best_lengths == b.iteration_best_lengths

    def test_modeled_times_positive(self, small_instance):
        colony = AntSystem(small_instance, device=TESLA_C1060)
        result = colony.run(2)
        cost = colony.cost_params()
        assert result.mean_stage_time("construction", cost) > 0
        assert result.mean_stage_time("pheromone", cost) > 0
        assert result.mean_iteration_time(cost) >= result.mean_stage_time(
            "construction", cost
        )

    def test_quality_improves_over_iterations(self, clustered_small):
        """AS should, on average, improve over the first iterations."""
        colony = AntSystem(clustered_small, ACOParams(seed=13, nn=12), construction=8)
        result = colony.run(10)
        first = result.iteration_best_lengths[0]
        assert result.best_length <= first
