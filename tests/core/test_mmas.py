"""Tests for the MAX-MIN Ant System extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ACOParams
from repro.core.mmas import MaxMinAntSystem, MMASParams
from repro.errors import ACOConfigError
from repro.simt.device import TESLA_C1060
from repro.tsp.generator import uniform_instance
from repro.tsp.tour import validate_tour


@pytest.fixture(scope="module")
def instance():
    return uniform_instance(32, seed=3232)


class TestParams:
    def test_validation(self):
        MMASParams(use_best_so_far_every=0)
        with pytest.raises(ACOConfigError):
            MMASParams(use_best_so_far_every=-1)
        with pytest.raises(ACOConfigError):
            MMASParams(tau_min_divisor=0)


class TestLimits:
    def test_initialised_at_tau_max(self, instance):
        mmas = MaxMinAntSystem(instance, ACOParams(seed=1))
        off = mmas.state.pheromone[~np.eye(instance.n, dtype=bool)]
        assert np.allclose(off, mmas.tau_max)
        assert mmas.tau_min < mmas.tau_max

    def test_limits_follow_best(self, instance):
        mmas = MaxMinAntSystem(instance, ACOParams(seed=2, nn=10))
        before = mmas.tau_max
        mmas.run(5)
        # a better tour than greedy must have been found -> tau_max rose
        assert mmas.tau_max >= before

    def test_trails_always_inside_limits(self, instance):
        mmas = MaxMinAntSystem(instance, ACOParams(seed=3, nn=10))
        mmas.run(8)
        tau = mmas.state.pheromone
        off = tau[~np.eye(instance.n, dtype=bool)]
        assert np.all(off >= mmas.tau_min - 1e-15)
        assert np.all(off <= mmas.tau_max + 1e-15)

    def test_reinitialise(self, instance):
        mmas = MaxMinAntSystem(instance, ACOParams(seed=4, nn=10))
        mmas.run(3)
        mmas.reinitialise_trails()
        off = mmas.state.pheromone[~np.eye(instance.n, dtype=bool)]
        assert np.allclose(off, mmas.tau_max)
        assert mmas.trail_reinitialisations == 1


class TestUpdate:
    def test_single_tour_deposit(self, instance):
        mmas = MaxMinAntSystem(instance, ACOParams(seed=5, nn=10, rho=0.2))
        best, stages = mmas.run_iteration()
        pher = [s for s in stages if s.stage == "pheromone"][0]
        # one tour deposits: 2n atomics, not 2mn
        assert pher.stats.atomics_fp == pytest.approx(2.0 * instance.n)

    def test_evaporation_dominates_ledger(self, instance):
        mmas = MaxMinAntSystem(instance, ACOParams(seed=6, nn=10))
        _, stages = mmas.run_iteration()
        pher = [s for s in stages if s.stage == "pheromone"][0]
        # evaporation + clamp sweeps: two full-matrix loads and two stores
        assert pher.stats.gmem_load_bytes >= 2 * 4 * instance.n**2
        assert pher.stats.gmem_store_bytes >= 2 * 4 * instance.n**2

    def test_best_so_far_schedule(self, instance):
        mmas = MaxMinAntSystem(
            instance, ACOParams(seed=7, nn=10), MMASParams(use_best_so_far_every=1)
        )
        mmas.run(3)  # every iteration deposits best-so-far; must not crash
        assert mmas.state.best_length is not None


class TestRuns:
    def test_run_improves_and_validates(self, instance):
        mmas = MaxMinAntSystem(instance, ACOParams(seed=8, nn=10))
        res = mmas.run(10)
        validate_tour(res.best_tour, instance.n)
        assert res.best_length <= res.iteration_best_lengths[0]

    def test_deterministic(self, instance):
        a = MaxMinAntSystem(instance, ACOParams(seed=9, nn=10)).run(4)
        b = MaxMinAntSystem(instance, ACOParams(seed=9, nn=10)).run(4)
        assert a.iteration_best_lengths == b.iteration_best_lengths

    def test_invalid_iterations(self, instance):
        with pytest.raises(ACOConfigError):
            MaxMinAntSystem(instance).run(0)

    def test_works_with_task_based_kernel(self, instance):
        mmas = MaxMinAntSystem(instance, ACOParams(seed=10, nn=10), construction=3)
        res = mmas.run(3)
        validate_tour(res.best_tour, instance.n)

    def test_works_on_c1060(self, instance):
        mmas = MaxMinAntSystem(instance, ACOParams(seed=11, nn=10), device=TESLA_C1060)
        _, stages = mmas.run_iteration()
        from repro.experiments.calibration import gpu_cost_params

        total = sum(
            s.modeled_time(TESLA_C1060, gpu_cost_params(TESLA_C1060)) for s in stages
        )
        assert total > 0

    def test_reinit_on_stagnation(self, instance):
        """Aggressive convergence + reinit threshold triggers at least one
        trail reset."""
        mmas = MaxMinAntSystem(
            instance,
            ACOParams(seed=12, nn=10, rho=0.9, beta=5.0),
            MMASParams(use_best_so_far_every=1),
        )
        res = mmas.run(20, reinit_branching=2.5)
        assert res.trail_reinitialisations >= 1


class TestBranchingFactor:
    def test_uniform_trails_have_high_branching(self, instance):
        mmas = MaxMinAntSystem(instance, ACOParams(seed=13))
        # all trails equal tau_max -> every edge passes the threshold
        assert mmas.branching_factor() == pytest.approx(instance.n - 1)

    def test_converged_trails_have_low_branching(self, instance):
        mmas = MaxMinAntSystem(instance, ACOParams(seed=14))
        tau = mmas.state.pheromone
        tau[:, :] = mmas.tau_min
        ring = np.arange(instance.n)
        tau[ring, np.roll(ring, -1)] = mmas.tau_max
        tau[np.roll(ring, -1), ring] = mmas.tau_max
        np.fill_diagonal(tau, 0.0)
        assert mmas.branching_factor() <= 2.5
