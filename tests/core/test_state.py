"""Tests for ColonyState."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ACOParams
from repro.core.state import ColonyState
from repro.simt.device import TESLA_C1060


class TestCreate:
    def test_dimensions(self, small_instance):
        st = ColonyState.create(small_instance, ACOParams(), TESLA_C1060)
        assert st.n == 40
        assert st.m == 40  # m = n
        assert st.nn == 30
        assert st.dist.shape == (40, 40)
        assert st.nn_list.shape == (40, 30)

    def test_tau0_matches_acotsp_rule(self, small_instance):
        from repro.tsp.tour import nearest_neighbor_tour, tour_length

        st = ColonyState.create(small_instance, ACOParams(), TESLA_C1060)
        d = small_instance.distance_matrix()
        c_nn = tour_length(nearest_neighbor_tour(d), d)
        assert st.tau0 == pytest.approx(st.m / c_nn)

    def test_pheromone_uniform_off_diagonal(self, small_instance):
        st = ColonyState.create(small_instance, ACOParams(), TESLA_C1060)
        off = st.pheromone[~np.eye(40, dtype=bool)]
        assert np.allclose(off, st.tau0)
        assert np.all(np.diag(st.pheromone) == 0)

    def test_explicit_ants(self, small_instance):
        st = ColonyState.create(small_instance, ACOParams(n_ants=8), TESLA_C1060)
        assert st.m == 8


class TestBookkeeping:
    def test_record_tours_tracks_best(self, small_instance):
        st = ColonyState.create(small_instance, ACOParams(), TESLA_C1060)
        tours = np.tile(np.r_[np.arange(40), 0].astype(np.int32), (40, 1))
        lengths = np.arange(100, 140, dtype=np.int64)
        st.record_tours(tours, lengths)
        assert st.best_length == 100
        lengths2 = lengths + 50
        st.record_tours(tours, lengths2)
        assert st.best_length == 100  # not worsened

    def test_footprint_positive_and_scales(self, small_instance, medium_instance):
        a = ColonyState.create(small_instance, ACOParams(), TESLA_C1060)
        b = ColonyState.create(medium_instance, ACOParams(), TESLA_C1060)
        assert 0 < a.gpu_footprint_bytes < b.gpu_footprint_bytes
