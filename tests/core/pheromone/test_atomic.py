"""Tests for the atomic pheromone-update kernels (versions 1-2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ACOParams
from repro.core.pheromone.atomic import AtomicPheromone, AtomicSharedPheromone
from repro.core.state import ColonyState
from repro.simt.device import TESLA_C1060, TESLA_M2050
from repro.tsp.tour import random_tour, tour_lengths


@pytest.fixture
def state(small_instance):
    return ColonyState.create(small_instance, ACOParams(seed=3, rho=0.5), TESLA_M2050)


@pytest.fixture
def tours_and_lengths(state):
    rng = np.random.default_rng(8)
    tours = np.stack([random_tour(state.n, rng) for _ in range(state.m)])
    return tours, tour_lengths(tours, state.dist)


class TestFunctional:
    def test_update_changes_matrix(self, state, tours_and_lengths):
        tours, lengths = tours_and_lengths
        before = state.pheromone.copy()
        AtomicSharedPheromone().update(state, tours, lengths)
        assert not np.allclose(state.pheromone, before)

    def test_symmetry_preserved(self, state, tours_and_lengths):
        tours, lengths = tours_and_lengths
        AtomicSharedPheromone().update(state, tours, lengths)
        np.testing.assert_allclose(state.pheromone, state.pheromone.T)

    def test_exact_update_semantics(self, state, tours_and_lengths):
        tours, lengths = tours_and_lengths
        rho = state.params.rho
        expected = state.pheromone * (1 - rho)
        for k in range(state.m):
            delta = 1.0 / lengths[k]
            for a, b in zip(tours[k, :-1], tours[k, 1:]):
                expected[a, b] += delta
                expected[b, a] += delta
        AtomicSharedPheromone().update(state, tours, lengths)
        np.testing.assert_allclose(state.pheromone, expected, rtol=1e-12)

    def test_v1_v2_functionally_identical(self, small_instance, tours_and_lengths):
        tours, lengths = tours_and_lengths
        s1 = ColonyState.create(small_instance, ACOParams(seed=3), TESLA_M2050)
        s2 = ColonyState.create(small_instance, ACOParams(seed=3), TESLA_M2050)
        AtomicSharedPheromone().update(s1, tours, lengths)
        AtomicPheromone().update(s2, tours, lengths)
        np.testing.assert_allclose(s1.pheromone, s2.pheromone)

    def test_nonnegative(self, state, tours_and_lengths):
        tours, lengths = tours_and_lengths
        for _ in range(5):
            AtomicSharedPheromone().update(state, tours, lengths)
        assert np.all(state.pheromone >= 0)


class TestLedgers:
    def test_atomics_counted(self, state, tours_and_lengths):
        tours, lengths = tours_and_lengths
        rep = AtomicSharedPheromone().update(state, tours, lengths)
        assert rep.stats.atomics_fp == pytest.approx(2.0 * state.m * state.n)

    def test_hot_degree_from_functional_run(self, state, tours_and_lengths):
        tours, lengths = tours_and_lengths
        rep = AtomicSharedPheromone().update(state, tours, lengths)
        assert rep.stats.atomic_hot_degree >= 1.0

    def test_v1_uses_smem_v2_does_not(self):
        s1, _ = AtomicSharedPheromone().predict_stats(100, 100, TESLA_C1060)
        s2, _ = AtomicPheromone().predict_stats(100, 100, TESLA_C1060)
        assert s1.smem_accesses > 0
        assert s2.smem_accesses == 0
        assert s2.gmem_load_bytes > s1.gmem_load_bytes

    def test_two_launches_evap_plus_deposit(self):
        s, _ = AtomicSharedPheromone().predict_stats(100, 100, TESLA_C1060)
        assert s.kernel_launches == 2

    def test_same_atomics_both_versions(self):
        s1, _ = AtomicSharedPheromone().predict_stats(100, 100, TESLA_C1060)
        s2, _ = AtomicPheromone().predict_stats(100, 100, TESLA_C1060)
        assert s1.atomics_fp == s2.atomics_fp

    def test_modeled_time_c1060_pays_emulation(self, state, tours_and_lengths):
        """Same ledger, both devices: CC 1.3 emulation makes C1060 slower
        despite its higher core count — the paper's Figure 5 asymmetry."""
        from repro.experiments.calibration import gpu_cost_params
        from repro.simt.timing import estimate_time

        s, launch = AtomicSharedPheromone().predict_stats(1002, 1002, TESLA_C1060)
        t_c = estimate_time(s, TESLA_C1060, gpu_cost_params(TESLA_C1060))
        s_m, _ = AtomicSharedPheromone().predict_stats(1002, 1002, TESLA_M2050)
        t_m = estimate_time(s_m, TESLA_M2050, gpu_cost_params(TESLA_M2050))
        assert t_c > 2.0 * t_m
