"""Tests for the scatter-to-gather pheromone kernels (versions 3-5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ACOParams
from repro.core.pheromone.reduction import ReductionPheromone
from repro.core.pheromone.scatter_gather import (
    ScatterGatherPheromone,
    ScatterGatherTiledPheromone,
)
from repro.core.state import ColonyState
from repro.errors import ACOConfigError
from repro.simt.device import TESLA_C1060, TESLA_M2050
from repro.tsp.tour import random_tour, tour_lengths


@pytest.fixture
def state(small_instance):
    return ColonyState.create(small_instance, ACOParams(seed=3), TESLA_C1060)


@pytest.fixture
def tours_and_lengths(state):
    rng = np.random.default_rng(4)
    tours = np.stack([random_tour(state.n, rng) for _ in range(state.m)])
    return tours, tour_lengths(tours, state.dist)


class TestPaperFormulas:
    """The paper gives the traffic formulas explicitly — assert them."""

    def test_v5_total_loads_2n4(self):
        n = m = 100
        s, _ = ScatterGatherPheromone().predict_stats(n, m, TESLA_C1060)
        # scan loads: 2 * n^2 cells * m * (n+1) entries... the paper rounds
        # tours to n^2: check the leading term is 2 n^4 within (n+1)/n slack
        scan_bytes = 4.0 * 2.0 * n * n * m * (n + 1)
        assert s.gmem_load_bytes == pytest.approx(
            scan_bytes + 4.0 * (n * n + m), rel=1e-6
        )

    def test_v4_divides_global_by_theta(self):
        n = m = 100
        theta = 256
        s4, l4 = ScatterGatherTiledPheromone(theta=theta).predict_stats(
            n, m, TESLA_C1060
        )
        s5, _ = ScatterGatherPheromone(theta=theta).predict_stats(n, m, TESLA_C1060)
        scan5 = s5.gmem_load_bytes - 4.0 * (n * n + m)
        scan4 = s4.gmem_load_bytes - 4.0 * (n * n + m)
        assert scan4 == pytest.approx(scan5 / l4.block, rel=1e-6)

    def test_v4_full_stream_hits_shared(self):
        n = m = 100
        s4, _ = ScatterGatherTiledPheromone().predict_stats(n, m, TESLA_C1060)
        assert s4.smem_accesses >= 2.0 * n * n * m * (n + 1)

    def test_v3_half_the_threads_half_the_work(self):
        n = m = 100
        s3, l3 = ReductionPheromone().predict_stats(n, m, TESLA_C1060)
        s4, l4 = ScatterGatherTiledPheromone().predict_stats(n, m, TESLA_C1060)
        # thread count halves (upper triangle)
        assert l3.grid * l3.block <= l4.grid * l4.block * 0.6
        # total smem access stream roughly halves
        assert s3.smem_accesses < 0.6 * s4.smem_accesses

    def test_no_atomics_in_any_gather_version(self):
        for cls in (ReductionPheromone, ScatterGatherTiledPheromone, ScatterGatherPheromone):
            s, _ = cls().predict_stats(100, 100, TESLA_C1060)
            assert s.total_atomics() == 0


class TestFunctionalEquivalence:
    def test_all_five_versions_identical_matrices(
        self, small_instance, tours_and_lengths
    ):
        """Every strategy computes the same mathematical update."""
        from repro.core.pheromone import PHEROMONE_VERSIONS

        tours, lengths = tours_and_lengths
        results = []
        for _version, cls in sorted(PHEROMONE_VERSIONS.items()):
            st = ColonyState.create(small_instance, ACOParams(seed=3), TESLA_M2050)
            cls().update(st, tours, lengths)
            results.append(st.pheromone)
        for other in results[1:]:
            np.testing.assert_allclose(results[0], other, rtol=1e-12)

    def test_theta_validation(self):
        with pytest.raises(ACOConfigError):
            ScatterGatherPheromone(theta=8)
        with pytest.raises(ACOConfigError):
            ReductionPheromone(theta=0)


class TestOrdering:
    """Model-time orderings the paper's tables show."""

    def _time(self, cls, n, device, **kw):
        from repro.experiments.calibration import gpu_cost_params
        from repro.simt.timing import estimate_time

        s, launch = cls(**kw).predict_stats(n, n, device)
        return estimate_time(
            s,
            device,
            gpu_cost_params(device),
            effective_parallelism=launch.occupancy(device).effective_parallelism,
        )

    @pytest.mark.parametrize("device", [TESLA_C1060, TESLA_M2050], ids=["c1060", "m2050"])
    def test_gather_versions_dwarf_atomics(self, device):
        from repro.core.pheromone.atomic import AtomicSharedPheromone

        t_atomic = self._time(AtomicSharedPheromone, 442, device)
        t_s2g = self._time(ScatterGatherPheromone, 442, device)
        assert t_s2g > 50 * t_atomic

    def test_tiling_beats_plain_s2g_at_scale(self):
        t4 = self._time(ScatterGatherTiledPheromone, 657, TESLA_C1060)
        t5 = self._time(ScatterGatherPheromone, 657, TESLA_C1060)
        assert t4 < t5

    def test_reduction_beats_tiled_at_scale(self):
        t3 = self._time(ReductionPheromone, 657, TESLA_C1060)
        t4 = self._time(ScatterGatherTiledPheromone, 657, TESLA_C1060)
        assert t3 < t4

    def test_slowdown_grows_with_n(self):
        from repro.core.pheromone.atomic import AtomicSharedPheromone

        slow = []
        for n in (100, 280, 442):
            slow.append(
                self._time(ScatterGatherPheromone, n, TESLA_C1060)
                / self._time(AtomicSharedPheromone, n, TESLA_C1060)
            )
        assert slow[0] < slow[1] < slow[2]
