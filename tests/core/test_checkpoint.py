"""Engine checkpoint format: versioning, validation, atomicity, metrics.

Bit-identical resume parity lives in
:mod:`tests.property.test_checkpoint_parity`; this file pins the file
format itself — magic/version gates, fingerprint mismatch rejection,
atomic replace semantics and the pre-run (``has_best=False``) path.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import (
    ACOParams,
    BatchEngine,
    EngineCheckpoint,
    capture_checkpoint,
    engine_fingerprint,
    load_checkpoint,
    restore_engine,
    save_checkpoint,
)
from repro.core.checkpoint import CHECKPOINT_MAGIC, FORMAT_VERSION
from repro.errors import CheckpointError
from repro.tsp import uniform_instance

ITERATIONS = 6
K = 3


@pytest.fixture(scope="module")
def instance():
    return uniform_instance(16, seed=3100)


def _engine(instance, **kwargs):
    return BatchEngine(
        instance, [ACOParams(seed=s, nn=7) for s in (11, 19)], **kwargs
    )


class TestRoundTrip:
    def test_save_load_preserves_meta_and_arrays(self, instance, tmp_path):
        engine = _engine(instance)
        engine.run(ITERATIONS, report_every=K)
        ck = capture_checkpoint(engine)
        path = save_checkpoint(ck, tmp_path / "ck.npz")
        loaded = load_checkpoint(path)
        assert loaded.meta["magic"] == CHECKPOINT_MAGIC
        assert loaded.meta["format_version"] == FORMAT_VERSION
        assert loaded.iteration == ITERATIONS
        assert loaded.fingerprint == ck.fingerprint
        assert set(loaded.arrays) == set(ck.arrays)
        for name, arr in ck.arrays.items():
            np.testing.assert_array_equal(loaded.arrays[name], arr)

    def test_engine_methods_mirror_module_functions(self, instance, tmp_path):
        engine = _engine(instance)
        engine.run(ITERATIONS, report_every=K)
        ck = engine.checkpoint(tmp_path / "m.npz")
        assert isinstance(ck, EngineCheckpoint)
        other = _engine(instance)
        assert other.restore(tmp_path / "m.npz") is other
        np.testing.assert_array_equal(
            other.state.pheromone, engine.state.pheromone
        )
        assert other.state.iteration == ITERATIONS

    def test_fingerprint_is_json_native(self, instance):
        fp = engine_fingerprint(_engine(instance))
        assert fp == json.loads(json.dumps(fp))

    def test_capture_before_any_run(self, instance, tmp_path):
        """``has_best=False``: a never-run engine checkpoints and resumes."""
        fresh = _engine(instance)
        path = save_checkpoint(fresh, tmp_path / "zero.npz")
        restored = _engine(instance)
        restored.restore(load_checkpoint(path))
        a = restored.run(ITERATIONS, report_every=K)
        b = _engine(instance).run(ITERATIONS, report_every=K)
        for ra, rb in zip(a.results, b.results):
            assert ra.best_length == rb.best_length
            np.testing.assert_array_equal(ra.best_tour, rb.best_tour)


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "nope.npz")

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_npz_without_meta(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, data=np.zeros(3))
        with pytest.raises(CheckpointError, match="bad metadata"):
            load_checkpoint(path)

    def _tampered(self, instance, tmp_path, **meta_overrides):
        engine = _engine(instance)
        engine.run(2)
        ck = capture_checkpoint(engine)
        meta = dict(ck.meta, **meta_overrides)
        path = tmp_path / "tampered.npz"
        save_checkpoint(EngineCheckpoint(meta=meta, arrays=ck.arrays), path)
        return path

    def test_wrong_magic(self, instance, tmp_path):
        path = self._tampered(instance, tmp_path, magic="other-format")
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(path)

    def test_future_format_version(self, instance, tmp_path):
        path = self._tampered(
            instance, tmp_path, format_version=FORMAT_VERSION + 1
        )
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_fingerprint_mismatch_names_differing_keys(
        self, instance, tmp_path
    ):
        engine = _engine(instance)
        engine.run(2)
        path = save_checkpoint(engine, tmp_path / "rho.npz")
        other = BatchEngine(
            instance, [ACOParams(seed=s, nn=7, rho=0.9) for s in (11, 19)]
        )
        with pytest.raises(CheckpointError, match="rows"):
            restore_engine(other, load_checkpoint(path))

    def test_fingerprint_mismatch_on_different_instance(self, tmp_path):
        engine = _engine(uniform_instance(16, seed=3100))
        engine.run(2)
        path = save_checkpoint(engine, tmp_path / "inst.npz")
        other = _engine(uniform_instance(16, seed=3101))
        with pytest.raises(CheckpointError, match="rows"):
            restore_engine(other, load_checkpoint(path))

    def test_variant_mismatch(self, instance, tmp_path):
        engine = _engine(instance)
        engine.run(2)
        path = save_checkpoint(engine, tmp_path / "var.npz")
        other = _engine(instance, variant="mmas")
        with pytest.raises(CheckpointError):
            restore_engine(other, load_checkpoint(path))


class TestAtomicity:
    def test_failed_write_keeps_previous_checkpoint(
        self, instance, tmp_path, monkeypatch
    ):
        engine = _engine(instance)
        engine.run(2)
        path = tmp_path / "ck.npz"
        save_checkpoint(engine, path)
        before = path.read_bytes()
        engine.run(2)

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", boom)
        with pytest.raises(CheckpointError, match="disk full"):
            save_checkpoint(engine, path)
        assert path.read_bytes() == before
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_no_tmp_left_after_success(self, instance, tmp_path):
        engine = _engine(instance)
        engine.run(2)
        save_checkpoint(engine, tmp_path / "ck.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["ck.npz"]


class TestMetrics:
    def test_checkpoint_counter_increments(self, instance, tmp_path):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        engine = _engine(instance, metrics=metrics)
        engine.run(2)
        engine.checkpoint(tmp_path / "a.npz")
        engine.checkpoint(tmp_path / "b.npz")
        counters = metrics.snapshot()["counters"]
        assert counters["engine.checkpoints_written"] == 2

    def test_capture_without_path_writes_nothing(self, instance, tmp_path):
        engine = _engine(instance)
        engine.run(2)
        engine.checkpoint()
        assert list(tmp_path.iterdir()) == []
