"""Tests for the construction registry and shared strategy metadata."""

from __future__ import annotations

import pytest

from repro.core.construction import (
    CONSTRUCTION_VERSIONS,
    DataParallelConstruction,
    NNListTextureConstruction,
    make_construction,
)
from repro.experiments.paper_data import CONSTRUCTION_LABELS


class TestRegistry:
    def test_all_eight_versions_present(self):
        assert sorted(CONSTRUCTION_VERSIONS) == list(range(1, 9))

    def test_labels_match_paper_rows(self):
        for version, cls in CONSTRUCTION_VERSIONS.items():
            assert cls.label == CONSTRUCTION_LABELS[version]

    def test_version_attribute_consistent(self):
        for version, cls in CONSTRUCTION_VERSIONS.items():
            assert cls.version == version

    def test_keys_unique(self):
        keys = [cls.key for cls in CONSTRUCTION_VERSIONS.values()]
        assert len(set(keys)) == 8

    def test_rng_kinds(self):
        # CURAND for versions 1-2, device LCG from version 3 on.
        assert CONSTRUCTION_VERSIONS[1].rng_kind == "curand"
        assert CONSTRUCTION_VERSIONS[2].rng_kind == "curand"
        for v in range(3, 9):
            assert CONSTRUCTION_VERSIONS[v].rng_kind == "lcg"

    def test_only_v1_skips_choice_kernel(self):
        assert not CONSTRUCTION_VERSIONS[1].needs_choice_info
        for v in range(2, 9):
            assert CONSTRUCTION_VERSIONS[v].needs_choice_info


class TestFactory:
    def test_by_version(self):
        assert make_construction(6).version == 6

    def test_by_key(self):
        s = make_construction("nnlist_texture")
        assert isinstance(s, NNListTextureConstruction)

    def test_instance_passthrough(self):
        inst = DataParallelConstruction(tile=64)
        assert make_construction(inst) is inst

    def test_instance_with_options_rejected(self):
        with pytest.raises(ValueError):
            make_construction(DataParallelConstruction(), tile=64)

    def test_options_forwarded(self):
        s = make_construction(7, tile=128, tile_rule="heuristic")
        assert s.tile == 128
        assert s.tile_rule == "heuristic"

    def test_unknown_version(self):
        with pytest.raises(ValueError, match="unknown construction version"):
            make_construction(9)

    def test_unknown_key(self):
        with pytest.raises(ValueError, match="unknown construction key"):
            make_construction("warp_9000")

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            make_construction(True)
