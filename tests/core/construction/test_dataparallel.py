"""Tests for the data-parallel construction kernels (versions 7-8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.choice import ChoiceKernel
from repro.core.construction.dataparallel import (
    DataParallelConstruction,
    DataParallelTextureConstruction,
)
from repro.core.params import ACOParams
from repro.core.state import ColonyState
from repro.errors import ACOConfigError
from repro.rng import ParkMillerLCG
from repro.simt.device import TESLA_C1060
from repro.tsp.tour import validate_tour


def make_state(instance, device=TESLA_C1060, nn=10, seed=3):
    st = ColonyState.create(instance, ACOParams(seed=seed, nn=nn), device)
    ChoiceKernel().run(st)
    return st


def make_rng(state, seed=5):
    return ParkMillerLCG(n_streams=state.m * state.n, seed=seed)


class TestConfig:
    def test_tile_validation(self):
        with pytest.raises(ACOConfigError):
            DataParallelConstruction(tile=16)
        with pytest.raises(ACOConfigError):
            DataParallelConstruction(tile_rule="roulette")

    def test_rng_streams_one_per_thread(self):
        s = DataParallelConstruction()
        assert s.rng_streams(100, 100) == 10_000

    def test_tile_width_clipped(self):
        s = DataParallelConstruction(tile=512)
        assert s.tile_width(TESLA_C1060, 2392) == 512
        assert s.tile_width(TESLA_C1060, 100) == 128  # rounded to warps

    def test_launch_block_per_ant(self, small_instance):
        s = DataParallelConstruction()
        cfg = s.launch_config(TESLA_C1060, n=40, m=40)
        assert cfg.grid == 40


class TestFunctional:
    def test_valid_tours_single_tile(self, small_instance):
        st = make_state(small_instance)
        res = DataParallelConstruction(tile=64).build(st, make_rng(st))
        for t in res.tours:
            validate_tour(t, st.n)

    def test_valid_tours_multi_tile(self, medium_instance):
        st = make_state(medium_instance)
        res = DataParallelConstruction(tile=64).build(st, make_rng(st))
        assert st.n > 64  # really tiled
        for t in res.tours:
            validate_tour(t, st.n)

    def test_texture_variant_same_tours(self, small_instance):
        st = make_state(small_instance)
        a = DataParallelConstruction(tile=64).build(st, make_rng(st, 9)).tours
        b = DataParallelTextureConstruction(tile=64).build(st, make_rng(st, 9)).tours
        np.testing.assert_array_equal(a, b)

    def test_product_rule_tile_invariant(self, medium_instance):
        """With the product rule, the winner is the global argmax — the tile
        partition must not change the tours."""
        st = make_state(medium_instance)
        a = DataParallelConstruction(tile=32).build(st, make_rng(st, 4)).tours
        b = DataParallelConstruction(tile=128).build(st, make_rng(st, 4)).tours
        np.testing.assert_array_equal(a, b)

    def test_heuristic_rule_differs_under_tiling(self, medium_instance):
        st = make_state(medium_instance)
        prod = DataParallelConstruction(tile=32, tile_rule="product")
        heur = DataParallelConstruction(tile=32, tile_rule="heuristic")
        a = prod.build(st, make_rng(st, 4)).tours
        b = heur.build(st, make_rng(st, 4)).tours
        assert not np.array_equal(a, b)

    def test_insufficient_streams_raises(self, small_instance):
        st = make_state(small_instance)
        with pytest.raises(ACOConfigError, match="rng streams"):
            DataParallelConstruction().build(st, ParkMillerLCG(st.m, 1))

    def test_prefers_high_choice(self, small_instance):
        st = make_state(small_instance)
        st.choice_info[:, :] = 1e-9
        st.choice_info[:, 7] = 1e9
        np.fill_diagonal(st.choice_info, 0.0)
        res = DataParallelConstruction(tile=64).build(st, make_rng(st, 11))
        for t in res.tours:
            if t[0] != 7:
                assert t[1] == 7


class TestPredictMatchesSimulate:
    """The core cross-validation: independent closed forms == recorded runs."""

    @pytest.mark.parametrize("tile", [32, 64, 128])
    @pytest.mark.parametrize("cls", [DataParallelConstruction, DataParallelTextureConstruction])
    def test_exact_ledger_match(self, cls, tile, medium_instance):
        st = make_state(medium_instance)
        strategy = cls(tile=tile)
        res = strategy.build(st, make_rng(st))
        pred, launch = strategy.predict_stats(st.n, st.m, st.nn, TESLA_C1060)
        assert res.report.stats.approx_equal(pred), res.report.stats.diff(pred)
        assert res.report.launch == launch

    def test_heuristic_rule_ledger_match(self, medium_instance):
        st = make_state(medium_instance)
        strategy = DataParallelConstruction(tile=32, tile_rule="heuristic")
        res = strategy.build(st, make_rng(st))
        pred, _ = strategy.predict_stats(st.n, st.m, st.nn, TESLA_C1060)
        assert res.report.stats.approx_equal(pred), res.report.stats.diff(pred)


class TestLedgers:
    def test_v8_reads_choice_via_texture(self):
        s7, _ = DataParallelConstruction().predict_stats(100, 100, 30, TESLA_C1060)
        s8, _ = DataParallelTextureConstruction().predict_stats(
            100, 100, 30, TESLA_C1060
        )
        assert s8.tex_bytes > 0
        assert s8.gmem_load_bytes < s7.gmem_load_bytes
        assert s7.tex_bytes == 0

    def test_rng_one_per_thread_per_step(self):
        s, _ = DataParallelConstruction().predict_stats(100, 100, 30, TESLA_C1060)
        assert s.rng_lcg == pytest.approx(100 + 99 * 100 * 100)

    def test_serial_barriers_scale_with_steps_and_tiles(self):
        one_tile, _ = DataParallelConstruction(tile=256).predict_stats(
            200, 200, 30, TESLA_C1060
        )
        four_tiles, _ = DataParallelConstruction(tile=64).predict_stats(
            200, 200, 30, TESLA_C1060
        )
        assert four_tiles.serial_barriers > one_tile.serial_barriers

    def test_no_divergent_branches(self):
        """The design point of Fig. 1: flag multiply instead of branching."""
        s, _ = DataParallelConstruction().predict_stats(100, 100, 30, TESLA_C1060)
        assert s.divergent_branches == 0
