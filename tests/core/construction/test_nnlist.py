"""Tests for the NN-list construction kernels (versions 4-6)."""

from __future__ import annotations

import math

import pytest

from repro.core.choice import ChoiceKernel
from repro.core.construction.base import expected_fallback_steps
from repro.core.construction.nnlist import (
    NNListConstruction,
    NNListSharedConstruction,
    NNListTextureConstruction,
    tabu_layout,
)
from repro.core.params import ACOParams
from repro.core.state import ColonyState
from repro.rng import ParkMillerLCG
from repro.simt.device import TESLA_C1060, TESLA_M2050
from repro.tsp.tour import validate_tour


@pytest.fixture
def state(small_instance):
    st = ColonyState.create(small_instance, ACOParams(seed=3, nn=10), TESLA_C1060)
    ChoiceKernel().run(st)
    return st


class TestTabuLayout:
    def test_small_instances_use_word_layout(self):
        layout = tabu_layout(48, TESLA_C1060)
        assert layout.mode == "word"
        assert layout.ants_per_block == 128

    def test_large_instances_go_bitwise_on_c1060(self):
        layout = tabu_layout(1002, TESLA_C1060)
        assert layout.mode == "bitwise"
        assert layout.ants_per_block >= 32

    def test_pr2392_fits_bitwise(self):
        layout = tabu_layout(2392, TESLA_C1060)
        assert layout.mode == "bitwise"
        assert layout.smem_per_block <= TESLA_C1060.shared_mem_per_sm

    def test_m2050_keeps_word_longer(self):
        # 48 KB shared: word layout still viable at a280
        assert tabu_layout(280, TESLA_M2050).mode == "word"
        assert tabu_layout(280, TESLA_C1060).mode == "bitwise"

    def test_bitwise_bytes_exact(self):
        layout = tabu_layout(100, TESLA_M2050)
        if layout.mode == "bitwise":  # pragma: no cover - device dependent
            assert layout.smem_per_block == layout.ants_per_block * 4 * math.ceil(100 / 32)


class TestFunctional:
    @pytest.mark.parametrize(
        "cls", [NNListConstruction, NNListSharedConstruction, NNListTextureConstruction]
    )
    def test_valid_tours(self, cls, state):
        res = cls().build(state, ParkMillerLCG(state.m, 5))
        for t in res.tours:
            validate_tour(t, state.n)

    def test_all_three_versions_same_tours(self, state):
        """Versions 4-6 share functional semantics; only the ledgers differ."""
        import numpy as np

        tours = [
            cls().build(state, ParkMillerLCG(state.m, 77)).tours
            for cls in (NNListConstruction, NNListSharedConstruction, NNListTextureConstruction)
        ]
        np.testing.assert_array_equal(tours[0], tours[1])
        np.testing.assert_array_equal(tours[1], tours[2])

    def test_fallbacks_counted(self, state):
        res = NNListConstruction().build(state, ParkMillerLCG(state.m, 5))
        assert res.fallback_steps > 0  # nn=10 on n=40 always exhausts eventually


class TestLedgers:
    def test_v4_tabu_in_gmem_v5_in_smem(self):
        n, m, nn = 280, 280, 30
        s4, _ = NNListConstruction().predict_stats(n, m, nn, TESLA_C1060)
        s5, _ = NNListSharedConstruction().predict_stats(n, m, nn, TESLA_C1060)
        assert s5.smem_accesses > s4.smem_accesses
        assert s5.gmem_load_bytes < s4.gmem_load_bytes

    def test_bitwise_mode_charges_extra_int_ops(self):
        # a280 on C1060 is bitwise; on M2050 it is word-mode
        s_c, _ = NNListSharedConstruction().predict_stats(280, 280, 30, TESLA_C1060)
        s_m, _ = NNListSharedConstruction().predict_stats(280, 280, 30, TESLA_M2050)
        assert s_c.int_ops > s_m.int_ops

    def test_v6_moves_rng_to_texture(self):
        n, m, nn = 280, 280, 30
        s5, _ = NNListSharedConstruction().predict_stats(n, m, nn, TESLA_C1060)
        s6, _ = NNListTextureConstruction().predict_stats(n, m, nn, TESLA_C1060)
        assert s6.tex_bytes > 0
        assert s5.tex_bytes == 0
        # the fill kernel is an extra launch
        assert s6.kernel_launches == s5.kernel_launches + 1

    def test_fallback_term_scales(self):
        s_none, _ = NNListConstruction().predict_stats(
            280, 280, 30, TESLA_C1060, fallback_steps=0
        )
        s_many, _ = NNListConstruction().predict_stats(
            280, 280, 30, TESLA_C1060, fallback_steps=1000
        )
        assert s_many.gmem_load_bytes > s_none.gmem_load_bytes

    def test_nn_width_scales_candidates(self):
        s10, _ = NNListConstruction().predict_stats(300, 300, 10, TESLA_C1060)
        s30, _ = NNListConstruction().predict_stats(300, 300, 30, TESLA_C1060)
        assert s30.rng_lcg > 2.5 * s10.rng_lcg

    def test_build_matches_prediction(self, state):
        strategy = NNListSharedConstruction()
        res = strategy.build(state, ParkMillerLCG(state.m, 5))
        pred, _ = strategy.predict_stats(
            state.n, state.m, state.nn, TESLA_C1060, fallback_steps=res.fallback_steps
        )
        assert res.report.stats.approx_equal(pred), res.report.stats.diff(pred)

    def test_shared_block_sized_by_tabu(self):
        _, launch = NNListSharedConstruction().predict_stats(1002, 1002, 30, TESLA_C1060)
        assert launch.smem_per_block <= TESLA_C1060.shared_mem_per_sm
        assert launch.smem_per_block > 0


class TestFallbackModel:
    def test_measured_band(self, state):
        """The 0.62 * n / nn model holds within a factor band on real runs."""
        import numpy as np

        # warm the pheromone for two iterations, then measure
        strategy = NNListConstruction()
        rng = ParkMillerLCG(state.m, 5)
        measured = []
        for _ in range(4):
            res = strategy.build(state, rng)
            measured.append(res.fallback_steps)
        mean = float(np.mean(measured[1:]))
        model = expected_fallback_steps(state.n, state.m, state.nn)
        assert 0.3 * model <= mean <= 3.0 * model

    def test_model_shrinks_with_nn(self):
        assert expected_fallback_steps(500, 500, 40) < expected_fallback_steps(
            500, 500, 10
        )

    def test_model_clipped_by_steps(self):
        assert expected_fallback_steps(10, 10, 1) <= 10 * 9

    def test_degenerate_n(self):
        assert expected_fallback_steps(1, 1, 1) == 0.0
