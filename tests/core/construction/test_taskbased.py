"""Tests for the task-based construction kernels (versions 1-3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.construction.taskbased import (
    BaselineTaskConstruction,
    ChoiceKernelTaskConstruction,
    DeviceRngTaskConstruction,
    construct_exact,
)
from repro.core.choice import ChoiceKernel
from repro.core.params import ACOParams
from repro.core.state import ColonyState
from repro.rng import ParkMillerLCG, XorwowRNG
from repro.simt.device import TESLA_C1060
from repro.tsp.tour import validate_tour


@pytest.fixture
def state(small_instance):
    st = ColonyState.create(small_instance, ACOParams(seed=3, nn=10), TESLA_C1060)
    ChoiceKernel().run(st)
    return st


class TestConstructExact:
    def test_full_rule_valid_tours(self, state):
        rng = ParkMillerLCG(n_streams=state.m, seed=1)
        tours, fb = construct_exact(state.choice_info, None, rng, state.m, state.n)
        assert fb == 0.0
        for t in tours:
            validate_tour(t, state.n)

    def test_nnlist_rule_valid_tours(self, state):
        rng = ParkMillerLCG(n_streams=state.m, seed=1)
        tours, fb = construct_exact(
            state.choice_info, state.nn_list, rng, state.m, state.n
        )
        assert fb >= 0.0
        for t in tours:
            validate_tour(t, state.n)

    def test_deterministic(self, state):
        a, _ = construct_exact(
            state.choice_info, None, ParkMillerLCG(state.m, 7), state.m, state.n
        )
        b, _ = construct_exact(
            state.choice_info, None, ParkMillerLCG(state.m, 7), state.m, state.n
        )
        np.testing.assert_array_equal(a, b)

    def test_prefers_high_choice_values(self, state):
        """With an overwhelming weight on one edge, ants at city i choose j."""
        choice = np.full((state.n, state.n), 1e-12)
        np.fill_diagonal(choice, 0.0)
        choice[:, 5] = 1e6  # city 5 overwhelms from everywhere
        rng = ParkMillerLCG(n_streams=state.m, seed=2)
        tours, _ = construct_exact(choice, None, rng, state.m, state.n)
        # Every ant that does not start at 5 must visit 5 second.
        for t in tours:
            if t[0] != 5:
                assert t[1] == 5


class TestVersions:
    @pytest.mark.parametrize(
        "cls",
        [BaselineTaskConstruction, ChoiceKernelTaskConstruction, DeviceRngTaskConstruction],
    )
    def test_build_produces_valid_tours(self, cls, state):
        strategy = cls()
        rng_cls = XorwowRNG if strategy.rng_kind == "curand" else ParkMillerLCG
        res = strategy.build(state, rng_cls(n_streams=state.m, seed=5))
        assert res.tours.shape == (state.m, state.n + 1)
        for t in res.tours:
            validate_tour(t, state.n)
        assert res.report.stage == "construction"

    def test_v1_works_without_choice_info(self, small_instance):
        st = ColonyState.create(small_instance, ACOParams(seed=3), TESLA_C1060)
        assert st.choice_info is None
        res = BaselineTaskConstruction().build(st, XorwowRNG(st.m, 1))
        for t in res.tours:
            validate_tour(t, st.n)

    def test_v2_requires_choice_info(self, small_instance):
        from repro.errors import ACOConfigError

        st = ColonyState.create(small_instance, ACOParams(seed=3), TESLA_C1060)
        with pytest.raises(ACOConfigError, match="choice_info"):
            ChoiceKernelTaskConstruction().build(st, XorwowRNG(st.m, 1))


class TestLedgers:
    def test_v1_charges_special_ops_v2_does_not(self):
        n, m, nn = 100, 100, 30
        s1, _ = BaselineTaskConstruction().predict_stats(n, m, nn, TESLA_C1060)
        s2, _ = ChoiceKernelTaskConstruction().predict_stats(n, m, nn, TESLA_C1060)
        assert s1.special_ops > 0
        assert s2.special_ops == 0

    def test_v1_loads_more_than_v2(self):
        n, m, nn = 100, 100, 30
        s1, _ = BaselineTaskConstruction().predict_stats(n, m, nn, TESLA_C1060)
        s2, _ = ChoiceKernelTaskConstruction().predict_stats(n, m, nn, TESLA_C1060)
        assert s1.gmem_load_bytes > s2.gmem_load_bytes

    def test_v2_v3_differ_only_in_rng_class(self):
        n, m, nn = 100, 100, 30
        s2, _ = ChoiceKernelTaskConstruction().predict_stats(n, m, nn, TESLA_C1060)
        s3, _ = DeviceRngTaskConstruction().predict_stats(n, m, nn, TESLA_C1060)
        assert s2.rng_curand > 0 and s2.rng_lcg == 0
        assert s3.rng_lcg > 0 and s3.rng_curand == 0
        assert s2.rng_curand == s3.rng_lcg
        assert s2.gmem_load_bytes == s3.gmem_load_bytes

    def test_candidate_scaling_is_cubic(self):
        s_small, _ = DeviceRngTaskConstruction().predict_stats(50, 50, 10, TESLA_C1060)
        s_big, _ = DeviceRngTaskConstruction().predict_stats(100, 100, 10, TESLA_C1060)
        # m*(n-1)*n grows ~8x when n doubles (m = n)
        ratio = s_big.flops / s_small.flops
        assert 7.5 < ratio < 8.5

    def test_build_records_prediction(self, state):
        strategy = DeviceRngTaskConstruction()
        res = strategy.build(state, ParkMillerLCG(state.m, 5))
        pred, _ = strategy.predict_stats(
            state.n, state.m, state.nn, TESLA_C1060, fallback_steps=res.fallback_steps
        )
        assert res.report.stats.approx_equal(pred), res.report.stats.diff(pred)

    def test_launch_one_thread_per_ant(self):
        _, launch = DeviceRngTaskConstruction().predict_stats(
            100, 100, 30, TESLA_C1060
        )
        assert launch.total_threads >= 100
        assert launch.block == 128
