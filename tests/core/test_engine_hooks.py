"""Tests for the engine's boundary hooks, early stop, interrupt salvage,
shared work arenas and the wall-clock field semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import WorkBuffers, resolve_backend
from repro.core import ACOParams, AntSystem, BatchEngine
from repro.core.batch import BoundaryUpdate
from repro.errors import ACOConfigError, RunInterrupted
from repro.tsp import uniform_instance

ITERATIONS = 6


@pytest.fixture(scope="module")
def instance():
    return uniform_instance(18, seed=404)


def _engine(instance, B=3, **kwargs):
    return BatchEngine(
        instance, [ACOParams(seed=5 + b, nn=7) for b in range(B)], **kwargs
    )


class TestBoundaryCallback:
    @pytest.mark.parametrize("report_every", [1, 2, 3])
    def test_called_at_every_boundary(self, instance, report_every):
        seen: list[BoundaryUpdate] = []
        engine = _engine(instance)
        batch = engine.run(
            ITERATIONS, report_every=report_every, on_boundary=seen.append
        )
        boundaries = [
            it
            for it in range(1, ITERATIONS + 1)
            if it % report_every == 0 or it == ITERATIONS
        ]
        assert [u.iteration for u in seen] == boundaries
        for update in seen:
            assert update.best_lengths.shape == (3,)
            assert update.best_tours.shape == (3, instance.n + 1)
        # The final boundary snapshot equals the final result.
        np.testing.assert_array_equal(
            seen[-1].best_lengths, batch.best_lengths
        )
        assert not batch.stopped_early
        assert batch.iterations_run == ITERATIONS

    def test_callback_does_not_perturb_results(self, instance):
        plain = _engine(instance).run(ITERATIONS, report_every=2)
        hooked = _engine(instance).run(
            ITERATIONS, report_every=2, on_boundary=lambda u: None
        )
        assert plain.best_lengths.tolist() == hooked.best_lengths.tolist()
        for a, b in zip(plain.results, hooked.results):
            assert a.iteration_best_lengths == b.iteration_best_lengths

    def test_snapshot_is_a_copy(self, instance):
        captured = []

        def grab(update):
            update.best_lengths[:] = -1  # vandalise the snapshot
            captured.append(update)

        engine = _engine(instance)
        batch = engine.run(ITERATIONS, report_every=3, on_boundary=grab)
        assert all(v > 0 for v in batch.best_lengths)  # engine unharmed

    @pytest.mark.parametrize("report_every", [1, 2])
    def test_returning_true_stops_early(self, instance, report_every):
        def stop_at_first(update):
            return True

        engine = _engine(instance)
        batch = engine.run(
            ITERATIONS, report_every=report_every, on_boundary=stop_at_first
        )
        assert batch.stopped_early
        assert batch.iterations_run == report_every
        assert all(
            len(r.iteration_best_lengths) == report_every
            for r in batch.results
        )


class TestTargetLengths:
    def test_trivial_target_stops_at_first_boundary(self, instance):
        engine = _engine(instance)
        batch = engine.run(ITERATIONS, report_every=2, target_lengths=10**9)
        assert batch.stopped_early
        assert batch.iterations_run == 2

    def test_unreachable_target_runs_to_budget(self, instance):
        engine = _engine(instance)
        batch = engine.run(ITERATIONS, report_every=2, target_lengths=1)
        assert not batch.stopped_early
        assert batch.iterations_run == ITERATIONS

    def test_per_row_targets_require_all_rows(self, instance):
        # One reachable target + one unreachable: the batch must keep going.
        engine = _engine(instance, B=2)
        batch = engine.run(
            ITERATIONS, report_every=2, target_lengths=np.array([10**9, 1])
        )
        assert not batch.stopped_early

    def test_early_stopped_rows_match_truncated_solo(self, instance):
        """Early stop is a pure truncation: rows equal a solo run of the
        same length."""
        engine = _engine(instance)
        batch = engine.run(ITERATIONS, report_every=2, target_lengths=10**9)
        for b in range(3):
            solo = AntSystem(instance, ACOParams(seed=5 + b, nn=7)).run(2)
            assert batch.results[b].best_length == solo.best_length
            assert (
                batch.results[b].iteration_best_lengths
                == solo.iteration_best_lengths
            )


class TestInterruptSalvage:
    @pytest.mark.parametrize("report_every", [1, 2])
    def test_keyboard_interrupt_carries_partial(self, instance, report_every):
        calls = []

        def interrupt_at_second_boundary(update):
            calls.append(update.iteration)
            if len(calls) == 2:
                raise KeyboardInterrupt

        engine = _engine(instance)
        with pytest.raises(RunInterrupted) as err:
            engine.run(
                ITERATIONS,
                report_every=report_every,
                on_boundary=interrupt_at_second_boundary,
            )
        partial = err.value.partial
        assert partial.interrupted and partial.stopped_early
        assert partial.iterations_run == 2 * report_every
        # The salvage equals an uninterrupted run of the completed length.
        reference = _engine(instance).run(2 * report_every)
        assert partial.best_lengths.tolist() == reference.best_lengths.tolist()
        for a, b in zip(partial.results, reference.results):
            assert a.iteration_best_lengths == b.iteration_best_lengths
            np.testing.assert_array_equal(a.best_tour, b.best_tour)

    def test_run_interrupted_is_a_keyboard_interrupt(self):
        # The CLI contract: naive `except KeyboardInterrupt` still works,
        # and `except Exception` does NOT swallow it.
        assert issubclass(RunInterrupted, KeyboardInterrupt)
        assert not issubclass(RunInterrupted, Exception)

    def test_solo_variants_salvage_partials(self, instance, monkeypatch):
        from repro.core import AntColonySystem, MaxMinAntSystem

        for cls in (AntColonySystem, MaxMinAntSystem):
            colony = cls(instance, ACOParams(seed=2, nn=7))
            # The views run through their engine's K=1 loop; trip the
            # interrupt on the engine's third iteration.
            original = colony.engine.run_iteration
            calls = []

            def tripwire(*a, _original=original, _calls=calls, **kw):
                if len(_calls) == 2:
                    raise KeyboardInterrupt
                _calls.append(1)
                return _original(*a, **kw)

            monkeypatch.setattr(colony.engine, "run_iteration", tripwire)
            with pytest.raises(RunInterrupted) as err:
                colony.run(50)
            partial = err.value.partial
            assert partial.best_length > 0
            assert len(partial.iteration_best_lengths) == 2


class TestVariantEngineComposition:
    """The redesign's un-stranding contract: ACS/MMAS ride the engine, so
    report_every and backend selection compose instead of raising (the old
    ``require_numpy_backend``/``report_every`` fences are gone)."""

    def test_variants_support_report_every(self, instance):
        from repro.core import AntColonySystem, MaxMinAntSystem

        for cls in (AntColonySystem, MaxMinAntSystem):
            ref = cls(instance, ACOParams(seed=3, nn=7)).run(4)
            amortized = cls(instance, ACOParams(seed=3, nn=7)).run(
                4, report_every=4
            )
            assert ref.iteration_best_lengths == amortized.iteration_best_lengths
            assert ref.best_length == amortized.best_length

    def test_variants_accept_backend_selection(self, instance):
        from repro.core import AntColonySystem, MaxMinAntSystem
        from repro.errors import BackendError

        for cls in (AntColonySystem, MaxMinAntSystem):
            # Explicit names, instances and None all resolve.
            cls(instance, backend="numpy")
            cls(instance, backend=resolve_backend("numpy"))
            cls(instance, backend=None)
            # An explicitly requested unavailable backend still fails
            # loudly (strict resolution), never silently falls back.
            with pytest.raises(BackendError):
                cls(instance, backend="cupy")

    def test_variants_resolve_env_backend_like_the_engine(
        self, instance, monkeypatch
    ):
        """ACO_BACKEND now selects the variants' backend exactly as it does
        the engine's (soft resolution: warn and fall back when the
        requested backend is unavailable)."""
        from repro.core import AntColonySystem, MaxMinAntSystem

        monkeypatch.setenv("ACO_BACKEND", "numpy")
        for cls in (AntColonySystem, MaxMinAntSystem):
            colony = cls(instance)
            assert colony.backend.name == "numpy"
            assert colony.engine.rng.backend.name == "numpy"


class TestWallClockSemantics:
    """The satellite regression: row wall_seconds is the amortized share,
    batch wall_seconds the true wall, and throughput uses only the latter."""

    def test_row_share_is_batch_wall_over_B(self, instance):
        engine = _engine(instance, B=3)
        batch = engine.run(3)
        assert batch.wall_seconds > 0.0
        for row in batch.results:
            assert row.wall_seconds == pytest.approx(batch.wall_seconds / 3)
        # Summing shares reconstructs one batch wall — nothing more.
        assert sum(r.wall_seconds for r in batch.results) == pytest.approx(
            batch.wall_seconds
        )

    def test_colonies_per_second_uses_batch_wall(self, instance):
        engine = _engine(instance, B=3)
        batch = engine.run(4)
        assert batch.iterations_run == 4
        assert batch.colonies_per_second() == pytest.approx(
            3 * 4 / batch.wall_seconds
        )
        # Explicit iteration count (the pre-field call style) still works.
        assert batch.colonies_per_second(4) == batch.colonies_per_second()


class TestSharedWorkArena:
    def test_arena_reuse_is_bit_identical(self, instance):
        other = uniform_instance(18, seed=505)
        arena = WorkBuffers()
        first = BatchEngine(
            instance, ACOParams(seed=3, nn=7), work=arena
        ).run(3)
        # Same arena, different engine/instance/params — the worker-thread
        # pattern.  Results must match a fresh-arena engine exactly.
        reused = BatchEngine(
            other, ACOParams(seed=8, nn=7, beta=3.0), work=arena
        ).run(3)
        fresh = BatchEngine(other, ACOParams(seed=8, nn=7, beta=3.0)).run(3)
        assert reused.best_lengths.tolist() == fresh.best_lengths.tolist()
        np.testing.assert_array_equal(
            reused.results[0].best_tour, fresh.results[0].best_tour
        )
        assert first.best_lengths[0] > 0  # first engine ran too

    def test_arena_reuse_across_geometries(self, instance):
        small = uniform_instance(12, seed=9)
        arena = WorkBuffers()
        BatchEngine(instance, ACOParams(seed=1, nn=7), work=arena).run(2)
        reused = BatchEngine(small, ACOParams(seed=1, nn=5), work=arena).run(2)
        fresh = BatchEngine(small, ACOParams(seed=1, nn=5)).run(2)
        assert reused.best_lengths.tolist() == fresh.best_lengths.tolist()

    def test_arena_requires_amortize(self, instance):
        with pytest.raises(ACOConfigError, match="amortize"):
            BatchEngine(instance, work=WorkBuffers(), amortize=False)

    def test_reset_derived_keeps_scratch(self):
        arena = WorkBuffers()
        buf = arena.get("x", (4,), np.float64)
        arena.cached("c", lambda: 42)
        arena.reset_derived()
        assert arena.get("x", (4,), np.float64) is buf
        assert arena.cached("c", lambda: 43) == 43  # rebuilt, not stale
