"""Tests for ACOParams."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.params import ACOParams
from repro.errors import ACOConfigError


class TestDefaults:
    def test_paper_values(self):
        p = ACOParams()
        assert p.alpha == 1.0
        assert p.beta == 2.0
        assert p.rho == 0.5
        assert p.nn == 30
        assert p.n_ants is None

    def test_resolve_ants_default_m_equals_n(self):
        assert ACOParams().resolve_ants(442) == 442

    def test_resolve_ants_explicit(self):
        assert ACOParams(n_ants=64).resolve_ants(442) == 64

    def test_resolve_nn_clips(self):
        assert ACOParams(nn=30).resolve_nn(10) == 9
        assert ACOParams(nn=30).resolve_nn(100) == 30


class TestValidation:
    def test_rho_bounds(self):
        ACOParams(rho=1.0)
        with pytest.raises(ACOConfigError):
            ACOParams(rho=0.0)
        with pytest.raises(ACOConfigError):
            ACOParams(rho=1.5)

    def test_negative_exponents(self):
        with pytest.raises(ACOConfigError):
            ACOParams(alpha=-1)
        with pytest.raises(ACOConfigError):
            ACOParams(beta=-0.5)

    def test_ants_positive(self):
        with pytest.raises(ACOConfigError):
            ACOParams(n_ants=0)

    def test_nn_positive(self):
        with pytest.raises(ACOConfigError):
            ACOParams(nn=0)

    def test_eta_shift_positive(self):
        with pytest.raises(ACOConfigError):
            ACOParams(eta_shift=0.0)

    def test_frozen(self):
        p = ACOParams()
        with pytest.raises(dataclasses.FrozenInstanceError):
            p.alpha = 2.0  # type: ignore[misc]
