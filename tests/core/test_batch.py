"""Unit tests for the batched multi-colony engine and its state."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import ACOParams, AntSystem, BatchEngine
from repro.core.batch import BatchColonyState
from repro.errors import ACOConfigError
from repro.rng import ParkMillerLCG, XorwowRNG, make_batched_rng, make_rng
from repro.simt.device import TESLA_M2050
from repro.tsp import uniform_instance
from repro.tsp.tour import validate_tour


class TestBatchedRng:
    @pytest.mark.parametrize("kind,cls", [("lcg", ParkMillerLCG), ("curand", XorwowRNG)])
    def test_blocks_reproduce_solo_sequences(self, kind, cls):
        seeds = [3, 14, 15]
        streams = 8
        batched = make_batched_rng(kind, streams, seeds)
        assert isinstance(batched, cls)
        assert batched.n_streams == streams * len(seeds)
        draws = np.stack([batched.uniform() for _ in range(5)])  # (5, 24)
        for b, seed in enumerate(seeds):
            solo = make_rng(kind, streams, seed)
            expected = np.stack([solo.uniform() for _ in range(5)])
            np.testing.assert_array_equal(
                draws[:, b * streams : (b + 1) * streams], expected
            )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            make_batched_rng("lcg", 4, [])
        with pytest.raises(ValueError):
            make_batched_rng("lcg", 0, [1])
        with pytest.raises(ValueError):
            make_batched_rng("warp", 4, [1])


class TestBatchColonyState:
    def test_replicas_share_readonly_arrays(self):
        inst = uniform_instance(15, seed=1)
        params = [ACOParams(seed=s, nn=5) for s in (1, 2, 3)]
        state = BatchColonyState.create([inst] * 3, params, TESLA_M2050)
        # dist/eta/nn_list broadcast one base matrix; pheromone is per-row.
        assert state.dist.strides[0] == 0
        assert state.eta.strides[0] == 0
        assert state.pheromone.strides[0] != 0
        assert state.pheromone.shape == (3, 15, 15)

    def test_distinct_instances_stack(self):
        a = uniform_instance(12, seed=1)
        b = uniform_instance(12, seed=2)
        state = BatchColonyState.create(
            [a, b], [ACOParams(nn=5)] * 2, TESLA_M2050
        )
        assert state.dist.strides[0] != 0
        np.testing.assert_array_equal(state.dist[0], a.distance_matrix())
        np.testing.assert_array_equal(state.dist[1], b.distance_matrix())

    def test_unequal_sizes_rejected(self):
        with pytest.raises(ACOConfigError, match="equal size"):
            BatchColonyState.create(
                [uniform_instance(10, seed=1), uniform_instance(12, seed=2)],
                [ACOParams(nn=5)] * 2,
                TESLA_M2050,
            )

    def test_unequal_ants_rejected(self):
        inst = uniform_instance(10, seed=1)
        with pytest.raises(ACOConfigError, match="colony size"):
            BatchColonyState.create(
                [inst] * 2,
                [ACOParams(nn=5), ACOParams(nn=5, n_ants=4)],
                TESLA_M2050,
            )

    def test_colony_view_shares_pheromone(self):
        inst = uniform_instance(10, seed=1)
        state = BatchColonyState.create([inst], [ACOParams(nn=5)], TESLA_M2050)
        view = state.colony_view(0)
        state.pheromone[0, 1, 2] = 42.0
        assert view.pheromone[1, 2] == 42.0


class TestBatchEngine:
    def test_broadcasts_single_instance_over_params(self):
        inst = uniform_instance(12, seed=3)
        engine = BatchEngine(inst, [ACOParams(seed=s, nn=5) for s in (1, 2)])
        assert engine.B == 2

    def test_replicas_constructor_seeds(self):
        inst = uniform_instance(12, seed=3)
        engine = BatchEngine.replicas(
            inst, ACOParams(seed=10, nn=5), replicas=3, seed_stride=5
        )
        assert [p.seed for p in engine.state.params] == [10, 15, 20]

    def test_run_produces_valid_tours_per_row(self):
        inst = uniform_instance(14, seed=9)
        engine = BatchEngine.replicas(
            inst, ACOParams(seed=2, nn=6), replicas=3, construction=4
        )
        reports = engine.run_iteration()
        assert len(reports) == 3
        for rep in reports:
            assert rep.tours.shape == (14, 15)
            for t in rep.tours:
                validate_tour(t, 14)

    def test_batch_run_result_best(self):
        inst = uniform_instance(14, seed=9)
        engine = BatchEngine.replicas(inst, ACOParams(seed=2, nn=6), replicas=4)
        batch = engine.run(3)
        assert batch.B == 4
        assert batch.best_length == int(batch.best_lengths.min())
        validate_tour(batch.best_tour, 14)
        assert batch.wall_seconds > 0
        assert batch.colonies_per_second(3) > 0

    def test_invalid_iterations(self):
        inst = uniform_instance(10, seed=1)
        with pytest.raises(ACOConfigError):
            BatchEngine(inst, ACOParams(nn=5)).run(0)

    def test_stage_families_per_row(self):
        inst = uniform_instance(12, seed=5)
        engine = BatchEngine.replicas(
            inst, ACOParams(seed=1, nn=5), replicas=2, construction=8, pheromone=1
        )
        reports = engine.run_iteration()
        for rep in reports:
            assert [s.stage for s in rep.stages] == [
                "choice",
                "construction",
                "pheromone",
            ]


class TestAntSystemIsBatchView:
    def test_antsystem_wraps_b1_engine(self):
        inst = uniform_instance(12, seed=5)
        colony = AntSystem(inst, ACOParams(seed=1, nn=5))
        assert colony.engine.B == 1
        assert colony.rng is colony.engine.rng

    def test_view_stays_in_sync(self):
        inst = uniform_instance(12, seed=5)
        colony = AntSystem(inst, ACOParams(seed=1, nn=5))
        colony.run_iteration()
        bs = colony.engine.state
        np.testing.assert_array_equal(colony.state.tours, bs.tours[0])
        np.testing.assert_array_equal(colony.state.pheromone, bs.pheromone[0])
        assert colony.state.best_length == int(bs.best_lengths[0])
        assert colony.state.iteration == bs.iteration


class TestHarnessDispatch:
    def test_run_replicas(self):
        from repro.experiments.harness import run_replicas

        inst = uniform_instance(14, seed=7)
        batch = run_replicas(
            inst, replicas=3, iterations=2, params=ACOParams(seed=4, nn=6)
        )
        assert batch.B == 3
        # replica b must equal a solo run with seed 4 + b
        solo = AntSystem(inst, ACOParams(seed=5, nn=6)).run(2)
        assert solo.best_length == batch.results[1].best_length

    def test_run_sweep_grid(self):
        from repro.experiments.harness import run_sweep

        inst = uniform_instance(14, seed=7)
        sweep = run_sweep(
            inst,
            {"rho": [0.3, 0.7], "beta": [2.0, 4.0]},
            iterations=2,
            replicas=2,
            params=ACOParams(seed=4, nn=6),
        )
        assert len(sweep.points) == 4
        assert sweep.batch.B == 8
        assert all(len(r) == 2 for r in sweep.results)
        # point rows reproduce solo runs with the overridden params
        p = dataclasses.replace(ACOParams(seed=4, nn=6), rho=0.3, beta=2.0)
        solo = AntSystem(inst, p).run(2)
        assert solo.best_length == sweep.results[0][0].best_length
        assert "sweep" in sweep.table().render()

    def test_run_sweep_rejects_unsweepable(self):
        from repro.errors import ExperimentError
        from repro.experiments.harness import run_sweep

        inst = uniform_instance(10, seed=7)
        with pytest.raises(ExperimentError, match="cannot sweep"):
            run_sweep(inst, {"n_ants": [4, 8]}, iterations=1)

    def test_run_sweep_rejects_empty_axis(self):
        from repro.errors import ExperimentError
        from repro.experiments.harness import run_sweep

        inst = uniform_instance(10, seed=7)
        with pytest.raises(ExperimentError, match="no values"):
            run_sweep(inst, {"rho": []}, iterations=1)

    def test_run_sweep_rejects_seed_axis_with_replicas(self):
        from repro.errors import ExperimentError
        from repro.experiments.harness import run_sweep

        inst = uniform_instance(10, seed=7)
        with pytest.raises(ExperimentError, match="seed"):
            run_sweep(inst, {"seed": [1, 2]}, iterations=1, replicas=2)

    def test_replicas_rejects_zero_stride(self):
        inst = uniform_instance(10, seed=7)
        with pytest.raises(ACOConfigError, match="seed_stride"):
            BatchEngine.replicas(
                inst, ACOParams(nn=5), replicas=2, seed_stride=0
            )
