"""Tests for the Choice kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.choice import ChoiceKernel
from repro.core.params import ACOParams
from repro.core.state import ColonyState
from repro.simt.device import TESLA_C1060, TESLA_M2050


@pytest.fixture
def state(small_instance):
    return ColonyState.create(small_instance, ACOParams(alpha=1.0, beta=2.0), TESLA_C1060)


class TestFunctional:
    def test_fills_choice_info(self, state):
        ChoiceKernel().run(state)
        assert state.choice_info is not None
        i, j = 3, 7
        expected = state.pheromone[i, j] ** 1.0 * state.eta[i, j] ** 2.0
        assert state.choice_info[i, j] == pytest.approx(expected)

    def test_diagonal_zero(self, state):
        ChoiceKernel().run(state)
        assert np.all(np.diag(state.choice_info) == 0)

    def test_respects_exponents(self, small_instance):
        st = ColonyState.create(
            small_instance, ACOParams(alpha=2.0, beta=3.0), TESLA_C1060
        )
        ChoiceKernel().run(st)
        expected = st.pheromone[1, 2] ** 2.0 * st.eta[1, 2] ** 3.0
        assert st.choice_info[1, 2] == pytest.approx(expected)


class TestLedger:
    def test_report_stage(self, state):
        rep = ChoiceKernel().run(state)
        assert rep.stage == "choice"
        assert rep.stats.kernel_launches == 1

    def test_counts_scale_with_n2(self):
        ck = ChoiceKernel()
        s1, _ = ck.predict_stats(100, TESLA_C1060)
        s2, _ = ck.predict_stats(200, TESLA_C1060)
        assert s2.special_ops == pytest.approx(4 * s1.special_ops)
        assert s2.gmem_load_bytes == pytest.approx(4 * s1.gmem_load_bytes)

    def test_launch_covers_matrix(self):
        ck = ChoiceKernel(block=256)
        _, launch = ck.predict_stats(100, TESLA_M2050)
        assert launch.total_threads >= 100 * 100

    def test_block_clipped_to_device(self):
        ck = ChoiceKernel(block=1024)
        cfg = ck.launch_config(TESLA_C1060, n=100)
        assert cfg.block == 512
