"""Tests for the chrome-trace exporter (repro.obs.trace)."""

from __future__ import annotations

import json
import threading

from repro.obs import TraceRecorder, TraceSpan


class TestTraceRecorder:
    def test_spans_accumulate(self):
        rec = TraceRecorder()
        rec.add_span("a", 1.0, 0.5)
        rec.add_span("b", 1.5, 0.25, tid=3, cat="update")
        assert len(rec) == 2
        assert rec.spans[0] == TraceSpan("a", 1.0, 0.5)
        assert rec.spans[1].tid == 3 and rec.spans[1].cat == "update"

    def test_negative_durations_clamped(self):
        rec = TraceRecorder()
        rec.add_span("x", 5.0, -0.1)
        assert rec.spans[0].duration == 0.0

    def test_chrome_trace_format(self):
        rec = TraceRecorder()
        rec.add_span("construct", 10.0, 0.002, cat="construct")
        rec.add_span("update", 10.002, 0.001, cat="update")
        payload = rec.to_chrome_trace()
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert len(events) == 2
        first = events[0]
        # Complete events, µs timestamps normalized to the first span.
        assert first["ph"] == "X"
        assert first["ts"] == 0.0
        assert first["dur"] == 2000.0
        assert events[1]["ts"] == 2000.0
        assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(first)

    def test_empty_trace_exports(self):
        assert TraceRecorder().to_chrome_trace()["traceEvents"] == []

    def test_write_roundtrip(self, tmp_path):
        rec = TraceRecorder()
        rec.add_span("a", 0.0, 1.0)
        path = tmp_path / "trace.json"
        rec.write(path)
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded == rec.to_chrome_trace()

    def test_thread_safe_appends(self):
        rec = TraceRecorder()

        def hammer(tid):
            for i in range(1000):
                rec.add_span("s", float(i), 0.001, tid=tid)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(rec) == 4000
