"""Tests for the metrics primitives (repro.obs.metrics)."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    MetricsRegistry,
    NullRegistry,
    ReservoirHistogram,
)


class TestCounter:
    def test_increments(self):
        c = Counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.name == "hits"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_thread_safe_under_contention(self):
        c = Counter()

        def hammer():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("depth")
        g.set(3)
        g.add(2.5)
        assert g.value == 5.5

    def test_last_write_wins(self):
        g = Gauge()
        g.set(10)
        g.set(1)
        assert g.value == 1.0


class TestReservoirHistogram:
    def test_exact_summaries(self):
        h = ReservoirHistogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(10.0)
        assert h.mean == pytest.approx(2.5)
        assert h.min == 1.0
        assert h.max == 4.0

    def test_percentiles_exact_within_reservoir(self):
        h = ReservoirHistogram(max_samples=256)
        for v in range(1, 101):
            h.observe(float(v))
        assert h.p50 == pytest.approx(50.5)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.p95 == pytest.approx(95.05)

    def test_empty_percentiles_are_zero(self):
        h = ReservoirHistogram()
        assert h.p50 == 0.0 and h.p99 == 0.0
        assert h.mean == 0.0 and h.min == 0.0 and h.max == 0.0

    def test_reservoir_caps_memory_but_counts_exactly(self):
        h = ReservoirHistogram(max_samples=32)
        for v in range(1000):
            h.observe(float(v))
        assert h.count == 1000
        assert len(h._reservoir.laps) == 32
        # Exact extremes survive sampling.
        assert h.min == 0.0 and h.max == 999.0

    def test_sampled_percentiles_are_plausible(self):
        h = ReservoirHistogram(max_samples=128, seed=7)
        for v in range(10_000):
            h.observe(float(v))
        # A uniform stream 0..9999: the sampled median must land mid-range.
        assert 2000.0 < h.p50 < 8000.0

    def test_deterministic_given_seed(self):
        def build():
            h = ReservoirHistogram(max_samples=16, seed=42)
            for v in range(500):
                h.observe(float(v))
            return h.snapshot()

        assert build() == build()

    def test_rejects_bad_max_samples(self):
        with pytest.raises(ValueError):
            ReservoirHistogram(max_samples=0)

    def test_merge_combines_exact_fields(self):
        a = ReservoirHistogram()
        b = ReservoirHistogram()
        for v in (1.0, 2.0):
            a.observe(v)
        for v in (10.0, 20.0):
            b.observe(v)
        out = a.merge(b)
        assert out is a
        assert a.count == 4
        assert a.total == pytest.approx(33.0)
        assert a.min == 1.0 and a.max == 20.0

    def test_merge_truncates_reservoir(self):
        a = ReservoirHistogram(max_samples=4)
        b = ReservoirHistogram(max_samples=4)
        for v in range(4):
            a.observe(float(v))
            b.observe(float(v + 10))
        a.merge(b)
        assert len(a._reservoir.laps) == 4
        assert a.count == 8

    def test_snapshot_shape(self):
        h = ReservoirHistogram()
        h.observe(1.0)
        snap = h.snapshot()
        assert set(snap) == {
            "count", "total", "mean", "min", "max", "p50", "p95", "p99",
            "samples",
        }
        assert snap["count"] == 1 and snap["p50"] == 1.0
        assert snap["samples"] == [1.0]

    def test_snapshot_roundtrip_is_exact(self):
        h = ReservoirHistogram(max_samples=64, seed=3)
        for v in range(200):
            h.observe(float(v))
        back = ReservoirHistogram.from_snapshot(h.snapshot(), name="back")
        assert back.count == h.count
        assert back.total == pytest.approx(h.total)
        assert back.min == h.min and back.max == h.max
        # Same reservoir -> identical quantile estimates.
        assert back.p50 == h.p50 and back.p95 == h.p95 and back.p99 == h.p99
        assert back.name == "back"

    def test_from_snapshot_empty(self):
        back = ReservoirHistogram.from_snapshot(ReservoirHistogram().snapshot())
        assert back.count == 0
        assert back.min == 0.0 and back.max == 0.0 and back.p50 == 0.0

    def test_from_snapshot_without_samples_keeps_exact_fields(self):
        # Pre-`samples` snapshots (older wire peers) still reconstruct the
        # exact summary fields.
        snap = {"count": 3, "total": 6.0, "min": 1.0, "max": 3.0}
        back = ReservoirHistogram.from_snapshot(snap)
        assert back.count == 3 and back.total == 6.0
        assert back.min == 1.0 and back.max == 3.0

    def test_shardlike_merge_is_exact_with_sane_quantiles(self):
        # The router-aggregation shape: one from_snapshot per shard, merged
        # into an aggregator sized to hold every source sample.
        shards = []
        for s in range(4):
            h = ReservoirHistogram(max_samples=512, seed=s)
            for v in range(100):
                h.observe(float(s * 1000 + v))
            shards.append(h.snapshot())
        agg = ReservoirHistogram(
            "agg", max_samples=sum(len(s["samples"]) for s in shards)
        )
        for snap in shards:
            agg.merge(ReservoirHistogram.from_snapshot(snap))
        assert agg.count == 400
        assert agg.total == pytest.approx(
            sum(s["total"] for s in shards)
        )
        assert agg.min == 0.0 and agg.max == 3099.0
        # Every source sample survived, so quantiles are exact over the
        # union: the median sits between shard 1 and shard 2's ranges.
        assert len(agg._reservoir.laps) == 400
        assert 1099.0 <= agg.p50 <= 2000.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.enabled is True

    def test_convenience_methods(self):
        reg = MetricsRegistry()
        reg.inc("hits", 2)
        reg.set_gauge("depth", 7)
        reg.observe("lat", 0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"hits": 2}
        assert snap["gauges"] == {"depth": 7.0}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_snapshot_sorted_and_json_friendly(self):
        import json

        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        json.dumps(snap)  # must not raise


class TestNullRegistry:
    def test_disabled_flag(self):
        assert NullRegistry().enabled is False
        assert NULL_REGISTRY.enabled is False

    def test_stores_nothing(self):
        reg = NullRegistry()
        reg.inc("hits", 100)
        reg.set_gauge("depth", 3)
        reg.observe("lat", 1.0)
        reg.histogram("other").observe(2.0)
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}
        assert reg.counter("hits").value == 0
        assert reg.histogram("lat").count == 0

    def test_hands_out_shared_noop_metrics(self):
        reg = NullRegistry()
        assert reg.counter("a") is reg.counter("b")
        assert reg.histogram("a") is reg.histogram("b")
