"""Tests for the engine phase clock (repro.obs.phases)."""

from __future__ import annotations

import pytest

from repro.obs import PHASES, MetricsRegistry, PhaseClock, TraceRecorder


class TestPhaseClock:
    def test_phase_order(self):
        assert PHASES == (
            "construct", "fold", "local-search", "update", "host-sync",
        )

    def test_add_accumulates_totals_and_block(self):
        clock = PhaseClock()
        clock.add("construct", 1.0, 1.5)
        clock.add("construct", 2.0, 2.25)
        clock.add("update", 3.0, 3.1)
        assert clock.totals["construct"] == pytest.approx(0.75)
        assert clock.totals["update"] == pytest.approx(0.1)
        assert clock.totals["fold"] == 0.0

    def test_flush_block_returns_all_phases_and_resets(self):
        clock = PhaseClock()
        clock.add("construct", 0.0, 1.0)
        deltas = clock.flush_block()
        assert set(deltas) == set(PHASES)
        assert deltas["construct"] == pytest.approx(1.0)
        assert deltas["host-sync"] == 0.0
        # Block reset; totals survive.
        assert clock.flush_block()["construct"] == 0.0
        assert clock.totals["construct"] == pytest.approx(1.0)

    def test_flush_publishes_nonzero_phases_to_registry(self):
        reg = MetricsRegistry()
        clock = PhaseClock(metrics=reg)
        clock.add("construct", 0.0, 0.5)
        clock.add("update", 0.5, 0.6)
        clock.flush_block()
        clock.add("construct", 1.0, 1.2)
        clock.flush_block()
        snap = reg.snapshot()["histograms"]
        assert snap["engine.phase.construct"]["count"] == 2
        assert snap["engine.phase.update"]["count"] == 1
        # Zero phases never publish an observation.
        assert "engine.phase.fold" not in snap

    def test_null_registry_stays_empty(self):
        clock = PhaseClock()  # metrics=None -> NULL_REGISTRY
        clock.add("construct", 0.0, 1.0)
        clock.flush_block()
        assert clock.metrics.enabled is False
        assert clock.metrics.snapshot()["histograms"] == {}

    def test_mark_since_windows_the_totals(self):
        clock = PhaseClock()
        clock.add("construct", 0.0, 1.0)
        mark = clock.mark()
        clock.add("construct", 2.0, 2.5)
        clock.add("fold", 3.0, 3.25)
        window = clock.since(mark)
        assert window["construct"] == pytest.approx(0.5)
        assert window["fold"] == pytest.approx(0.25)
        assert window["update"] == 0.0

    def test_tracer_receives_labelled_spans(self):
        tracer = TraceRecorder()
        clock = PhaseClock(tracer=tracer)
        clock.add("construct", 1.0, 1.5, label="construct:roulette")
        clock.add("update", 1.5, 1.6)
        assert len(tracer) == 2
        assert tracer.spans[0].name == "construct:roulette"
        assert tracer.spans[0].cat == "construct"
        assert tracer.spans[1].name == "update"  # label defaults to phase
        assert tracer.spans[1].duration == pytest.approx(0.1)
