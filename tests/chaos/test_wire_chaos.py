"""Wire-level chaos: the TCP front-end must survive hostile bytes.

Replays the deterministic malformed-line corpus
(:func:`~repro.serve.faults.malformed_wire_lines`) against a live server:
every garbage line gets a structured ``error`` response, the connection
survives, and a well-formed request afterwards still completes.  Also
pins the client-side connect-retry/timeout seam.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core import ACOParams
from repro.errors import ServeError
from repro.serve import (
    SolveRequest,
    SolveService,
    health_over_tcp,
    malformed_wire_lines,
    request_over_tcp,
    serve_tcp,
    stats_over_tcp,
)
from repro.serve.protocol import DEFAULT_MAX_LINE_BYTES, encode_request
from repro.tsp import uniform_instance

MAX_LINE = 4096


def _request(seed: int, **kwargs) -> SolveRequest:
    kwargs.setdefault("iterations", 4)
    kwargs.setdefault("report_every", 4)
    return SolveRequest(
        instance=uniform_instance(12, seed=800 + seed),
        params=ACOParams(seed=seed, nn=7),
        **kwargs,
    )


async def _with_server(fn, **serve_kwargs):
    serve_kwargs.setdefault("max_line_bytes", MAX_LINE)
    async with SolveService(max_batch=2, max_wait=0.01, workers=1) as service:
        server = await serve_tcp(service, port=0, **serve_kwargs)
        port = server.sockets[0].getsockname()[1]
        try:
            return await fn(service, port)
        finally:
            server.close()
            await server.wait_closed()


class TestMalformedLines:
    def test_corpus_is_deterministic(self):
        a = malformed_wire_lines(seed=4, oversized_bytes=MAX_LINE)
        b = malformed_wire_lines(seed=4, oversized_bytes=MAX_LINE)
        assert a == b
        assert len(a[0]) > MAX_LINE  # the oversized entry really oversizes

    def test_every_garbage_line_gets_an_error_and_connection_survives(self):
        async def scenario(service, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                for line in malformed_wire_lines(oversized_bytes=MAX_LINE):
                    writer.write(line)
                    await writer.drain()
                    resp = json.loads(await reader.readline())
                    assert resp["type"] == "error", resp
                # The same connection still serves a real request.
                writer.write(encode_request(_request(1), "after-chaos"))
                await writer.drain()
                while True:
                    obj = json.loads(await reader.readline())
                    if obj["type"] == "result":
                        assert obj["id"] == "after-chaos"
                        return
                    assert obj["type"] in ("accepted", "update")
            finally:
                writer.close()
                await writer.wait_closed()

        asyncio.run(_with_server(scenario))

    def test_oversized_line_is_discarded_not_buffered(self):
        """A line far past the cap is answered (and discarded) — the
        error response reports how much was thrown away."""

        async def scenario(service, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(b"x" * (MAX_LINE * 8) + b"\n")
                await writer.drain()
                resp = json.loads(await reader.readline())
                assert resp["type"] == "error"
                assert "too long" in resp["message"]
            finally:
                writer.close()
                await writer.wait_closed()

        asyncio.run(_with_server(scenario))

    def test_default_line_cap_is_one_mib(self):
        assert DEFAULT_MAX_LINE_BYTES == 1 << 20


class TestAdminPlaneUnderChaos:
    def test_stats_and_health_work_after_garbage(self):
        async def scenario(service, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(b"plain text, not json at all\n")
                await writer.drain()
                assert json.loads(await reader.readline())["type"] == "error"
            finally:
                writer.close()
                await writer.wait_closed()
            snap = await stats_over_tcp("127.0.0.1", port)
            assert "requests_shed" in snap
            health = await health_over_tcp("127.0.0.1", port)
            assert health["accepting"] is True
            assert health["workers_alive"] >= 1

        asyncio.run(_with_server(scenario))

    def test_unknown_op_is_an_error_line(self):
        async def scenario(service, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(b'{"op": "reboot", "id": "x"}\n')
                await writer.drain()
                resp = json.loads(await reader.readline())
                assert resp["type"] == "error"
                assert "health" in resp["message"]
            finally:
                writer.close()
                await writer.wait_closed()

        asyncio.run(_with_server(scenario))


class TestClientNetworking:
    def test_connect_failure_surfaces_as_serve_error(self):
        async def main():
            # A port nothing listens on: retries exhaust, then ServeError.
            with pytest.raises(ServeError, match="cannot connect"):
                await stats_over_tcp(
                    "127.0.0.1",
                    1,  # reserved port, nothing listens
                    connect_retries=1,
                    retry_backoff=0.001,
                    connect_timeout=0.5,
                )

        asyncio.run(main())

    def test_request_read_timeout(self):
        """A server that accepts but never answers trips the read timeout."""

        async def main():
            async def silent(reader, writer):
                await asyncio.sleep(10)

            server = await asyncio.start_server(silent, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                with pytest.raises(ServeError, match="no response"):
                    await request_over_tcp(
                        "127.0.0.1", port, _request(2), read_timeout=0.1
                    )
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(main())

    def test_timeout_and_priority_round_trip_the_wire(self):
        async def scenario(service, port):
            req = _request(3, timeout=30.0, priority=2)
            updates, final = await request_over_tcp(
                "127.0.0.1", port, req, read_timeout=30.0
            )
            assert final["best_length"] > 0

        asyncio.run(_with_server(scenario))
