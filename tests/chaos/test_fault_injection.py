"""Deterministic fault injection against the live solve service.

Every test drives a real :class:`~repro.serve.service.SolveService` with a
seeded :class:`~repro.serve.faults.FaultPlan` — the failures are injected
on an explicit schedule, so each scenario reproduces exactly.  Written
against plain ``asyncio.run`` (no pytest-asyncio in the tier-1
environment).
"""

from __future__ import annotations

import asyncio
import dataclasses

import pytest

from repro.core import ACOParams
from repro.errors import (
    InjectedFaultError,
    ServeError,
    ServeTimeoutError,
    WorkerKilledError,
)
from repro.serve import FaultInjector, FaultPlan, SolveRequest, SolveService
from repro.tsp import uniform_instance

ITERATIONS = 6
K = 3


def _request(instance, seed: int, **kwargs) -> SolveRequest:
    kwargs.setdefault("iterations", ITERATIONS)
    kwargs.setdefault("report_every", K)
    return SolveRequest(
        instance=instance, params=ACOParams(seed=seed, nn=7), **kwargs
    )


def _service(**kwargs) -> SolveService:
    kwargs.setdefault("max_batch", 4)
    kwargs.setdefault("max_wait", 0.02)
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("retry_backoff", 0.0)
    return SolveService(**kwargs)


async def _submit_all(service, requests):
    handles = [await service.submit(r) for r in requests]
    return await asyncio.gather(
        *[h.result() for h in handles], return_exceptions=True
    )


async def _solo(request) -> "RunResult":
    async with SolveService(max_batch=1, max_wait=0.0, workers=1) as solo:
        handle = await solo.submit(request)
        return await handle.result()


class TestInjectorUnit:
    def test_ordinals_assigned_in_launch_order(self):
        injector = FaultInjector(FaultPlan())
        assert [injector.start_batch([]) for _ in range(3)] == [0, 1, 2]
        assert injector.batches_started == 3

    def test_schedule_is_explicit_and_reproducible(self):
        plan = FaultPlan(seed=5, fail_batches=(1,), poison_instances=("bad",))
        for _ in range(2):  # identical behaviour on every fresh injector
            injector = FaultInjector(plan)
            assert injector.start_batch(["a"]) == 0
            with pytest.raises(InjectedFaultError):
                injector.start_batch(["a"])
            with pytest.raises(InjectedFaultError):
                injector.start_batch(["a", "bad"])

    def test_kill_raises_base_exception(self):
        injector = FaultInjector(FaultPlan(kill_batches=(0,)))
        with pytest.raises(WorkerKilledError):
            injector.start_batch([])
        assert not issubclass(WorkerKilledError, Exception)

    def test_boundary_faults_fire_once_at_the_scheduled_index(self):
        injector = FaultInjector(FaultPlan(fail_boundaries={0: 1}))
        ordinal = injector.start_batch([])
        injector.on_boundary(ordinal, 0)
        with pytest.raises(InjectedFaultError):
            injector.on_boundary(ordinal, 1)
        injector.on_boundary(ordinal, 2)


class TestTransientFaults:
    def test_failed_batch_is_retried_to_completion(self):
        async def main():
            inst = uniform_instance(14, seed=900)
            plan = FaultPlan(fail_batches=(0,))
            async with _service(faults=plan) as service:
                (got,) = await _submit_all(service, [_request(inst, 7)])
            assert got.best_length == (await _solo(_request(inst, 7))).best_length
            snap = service.stats.snapshot()
            assert snap["completed"] == 1
            assert snap["failed"] == 0
            assert snap["requests_retried"] == 1
            return None

        asyncio.run(main())

    def test_worker_death_is_contained_and_retried(self):
        async def main():
            inst = uniform_instance(14, seed=901)
            plan = FaultPlan(kill_batches=(0,))
            async with _service(faults=plan) as service:
                (got,) = await _submit_all(service, [_request(inst, 7)])
            assert not isinstance(got, BaseException)
            assert service.stats.snapshot()["requests_retried"] == 1

        asyncio.run(main())

    def test_midrun_boundary_fault_is_retried(self):
        async def main():
            inst = uniform_instance(14, seed=902)
            plan = FaultPlan(fail_boundaries={0: 1})
            async with _service(faults=plan) as service:
                (got,) = await _submit_all(service, [_request(inst, 7)])
            assert not isinstance(got, BaseException)
            assert got.best_length == (await _solo(_request(inst, 7))).best_length

        asyncio.run(main())

    def test_retry_budget_exhaustion_fails_the_request(self):
        async def main():
            inst = uniform_instance(14, seed=903)
            plan = FaultPlan(fail_batches=tuple(range(10)))
            async with _service(faults=plan, retry_budget=2) as service:
                (got,) = await _submit_all(service, [_request(inst, 7)])
            assert isinstance(got, ServeError)
            assert isinstance(got.__cause__, InjectedFaultError)
            snap = service.stats.snapshot()
            assert snap["failed"] == 1
            assert snap["requests_retried"] == 2

        asyncio.run(main())


class TestPoisonIsolation:
    def test_poison_errors_while_riders_complete_solo_identical(self):
        """The headline acceptance: one poisoned request in a packed batch
        gets an error; every co-batched rider completes bit-identical to
        its solo run."""

        async def main():
            riders = [
                _request(uniform_instance(14, seed=910 + i), 20 + i)
                for i in range(3)
            ]
            poisoned = _request(
                dataclasses.replace(
                    uniform_instance(14, seed=990), name="poisoned"
                ),
                9,
            )
            plan = FaultPlan(poison_instances=("poisoned",))
            async with _service(faults=plan, retry_budget=3) as service:
                handles = [await service.submit(r) for r in riders[:2]]
                handles.append(await service.submit(poisoned))
                handles.append(await service.submit(riders[2]))
                results = await asyncio.gather(
                    *[h.result() for h in handles], return_exceptions=True
                )
            snap = service.stats.snapshot()
            assert isinstance(results[2], ServeError)
            assert snap["batches_bisected"] >= 1
            assert snap["completed"] == 3
            assert snap["failed"] == 1
            for req, got in zip(riders, [results[0], results[1], results[3]]):
                solo = await _solo(req)
                assert got.best_length == solo.best_length
                assert list(got.best_tour) == list(solo.best_tour)

        asyncio.run(main())

    def test_same_plan_same_traffic_same_outcome(self):
        """Chaos runs reproduce: identical plans and traffic yield identical
        per-request outcomes and identical failure counters."""

        async def run_once():
            riders = [
                _request(uniform_instance(14, seed=920 + i), 30 + i)
                for i in range(3)
            ]
            poisoned = _request(
                dataclasses.replace(uniform_instance(14, seed=991), name="p2"),
                5,
            )
            plan = FaultPlan(seed=3, poison_instances=("p2",))
            async with _service(faults=plan) as service:
                results = await _submit_all(
                    service, riders[:1] + [poisoned] + riders[1:]
                )
            snap = service.stats.snapshot()
            return (
                [
                    r.best_length if not isinstance(r, BaseException) else None
                    for r in results
                ],
                {
                    k: snap[k]
                    for k in ("completed", "failed", "batches_bisected")
                },
            )

        first = asyncio.run(run_once())
        second = asyncio.run(run_once())
        assert first == second


class TestSlowAndTimeout:
    def test_slow_batch_trips_the_request_timeout(self):
        async def main():
            inst = uniform_instance(14, seed=930)
            plan = FaultPlan(slow_batches={0: 0.3})
            async with _service(faults=plan, retry_budget=0) as service:
                (got,) = await _submit_all(
                    service, [_request(inst, 7, timeout=0.1)]
                )
            assert isinstance(got, ServeTimeoutError)
            assert service.stats.snapshot()["requests_timed_out"] == 1

        asyncio.run(main())

    def test_slow_batch_without_timeout_still_completes(self):
        async def main():
            inst = uniform_instance(14, seed=931)
            plan = FaultPlan(slow_batches={0: 0.05})
            async with _service(faults=plan) as service:
                (got,) = await _submit_all(service, [_request(inst, 7)])
            assert not isinstance(got, BaseException)

        asyncio.run(main())
