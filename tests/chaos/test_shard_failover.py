"""Deterministic shard-death chaos against the live router tier.

A seeded :class:`~repro.serve.faults.FaultPlan.kill_workers` schedule
makes the router SIGKILL one worker process mid-burst — real process
death, not a mock — after forwarding a scheduled routed-request ordinal.
The acceptance contract: every request in the burst still resolves, every
result is bit-identical to a solo :class:`~repro.core.engine.AntSystem`
run (failover re-runs are full deterministic re-runs), and exactly one
respawn is recorded.  Plain ``asyncio.run`` (no pytest-asyncio).
"""

from __future__ import annotations

import asyncio
import json

from repro.core import ACOParams, AntSystem
from repro.serve import FaultPlan, stats_over_tcp
from repro.serve.protocol import encode_request
from repro.serve.service import SolveRequest
from repro.shard import ShardConfig, ShardRouter, serve_router_tcp, shard_index
from repro.tsp import uniform_instance

ITERATIONS = 6
#: sizes chosen so the three bucket keys land on three distinct shards of
#: a 3-fleet (pinned by tests/shard/test_router.py::test_known_routing_spread)
SIZES = (20, 26, 32)
SEEDS = (1, 2, 3, 4)
#: ordinal 5 sits mid-burst: requests after it route around the dead
#: shard until the respawn, requests already on it fail over.
KILL_AT = 5


def _requests() -> list[SolveRequest]:
    return [
        SolveRequest(
            instance=uniform_instance(n, seed=n),
            params=ACOParams(seed=seed),
            iterations=ITERATIONS,
        )
        for n in SIZES
        for seed in SEEDS
    ]


def test_kill_one_shard_mid_burst_every_request_resolves_bit_identical():
    reqs = _requests()
    plan = FaultPlan(seed=11, kill_workers=(KILL_AT,))

    async def _go():
        async with ShardRouter(
            3, ShardConfig(max_batch=4, max_wait=0.02), faults=plan
        ) as router:
            server = await serve_router_tcp(router, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                # One pipelined connection, the whole burst written up
                # front — the kill lands while work is genuinely in
                # flight on every shard.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                for i, request in enumerate(reqs):
                    writer.write(encode_request(request, f"r{i}"))
                await writer.drain()
                finals: dict[str, dict] = {}
                while len(finals) < len(reqs):
                    line = await asyncio.wait_for(reader.readline(), 120)
                    assert line, "router closed the connection mid-burst"
                    obj = json.loads(line)
                    assert obj.get("type") != "error", obj
                    if obj["type"] == "result":
                        finals[obj["id"]] = obj
                writer.close()
                await writer.wait_closed()
                stats = await stats_over_tcp("127.0.0.1", port)
            finally:
                server.close()
                await server.wait_closed()
            return finals, stats

    finals, stats = asyncio.run(_go())

    # Every request resolved, each bit-identical to the solo engine —
    # including the ones that died with the killed worker and re-ran.
    assert len(finals) == len(reqs)
    for i, request in enumerate(reqs):
        solo = AntSystem(request.instance, request.params).run(
            request.iterations
        )
        final = finals[f"r{i}"]
        assert final["best_length"] == solo.best_length, i
        assert final["best_tour"] == [int(c) for c in solo.best_tour], i

    # Exactly the planned failure: one SIGKILL, one respawn.
    assert stats["router"]["shards_respawned"] == 1
    assert stats["router"]["requests_routed"] == len(reqs)
    assert stats["router"]["outstanding"] == 0
    assert stats["router"]["shards_healthy"] == 3


def test_fault_plan_spread_precondition():
    """The scenario above only kills *in-flight* work if the burst spans
    all three shards — keep the routing-spread assumption pinned next to
    the test that depends on it."""
    assignments = {
        n: shard_index(
            SolveRequest(
                instance=uniform_instance(n, seed=n),
                params=ACOParams(seed=1),
                iterations=ITERATIONS,
            ).bucket_key,
            3,
        )
        for n in SIZES
    }
    assert sorted(assignments.values()) == [0, 1, 2], assignments
