"""Differential tests: vectorised kernels vs the literal per-thread executor.

The production kernels are vectorised numpy; these tests replay the same
logic one simulated CUDA thread at a time (with real barrier semantics) on
tiny inputs and demand identical results.
"""

from __future__ import annotations


import numpy as np
import pytest

from repro.simt.literal import run_block
from repro.simt.reduction import block_argmax


def literal_argmax_program(tid, shared, width):
    """Tree argmax over shared['vals'], ties to the lower index —
    the contract block_argmax promises."""
    shared["v"][tid] = (shared["vals"][tid], tid)
    yield
    stride = 1
    while stride < width:
        # pairwise, power-of-two tree; lower index wins ties
        if tid % (2 * stride) == 0 and tid + stride < width:
            a, b = shared["v"][tid], shared["v"][tid + stride]
            if b[0] > a[0]:
                shared["v"][tid] = b
        yield
        stride *= 2
    return shared["v"][0]


class TestReductionDifferential:
    @pytest.mark.parametrize("width", [2, 4, 8, 16, 32])
    def test_argmax_matches_vectorised(self, width):
        rng = np.random.default_rng(width)
        vals = rng.normal(size=width)
        literal = run_block(
            literal_argmax_program, width, {"vals": vals, "v": [None] * width}, width
        )
        idx_vec, max_vec = block_argmax(vals[None, :])
        assert literal[0][1] == idx_vec[0]
        assert literal[0][0] == pytest.approx(max_vec[0])

    @pytest.mark.parametrize("width", [4, 8, 16])
    def test_argmax_with_ties(self, width):
        vals = np.zeros(width)
        vals[1] = vals[3] = 5.0  # tie between indices 1 and 3
        literal = run_block(
            literal_argmax_program, width, {"vals": vals, "v": [None] * width}, width
        )
        idx_vec, _ = block_argmax(vals[None, :])
        assert literal[0][1] == idx_vec[0] == 1


def literal_iroulette_program(tid, shared, choice_row, u_row, visited_row, width):
    """One data-parallel selection step for a single ant: thread = city."""
    flag = 0.0 if visited_row[tid] else 1.0
    shared["prod"][tid] = choice_row[tid] * u_row[tid] * flag
    yield
    if tid == 0:
        best, best_idx = -1.0, 0
        for j in range(width):
            if shared["prod"][j] > best:
                best, best_idx = shared["prod"][j], j
        shared["winner"] = best_idx
    yield
    return shared["winner"]


class TestIRouletteDifferential:
    @pytest.mark.parametrize("seed", range(6))
    def test_single_step_matches_vectorised(self, seed):
        n = 16
        rng = np.random.default_rng(seed)
        choice = rng.uniform(0.1, 1.0, n)
        u = rng.uniform(size=n)
        visited = rng.random(n) < 0.4
        visited[rng.integers(n)] = False  # keep at least one candidate

        literal = run_block(
            literal_iroulette_program,
            n,
            {"prod": [0.0] * n, "winner": None},
            choice,
            u,
            visited,
            n,
        )
        vec = int(np.argmax(choice * u * ~visited))
        assert literal[0] == vec


def literal_bitwise_tabu_program(tid, shared, cities_per_thread):
    """The tiled register tabu: one bit per tile in a thread-private word."""
    word = 0
    marks = shared["marks"][tid]  # list of tile indices to mark visited
    for tile in marks:
        word |= 1 << tile
    yield
    return [bool((word >> t) & 1) for t in range(cities_per_thread)]


class TestBitwiseTabuDifferential:
    def test_bit_marks_match_boolean_array(self):
        tiles = 8
        threads = 4
        rng = np.random.default_rng(3)
        marks = [list(rng.choice(tiles, size=3, replace=False)) for _ in range(threads)]
        literal = run_block(
            literal_bitwise_tabu_program, threads, {"marks": marks}, tiles
        )
        for tid in range(threads):
            expected = [t in marks[tid] for t in range(tiles)]
            assert literal[tid] == expected


def literal_roulette_program(tid, shared, weights, dart, width):
    """Sequential roulette walk executed by thread 0 — the C semantics."""
    if tid == 0:
        total = sum(weights)
        r = dart * total
        acc = 0.0
        pick = width - 1
        for j in range(width):
            acc += weights[j]
            if acc >= r and weights[j] > 0:
                pick = j
                break
        shared["pick"] = pick
    yield
    return shared["pick"]


class TestRouletteDifferential:
    @pytest.mark.parametrize("seed", range(8))
    def test_cumsum_roulette_matches_walk(self, seed):
        from repro.core.construction.taskbased import _roulette

        rng = np.random.default_rng(seed)
        n = 12
        weights = rng.uniform(0.0, 1.0, n)
        weights[rng.random(n) < 0.3] = 0.0
        if weights.sum() == 0:
            weights[0] = 1.0
        dart = float(rng.uniform())

        literal = run_block(
            literal_roulette_program, 1, {"pick": None}, list(weights), dart, n
        )[0]
        vec = _roulette(weights[None, :], np.array([weights.sum()]), np.array([dart]))[0]
        assert literal == vec
