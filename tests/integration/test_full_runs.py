"""Integration: full colony runs across the strategy matrix and devices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ACOParams, AntSystem
from repro.simt.device import TESLA_C1060, TESLA_M2050
from repro.tsp import uniform_instance
from repro.tsp.tour import tour_lengths, validate_tour


@pytest.fixture(scope="module")
def instance():
    return uniform_instance(50, seed=505)


class TestStrategyMatrix:
    @pytest.mark.parametrize("cv", range(1, 9))
    @pytest.mark.parametrize("pv", range(1, 6))
    def test_every_combination_runs(self, instance, cv, pv):
        colony = AntSystem(
            instance,
            ACOParams(seed=4, nn=10),
            device=TESLA_C1060,
            construction=cv,
            pheromone=pv,
        )
        rep = colony.run_iteration()
        for t in rep.tours:
            validate_tour(t, instance.n)
        np.testing.assert_array_equal(
            rep.lengths, tour_lengths(rep.tours, colony.state.dist)
        )
        assert np.all(colony.state.pheromone >= 0)
        assert np.all(np.isfinite(colony.state.pheromone))

    @pytest.mark.parametrize("device", [TESLA_C1060, TESLA_M2050], ids=["c1060", "m2050"])
    def test_devices_functionally_equivalent(self, instance, device):
        """The device changes the cost model, never the algorithm."""
        colony = AntSystem(
            instance, ACOParams(seed=6, nn=10), device=device, construction=8
        )
        result = colony.run(3)
        assert result.device is device
        validate_tour(result.best_tour, instance.n)

    def test_same_seed_same_tours_across_devices(self, instance):
        runs = []
        for device in (TESLA_C1060, TESLA_M2050):
            colony = AntSystem(
                instance, ACOParams(seed=17, nn=10), device=device, construction=7
            )
            runs.append(colony.run_iteration().tours)
        np.testing.assert_array_equal(runs[0], runs[1])


class TestModeledTimeShapes:
    def test_construction_stage_orderings_on_small_instance(self, instance):
        """On a 50-city instance the data-parallel kernels must model faster
        than the task-based ones (Table II's left columns)."""
        cost = {}
        for cv in (1, 3, 8):
            colony = AntSystem(
                instance, ACOParams(seed=4, nn=10), device=TESLA_C1060, construction=cv
            )
            rep = colony.run_iteration()
            cost[cv] = rep.construction_time(TESLA_C1060, colony.cost_params())
        assert cost[8] < cost[3] < cost[1]

    def test_pheromone_stage_orderings(self, instance):
        cost = {}
        for pv in (1, 4, 5):
            colony = AntSystem(
                instance, ACOParams(seed=4, nn=10), device=TESLA_C1060, pheromone=pv
            )
            rep = colony.run_iteration()
            cost[pv] = rep.pheromone_time(TESLA_C1060, colony.cost_params())
        # At n = 50 both scatter-to-gather variants are compute-bound with
        # identical instruction streams, so v4 == v5; the strict v4 < v5 gap
        # at scale is asserted in tests/core/pheromone (n = 657).
        assert cost[1] < cost[4] <= cost[5]

    def test_iteration_time_decomposition(self, instance):
        colony = AntSystem(instance, ACOParams(seed=4, nn=10))
        rep = colony.run_iteration()
        p = colony.cost_params()
        total = rep.total_time(TESLA_M2050, p)
        parts = rep.construction_time(TESLA_M2050, p) + rep.pheromone_time(TESLA_M2050, p)
        assert total == pytest.approx(parts)


class TestLongRunStability:
    def test_thirty_iterations_stay_finite(self, instance):
        colony = AntSystem(instance, ACOParams(seed=2, nn=10, rho=0.5))
        result = colony.run(30)
        tau = colony.state.pheromone
        assert np.all(np.isfinite(tau))
        assert np.all(tau >= 0)
        assert result.best_length > 0

    def test_high_evaporation_does_not_collapse(self, instance):
        colony = AntSystem(instance, ACOParams(seed=2, nn=10, rho=0.99))
        colony.run(10)
        off = colony.state.pheromone[~np.eye(instance.n, dtype=bool)]
        assert off.max() > 0
