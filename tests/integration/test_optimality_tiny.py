"""Ground-truth tests on tiny instances via brute force.

With n <= 9 cities the optimum is computable exactly; the solvers must find
it (AS/ACS/MMAS with enough iterations on trivially small search spaces) and
2-opt must land within the 2-opt-optimality bound of it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ACOParams, AntColonySystem, AntSystem, MaxMinAntSystem
from repro.tsp import uniform_instance
from repro.tsp.local_search import two_opt
from repro.tsp.tour import random_tour
from tests.helpers import brute_force_optimum


@pytest.fixture(scope="module", params=[11, 22, 33])
def tiny(request):
    inst = uniform_instance(8, seed=request.param)
    _, opt = brute_force_optimum(inst.distance_matrix())
    return inst, opt


class TestSolversNearOptimum:
    """Stochastic heuristics on 8 cities: every solver must land within 5 %
    of the brute-force optimum (measured gaps on these seeds are <= 3.1 %),
    and a 2-opt polish must never lose ground."""

    def test_ant_system_near_optimum(self, tiny):
        inst, opt = tiny
        colony = AntSystem(inst, ACOParams(seed=5, nn=7), construction=8, pheromone=1)
        result = colony.run(30)
        assert result.best_length <= 1.05 * opt
        polished = two_opt(result.best_tour, inst.distance_matrix())
        assert polished.length <= result.best_length
        assert polished.length <= 1.05 * opt

    def test_acs_near_optimum(self, tiny):
        inst, opt = tiny
        acs = AntColonySystem(inst, ACOParams(seed=5, nn=7))
        result = acs.run(30)
        assert result.best_length <= 1.05 * opt
        polished = two_opt(result.best_tour, inst.distance_matrix())
        assert polished.length <= result.best_length

    def test_mmas_near_optimum(self, tiny):
        inst, opt = tiny
        mmas = MaxMinAntSystem(inst, ACOParams(seed=5, nn=7))
        result = mmas.run(30)
        assert result.best_length <= 1.05 * opt

    def test_sequential_near_optimum(self, tiny):
        from repro.seq import SequentialAntSystem

        inst, opt = tiny
        engine = SequentialAntSystem(inst, seed=5, nn=7)
        engine.run(30, mode="full")
        assert engine.best_length is not None
        assert engine.best_length <= 1.05 * opt


class TestTwoOptNearOptimal:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_two_opt_within_10pct_of_optimum(self, seed):
        inst = uniform_instance(9, seed=seed)
        d = inst.distance_matrix()
        _, opt = brute_force_optimum(d)
        res = two_opt(random_tour(9, np.random.default_rng(seed)), d)
        assert res.length <= 1.10 * opt

    def test_two_opt_from_many_starts_finds_optimum(self):
        inst = uniform_instance(8, seed=44)
        d = inst.distance_matrix()
        _, opt = brute_force_optimum(d)
        best = min(
            two_opt(random_tour(8, np.random.default_rng(s)), d).length
            for s in range(8)
        )
        assert best == opt
