"""Integration: the GPU simulation against the sequential baseline.

The paper states "the results are similar to those obtained by the
sequential code for all our implementations" — the quality claims here are
the statistical version of that sentence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ACOParams, AntSystem
from repro.seq import SequentialAntSystem
from repro.simt.device import TESLA_M2050
from repro.tsp import clustered_instance, uniform_instance
from repro.tsp.tour import nearest_neighbor_tour, tour_length


@pytest.fixture(scope="module")
def instance():
    return uniform_instance(60, seed=606)


def run_gpu(instance, construction, iters=12, seed=21):
    colony = AntSystem(
        instance,
        ACOParams(seed=seed, nn=12),
        device=TESLA_M2050,
        construction=construction,
        pheromone=1,
    )
    return colony.run(iters)


def run_seq(instance, mode, iters=12, seed=21):
    engine = SequentialAntSystem(instance, seed=seed, nn=12)
    results = engine.run(iters, mode=mode)
    assert engine.best_length is not None
    return engine.best_length, results


class TestQualityParity:
    def test_taskbased_equals_sequential_distribution(self, instance):
        """Versions 2-3 implement the exact proportional rule, so their
        quality must sit in the same band as the sequential code."""
        gpu = run_gpu(instance, construction=3)
        seq_best, _ = run_seq(instance, mode="full")
        assert abs(gpu.best_length - seq_best) / seq_best < 0.12

    def test_dataparallel_quality_band(self, instance):
        """I-Roulette is a different selection rule but must stay within a
        modest band of the sequential quality (paper: 'similar results')."""
        gpu = run_gpu(instance, construction=8)
        seq_best, _ = run_seq(instance, mode="full")
        assert abs(gpu.best_length - seq_best) / seq_best < 0.20

    def test_nnlist_beats_nn_heuristic(self, instance):
        """A few AS iterations with candidate lists must beat the plain
        greedy nearest-neighbour tour."""
        d = instance.distance_matrix()
        greedy = tour_length(nearest_neighbor_tour(d), d)
        gpu = run_gpu(instance, construction=6)
        assert gpu.best_length < greedy

    def test_both_improve_over_first_iteration(self):
        inst = clustered_instance(80, seed=808, clusters=6)
        gpu = run_gpu(inst, construction=8, iters=15)
        firsts = gpu.iteration_best_lengths[0]
        assert gpu.best_length <= firsts

    def test_pheromone_concentrates_on_good_edges(self, instance):
        """After several iterations the best tour's edges should carry more
        pheromone than average — stigmergy at work."""
        colony = AntSystem(instance, ACOParams(seed=3, nn=12), construction=8)
        result = colony.run(15)
        tau = colony.state.pheromone
        best = result.best_tour
        best_edge_tau = tau[best[:-1], best[1:]].mean()
        overall = tau[~np.eye(instance.n, dtype=bool)].mean()
        assert best_edge_tau > 2.0 * overall


class TestSelectionDistribution:
    def test_exact_roulette_matches_probabilities(self):
        """The vectorised roulette follows eq. 1's proportional law."""
        from repro.core.construction.taskbased import _roulette
        from repro.rng import ParkMillerLCG

        weights = np.array([[1.0, 2.0, 3.0, 4.0]])
        rng = ParkMillerLCG(n_streams=1, seed=5)
        counts = np.zeros(4)
        trials = 4000
        for _ in range(trials):
            darts = rng.uniform()[:1]
            pick = _roulette(weights, weights.sum(axis=1), darts)
            counts[pick[0]] += 1
        freq = counts / trials
        np.testing.assert_allclose(freq, [0.1, 0.2, 0.3, 0.4], atol=0.035)

    def test_iroulette_monotone_in_weight(self):
        """I-Roulette is not proportional, but higher choice values must
        win more often — the property that preserves ACO's bias."""
        from repro.rng import ParkMillerLCG

        weights = np.array([1.0, 2.0, 4.0, 8.0])
        rng = ParkMillerLCG(n_streams=4, seed=9)
        counts = np.zeros(4)
        trials = 4000
        for _ in range(trials):
            u = rng.uniform()
            counts[int(np.argmax(u * weights))] += 1
        assert counts[0] < counts[1] < counts[2] < counts[3]
