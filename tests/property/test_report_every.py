"""``report_every=K`` equivalence: the amortized loop's defining invariant.

``run(iterations=N, report_every=K)`` must return the **bit-identical** best
tour, best length, per-iteration best lengths and final pheromone stack as
``report_every=1``, for every construction kernel (1-8) x every pheromone
strategy (1-5).  Between K-boundaries the loop keeps tours, lengths and the
best-so-far record backend-resident, so this suite is what licenses raising
K without any numerical caveat.  The pre-amortisation baseline mode
(``amortize=False``) must match too — bulk RNG and buffer hoisting are pure
execution strategies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ACOParams, AntSystem, BatchEngine
from repro.errors import ACOConfigError
from repro.tsp import uniform_instance

ITERATIONS = 5
#: K=3 exercises interior boundaries plus the forced final-iteration one
#: (5 % 3 != 0); K=50 exercises the single-boundary whole-run case.
SEEDS = [11, 19]


@pytest.fixture(scope="module")
def instance():
    # Small but not trivial; nn=7 keeps candidate-list fallbacks exercised.
    return uniform_instance(16, seed=2024)


def _engine(instance, construction, pheromone, **kwargs):
    return BatchEngine(
        instance,
        [ACOParams(seed=s, nn=7) for s in SEEDS],
        construction=construction,
        pheromone=pheromone,
        **kwargs,
    )


@pytest.mark.parametrize("construction", range(1, 9))
@pytest.mark.parametrize("pheromone", range(1, 6))
def test_report_every_bit_identical(instance, construction, pheromone):
    ref_engine = _engine(instance, construction, pheromone)
    ref = ref_engine.run(ITERATIONS, report_every=1)
    for K in (3, 50):
        engine = _engine(instance, construction, pheromone)
        got = engine.run(ITERATIONS, report_every=K)
        for b in range(len(SEEDS)):
            assert got.results[b].best_length == ref.results[b].best_length
            np.testing.assert_array_equal(
                got.results[b].best_tour, ref.results[b].best_tour
            )
            assert (
                got.results[b].iteration_best_lengths
                == ref.results[b].iteration_best_lengths
            )
        np.testing.assert_array_equal(
            engine.state.pheromone, ref_engine.state.pheromone
        )
        np.testing.assert_array_equal(engine.state.tours, ref_engine.state.tours)
        np.testing.assert_array_equal(
            engine.state.lengths, ref_engine.state.lengths
        )


def test_reports_thin_to_boundaries(instance):
    engine = _engine(instance, 8, 1)
    batch = engine.run(7, report_every=3)
    # Boundaries at iterations 3, 6 and the forced final one at 7.
    assert len(batch.results[0].reports) == 3
    assert [r.iteration for r in batch.results[0].reports] == [3, 6, 7]
    # Per-iteration best lengths are still complete.
    assert len(batch.results[0].iteration_best_lengths) == 7


def test_report_every_resumes_across_runs(instance):
    """A second run() continues the best record the first one left."""
    a = _engine(instance, 8, 1)
    a.run(3, report_every=1)
    first = a.run(4, report_every=2)
    b = _engine(instance, 8, 1)
    b.run(3, report_every=1)
    second = b.run(4, report_every=1)
    assert first.results[0].best_length == second.results[0].best_length
    np.testing.assert_array_equal(
        first.results[0].best_tour, second.results[0].best_tour
    )


def test_amortize_off_bit_identical(instance):
    """The pre-amortisation baseline mode reproduces the amortized results."""
    fast = _engine(instance, 4, 2)
    slow = _engine(instance, 4, 2, amortize=False)
    rf = fast.run(4)
    rs = slow.run(4)
    assert slow.work is None and slow.state.bulk_rng is False
    for b in range(len(SEEDS)):
        assert rf.results[b].best_length == rs.results[b].best_length
        np.testing.assert_array_equal(
            rf.results[b].best_tour, rs.results[b].best_tour
        )
    np.testing.assert_array_equal(fast.state.pheromone, slow.state.pheromone)


def test_antsystem_report_every(instance):
    ref = AntSystem(instance, ACOParams(seed=5, nn=7)).run(6)
    amo = AntSystem(instance, ACOParams(seed=5, nn=7)).run(6, report_every=4)
    assert amo.best_length == ref.best_length
    np.testing.assert_array_equal(amo.best_tour, ref.best_tour)
    assert amo.iteration_best_lengths == ref.iteration_best_lengths
    assert len(amo.reports) == 2  # boundaries at 4 and 6


def test_report_every_validation(instance):
    engine = _engine(instance, 8, 1)
    with pytest.raises(ACOConfigError):
        engine.run(3, report_every=0)
    with pytest.raises(ACOConfigError):
        AntSystem(instance, ACOParams(seed=1, nn=7)).run(3, report_every=-1)
