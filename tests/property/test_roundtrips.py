"""Property-based round-trip and model-consistency tests."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.tsp.generator import uniform_instance
from repro.tsp.tsplib import parse_tsplib_text, write_tsplib

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)


class TestTsplibRoundTrip:
    @SLOW
    @given(
        n=st.integers(3, 40),
        seed=st.integers(0, 100_000),
        ewt=st.sampled_from(["EUC_2D", "CEIL_2D", "MAN_2D", "MAX_2D", "ATT"]),
    )
    def test_write_parse_preserves_distances(self, tmp_path_factory, n, seed, ewt):
        inst = uniform_instance(n, seed=seed, edge_weight_type=ewt)
        path = tmp_path_factory.mktemp("tsplib") / f"{inst.name}.tsp"
        write_tsplib(inst, path)
        from repro.tsp.tsplib import parse_tsplib

        again = parse_tsplib(path)
        assert again.edge_weight_type == ewt
        np.testing.assert_array_equal(
            again.distance_matrix(), inst.distance_matrix()
        )

    @SLOW
    @given(n=st.integers(3, 20), seed=st.integers(0, 100_000))
    def test_explicit_matrix_roundtrip_via_text(self, n, seed):
        rng = np.random.default_rng(seed)
        sym = rng.integers(1, 1000, size=(n, n))
        sym = (sym + sym.T) // 2
        np.fill_diagonal(sym, 0)
        lines = [
            "NAME : ex",
            f"DIMENSION : {n}",
            "EDGE_WEIGHT_TYPE : EXPLICIT",
            "EDGE_WEIGHT_FORMAT : FULL_MATRIX",
            "EDGE_WEIGHT_SECTION",
        ]
        lines.extend(" ".join(str(int(v)) for v in row) for row in sym)
        lines.append("EOF")
        inst = parse_tsplib_text("\n".join(lines))
        np.testing.assert_array_equal(inst.distance_matrix(), sym)


class TestModelMonotonicity:
    """The cost model must be monotone in problem size for every strategy —
    a basic sanity property the shape claims depend on."""

    @SLOW
    @given(version=st.integers(1, 8))
    def test_construction_time_monotone_in_n(self, version):
        from repro.experiments.harness import construction_model_time
        from repro.simt.device import TESLA_C1060

        names = ("kroC100", "a280", "pcb442", "d657")
        times = [
            construction_model_time(version, name, TESLA_C1060) for name in names
        ]
        assert all(a < b for a, b in zip(times, times[1:])), (version, times)

    @SLOW
    @given(version=st.integers(1, 5))
    def test_pheromone_time_monotone_in_n(self, version):
        from repro.experiments.harness import pheromone_model_time
        from repro.simt.device import TESLA_M2050

        names = ("kroC100", "a280", "pcb442", "d657")
        times = [pheromone_model_time(version, name, TESLA_M2050) for name in names]
        assert all(a < b for a, b in zip(times, times[1:])), (version, times)

    @SLOW
    @given(
        flops=st.floats(0, 1e12),
        bytes_=st.floats(0, 1e12),
        par=st.floats(0.01, 1.0),
    )
    def test_estimate_time_monotone_in_work(self, flops, bytes_, par):
        from repro.simt.counters import KernelStats
        from repro.simt.device import TESLA_C1060
        from repro.simt.timing import CostParams, estimate_time

        p = CostParams()
        base = estimate_time(
            KernelStats(flops=flops, gmem_coalesced_bytes=bytes_),
            TESLA_C1060,
            p,
            effective_parallelism=par,
        )
        more = estimate_time(
            KernelStats(flops=flops * 2 + 1, gmem_coalesced_bytes=bytes_ * 2 + 1),
            TESLA_C1060,
            p,
            effective_parallelism=par,
        )
        assert more > base


class TestTwoOptProperties:
    @SLOW
    @given(n=st.integers(5, 25), seed=st.integers(0, 50_000))
    def test_idempotent(self, n, seed):
        """Running 2-opt on a 2-opt-optimal tour changes nothing."""
        from repro.tsp.local_search import two_opt
        from repro.tsp.tour import random_tour

        inst = uniform_instance(n, seed=seed)
        d = inst.distance_matrix()
        first = two_opt(random_tour(n, np.random.default_rng(seed)), d)
        second = two_opt(first.tour, d)
        assert second.exchanges == 0
        assert second.length == first.length
