"""Checkpoint/resume bit-identity: the fault-tolerance licence.

``run(N)`` must equal ``run(c); save; load into a fresh engine; run(N-c)``
in every observable — per-row best tours and lengths, the pheromone stack,
and the RNG stream position — at **every** K-boundary ``c``, across the
variant grid and with local search on and off.  An 8-row instance/seed
grid (4 distinct instances x 2 seeds each) packs the full heterogeneous
shape the serving tier produces; 5 boundaries cover resume-at-start,
interior boundaries and resume-with-nothing-left.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import ACOParams, BatchEngine, load_checkpoint, save_checkpoint
from repro.tsp import uniform_instance

N = 16
ITERATIONS = 10
K = 2  # boundaries at 2, 4, 6, 8, 10
BOUNDARIES = tuple(range(K, ITERATIONS + 1, K))


@pytest.fixture(scope="module")
def rows():
    """8 rows: 4 distinct instances x 2 seeds, varied (alpha, beta, rho)."""
    base = ACOParams(nn=7)
    out = []
    for i in range(4):
        inst = uniform_instance(N, seed=4200 + i)
        for j, seed in enumerate((11 + i, 61 + i)):
            out.append(
                (
                    inst,
                    dataclasses.replace(
                        base,
                        seed=seed,
                        alpha=1.0 + 0.5 * j,
                        beta=2.0 + i % 2,
                        rho=0.3 + 0.1 * i,
                    ),
                )
            )
    return out


def _engine(rows, variant, local_search):
    return BatchEngine(
        [inst for inst, _ in rows],
        [p for _, p in rows],
        variant=variant,
        local_search=local_search,
        local_search_options=(
            {"passes": 1, "target": "iteration-best"}
            if local_search != "none"
            else None
        ),
    )


def _state_snapshot(engine):
    return {
        "best_lengths": np.asarray(engine.state.best_lengths).copy(),
        "best_tours": np.asarray(engine.state.best_tours).copy(),
        "pheromone": np.asarray(
            engine.backend.to_host(engine.state.pheromone)
        ).copy(),
        "rng": engine.rng.state_arrays(),
        "samples_drawn": engine.rng.samples_drawn,
        "iteration": engine.state.iteration,
    }


def _assert_snapshots_equal(got, ref):
    assert got["iteration"] == ref["iteration"]
    assert got["samples_drawn"] == ref["samples_drawn"]
    np.testing.assert_array_equal(got["best_lengths"], ref["best_lengths"])
    np.testing.assert_array_equal(got["best_tours"], ref["best_tours"])
    np.testing.assert_array_equal(got["pheromone"], ref["pheromone"])
    assert set(got["rng"]) == set(ref["rng"])
    for word, arr in ref["rng"].items():
        np.testing.assert_array_equal(got["rng"][word], arr)


@pytest.mark.parametrize("local_search", ["none", "2opt"])
@pytest.mark.parametrize("variant", ["as", "acs", "mmas"])
def test_resume_bit_identical_at_every_boundary(
    rows, variant, local_search, tmp_path
):
    ref_engine = _engine(rows, variant, local_search)
    ref_batch = ref_engine.run(ITERATIONS, report_every=K)
    ref = _state_snapshot(ref_engine)

    for cut in BOUNDARIES:
        prefix = _engine(rows, variant, local_search)
        prefix.run(cut, report_every=K)
        path = tmp_path / f"{variant}-{local_search}-{cut}.npz"
        save_checkpoint(prefix, path)

        resumed = _engine(rows, variant, local_search)
        resumed.restore(load_checkpoint(path))
        remaining = ITERATIONS - cut
        if remaining:
            tail = resumed.run(remaining, report_every=K)
            for b, res in enumerate(tail.results):
                assert res.best_length == ref_batch.results[b].best_length, (
                    f"row {b} diverged resuming at {cut}"
                )
                np.testing.assert_array_equal(
                    res.best_tour, ref_batch.results[b].best_tour
                )
        _assert_snapshots_equal(_state_snapshot(resumed), ref)


def test_checkpoint_capture_does_not_perturb_the_run(rows, tmp_path):
    """Writing checkpoints mid-run must not change the numerics."""
    clean = _engine(rows, "as", "none")
    clean_batch = clean.run(ITERATIONS, report_every=K)

    observed = _engine(rows, "as", "none")
    path = tmp_path / "mid.npz"
    observed_batch = observed.run(
        ITERATIONS,
        report_every=K,
        on_boundary=lambda update: save_checkpoint(observed, path) and None,
    )
    for b in range(len(rows)):
        assert (
            observed_batch.results[b].best_length
            == clean_batch.results[b].best_length
        )
    _assert_snapshots_equal(_state_snapshot(observed), _state_snapshot(clean))


def test_double_restore_is_idempotent(rows, tmp_path):
    engine = _engine(rows, "mmas", "none")
    engine.run(4, report_every=K)
    path = save_checkpoint(engine, tmp_path / "idem.npz")
    ck = load_checkpoint(path)
    target = _engine(rows, "mmas", "none")
    target.restore(ck)
    once = _state_snapshot(target)
    target.restore(ck)
    _assert_snapshots_equal(_state_snapshot(target), once)
