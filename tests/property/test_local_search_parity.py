"""Local-search parity: the batched 2-opt seam changes nothing but quality.

Two invariants pin the third engine seam:

* **kernel parity** — :func:`~repro.tsp.local_search.two_opt_batch` is
  bit-identical, per batch row, to the solo nn-restricted
  :func:`~repro.tsp.local_search.two_opt` run on that row alone (tours,
  lengths *and* exchange counts), including heterogeneous rows and capped
  passes.  The batch dimension is pure vectorization, never semantics.
* **engine parity** — a ``local_search="2opt"`` :class:`BatchEngine` run at
  B=4 reproduces, per row, the corresponding B=1 engine run exactly, for
  both report cadences.  Batching composes with the ls stage the same way
  it composes with the choice/update seams (PR-5 parity grid).

Plus the seam's raison d'être: at the first report boundary an ls-enabled
run is never behind the plain run on the same seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ACOParams, BatchEngine
from repro.tsp import uniform_instance
from repro.tsp.local_search import two_opt, two_opt_batch
from repro.tsp.tour import random_tour, tour_length, validate_tour

ITERATIONS = 6
SIZES = (14, 18)
SEEDS = (3, 11)


def _rows(n_rows, n, seed):
    """Heterogeneous (tours, dists, nns): distinct instances, equal n."""
    tours, dists, nns = [], [], []
    rng = np.random.default_rng(seed)
    for r in range(n_rows):
        inst = uniform_instance(n, seed=51 + r)
        tours.append(random_tour(n, rng))
        dists.append(inst.distance_matrix())
        nns.append(inst.nn_lists(7))
    return np.stack(tours), np.stack(dists), np.stack(nns)


class TestKernelParity:
    @pytest.mark.parametrize("B", [1, 4])
    @pytest.mark.parametrize("max_passes", [None, 2])
    def test_batch_rows_bit_identical_to_solo(self, B, max_passes):
        tours, dists, nns = _rows(B, 15, seed=7)
        res = two_opt_batch(tours, dists, nn_list=nns, max_passes=max_passes)
        for b in range(B):
            solo = two_opt(
                tours[b], dists[b], nn_list=nns[b], max_passes=max_passes
            )
            np.testing.assert_array_equal(res.tours[b], solo.tour)
            assert int(res.lengths[b]) == solo.length, b
            assert int(res.exchanges[b]) == solo.exchanges, b
            assert int(res.lengths[b]) == tour_length(res.tours[b], dists[b])

    def test_shared_instance_rows_match_solo(self):
        """Broadcast (stride-0) distance/nn batch views: still per-row
        identical to solo — the engine's replica layout."""
        inst = uniform_instance(18, seed=21)
        d, nn = inst.distance_matrix(), inst.nn_lists(7)
        rng = np.random.default_rng(3)
        tours = np.stack([random_tour(18, rng) for _ in range(4)])
        res = two_opt_batch(
            tours,
            np.broadcast_to(d, (4,) + d.shape),
            nn_list=np.broadcast_to(nn, (4,) + nn.shape),
        )
        for b in range(4):
            solo = two_opt(tours[b], d, nn_list=nn)
            np.testing.assert_array_equal(res.tours[b], solo.tour)
            assert int(res.exchanges[b]) == solo.exchanges


class TestEngineParity:
    @pytest.mark.parametrize("variant", ["as", "acs"])
    @pytest.mark.parametrize("report_every", [1, 3])
    def test_batched_ls_rows_match_single_row_engines(
        self, variant, report_every
    ):
        """B=4 with ls on ≡ four B=1 ls-on engines, row by row."""
        for n in SIZES:
            instance = uniform_instance(n, seed=100 + n)
            for seed in SEEDS:
                params = ACOParams(seed=seed, nn=7)
                engine = BatchEngine.replicas(
                    instance,
                    params,
                    replicas=4,
                    variant=variant,
                    local_search="2opt",
                )
                batch = engine.run(ITERATIONS, report_every=report_every)
                for b in range(4):
                    solo = BatchEngine(
                        instance,
                        ACOParams(seed=seed + b, nn=7),
                        variant=variant,
                        local_search="2opt",
                    ).run(ITERATIONS, report_every=report_every)
                    row = batch.results[b]
                    ref = solo.results[0]
                    assert (
                        row.iteration_best_lengths
                        == ref.iteration_best_lengths
                    ), (variant, report_every, n, seed, b)
                    assert row.best_length == ref.best_length
                    np.testing.assert_array_equal(
                        row.best_tour, ref.best_tour
                    )

    def test_ls_run_not_behind_plain_at_first_boundary(self):
        """Quality direction: after one polished boundary the ls run's
        best-so-far is <= the plain run's on identical seeds."""
        instance = uniform_instance(18, seed=118)
        for variant in ("as", "acs", "mmas"):
            for seed in SEEDS:
                params = ACOParams(seed=seed, nn=7)
                plain = BatchEngine(instance, params, variant=variant).run(2)
                polished = BatchEngine(
                    instance, params, variant=variant, local_search="2opt"
                ).run(2)
                assert polished.best_length <= plain.best_length, (
                    variant,
                    seed,
                )

    def test_best_so_far_target_smoke(self):
        """ls-target=best-so-far: results stay internally consistent (the
        reported best length matches its tour) and stats are surfaced."""
        instance = uniform_instance(16, seed=120)
        d = instance.distance_matrix()
        engine = BatchEngine(
            instance,
            ACOParams(seed=5, nn=7),
            variant="mmas",
            local_search="2opt",
            local_search_options={"target": "best-so-far", "passes": 3},
        )
        batch = engine.run(6, report_every=2)
        res = batch.results[0]
        validate_tour(res.best_tour, instance.n)
        assert res.best_length == tour_length(res.best_tour, d)
        assert batch.ls_exchanges >= 0
        assert batch.ls_gain >= 0
        assert batch.ls_wall_seconds >= 0.0

    def test_report_surfaces_ls_stats(self):
        """Boundary reports carry the per-row exchange/gain counters, and
        they reconcile with the engine's running totals."""
        instance = uniform_instance(16, seed=121)
        engine = BatchEngine(
            instance,
            ACOParams(seed=2, nn=7),
            local_search="2opt",
        )
        reports = []
        for _ in range(4):
            reports.extend(engine.run_iteration())
        assert all(r.ls_exchanges >= 0 and r.ls_gain >= 0 for r in reports)
        assert sum(r.ls_gain for r in reports) == engine.ls_gain_total
        assert (
            sum(r.ls_exchanges for r in reports) == engine.ls_exchanges_total
        )
