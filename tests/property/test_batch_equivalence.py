"""Batched-vs-solo equivalence: the BatchEngine's defining invariant.

Batch row ``b`` must be **bit-identical** — tours, lengths, pheromone
matrices, best records — to a solo :class:`~repro.core.AntSystem` run with
row ``b``'s seed, across every construction kernel (1-8) and every
pheromone strategy (1-5).  This is what lets replicate sweeps substitute
for sequential runs without any numerical caveat.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ACOParams, AntSystem, BatchEngine
from repro.tsp import uniform_instance

B = 3
ITERATIONS = 2
SEEDS = [11, 19, 27]


@pytest.fixture(scope="module")
def instance():
    # Small but not trivial; nn=7 keeps candidate-list fallbacks exercised.
    return uniform_instance(20, seed=2024)


def _params(seed: int) -> ACOParams:
    return ACOParams(seed=seed, nn=7)


@pytest.mark.parametrize("construction", range(1, 9))
@pytest.mark.parametrize("pheromone", range(1, 6))
def test_batch_rows_bit_identical_to_solo(instance, construction, pheromone):
    engine = BatchEngine(
        instance,
        [_params(s) for s in SEEDS],
        construction=construction,
        pheromone=pheromone,
    )
    batch = engine.run(ITERATIONS)

    for b, seed in enumerate(SEEDS):
        solo = AntSystem(
            instance, _params(seed), construction=construction, pheromone=pheromone
        )
        result = solo.run(ITERATIONS)

        assert result.best_length == batch.results[b].best_length
        np.testing.assert_array_equal(result.best_tour, batch.results[b].best_tour)
        assert (
            result.iteration_best_lengths
            == batch.results[b].iteration_best_lengths
        )
        # Last iteration's full tour set and the pheromone matrix must match
        # to the bit, not approximately.
        np.testing.assert_array_equal(solo.state.tours, engine.state.tours[b])
        np.testing.assert_array_equal(solo.state.lengths, engine.state.lengths[b])
        np.testing.assert_array_equal(
            solo.state.pheromone, engine.state.pheromone[b]
        )


def test_rows_do_not_couple(instance):
    """A row's trajectory must not depend on what else shares the batch."""
    lone = BatchEngine(instance, [_params(19)], construction=7, pheromone=2)
    mixed = BatchEngine(
        instance,
        [_params(11), _params(19), _params(27)],
        construction=7,
        pheromone=2,
    )
    lone_result = lone.run(ITERATIONS)
    mixed_result = mixed.run(ITERATIONS)
    assert lone_result.results[0].best_length == mixed_result.results[1].best_length
    np.testing.assert_array_equal(
        lone.state.pheromone[0], mixed.state.pheromone[1]
    )


def test_parameter_sweep_rows_match_solo(instance):
    """Sweep points (different alpha/beta/rho) reproduce solo runs too."""
    import dataclasses

    base = _params(5)
    rows = [
        dataclasses.replace(base, alpha=1.0, beta=2.0, rho=0.5),
        dataclasses.replace(base, alpha=2.0, beta=3.0, rho=0.2),
        dataclasses.replace(base, alpha=0.5, beta=5.0, rho=0.9),
    ]
    engine = BatchEngine(instance, rows, construction=8, pheromone=1)
    batch = engine.run(ITERATIONS)
    for b, p in enumerate(rows):
        solo = AntSystem(instance, p, construction=8, pheromone=1)
        result = solo.run(ITERATIONS)
        assert result.best_length == batch.results[b].best_length
        np.testing.assert_array_equal(
            solo.state.pheromone, engine.state.pheromone[b]
        )
