"""Property tests on the memory model's pattern bucketing."""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.simt.counters import KernelStats
from repro.simt.device import TESLA_C1060
from repro.simt.memory import AccessPattern, GlobalMemory

patterns = st.sampled_from(list(AccessPattern))
accesses = st.lists(
    st.tuples(patterns, st.integers(0, 10_000), st.sampled_from([1, 4, 8])),
    min_size=1,
    max_size=25,
)


class TestBucketConservation:
    @given(accesses)
    def test_buckets_sum_to_logical_bytes(self, ops):
        stats = KernelStats()
        gm = GlobalMemory(TESLA_C1060, stats)
        for pattern, count, width in ops:
            gm.load(count, width, pattern)
        buckets = (
            stats.gmem_coalesced_bytes
            + stats.gmem_broadcast_bytes
            + stats.gmem_strided_bytes
            + stats.gmem_random_bytes
        )
        assert buckets == stats.gmem_load_bytes

    @given(accesses)
    def test_stores_count_into_buckets_too(self, ops):
        stats = KernelStats()
        gm = GlobalMemory(TESLA_C1060, stats)
        for pattern, count, width in ops:
            gm.store(count, width, pattern)
        buckets = (
            stats.gmem_coalesced_bytes
            + stats.gmem_broadcast_bytes
            + stats.gmem_strided_bytes
            + stats.gmem_random_bytes
        )
        assert buckets == stats.gmem_store_bytes

    @given(accesses)
    def test_cost_model_traffic_nonnegative_and_ordered(self, ops):
        """Random-bucket traffic can only increase modeled time relative to
        re-labelling everything coalesced."""
        from repro.simt.timing import CostParams, estimate_time

        stats = KernelStats()
        gm = GlobalMemory(TESLA_C1060, stats)
        total = 0
        for pattern, count, width in ops:
            gm.load(count, width, pattern)
            total += count * width
        as_is = estimate_time(stats, TESLA_C1060, CostParams())

        flat = KernelStats()
        GlobalMemory(TESLA_C1060, flat).load(total, 1, AccessPattern.COALESCED)
        flattened = estimate_time(flat, TESLA_C1060, CostParams())
        # broadcast can be cheaper than coalesced; exclude pure-broadcast mixes
        if stats.gmem_broadcast_bytes == 0:
            assert as_is >= flattened - 1e-12


class TestGatherFunctional:
    @given(
        st.integers(1, 200),
        st.lists(st.integers(0, 199), min_size=1, max_size=64),
    )
    def test_gather_values_correct(self, size, idx):
        idx = [i % size for i in idx]
        arr = np.arange(size, dtype=np.float32) * 2.0
        gm = GlobalMemory(TESLA_C1060, KernelStats())
        out = gm.gather(arr, np.array(idx))
        np.testing.assert_array_equal(out, arr[np.array(idx)])
