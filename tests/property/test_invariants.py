"""Property-based tests on the core invariants (hypothesis).

These cover the data structures and algorithms whose correctness everything
else leans on: tours, roulette selection, pheromone updates, ledgers.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ACOParams
from repro.core.choice import ChoiceKernel
from repro.core.construction.dataparallel import DataParallelConstruction
from repro.core.construction.taskbased import construct_exact
from repro.core.pheromone import PHEROMONE_VERSIONS
from repro.core.state import ColonyState
from repro.rng import ParkMillerLCG
from repro.simt.device import TESLA_M2050
from repro.tsp.generator import uniform_instance
from repro.tsp.tour import tour_lengths, validate_tour

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _state(n, seed, nn):
    inst = uniform_instance(n, seed=seed)
    stt = ColonyState.create(inst, ACOParams(seed=seed, nn=nn), TESLA_M2050)
    ChoiceKernel().run(stt)
    return stt


class TestConstructionInvariants:
    @SLOW
    @given(
        n=st.integers(8, 36),
        seed=st.integers(0, 10_000),
        nn=st.integers(2, 12),
        use_nn=st.booleans(),
    )
    def test_exact_rule_always_yields_hamiltonian_tours(self, n, seed, nn, use_nn):
        stt = _state(n, seed, nn)
        rng = ParkMillerLCG(n_streams=stt.m, seed=seed + 1)
        tours, fb = construct_exact(
            stt.choice_info, stt.nn_list if use_nn else None, rng, stt.m, stt.n
        )
        assert fb >= 0
        for t in tours:
            validate_tour(t, n)

    @SLOW
    @given(n=st.integers(8, 30), seed=st.integers(0, 10_000), tile=st.sampled_from([32, 64]))
    def test_iroulette_always_yields_hamiltonian_tours(self, n, seed, tile):
        stt = _state(n, seed, 5)
        strategy = DataParallelConstruction(tile=tile)
        rng = ParkMillerLCG(n_streams=stt.m * stt.n, seed=seed + 2)
        res = strategy.build(stt, rng)
        for t in res.tours:
            validate_tour(t, n)

    @SLOW
    @given(n=st.integers(8, 30), seed=st.integers(0, 10_000))
    def test_dataparallel_predict_equals_simulate(self, n, seed):
        stt = _state(n, seed, 5)
        strategy = DataParallelConstruction(tile=32)
        rng = ParkMillerLCG(n_streams=stt.m * stt.n, seed=seed + 3)
        res = strategy.build(stt, rng)
        pred, _ = strategy.predict_stats(stt.n, stt.m, stt.nn, TESLA_M2050)
        assert res.report.stats.approx_equal(pred), res.report.stats.diff(pred)


class TestPheromoneInvariants:
    @SLOW
    @given(
        n=st.integers(8, 28),
        seed=st.integers(0, 10_000),
        version=st.sampled_from(sorted(PHEROMONE_VERSIONS)),
        rho=st.floats(0.05, 1.0),
    )
    def test_update_preserves_symmetry_and_positivity(self, n, seed, version, rho):
        inst = uniform_instance(n, seed=seed)
        stt = ColonyState.create(inst, ACOParams(seed=seed, rho=rho), TESLA_M2050)
        ChoiceKernel().run(stt)
        rng = ParkMillerLCG(n_streams=stt.m, seed=seed)
        tours, _ = construct_exact(stt.choice_info, None, rng, stt.m, stt.n)
        lengths = tour_lengths(tours, stt.dist)
        PHEROMONE_VERSIONS[version]().update(stt, tours, lengths)
        assert np.all(stt.pheromone >= 0)
        assert np.all(np.isfinite(stt.pheromone))
        np.testing.assert_allclose(stt.pheromone, stt.pheromone.T, rtol=1e-12)

    @SLOW
    @given(n=st.integers(8, 24), seed=st.integers(0, 10_000))
    def test_total_deposit_mass_conserved(self, n, seed):
        """After evaporation, total pheromone rises by exactly
        2 * sum_k (n edges * 1/C_k) — eq. 3 aggregated."""
        inst = uniform_instance(n, seed=seed)
        stt = ColonyState.create(inst, ACOParams(seed=seed, rho=0.5), TESLA_M2050)
        ChoiceKernel().run(stt)
        rng = ParkMillerLCG(n_streams=stt.m, seed=seed)
        tours, _ = construct_exact(stt.choice_info, None, rng, stt.m, stt.n)
        lengths = tour_lengths(tours, stt.dist)
        before = stt.pheromone.sum()
        PHEROMONE_VERSIONS[1]().update(stt, tours, lengths)
        expected = before * 0.5 + 2.0 * n * (1.0 / lengths.astype(float)).sum()
        assert stt.pheromone.sum() == pytest.approx(expected, rel=1e-9)


class TestLedgerAlgebra:
    @given(
        st.lists(
            st.tuples(st.floats(0, 1e9), st.floats(0, 1e9)), min_size=1, max_size=8
        )
    )
    def test_kernel_stats_merge_associative(self, pairs):
        from repro.simt.counters import KernelStats

        ledgers = [KernelStats(flops=a, atomic_hot_degree=b) for a, b in pairs]
        left = ledgers[0]
        for led in ledgers[1:]:
            left = left + led
        right = ledgers[-1]
        for led in reversed(ledgers[:-1]):
            right = led + right
        assert left.approx_equal(right)

    @given(st.floats(0, 1e6), st.floats(0, 16), st.floats(0, 16))
    def test_cpu_ops_scaling_distributes(self, base, f1, f2):
        from repro.seq.counts import CpuOps

        ops = CpuOps(arith_ops=base, rng_samples=base / 2)
        a = ops.scaled(f1).scaled(f2)
        b = ops.scaled(f1 * f2)
        assert a.approx_equal(b, rtol=1e-9)
