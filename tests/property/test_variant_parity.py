"""Variant parity: batched ACS/MMAS are bit-identical to the solo references.

The variant redesign's defining invariant: a :class:`BatchEngine` run with
``variant="acs"`` / ``"mmas"`` must reproduce, per batch row, **exactly**
what the retained pre-redesign solo loops
(:class:`~repro.core.reference.ReferenceAntColonySystem`,
:class:`~repro.core.reference.ReferenceMaxMinAntSystem`) produce for that
row's seed — per-iteration best lengths, best tour, best length and the
final pheromone matrix, all compared bitwise.  The grid covers an
instance × seed product, batch sizes B ∈ {1, 4} and the amortized loop at
report_every ∈ {1, 3}, so batching, seeding and K-block amortization are
each pinned independently.

The engine-backed B=1 views (:class:`~repro.core.acs.AntColonySystem`,
:class:`~repro.core.mmas.MaxMinAntSystem`) are checked against the same
oracles, which transfers the entire legacy variant test surface onto the
engine path.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import ACOParams, BatchEngine
from repro.core.acs import AntColonySystem
from repro.core.mmas import MaxMinAntSystem
from repro.core.reference import (
    ReferenceAntColonySystem,
    ReferenceMaxMinAntSystem,
)
from repro.tsp import uniform_instance

ITERATIONS = 6
#: instance sizes x master seeds of the parity grid (nn=7 keeps the
#: candidate-list machinery exercised on the MMAS construction side)
SIZES = (14, 18)
SEEDS = (3, 11)


def _instances():
    return [uniform_instance(n, seed=100 + n) for n in SIZES]


def _reference(variant: str, instance, params):
    if variant == "acs":
        return ReferenceAntColonySystem(instance, params)
    return ReferenceMaxMinAntSystem(instance, params)


@pytest.mark.parametrize("variant", ["acs", "mmas"])
@pytest.mark.parametrize("B", [1, 4])
@pytest.mark.parametrize("report_every", [1, 3])
def test_batched_variant_bit_identical_to_solo_reference(
    variant, B, report_every
):
    for instance in _instances():
        for seed in SEEDS:
            params = ACOParams(seed=seed, nn=7)
            engine = BatchEngine.replicas(
                instance, params, replicas=B, variant=variant
            )
            batch = engine.run(ITERATIONS, report_every=report_every)
            for b in range(B):
                row_params = dataclasses.replace(params, seed=seed + b)
                ref = _reference(variant, instance, row_params)
                ref_result = ref.run(ITERATIONS)
                row = batch.results[b]
                assert (
                    row.iteration_best_lengths
                    == ref_result.iteration_best_lengths
                ), (variant, B, report_every, instance.n, seed, b)
                assert row.best_length == ref_result.best_length
                np.testing.assert_array_equal(
                    row.best_tour, ref_result.best_tour
                )
                np.testing.assert_array_equal(
                    engine.state.pheromone[b], ref.state.pheromone
                )


@pytest.mark.parametrize("variant", ["acs", "mmas"])
def test_views_match_reference(variant):
    """The B=1 views return reference-identical results (incl. pheromone)."""
    instance = uniform_instance(16, seed=2024)
    params = ACOParams(seed=7, nn=7)
    if variant == "acs":
        view = AntColonySystem(instance, params)
    else:
        view = MaxMinAntSystem(instance, params)
    ref = _reference(variant, instance, params)
    res = view.run(ITERATIONS)
    ref_res = ref.run(ITERATIONS)
    assert res.iteration_best_lengths == ref_res.iteration_best_lengths
    assert res.best_length == ref_res.best_length
    np.testing.assert_array_equal(res.best_tour, ref_res.best_tour)
    np.testing.assert_array_equal(view.state.pheromone, ref.state.pheromone)


def test_mmas_stagnation_reinit_matches_reference():
    """The engine's per-row stagnation reinit follows the reference loop
    (aggressive convergence parameters force at least one reset)."""
    instance = uniform_instance(16, seed=99)
    params = ACOParams(seed=12, nn=7, rho=0.9, beta=5.0)
    view = MaxMinAntSystem(instance, params)
    ref = ReferenceMaxMinAntSystem(instance, params)
    res = view.run(20, reinit_branching=2.5)
    ref_res = ref.run(20, reinit_branching=2.5)
    assert res.iteration_best_lengths == ref_res.iteration_best_lengths
    assert res.trail_reinitialisations == ref_res.trail_reinitialisations
    assert res.trail_reinitialisations >= 1
    np.testing.assert_array_equal(view.state.pheromone, ref.state.pheromone)


@pytest.mark.parametrize("variant", ["acs", "mmas"])
def test_pre_amortisation_baseline_matches_reference(variant):
    """``amortize=False`` (per-step draws, allocate-per-call) is a pure
    execution-strategy change for the variants too — bit-identical to both
    the amortized engine and the solo reference."""
    instance = uniform_instance(15, seed=41)
    params = ACOParams(seed=6, nn=7)
    ref = _reference(variant, instance, params).run(5)
    baseline = BatchEngine(instance, params, variant=variant, amortize=False)
    got = baseline.run(5)
    assert got.results[0].iteration_best_lengths == ref.iteration_best_lengths
    np.testing.assert_array_equal(got.results[0].best_tour, ref.best_tour)


def test_heterogeneous_variant_batch_rows_stay_independent():
    """Distinct equal-n instances and per-row params in one ACS/MMAS batch:
    every row still reproduces its solo reference exactly (the packing
    guarantee the solve service relies on)."""
    instances = [uniform_instance(15, seed=s) for s in (51, 52, 53)]
    plist = [
        ACOParams(seed=5, nn=7),
        ACOParams(seed=9, nn=7, rho=0.2),
        ACOParams(seed=2, nn=7, beta=3.0),
    ]
    for variant in ("acs", "mmas"):
        engine = BatchEngine(instances, plist, variant=variant)
        batch = engine.run(4)
        for b, (inst, p) in enumerate(zip(instances, plist)):
            ref = _reference(variant, inst, p)
            ref_result = ref.run(4)
            assert (
                batch.results[b].iteration_best_lengths
                == ref_result.iteration_best_lengths
            ), (variant, b)
            np.testing.assert_array_equal(
                engine.state.pheromone[b], ref.state.pheromone
            )
