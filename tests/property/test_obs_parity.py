"""Instrumentation parity: metrics/tracing must not perturb the engine.

The observability layer only reads ``perf_counter``; it must never touch
engine arrays or the engine RNG.  This suite pins that contract the same
way ``test_report_every.py`` pins the amortized loop: an engine run with a
live :class:`~repro.obs.MetricsRegistry` and
:class:`~repro.obs.TraceRecorder` attached must be **bit-identical** — best
tours, best lengths, per-iteration bests and the final pheromone stack —
to a bare engine, for every construction kernel (1-8) x every pheromone
strategy (1-5).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ACOParams, BatchEngine
from repro.obs import PHASES, MetricsRegistry, NullRegistry, TraceRecorder
from repro.tsp import uniform_instance

ITERATIONS = 5
SEEDS = [11, 19]


@pytest.fixture(scope="module")
def instance():
    # Same grid geometry test_report_every.py pins its invariant on.
    return uniform_instance(16, seed=2024)


def _engine(instance, construction, pheromone, **kwargs):
    return BatchEngine(
        instance,
        [ACOParams(seed=s, nn=7) for s in SEEDS],
        construction=construction,
        pheromone=pheromone,
        **kwargs,
    )


@pytest.mark.parametrize("construction", range(1, 9))
@pytest.mark.parametrize("pheromone", range(1, 6))
def test_instrumented_run_bit_identical(instance, construction, pheromone):
    bare_engine = _engine(instance, construction, pheromone)
    bare = bare_engine.run(ITERATIONS, report_every=2)

    metrics = MetricsRegistry()
    tracer = TraceRecorder()
    obs_engine = _engine(
        instance, construction, pheromone, metrics=metrics, tracer=tracer
    )
    got = obs_engine.run(ITERATIONS, report_every=2)

    for b in range(len(SEEDS)):
        assert got.results[b].best_length == bare.results[b].best_length
        np.testing.assert_array_equal(
            got.results[b].best_tour, bare.results[b].best_tour
        )
        assert (
            got.results[b].iteration_best_lengths
            == bare.results[b].iteration_best_lengths
        )
    np.testing.assert_array_equal(
        obs_engine.state.pheromone, bare_engine.state.pheromone
    )
    np.testing.assert_array_equal(obs_engine.state.tours, bare_engine.state.tours)

    # The instrumented run did actually record something.
    assert len(tracer) > 0
    assert metrics.snapshot()["counters"]["engine.runs"] == 1


def test_bare_engine_publishes_nothing(instance):
    """metrics=None resolves to the shared no-op registry: zero entries."""
    engine = _engine(instance, 8, 1)
    engine.run(ITERATIONS, report_every=2)
    assert isinstance(engine.phase_clock.metrics, NullRegistry)
    assert engine.phase_clock.metrics.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {},
    }
    assert engine.tracer is None


def test_phase_breakdown_always_on_and_sums_to_wall(instance):
    """Run totals are accumulated even without a registry, and account for
    the whole wall-clock (phases sum <= wall, and nearly all of it)."""
    engine = _engine(instance, 8, 1)
    batch = engine.run(ITERATIONS, report_every=2)
    breakdown = batch.phase_breakdown
    assert set(breakdown) == set(PHASES)
    total = sum(breakdown.values())
    assert total > 0.0
    # Loop overhead only: the phases cover the run up to ~5% slack, and
    # can never exceed the measured wall.
    assert total <= batch.wall_seconds * 1.05
    assert breakdown["construct"] > 0.0
    assert breakdown["local-search"] == 0.0  # not installed


def test_phase_breakdown_windows_per_run(instance):
    """Each run() reports only its own window of the engine's totals."""
    engine = _engine(instance, 8, 1)
    first = engine.run(3, report_every=1)
    second = engine.run(2, report_every=1)
    assert sum(first.phase_breakdown.values()) > 0.0
    assert sum(second.phase_breakdown.values()) > 0.0
    # Engine totals hold both windows.
    both = engine.phase_clock.totals
    for phase in PHASES:
        assert both[phase] == pytest.approx(
            first.phase_breakdown[phase] + second.phase_breakdown[phase]
        )


def test_boundary_updates_carry_block_deltas(instance):
    seen = []

    def on_boundary(update):
        seen.append(update.phase_seconds)
        return False

    engine = _engine(
        instance, 8, 1, metrics=MetricsRegistry(), tracer=TraceRecorder()
    )
    engine.run(ITERATIONS, report_every=2, on_boundary=on_boundary)
    assert len(seen) == 3  # boundaries at 2, 4 and the forced final 5
    for deltas in seen:
        assert set(deltas) == set(PHASES)
        assert deltas["construct"] > 0.0
    # Block histograms got one observation per boundary.
    snap = engine.metrics.snapshot()["histograms"]
    assert snap["engine.phase.construct"]["count"] == 3


def test_local_search_phase_accounted(instance):
    engine = _engine(instance, 8, 1, local_search="2opt")
    batch = engine.run(4, report_every=2)
    assert batch.phase_breakdown["local-search"] > 0.0


def test_tracer_spans_labelled_by_variant_policies(instance):
    tracer = TraceRecorder()
    engine = _engine(instance, 8, 1, tracer=tracer)
    engine.run(2, report_every=1)
    names = {s.name for s in tracer.spans}
    assert "construct:roulette" in names
    assert any(n.startswith("update:") for n in names)
    cats = {s.cat for s in tracer.spans}
    assert {"construct", "fold", "update", "host-sync"} <= cats
