"""Heterogeneous-batch solo equivalence: the packer's load-bearing invariant.

The micro-batching service packs *distinct* equal-``n`` instances with
*per-row* parameters into one engine batch.  The original equivalence suite
(:mod:`tests.property.test_batch_equivalence`) pins replicas of a single
instance; this one pins the full packed shape — different coordinate data
and different (alpha, beta, rho, seed) per row, across ``report_every``
values — bit-identical to solo runs in every observable.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import ACOParams, AntSystem, BatchEngine
from repro.tsp import uniform_instance

N = 18
ITERATIONS = 6


@pytest.fixture(scope="module")
def rows():
    """Three distinct instances x three distinct parameter rows."""
    base = ACOParams(nn=7)
    return [
        (
            uniform_instance(N, seed=7001),
            dataclasses.replace(base, seed=11, alpha=1.0, beta=2.0, rho=0.5),
        ),
        (
            uniform_instance(N, seed=7002),
            dataclasses.replace(base, seed=19, alpha=2.0, beta=3.0, rho=0.2),
        ),
        (
            uniform_instance(N, seed=7003),
            dataclasses.replace(base, seed=27, alpha=0.5, beta=5.0, rho=0.9),
        ),
    ]


@pytest.mark.parametrize("report_every", [1, 2, 3, 6])
def test_hetero_rows_bit_identical_to_solo(rows, report_every):
    engine = BatchEngine(
        [inst for inst, _ in rows], [p for _, p in rows]
    )
    batch = engine.run(ITERATIONS, report_every=report_every)
    for b, (inst, p) in enumerate(rows):
        solo = AntSystem(inst, p)
        result = solo.run(ITERATIONS, report_every=report_every)
        assert batch.results[b].best_length == result.best_length
        np.testing.assert_array_equal(
            batch.results[b].best_tour, result.best_tour
        )
        assert (
            batch.results[b].iteration_best_lengths
            == result.iteration_best_lengths
        )
        np.testing.assert_array_equal(
            engine.state.pheromone[b], solo.state.pheromone
        )
        np.testing.assert_array_equal(
            engine.state.tours[b], solo.state.tours
        )


@pytest.mark.parametrize("report_every", [1, 3])
@pytest.mark.parametrize("construction,pheromone", [(4, 2), (7, 5), (8, 1)])
def test_hetero_rows_across_kernel_pairs(rows, construction, pheromone, report_every):
    engine = BatchEngine(
        [inst for inst, _ in rows],
        [p for _, p in rows],
        construction=construction,
        pheromone=pheromone,
    )
    batch = engine.run(ITERATIONS, report_every=report_every)
    for b, (inst, p) in enumerate(rows):
        solo = AntSystem(
            inst, p, construction=construction, pheromone=pheromone
        ).run(ITERATIONS, report_every=report_every)
        assert batch.results[b].best_length == solo.best_length
        assert (
            batch.results[b].iteration_best_lengths
            == solo.iteration_best_lengths
        )


def test_hetero_rows_do_not_couple(rows):
    """A row's trajectory must not depend on which instances share the
    batch — solo-vs-packed AND packed-vs-other-packing."""
    inst_b, p_b = rows[1]
    lone = BatchEngine([inst_b], [p_b]).run(ITERATIONS)
    packed = BatchEngine(
        [inst for inst, _ in rows], [p for _, p in rows]
    ).run(ITERATIONS)
    reordered = BatchEngine(
        [rows[1][0], rows[2][0]], [rows[1][1], rows[2][1]]
    ).run(ITERATIONS)
    assert (
        lone.results[0].best_length
        == packed.results[1].best_length
        == reordered.results[0].best_length
    )
    assert (
        lone.results[0].iteration_best_lengths
        == packed.results[1].iteration_best_lengths
        == reordered.results[0].iteration_best_lengths
    )
