"""Backend parity: every substrate must produce the same tours.

Two layers, both across the full 8 construction × 5 pheromone strategy
grid:

* **NumpyBackend pins the pre-backend engine** — an engine explicitly
  constructed with ``backend="numpy"`` must be bit-identical (tours,
  lengths, pheromone stacks, best records) to the default engine for the
  same seeds.  This is what makes the backend seam a pure refactor on the
  host path.
* **Accelerated backends pin numpy** — any importable accelerated backend
  (CuPy today) must produce identical tours for fixed seeds.  These cases
  are skip-marked wherever only numpy is present, so CPU-only CI records
  them as skips rather than silently not testing GPUs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import available_backends, get_backend
from repro.core import ACOParams, AntSystem, BatchEngine
from repro.tsp import uniform_instance

ITERATIONS = 2
SEEDS = [11, 27]

ACCELERATED = [
    info.name for info in available_backends() if info.accelerated and info.available
]

# With no accelerated backend importable, keep one skip-marked placeholder
# per grid point so CI *records* the untested GPU cases instead of silently
# collecting nothing.
ACCEL_PARAMS = [pytest.param(name) for name in ACCELERATED] or [
    pytest.param(
        "none",
        marks=pytest.mark.skip(
            reason="no accelerated backend importable (numpy only)"
        ),
    )
]

PAIRS = [
    pytest.param(c, p, id=f"c{c}-p{p}")
    for c in range(1, 9)
    for p in range(1, 6)
]


@pytest.fixture(scope="module")
def instance():
    # Small but not trivial; nn=7 keeps candidate-list fallbacks exercised.
    return uniform_instance(20, seed=2024)


def _params(seed: int) -> ACOParams:
    return ACOParams(seed=seed, nn=7)


@pytest.mark.parametrize("construction,pheromone", PAIRS)
def test_numpy_backend_rows_pin_default_engine(instance, construction, pheromone):
    named = BatchEngine(
        instance,
        [_params(s) for s in SEEDS],
        construction=construction,
        pheromone=pheromone,
        backend=get_backend("numpy"),
    )
    default = BatchEngine(
        instance,
        [_params(s) for s in SEEDS],
        construction=construction,
        pheromone=pheromone,
    )
    named_batch = named.run(ITERATIONS)
    default_batch = default.run(ITERATIONS)

    for b in range(len(SEEDS)):
        assert (
            named_batch.results[b].best_length
            == default_batch.results[b].best_length
        )
        np.testing.assert_array_equal(
            named_batch.results[b].best_tour, default_batch.results[b].best_tour
        )
    np.testing.assert_array_equal(named.state.tours, default.state.tours)
    np.testing.assert_array_equal(named.state.lengths, default.state.lengths)
    np.testing.assert_array_equal(named.state.pheromone, default.state.pheromone)


@pytest.mark.parametrize("backend_name", ACCEL_PARAMS)
@pytest.mark.parametrize("construction,pheromone", PAIRS)
def test_accelerated_backend_tours_match_numpy(
    instance, backend_name, construction, pheromone
):  # pragma: no cover - needs real accelerator hardware
    accel = AntSystem(
        instance,
        _params(SEEDS[0]),
        construction=construction,
        pheromone=pheromone,
        backend=backend_name,
    )
    host = AntSystem(
        instance,
        _params(SEEDS[0]),
        construction=construction,
        pheromone=pheromone,
        backend="numpy",
    )
    accel_result = accel.run(ITERATIONS)
    host_result = host.run(ITERATIONS)
    assert accel_result.best_length == host_result.best_length
    np.testing.assert_array_equal(accel_result.best_tour, host_result.best_tour)
    np.testing.assert_array_equal(
        accel.engine.state.tours, host.engine.state.tours
    )
    np.testing.assert_array_equal(
        accel.backend.to_host(accel.engine.state.pheromone),
        host.engine.state.pheromone,
    )
