"""Tests for repro.util.tables."""

from __future__ import annotations

import pytest

from repro.util.tables import Table, format_float, format_ms, format_speedup


class TestFormatters:
    def test_format_float(self):
        assert format_float(1.234, 2) == "1.23"

    def test_format_ms_small(self):
        assert format_ms(0.00123) == "1.23"

    def test_format_ms_medium(self):
        assert format_ms(0.0123) == "12.3"

    def test_format_ms_large(self):
        assert format_ms(1.5) == "1500"

    def test_format_speedup(self):
        assert format_speedup(2.654) == "2.65x"


class TestTable:
    def test_render_contains_headers_and_cells(self):
        t = Table(["a", "bb"], title="demo")
        t.add_row([1, 2])
        text = t.render()
        assert "demo" in text
        assert "a" in text and "bb" in text
        assert "1" in text and "2" in text

    def test_row_length_mismatch_raises(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_alignment_right_justified(self):
        t = Table(["col"])
        t.add_row(["x"])
        t.add_row(["longer"])
        lines = t.render().splitlines()
        # header line, separator, two rows — all equal width
        widths = {len(line) for line in lines}
        assert len(widths) == 1

    def test_markdown_shape(self):
        t = Table(["h1", "h2"], title="md")
        t.add_row(["a", "b"])
        md = t.render_markdown()
        assert "| h1 | h2 |" in md
        assert "|---|---|" in md
        assert "| a | b |" in md

    def test_str_equals_render(self):
        t = Table(["x"])
        t.add_row([3])
        assert str(t) == t.render()

    def test_empty_table_renders_headers_only(self):
        t = Table(["only"])
        lines = t.render().splitlines()
        assert len(lines) == 2  # header + separator
