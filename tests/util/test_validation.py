"""Tests for repro.util.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_square_matrix,
)


class TestCheckPositive:
    def test_passes_and_returns(self):
        assert check_positive("x", 2.0) == 2.0

    def test_zero_fails(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0.0)

    def test_custom_exception(self):
        class Boom(Exception):
            pass

        with pytest.raises(Boom):
            check_positive("x", -1, exc=Boom)


class TestCheckNonNegative:
    def test_zero_ok(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_negative_fails(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_open_bounds(self):
        with pytest.raises(ValueError):
            check_in_range("x", 0.0, 0.0, 1.0, lo_open=True)
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 0.0, 1.0, hi_open=True)

    def test_message_names_parameter(self):
        with pytest.raises(ValueError, match="rho"):
            check_in_range("rho", 2.0, 0.0, 1.0)


class TestCheckProbability:
    def test_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability("p", 1.01)


class TestCheckSquareMatrix:
    def test_square_passes(self):
        m = np.zeros((3, 3))
        out = check_square_matrix("m", m)
        assert out.shape == (3, 3)

    def test_rectangular_fails(self):
        with pytest.raises(ValueError):
            check_square_matrix("m", np.zeros((2, 3)))

    def test_vector_fails(self):
        with pytest.raises(ValueError):
            check_square_matrix("m", np.zeros(4))
