"""Tests for repro.util.timer."""

from __future__ import annotations

import pytest

from repro.util.timer import Timer, WallClock


class TestWallClock:
    def test_measures_nonnegative(self):
        with WallClock() as clock:
            sum(range(1000))
        assert clock.elapsed >= 0.0

    def test_callback_invoked(self):
        seen = []
        with WallClock(on_exit=seen.append):
            pass
        assert len(seen) == 1
        assert seen[0] >= 0.0


class TestTimer:
    def test_laps_accumulate(self):
        t = Timer()
        for _ in range(3):
            with t.lap():
                pass
        assert t.count == 3
        assert t.total >= 0.0
        assert t.mean == pytest.approx(t.total / 3)

    def test_add_external_lap(self):
        t = Timer()
        t.add(0.5)
        t.add(1.5)
        assert t.mean == pytest.approx(1.0)

    def test_add_negative_raises(self):
        with pytest.raises(ValueError):
            Timer().add(-1.0)

    def test_mean_empty_is_zero(self):
        assert Timer().mean == 0.0

    def test_reset(self):
        t = Timer()
        t.add(1.0)
        t.reset()
        assert t.count == 0
        assert t.total == 0.0
