"""Tests for repro.util.timer."""

from __future__ import annotations

import pytest

from repro.util.timer import Timer, WallClock


class TestWallClock:
    def test_measures_nonnegative(self):
        with WallClock() as clock:
            sum(range(1000))
        assert clock.elapsed >= 0.0

    def test_callback_invoked(self):
        seen = []
        with WallClock(on_exit=seen.append):
            pass
        assert len(seen) == 1
        assert seen[0] >= 0.0


class TestTimer:
    def test_laps_accumulate(self):
        t = Timer()
        for _ in range(3):
            with t.lap():
                pass
        assert t.count == 3
        assert t.total >= 0.0
        assert t.mean == pytest.approx(t.total / 3)

    def test_add_external_lap(self):
        t = Timer()
        t.add(0.5)
        t.add(1.5)
        assert t.mean == pytest.approx(1.0)

    def test_add_negative_raises(self):
        with pytest.raises(ValueError):
            Timer().add(-1.0)

    def test_mean_empty_is_zero(self):
        assert Timer().mean == 0.0

    def test_reset(self):
        t = Timer()
        t.add(1.0)
        t.reset()
        assert t.count == 0
        assert t.total == 0.0

    def test_percentile_linear_interpolation(self):
        t = Timer()
        for v in (1.0, 2.0, 3.0, 4.0):
            t.add(v)
        assert t.percentile(0) == 1.0
        assert t.percentile(100) == 4.0
        assert t.p50 == pytest.approx(2.5)
        assert t.percentile(25) == pytest.approx(1.75)

    def test_percentile_single_lap(self):
        t = Timer()
        t.add(7.0)
        assert t.p50 == 7.0 and t.p99 == 7.0

    def test_percentile_ignores_insertion_order(self):
        t = Timer()
        for v in (9.0, 1.0, 5.0):
            t.add(v)
        assert t.p50 == 5.0
        assert t.laps == [9.0, 1.0, 5.0]  # sorting never mutates the laps

    def test_percentile_empty_is_zero(self):
        assert Timer().p95 == 0.0

    def test_percentile_out_of_range_raises(self):
        with pytest.raises(ValueError):
            Timer().percentile(-1)
        with pytest.raises(ValueError):
            Timer().percentile(100.5)

    def test_merge_folds_laps_and_chains(self):
        a = Timer()
        b = Timer()
        a.add(1.0)
        b.add(3.0)
        assert a.merge(b) is a
        assert a.count == 2
        assert a.mean == pytest.approx(2.0)
        assert b.count == 1  # other side untouched
