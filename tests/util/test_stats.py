"""Tests for repro.util.stats."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    crossover_index,
    geometric_mean,
    log_ratio,
    mean_and_std,
    monotone_fraction,
    relative_error,
    spearman_rank_correlation,
)


class TestGeometricMean:
    def test_single_value(self):
        assert geometric_mean([4.0]) == pytest.approx(4.0)

    def test_two_values(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_non_positive_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])

    @given(st.lists(st.floats(0.01, 1e6), min_size=1, max_size=30))
    def test_bounded_by_min_max(self, values):
        g = geometric_mean(values)
        assert min(values) * (1 - 1e-9) <= g <= max(values) * (1 + 1e-9)


class TestMeanAndStd:
    def test_constant_sequence(self):
        mean, std = mean_and_std([3.0, 3.0, 3.0])
        assert mean == pytest.approx(3.0)
        assert std == pytest.approx(0.0)

    def test_single_value_has_zero_std(self):
        assert mean_and_std([5.0]) == (5.0, 0.0)

    def test_known_values(self):
        mean, std = mean_and_std([1.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(math.sqrt(2.0))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_and_std([])


class TestErrors:
    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)

    def test_relative_error_zero_reference(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    def test_log_ratio_symmetry(self):
        assert log_ratio(2.0, 1.0) == pytest.approx(-log_ratio(1.0, 2.0))

    def test_log_ratio_identity(self):
        assert log_ratio(5.0, 5.0) == pytest.approx(0.0)

    def test_log_ratio_requires_positive(self):
        with pytest.raises(ValueError):
            log_ratio(-1.0, 2.0)


class TestSpearman:
    def test_identical_order(self):
        assert spearman_rank_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_reversed_order(self):
        assert spearman_rank_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_ties_handled(self):
        rho = spearman_rank_correlation([1, 1, 2], [1, 1, 2])
        assert rho == pytest.approx(1.0)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation([1, 2], [1, 2, 3])

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation([1], [1])

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=20, unique=True))
    def test_self_correlation_is_one(self, values):
        assert spearman_rank_correlation(values, values) == pytest.approx(1.0)

    @given(
        st.lists(st.floats(-1e3, 1e3), min_size=3, max_size=15, unique=True),
        st.randoms(use_true_random=False),
    )
    def test_bounded(self, values, rnd):
        shuffled = list(values)
        rnd.shuffle(shuffled)
        rho = spearman_rank_correlation(values, shuffled)
        assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9


class TestMonotoneFraction:
    def test_strictly_increasing(self):
        assert monotone_fraction([1, 2, 3, 4]) == pytest.approx(1.0)

    def test_strictly_decreasing(self):
        assert monotone_fraction([4, 3, 2], increasing=False) == pytest.approx(1.0)

    def test_mixed(self):
        assert monotone_fraction([1, 2, 1]) == pytest.approx(0.5)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            monotone_fraction([1.0])


class TestCrossoverIndex:
    def test_finds_first_above(self):
        assert crossover_index([0.5, 0.9, 1.2, 2.0]) == 2

    def test_none_when_never_crossing(self):
        assert crossover_index([0.1, 0.5, 0.9]) is None

    def test_first_element(self):
        assert crossover_index([2.0, 0.5]) == 0

    def test_custom_threshold(self):
        assert crossover_index([1.0, 2.0, 5.0], threshold=4.0) == 2

    def test_exact_threshold_not_counted(self):
        # strictly above
        assert crossover_index([1.0, 1.0]) is None
