"""Tests for the Park-Miller device-function LCG."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rng.lcg import LCG_IA, LCG_IM, ParkMillerLCG, lcg_step


class TestLcgStep:
    def test_known_sequence_from_seed_one(self):
        # Park-Miller from state 1: 16807, 282475249, 1622650073, ...
        state = np.array([1], dtype=np.int64)
        state = lcg_step(state)
        assert state[0] == 16807
        state = lcg_step(state)
        assert state[0] == 282475249
        state = lcg_step(state)
        assert state[0] == 1622650073

    def test_matches_direct_modmul(self):
        # Schrage's method must equal (a * s) mod m computed in wide ints.
        states = np.array([1, 2, 12345, LCG_IM - 1], dtype=np.int64)
        out = lcg_step(states.copy())
        expected = (LCG_IA * states.astype(object)) % LCG_IM
        assert list(out) == list(expected)

    @given(st.integers(1, LCG_IM - 1))
    def test_state_stays_in_range(self, s):
        out = lcg_step(np.array([s], dtype=np.int64))
        assert 1 <= out[0] <= LCG_IM - 1


class TestParkMillerLCG:
    def test_uniform_in_unit_interval(self):
        rng = ParkMillerLCG(n_streams=64, seed=42)
        for _ in range(10):
            u = rng.uniform()
            assert u.shape == (64,)
            assert np.all(u >= 0.0) and np.all(u < 1.0)

    def test_deterministic_given_seed(self):
        a = ParkMillerLCG(n_streams=8, seed=5).uniform_block(4)
        b = ParkMillerLCG(n_streams=8, seed=5).uniform_block(4)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ParkMillerLCG(n_streams=8, seed=5).uniform()
        b = ParkMillerLCG(n_streams=8, seed=6).uniform()
        assert not np.array_equal(a, b)

    def test_streams_are_distinct(self):
        u = ParkMillerLCG(n_streams=256, seed=1).uniform()
        # distinct states give (almost surely) distinct values
        assert len(np.unique(u)) > 250

    def test_samples_drawn_accounting(self):
        rng = ParkMillerLCG(n_streams=10, seed=1)
        rng.uniform()
        rng.uniform_block(3)
        assert rng.samples_drawn == 10 + 30

    def test_mean_is_roughly_half(self):
        rng = ParkMillerLCG(n_streams=512, seed=9)
        block = rng.uniform_block(50)
        assert abs(block.mean() - 0.5) < 0.02

    def test_uniform_scalar_advances_all_streams(self):
        rng = ParkMillerLCG(n_streams=4, seed=3)
        before = rng.state
        rng.uniform_scalar()
        after = rng.state
        assert not np.array_equal(before, after)

    def test_invalid_stream_count(self):
        with pytest.raises(ValueError):
            ParkMillerLCG(n_streams=0, seed=1)

    def test_block_rounds_negative_raises(self):
        rng = ParkMillerLCG(n_streams=2, seed=1)
        with pytest.raises(ValueError):
            rng.uniform_block(-1)
