"""Bulk-RNG equivalence: blocks must equal sequential draws bit-for-bit.

The amortized engines pregenerate each iteration's draws with one
``uniform_block(rounds)`` call; every construction result rests on that
block consumption being indistinguishable from per-step ``uniform()``
calls.  This suite pins the invariant for both generator families (the
Park-Miller LCG with its jump-ahead/in-place fill strategies, and XORWOW)
and for the chunked :class:`~repro.rng.BlockedDraws` consumer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import (
    BlockedDraws,
    ParkMillerLCG,
    StepDraws,
    XorwowRNG,
    make_batched_rng,
    make_rng,
)


@pytest.mark.parametrize("kind", ["lcg", "xorwow"])
@pytest.mark.parametrize(
    "n_streams,rounds",
    [
        (4, 10),  # tiny
        (768, 48),  # jump-ahead regime (LCG)
        (9000, 8),  # wide: in-place row fill regime (LCG)
        (513, 1),  # single round
    ],
)
def test_block_equals_sequential_uniforms(kind, n_streams, rounds):
    blocked = make_rng(kind, n_streams, seed=7)
    stepped = make_rng(kind, n_streams, seed=7)
    block = blocked.uniform_block(rounds)
    sequential = np.stack([stepped.uniform() for _ in range(rounds)])
    np.testing.assert_array_equal(block, sequential)
    # States stay in lockstep after the block: the next draws agree too.
    np.testing.assert_array_equal(blocked.uniform(), stepped.uniform())
    assert blocked.samples_drawn == stepped.samples_drawn


@pytest.mark.parametrize("kind", ["lcg", "xorwow"])
def test_block_consumption_tracks_samples(kind):
    rng = make_rng(kind, 32, seed=3)
    rng.uniform_block(5)
    assert rng.samples_drawn == 5 * 32


def test_lcg_wide_rowfill_matches_jump_ahead():
    """The LCG's two fill strategies are bit-identical on the same shape."""
    # 9000 * 8 > JUMP_AHEAD_MAX_ELEMENTS: `wide` takes the in-place row
    # fill; `forced` has its crossover raised so it jump-aheads instead.
    assert 9000 * 8 > ParkMillerLCG.JUMP_AHEAD_MAX_ELEMENTS
    wide = ParkMillerLCG(n_streams=9000, seed=11)
    forced = ParkMillerLCG(n_streams=9000, seed=11)
    forced.JUMP_AHEAD_MAX_ELEMENTS = 1 << 30
    np.testing.assert_array_equal(wide.uniform_block(8), forced.uniform_block(8))


def test_block_out_buffer_reuse():
    rng = ParkMillerLCG(n_streams=16, seed=5)
    ref = ParkMillerLCG(n_streams=16, seed=5)
    out = np.empty((10, 16), dtype=np.float64)
    got = rng.uniform_block(4, out=out)
    assert got.shape == (4, 16)
    assert got.base is out or got is out  # a view of the caller's buffer
    np.testing.assert_array_equal(got, ref.uniform_block(4))
    with pytest.raises(ValueError):
        rng.uniform_block(11, out=out)  # too small


def test_blocked_draws_chunked_lockstep():
    """Chunked BlockedDraws consumption equals per-step uniforms exactly."""
    a = make_batched_rng("lcg", 100, [3, 9])
    b = make_batched_rng("lcg", 100, [3, 9])
    draws = BlockedDraws(a, 7, max_block_elements=300)  # forces 1-round chunks
    assert draws.block_rounds == 1
    got = np.stack([draws.next() for _ in range(7)])
    ref = np.stack([b.uniform() for _ in range(7)])
    np.testing.assert_array_equal(got, ref)
    with pytest.raises(ValueError):
        draws.next()  # exhausted: over-consumption must not desync silently


def test_step_draws_is_plain_uniform():
    a = XorwowRNG(n_streams=8, seed=2)
    b = XorwowRNG(n_streams=8, seed=2)
    draws = StepDraws(a, rounds=2)
    np.testing.assert_array_equal(draws.next(), b.uniform())
    np.testing.assert_array_equal(draws.next(), b.uniform())
    with pytest.raises(ValueError):
        draws.next()


def test_blocked_draws_zero_rounds():
    rng = ParkMillerLCG(n_streams=4, seed=1)
    draws = BlockedDraws(rng, 0)
    with pytest.raises(ValueError):
        draws.next()
    with pytest.raises(ValueError):
        BlockedDraws(rng, -1)
