"""Tests for the XORWOW (CURAND-default) generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng.xorwow import XorwowRNG


def _reference_xorwow(x, y, z, w, v, d, steps):
    """Scalar reference of Marsaglia's xorwow with the Weyl counter."""
    mask = 0xFFFFFFFF
    out = []
    for _ in range(steps):
        t = (x ^ (x >> 2)) & mask
        x, y, z, w = y, z, w, v
        v = ((v ^ ((v << 4) & mask)) ^ (t ^ ((t << 1) & mask))) & mask
        d = (d + 362437) & mask
        out.append((v + d) & mask)
    return out


class TestXorwow:
    def test_matches_scalar_reference(self):
        rng = XorwowRNG(n_streams=3, seed=11)
        x, y, z, w, v, d = (arr.astype(np.uint64) for arr in rng.state)
        ref = [
            _reference_xorwow(
                int(x[i]), int(y[i]), int(z[i]), int(w[i]), int(v[i]), int(d[i]), 5
            )
            for i in range(3)
        ]
        for step in range(5):
            raw = rng._next_raw()
            for i in range(3):
                assert int(raw[i]) == ref[i][step]

    def test_uniform_unit_interval(self):
        rng = XorwowRNG(n_streams=128, seed=3)
        u = rng.uniform_block(20)
        assert np.all(u >= 0.0) and np.all(u < 1.0)

    def test_deterministic(self):
        a = XorwowRNG(n_streams=4, seed=9).uniform_block(10)
        b = XorwowRNG(n_streams=4, seed=9).uniform_block(10)
        np.testing.assert_array_equal(a, b)

    def test_mean_roughly_half(self):
        u = XorwowRNG(n_streams=512, seed=1).uniform_block(50)
        assert abs(u.mean() - 0.5) < 0.02

    def test_no_trivial_period(self):
        rng = XorwowRNG(n_streams=1, seed=2)
        vals = [float(rng.uniform()[0]) for _ in range(200)]
        assert len(set(vals)) == 200

    def test_cost_kind(self):
        assert XorwowRNG(n_streams=1, seed=1).cost_kind == "curand"

    def test_invalid_streams(self):
        with pytest.raises(ValueError):
            XorwowRNG(n_streams=-1, seed=1)
