"""Tests for stream splitting and the generator factory."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rng import ParkMillerLCG, XorwowRNG, make_rng
from repro.rng.streams import split_seed


class TestSplitSeed:
    def test_shape_and_dtype(self):
        out = split_seed(42, 16)
        assert out.shape == (16,)
        assert out.dtype == np.uint64

    def test_never_zero(self):
        out = split_seed(0, 1000)
        assert np.all(out != 0)

    def test_deterministic(self):
        np.testing.assert_array_equal(split_seed(7, 8), split_seed(7, 8))

    def test_distinct_subseeds(self):
        out = split_seed(123, 10_000)
        assert len(np.unique(out)) == 10_000

    @given(st.integers(0, 2**32), st.integers(0, 2**32))
    def test_different_masters_rarely_collide(self, a, b):
        if a == b:
            return
        sa, sb = split_seed(a, 4), split_seed(b, 4)
        assert not np.array_equal(sa, sb)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            split_seed(1, 0)


class TestMakeRng:
    def test_lcg(self):
        assert isinstance(make_rng("lcg", 4, 1), ParkMillerLCG)

    def test_xorwow_and_curand_alias(self):
        assert isinstance(make_rng("xorwow", 4, 1), XorwowRNG)
        assert isinstance(make_rng("curand", 4, 1), XorwowRNG)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown rng kind"):
            make_rng("mersenne", 4, 1)

    def test_streams_respected(self):
        assert make_rng("lcg", 17, 1).n_streams == 17


class TestStatisticalSanity:
    """Cheap, deterministic statistical checks on both engines."""

    @pytest.mark.parametrize("kind", ["lcg", "xorwow"])
    def test_chi_square_uniformity(self, kind):
        rng = make_rng(kind, 1024, seed=77)
        u = rng.uniform_block(40).ravel()
        counts, _ = np.histogram(u, bins=16, range=(0.0, 1.0))
        expected = u.size / 16
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        # 15 dof: 99.9th percentile ~ 37.7; anything sane passes easily
        assert chi2 < 60.0

    @pytest.mark.parametrize("kind", ["lcg", "xorwow"])
    def test_lag1_autocorrelation_small(self, kind):
        rng = make_rng(kind, 1, seed=5)
        xs = np.array([float(rng.uniform()[0]) for _ in range(4000)])
        a, b = xs[:-1] - xs.mean(), xs[1:] - xs.mean()
        corr = float((a * b).mean() / xs.var())
        assert abs(corr) < 0.06
