"""Tests for the occupancy calculator."""

from __future__ import annotations

import pytest

from repro.errors import OccupancyError
from repro.simt.device import TESLA_C1060, TESLA_M2050
from repro.simt.occupancy import occupancy_for


class TestLimits:
    def test_thread_limited(self):
        occ = occupancy_for(TESLA_C1060, 512, regs_per_thread=8)
        # 1024 / 512 = 2 blocks, 32 warps -> full occupancy
        assert occ.blocks_per_sm == 2
        assert occ.occupancy == pytest.approx(1.0)
        assert occ.limiting_factor == "threads"

    def test_block_limited(self):
        occ = occupancy_for(TESLA_C1060, 32, regs_per_thread=4)
        # 8-block cap: 8 x 32 = 256 threads = 8 warps of 32
        assert occ.blocks_per_sm == 8
        assert occ.limiting_factor == "blocks"
        assert occ.occupancy == pytest.approx(8 / 32)

    def test_register_limited(self):
        # 64 regs/thread x 256 threads = 16K regs = whole C1060 SM file
        occ = occupancy_for(TESLA_C1060, 256, regs_per_thread=64)
        assert occ.blocks_per_sm == 1
        assert occ.limiting_factor == "registers"

    def test_shared_limited(self):
        occ = occupancy_for(TESLA_C1060, 64, regs_per_thread=8, smem_per_block=8192)
        assert occ.blocks_per_sm == 2
        assert occ.limiting_factor == "shared_mem"

    def test_unschedulable_raises(self):
        with pytest.raises(OccupancyError):
            occupancy_for(TESLA_C1060, 256, regs_per_thread=128)

    def test_oversized_shared_raises(self):
        with pytest.raises(OccupancyError):
            occupancy_for(TESLA_C1060, 64, smem_per_block=20 * 1024)

    def test_invalid_regs(self):
        with pytest.raises(OccupancyError):
            occupancy_for(TESLA_C1060, 64, regs_per_thread=0)


class TestGridFill:
    def test_small_grid_underfills(self):
        # The paper's small-instance effect: 48 ants = 48 threads.
        occ = occupancy_for(TESLA_C1060, 48, regs_per_thread=8, total_blocks=1)
        assert occ.grid_fill < 0.05
        assert occ.effective_parallelism < occ.occupancy

    def test_large_grid_saturates(self):
        occ = occupancy_for(TESLA_C1060, 256, regs_per_thread=8, total_blocks=10_000)
        assert occ.grid_fill == pytest.approx(1.0)

    def test_default_grid_fill_is_one(self):
        occ = occupancy_for(TESLA_C1060, 128)
        assert occ.grid_fill == 1.0

    def test_invalid_total_blocks(self):
        with pytest.raises(OccupancyError):
            occupancy_for(TESLA_C1060, 128, total_blocks=0)


class TestDeviceDifferences:
    def test_m2050_fits_more_warps(self):
        c = occupancy_for(TESLA_C1060, 128, regs_per_thread=8)
        m = occupancy_for(TESLA_M2050, 128, regs_per_thread=8)
        assert m.active_warps_per_sm >= c.active_warps_per_sm

    def test_partial_warp_rounds_up(self):
        occ = occupancy_for(TESLA_C1060, 48, regs_per_thread=8)
        # 48 threads = 2 warps (rounded up)
        assert occ.active_warps_per_sm % 2 == 0
