"""Tests for the device specifications (paper Table I)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import LaunchConfigError
from repro.simt.device import DEVICES, TESLA_C1060, TESLA_M2050


class TestTableI:
    """Every row of the paper's Table I, transcribed."""

    def test_c1060_cores(self):
        assert TESLA_C1060.sp_per_sm == 8
        assert TESLA_C1060.sm_count == 30
        assert TESLA_C1060.total_sps == 240

    def test_m2050_cores(self):
        assert TESLA_M2050.sp_per_sm == 32
        assert TESLA_M2050.sm_count == 14
        assert TESLA_M2050.total_sps == 448

    def test_clocks(self):
        assert TESLA_C1060.clock_hz == pytest.approx(1_296e6)
        assert TESLA_M2050.clock_hz == pytest.approx(1_147e6)

    def test_thread_limits(self):
        assert TESLA_C1060.max_threads_per_sm == 1024
        assert TESLA_M2050.max_threads_per_sm == 1536
        assert TESLA_C1060.max_threads_per_block == 512
        assert TESLA_M2050.max_threads_per_block == 1024
        assert TESLA_C1060.warp_size == TESLA_M2050.warp_size == 32

    def test_sram(self):
        assert TESLA_C1060.registers_per_sm == 16 * 1024
        assert TESLA_M2050.registers_per_sm == 32 * 1024
        assert TESLA_C1060.shared_mem_per_sm == 16 * 1024
        assert TESLA_M2050.shared_mem_per_sm == 48 * 1024
        assert TESLA_C1060.l1_cache_per_sm == 0
        assert TESLA_M2050.l1_cache_per_sm == 16 * 1024

    def test_global_memory(self):
        assert TESLA_C1060.global_mem_bytes == 4 * 1024**3
        assert TESLA_M2050.global_mem_bytes == 3 * 1024**3
        assert TESLA_C1060.bandwidth_bytes_s == pytest.approx(102e9)
        assert TESLA_M2050.bandwidth_bytes_s == pytest.approx(144e9)
        assert TESLA_C1060.bus_width_bits == 512
        assert TESLA_M2050.bus_width_bits == 384
        assert TESLA_C1060.technology == "GDDR3"
        assert TESLA_M2050.technology == "GDDR5"


class TestDerived:
    def test_peak_ips(self):
        assert TESLA_C1060.peak_ips == pytest.approx(240 * 1_296e6)

    def test_max_warps(self):
        assert TESLA_C1060.max_warps_per_sm == 32
        assert TESLA_M2050.max_warps_per_sm == 48

    def test_float_atomics_capability(self):
        # The pivotal fact of the paper's Figure 5 discussion.
        assert not TESLA_C1060.has_fp32_global_atomics
        assert TESLA_M2050.has_fp32_global_atomics

    def test_l1_flag(self):
        assert not TESLA_C1060.has_l1_cache
        assert TESLA_M2050.has_l1_cache

    def test_registry(self):
        assert DEVICES["c1060"] is TESLA_C1060
        assert DEVICES["m2050"] is TESLA_M2050

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            TESLA_C1060.sm_count = 99  # type: ignore[misc]


class TestValidateBlock:
    def test_valid(self):
        TESLA_C1060.validate_block(512)

    def test_too_big(self):
        with pytest.raises(LaunchConfigError):
            TESLA_C1060.validate_block(513)

    def test_m2050_allows_1024(self):
        TESLA_M2050.validate_block(1024)

    def test_non_positive(self):
        with pytest.raises(LaunchConfigError):
            TESLA_M2050.validate_block(0)
