"""Tests for the analytical cost model."""

from __future__ import annotations

import pytest

from repro.simt.counters import KernelStats
from repro.simt.device import TESLA_C1060, TESLA_M2050
from repro.simt.timing import CostParams, estimate_time, throughput_throttle


class TestThrottle:
    def test_above_knee_full_speed(self):
        assert throughput_throttle(0.8, 0.25) == 1.0

    def test_below_knee_linear(self):
        assert throughput_throttle(0.125, 0.25) == pytest.approx(0.5)

    def test_floor(self):
        assert throughput_throttle(0.0, 0.25) == pytest.approx(1 / 64)

    def test_invalid_knee(self):
        with pytest.raises(ValueError):
            throughput_throttle(0.5, 0.0)


class TestEstimateTime:
    def test_empty_stats_cost_zero(self):
        assert estimate_time(KernelStats(), TESLA_C1060, CostParams()) == 0.0

    def test_launch_overhead(self):
        p = CostParams(launch_overhead_s=1e-4)
        s = KernelStats(kernel_launches=3)
        assert estimate_time(s, TESLA_C1060, p) == pytest.approx(3e-4)

    def test_compute_bound_scaling(self):
        p = CostParams()
        a = estimate_time(KernelStats(flops=1e9), TESLA_C1060, p)
        b = estimate_time(KernelStats(flops=2e9), TESLA_C1060, p)
        assert b == pytest.approx(2 * a)

    def test_memory_bound_uses_pattern_multipliers(self):
        p = CostParams()
        coal = estimate_time(KernelStats(gmem_coalesced_bytes=1e9), TESLA_C1060, p)
        rand = estimate_time(KernelStats(gmem_random_bytes=1e9), TESLA_C1060, p)
        assert rand > coal  # random traffic expands

    def test_pipes_overlap_max_not_sum(self):
        p = CostParams()
        c = estimate_time(KernelStats(flops=1e10), TESLA_C1060, p)
        m = estimate_time(KernelStats(gmem_coalesced_bytes=1e9), TESLA_C1060, p)
        both = estimate_time(
            KernelStats(flops=1e10, gmem_coalesced_bytes=1e9), TESLA_C1060, p
        )
        assert both == pytest.approx(max(c, m))

    def test_atomics_additive(self):
        p = CostParams()
        base = estimate_time(KernelStats(flops=1e9), TESLA_M2050, p)
        with_atomics = estimate_time(
            KernelStats(flops=1e9, atomics_fp=1e6), TESLA_M2050, p
        )
        assert with_atomics > base

    def test_float_atomics_emulated_on_c1060(self):
        """The paper's Figure 5 asymmetry: same ledger, same constants —
        the C1060 pays the CAS emulation factor."""
        p = CostParams()
        s = KernelStats(atomics_fp=1e6)
        t_c1060 = estimate_time(s, TESLA_C1060, p)
        t_m2050 = estimate_time(s, TESLA_M2050, p)
        assert t_c1060 == pytest.approx(4.0 * t_m2050, rel=1e-6)

    def test_int_atomics_not_emulated(self):
        p = CostParams()
        s = KernelStats(atomics_int=1e6)
        assert estimate_time(s, TESLA_C1060, p) == pytest.approx(
            estimate_time(s, TESLA_M2050, p)
        )

    def test_cache_hit_only_on_cached_device(self):
        p = CostParams(cache_hit_fraction=0.5)
        s = KernelStats(gmem_coalesced_bytes=1e10)
        c = estimate_time(s, TESLA_C1060, p)  # no L1 -> full traffic
        m = estimate_time(s, TESLA_M2050, p)
        # M2050 has higher bandwidth AND caches half the traffic
        assert m < c

    def test_texture_hits_nearly_free(self):
        p = CostParams(tex_hit_fraction=0.9)
        tex = estimate_time(KernelStats(tex_bytes=1e9), TESLA_C1060, p)
        gmem = estimate_time(KernelStats(gmem_coalesced_bytes=1e9), TESLA_C1060, p)
        assert tex < gmem

    def test_low_occupancy_slows_down(self):
        p = CostParams()
        s = KernelStats(flops=1e10)
        full = estimate_time(s, TESLA_C1060, p, effective_parallelism=1.0)
        starved = estimate_time(s, TESLA_C1060, p, effective_parallelism=0.01)
        assert starved > full

    def test_serial_barriers_latency(self):
        p = CostParams(barrier_latency_s=1e-6)
        s = KernelStats(serial_barriers=1000)
        assert estimate_time(s, TESLA_C1060, p) == pytest.approx(1e-3)

    def test_rng_class_costs(self):
        p = CostParams(cycles_rng_lcg=10, cycles_rng_curand=40)
        lcg = estimate_time(KernelStats(rng_lcg=1e9), TESLA_C1060, p)
        cur = estimate_time(KernelStats(rng_curand=1e9), TESLA_C1060, p)
        assert cur == pytest.approx(4 * lcg)

    def test_with_overrides(self):
        p = CostParams().with_overrides(atomic_ns=99.0)
        assert p.atomic_ns == 99.0
        assert CostParams().atomic_ns != 99.0
