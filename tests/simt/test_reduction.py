"""Tests for block reductions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.simt.counters import KernelStats
from repro.simt.reduction import block_argmax, block_sum, reduction_stage_count


class TestStageCount:
    @pytest.mark.parametrize(
        "width,stages", [(1, 0), (2, 1), (3, 2), (4, 2), (32, 5), (256, 8), (257, 9)]
    )
    def test_values(self, width, stages):
        assert reduction_stage_count(width) == stages

    def test_invalid(self):
        with pytest.raises(ValueError):
            reduction_stage_count(0)


class TestBlockArgmax:
    def test_basic(self):
        vals = np.array([[1.0, 5.0, 2.0], [9.0, 0.0, 3.0]])
        idx, mx = block_argmax(vals)
        np.testing.assert_array_equal(idx, [1, 0])
        np.testing.assert_array_equal(mx, [5.0, 9.0])

    def test_tie_goes_to_lowest_index(self):
        vals = np.array([[3.0, 3.0, 1.0]])
        idx, _ = block_argmax(vals)
        assert idx[0] == 0

    def test_accounting(self):
        st_ = KernelStats()
        block_argmax(np.zeros((4, 8)), st_)
        assert st_.reduction_steps == 4 * 3  # log2(8) = 3 stages x 4 blocks
        assert st_.syncthreads == 4 * 3
        assert st_.smem_accesses > 0
        assert st_.flops > 0

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            block_argmax(np.zeros(5))

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 6), st.integers(1, 64)),
            elements=st.floats(-1e6, 1e6),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_numpy_argmax(self, vals):
        idx, mx = block_argmax(vals)
        np.testing.assert_array_equal(idx, np.argmax(vals, axis=1))
        np.testing.assert_array_equal(mx, vals.max(axis=1))


class TestBlockSum:
    def test_basic(self):
        out = block_sum(np.array([[1.0, 2.0], [3.0, 4.0]]))
        np.testing.assert_allclose(out, [3.0, 7.0])

    def test_accounting_scales_with_blocks(self):
        a, b = KernelStats(), KernelStats()
        block_sum(np.zeros((2, 16)), a)
        block_sum(np.zeros((4, 16)), b)
        assert b.smem_accesses == 2 * a.smem_accesses

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            block_sum(np.zeros(3))
