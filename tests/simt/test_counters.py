"""Tests for the KernelStats ledger."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simt.counters import KernelStats


class TestMerge:
    def test_additive_fields_sum(self):
        a = KernelStats(flops=10, int_ops=5)
        b = KernelStats(flops=1, smem_accesses=7)
        a.merge(b)
        assert a.flops == 11
        assert a.int_ops == 5
        assert a.smem_accesses == 7

    def test_hot_degree_takes_max(self):
        a = KernelStats(atomic_hot_degree=3)
        b = KernelStats(atomic_hot_degree=9)
        assert (a + b).atomic_hot_degree == 9
        assert (b + a).atomic_hot_degree == 9

    def test_add_does_not_mutate(self):
        a = KernelStats(flops=1)
        b = KernelStats(flops=2)
        c = a + b
        assert a.flops == 1 and b.flops == 2 and c.flops == 3


class TestScaled:
    def test_scales_additive(self):
        s = KernelStats(flops=4, gmem_load_bytes=100).scaled(0.5)
        assert s.flops == 2
        assert s.gmem_load_bytes == 50

    def test_hot_degree_not_scaled(self):
        s = KernelStats(atomic_hot_degree=8).scaled(0.25)
        assert s.atomic_hot_degree == 8

    def test_negative_factor_raises(self):
        with pytest.raises(ValueError):
            KernelStats().scaled(-1)


class TestInspection:
    def test_as_dict_roundtrip(self):
        s = KernelStats(flops=3, rng_lcg=2)
        d = s.as_dict()
        assert d["flops"] == 3.0
        assert d["rng_lcg"] == 2.0
        assert "atomic_hot_degree" in d

    def test_totals(self):
        s = KernelStats(atomics_fp=2, atomics_int=3, gmem_load_bytes=5, gmem_store_bytes=7)
        assert s.total_atomics() == 5
        assert s.total_gmem_bytes() == 12

    def test_approx_equal_and_diff(self):
        a = KernelStats(flops=1.0)
        b = KernelStats(flops=1.0 + 1e-12)
        assert a.approx_equal(b)
        c = KernelStats(flops=2.0)
        assert not a.approx_equal(c)
        assert "flops" in a.diff(c)

    @given(st.floats(0, 1e9), st.floats(0, 1e9))
    def test_merge_commutative_on_sums(self, x, y):
        a = KernelStats(flops=x)
        b = KernelStats(flops=y)
        assert (a + b).flops == (b + a).flops
