"""Tests for the atomic-operation model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeviceFeatureError
from repro.simt.atomics import AtomicModel
from repro.simt.counters import KernelStats
from repro.simt.device import TESLA_C1060, TESLA_M2050


class TestFunctionalCorrectness:
    def test_repeated_indices_accumulate(self):
        target = np.zeros(4)
        am = AtomicModel(TESLA_M2050, KernelStats())
        am.add_float(target, np.array([1, 1, 1]), 2.0)
        assert target[1] == pytest.approx(6.0)

    def test_matrix_flat_indexing(self):
        tau = np.zeros((3, 3))
        am = AtomicModel(TESLA_M2050, KernelStats())
        am.add_float(tau, np.array([4]), 1.5)  # (1,1)
        assert tau[1, 1] == pytest.approx(1.5)

    def test_vector_values(self):
        target = np.zeros(3)
        am = AtomicModel(TESLA_M2050, KernelStats())
        am.add_float(target, np.array([0, 2]), np.array([1.0, 3.0]))
        np.testing.assert_allclose(target, [1.0, 0.0, 3.0])

    def test_empty_index_noop(self):
        st_ = KernelStats()
        am = AtomicModel(TESLA_M2050, st_)
        am.add_float(np.zeros(2), np.array([], dtype=int), 1.0)
        assert st_.atomics_fp == 0

    @given(
        st.lists(st.integers(0, 9), min_size=1, max_size=50),
        st.floats(0.01, 10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_dense_sum(self, indices, value):
        target = np.zeros(10)
        am = AtomicModel(TESLA_M2050, KernelStats())
        am.add_float(target, np.array(indices), value)
        expected = np.bincount(indices, minlength=10) * value
        np.testing.assert_allclose(target, expected, rtol=1e-9)


class TestAccounting:
    def test_op_count(self):
        st_ = KernelStats()
        am = AtomicModel(TESLA_M2050, st_)
        am.add_float(np.zeros(4), np.array([0, 1, 2]), 1.0)
        assert st_.atomics_fp == 3

    def test_hot_degree_tracks_worst_cell(self):
        st_ = KernelStats()
        am = AtomicModel(TESLA_M2050, st_)
        am.add_float(np.zeros(4), np.array([0, 0, 0, 1]), 1.0)
        assert st_.atomic_hot_degree == 3

    def test_int_atomics(self):
        st_ = KernelStats()
        am = AtomicModel(TESLA_M2050, st_)
        counters = np.zeros(3, dtype=np.int64)
        am.add_int(counters, np.array([2, 2]), 5)
        assert counters[2] == 10
        assert st_.atomics_int == 2

    def test_count_float_ops_bulk(self):
        st_ = KernelStats()
        am = AtomicModel(TESLA_C1060, st_)
        am.count_float_ops(1000, hot_degree=7)
        assert st_.atomics_fp == 1000
        assert st_.atomic_hot_degree == 7
        with pytest.raises(ValueError):
            am.count_float_ops(-1)


class TestEmulation:
    def test_c1060_emulates_silently_by_default(self):
        tau = np.zeros(2)
        am = AtomicModel(TESLA_C1060, KernelStats())
        am.add_float(tau, np.array([0]), 1.0)  # works, counted as emulated
        assert tau[0] == 1.0

    def test_strict_mode_raises_on_c1060(self):
        am = AtomicModel(TESLA_C1060, KernelStats(), strict=True)
        with pytest.raises(DeviceFeatureError, match="float atomics"):
            am.add_float(np.zeros(2), np.array([0]), 1.0)

    def test_strict_mode_fine_on_m2050(self):
        am = AtomicModel(TESLA_M2050, KernelStats(), strict=True)
        am.add_float(np.zeros(2), np.array([0]), 1.0)

    def test_emulation_factor_positive(self):
        assert AtomicModel.EMULATION_COST_FACTOR > 1.0
