"""Tests for launch configuration and kernel bookkeeping."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import LaunchConfigError
from repro.simt.counters import KernelStats
from repro.simt.device import TESLA_C1060, TESLA_M2050
from repro.simt.kernel import Kernel, KernelLaunch, LaunchConfig, grid_for


class TestGridFor:
    def test_exact_division(self):
        assert grid_for(1024, 256) == 4

    def test_rounds_up(self):
        assert grid_for(1025, 256) == 5

    def test_single_thread(self):
        assert grid_for(1, 256) == 1

    def test_invalid(self):
        with pytest.raises(LaunchConfigError):
            grid_for(0, 256)
        with pytest.raises(LaunchConfigError):
            grid_for(10, 0)


class TestLaunchConfig:
    def test_total_threads(self):
        cfg = LaunchConfig(grid=10, block=128)
        assert cfg.total_threads == 1280

    def test_validate_against_device(self):
        LaunchConfig(grid=1, block=512).validate(TESLA_C1060)
        with pytest.raises(LaunchConfigError):
            LaunchConfig(grid=1, block=1024).validate(TESLA_C1060)
        LaunchConfig(grid=1, block=1024).validate(TESLA_M2050)

    def test_shared_checked(self):
        with pytest.raises(LaunchConfigError):
            LaunchConfig(grid=1, block=64, smem_per_block=17 * 1024).validate(
                TESLA_C1060
            )

    def test_occupancy_integration(self):
        occ = LaunchConfig(grid=100, block=256, regs_per_thread=8).occupancy(
            TESLA_C1060
        )
        assert 0.0 < occ.occupancy <= 1.0

    def test_invalid_shape(self):
        with pytest.raises(LaunchConfigError):
            LaunchConfig(grid=0, block=128)
        with pytest.raises(LaunchConfigError):
            LaunchConfig(grid=1, block=0)

    def test_frozen(self):
        cfg = LaunchConfig(grid=1, block=32)
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.grid = 2  # type: ignore[misc]


class TestKernelBookkeeping:
    def test_record_launch(self):
        stats = KernelStats()
        cfg = LaunchConfig(grid=4, block=64)
        Kernel.record_launch(stats, cfg)
        Kernel.record_launch(stats, cfg, count=2)
        assert stats.kernel_launches == 3
        assert stats.threads_launched == 3 * 256

    def test_record_negative_raises(self):
        with pytest.raises(LaunchConfigError):
            Kernel.record_launch(KernelStats(), LaunchConfig(grid=1, block=32), count=-1)

    def test_kernel_launch_record(self):
        launch = KernelLaunch(name="demo", config=LaunchConfig(grid=8, block=128))
        par = launch.effective_parallelism(TESLA_C1060)
        assert 0.0 < par <= 1.0
