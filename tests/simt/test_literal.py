"""Tests for the literal per-thread SIMT executor."""

from __future__ import annotations

import pytest

from repro.errors import SimtError
from repro.simt.literal import BarrierDivergenceError, run_block, run_grid


class TestRunBlock:
    def test_shared_memory_visible_across_barrier(self):
        def program(tid, shared, n):
            shared["vals"][tid] = tid + 1
            yield
            return sum(shared["vals"][:n])

        out = run_block(program, 4, {"vals": [0] * 4}, 4)
        assert out == [10, 10, 10, 10]

    def test_tree_reduction_semantics(self):
        def program(tid, shared, width):
            shared["v"][tid] = shared["inp"][tid]
            yield
            stride = width // 2
            while stride > 0:
                if tid < stride:
                    shared["v"][tid] = max(shared["v"][tid], shared["v"][tid + stride])
                yield
                stride //= 2
            return shared["v"][0]

        inp = [3, 9, 1, 7, 4, 4, 8, 2]
        out = run_block(program, 8, {"inp": inp, "v": [0] * 8}, 8)
        assert out == [9] * 8

    def test_barrier_divergence_detected(self):
        def program(tid, shared):
            if tid == 0:
                yield  # thread 0 hits a barrier others never reach
            return tid

        with pytest.raises(BarrierDivergenceError):
            run_block(program, 2, {})

    def test_no_barriers_fine(self):
        def program(tid, shared):
            return tid * 2
            yield  # pragma: no cover - makes it a generator

        assert run_block(program, 3, {}) == [0, 2, 4]

    def test_invalid_block_dim(self):
        def program(tid, shared):
            yield
            return None

        with pytest.raises(SimtError):
            run_block(program, 0, {})

    def test_writes_before_barrier_ordered(self):
        """Classic race caught by barrier semantics: reading a neighbour's
        write is only safe after a barrier."""

        def program(tid, shared, n):
            shared["a"][tid] = tid
            yield
            # after the barrier every write is visible
            return shared["a"][(tid + 1) % n]

        out = run_block(program, 4, {"a": [None] * 4}, 4)
        assert out == [1, 2, 3, 0]


class TestRunGrid:
    def test_blocks_independent_shared(self):
        def program(tid, shared, block):
            shared["sum"] = shared.get("sum", 0) + 1
            yield
            return block

        results = run_grid(program, 3, 2, lambda b: {})
        assert [r[0] for r in results] == [0, 1, 2]

    def test_make_shared_receives_block_index(self):
        seen = []

        def program(tid, shared, block):
            return shared["id"]
            yield  # pragma: no cover

        def factory(block):
            seen.append(block)
            return {"id": block * 10}

        results = run_grid(program, 2, 1, factory)
        assert seen == [0, 1]
        assert results == [[0], [10]]

    def test_invalid_grid(self):
        with pytest.raises(SimtError):
            run_grid(lambda tid, sh, b: iter(()), 0, 1, lambda b: {})
