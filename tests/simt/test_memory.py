"""Tests for the memory spaces and coalescing accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MemoryModelError
from repro.simt.counters import KernelStats
from repro.simt.device import TESLA_C1060, TESLA_M2050
from repro.simt.memory import (
    TRAFFIC_MULTIPLIER,
    AccessPattern,
    GlobalMemory,
    SharedMemory,
    TextureMemory,
)


class TestGlobalMemory:
    def test_load_buckets_by_pattern(self):
        st = KernelStats()
        gm = GlobalMemory(TESLA_C1060, st)
        gm.load(100, 4, AccessPattern.COALESCED)
        gm.load(10, 4, AccessPattern.RANDOM)
        assert st.gmem_load_bytes == 440
        assert st.gmem_coalesced_bytes == 400
        assert st.gmem_random_bytes == 40

    def test_store_counted_separately(self):
        st = KernelStats()
        gm = GlobalMemory(TESLA_C1060, st)
        gm.store(8, 4)
        assert st.gmem_store_bytes == 32
        assert st.gmem_load_bytes == 0

    def test_gather_functional_and_counted(self):
        st = KernelStats()
        gm = GlobalMemory(TESLA_C1060, st)
        arr = np.arange(10, dtype=np.float32)
        idx = np.array([1, 3, 5])
        out = gm.gather(arr, idx)
        np.testing.assert_array_equal(out, [1.0, 3.0, 5.0])
        assert st.gmem_load_bytes == 12  # 3 x 4 bytes
        assert st.gmem_random_bytes == 12

    def test_negative_count_raises(self):
        gm = GlobalMemory(TESLA_C1060, KernelStats())
        with pytest.raises(MemoryModelError):
            gm.load(-1)

    def test_alloc_tracks_and_oom(self):
        gm = GlobalMemory(TESLA_C1060, KernelStats())
        gm.alloc(1024)
        assert gm.allocated_bytes == 1024
        with pytest.raises(MemoryModelError, match="OOM"):
            gm.alloc(TESLA_C1060.global_mem_bytes)

    def test_free_validates(self):
        gm = GlobalMemory(TESLA_C1060, KernelStats())
        gm.alloc(100)
        gm.free(100)
        with pytest.raises(MemoryModelError):
            gm.free(1)

    def test_multiplier_ordering(self):
        # random moves more DRAM bytes than strided than coalesced
        assert (
            TRAFFIC_MULTIPLIER[AccessPattern.RANDOM]
            > TRAFFIC_MULTIPLIER[AccessPattern.STRIDED]
            > TRAFFIC_MULTIPLIER[AccessPattern.COALESCED]
            > TRAFFIC_MULTIPLIER[AccessPattern.BROADCAST]
        )


class TestSharedMemory:
    def test_capacity_check(self):
        with pytest.raises(MemoryModelError):
            SharedMemory(TESLA_C1060, KernelStats(), 17 * 1024)

    def test_m2050_allows_larger(self):
        sm = SharedMemory(TESLA_M2050, KernelStats(), 40 * 1024)
        assert sm.nbytes == 40 * 1024

    def test_access_counting(self):
        st = KernelStats()
        sm = SharedMemory(TESLA_C1060, st, 1024)
        sm.access(50)
        sm.access(25)
        assert st.smem_accesses == 75

    def test_negative_access_raises(self):
        sm = SharedMemory(TESLA_C1060, KernelStats(), 64)
        with pytest.raises(MemoryModelError):
            sm.access(-5)


class TestTextureMemory:
    def test_fetch_counting(self):
        st = KernelStats()
        tex = TextureMemory(TESLA_C1060, st)
        tex.load(100, 4)
        assert st.tex_bytes == 400

    def test_gather(self):
        st = KernelStats()
        tex = TextureMemory(TESLA_C1060, st)
        arr = np.arange(6, dtype=np.float32)
        out = tex.gather(arr, np.array([[0, 5], [2, 3]]))
        assert out.shape == (2, 2)
        assert st.tex_bytes == 16

    def test_negative_raises(self):
        tex = TextureMemory(TESLA_C1060, KernelStats())
        with pytest.raises(MemoryModelError):
            tex.load(-1)
