"""Tests for the TSPLIB parser/writer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TSPLIBFormatError, UnsupportedEdgeWeightError
from repro.tsp.tsplib import parse_tsplib, parse_tsplib_text, write_tsplib

EUC_SAMPLE = """\
NAME : toy4
COMMENT : four cities
TYPE : TSP
DIMENSION : 4
EDGE_WEIGHT_TYPE : EUC_2D
NODE_COORD_SECTION
1 0.0 0.0
2 3.0 0.0
3 3.0 4.0
4 0.0 4.0
EOF
"""

EXPLICIT_FULL = """\
NAME : exp3
TYPE : TSP
DIMENSION : 3
EDGE_WEIGHT_TYPE : EXPLICIT
EDGE_WEIGHT_FORMAT : FULL_MATRIX
EDGE_WEIGHT_SECTION
0 2 3
2 0 4
3 4 0
EOF
"""

UPPER_ROW = """\
NAME : up3
DIMENSION : 3
EDGE_WEIGHT_TYPE : EXPLICIT
EDGE_WEIGHT_FORMAT : UPPER_ROW
EDGE_WEIGHT_SECTION
2 3
4
EOF
"""

LOWER_DIAG = """\
NAME : low3
DIMENSION : 3
EDGE_WEIGHT_TYPE : EXPLICIT
EDGE_WEIGHT_FORMAT : LOWER_DIAG_ROW
EDGE_WEIGHT_SECTION
0
2 0
3 4 0
EOF
"""


class TestParseCoordinates:
    def test_parse_euc(self):
        inst = parse_tsplib_text(EUC_SAMPLE)
        assert inst.name == "toy4"
        assert inst.n == 4
        d = inst.distance_matrix()
        assert d[0, 1] == 3 and d[1, 2] == 4 and d[0, 2] == 5

    def test_comment_preserved(self):
        inst = parse_tsplib_text(EUC_SAMPLE)
        assert inst.comment == "four cities"

    def test_missing_dimension(self):
        broken = EUC_SAMPLE.replace("DIMENSION : 4\n", "")
        with pytest.raises(TSPLIBFormatError, match="DIMENSION"):
            parse_tsplib_text(broken)

    def test_wrong_node_count(self):
        broken = EUC_SAMPLE.replace("4 0.0 4.0\n", "")
        with pytest.raises(TSPLIBFormatError):
            parse_tsplib_text(broken)

    def test_bad_coordinate_token(self):
        broken = EUC_SAMPLE.replace("2 3.0 0.0", "2 x 0.0")
        with pytest.raises(TSPLIBFormatError):
            parse_tsplib_text(broken)

    def test_unsupported_weight_type(self):
        broken = EUC_SAMPLE.replace("EUC_2D", "XRAY1")
        with pytest.raises(UnsupportedEdgeWeightError):
            parse_tsplib_text(broken)

    def test_name_hint_used_when_missing(self):
        text = EUC_SAMPLE.replace("NAME : toy4\n", "")
        inst = parse_tsplib_text(text, name_hint="fallback")
        assert inst.name == "fallback"

    def test_whitespace_tolerance(self):
        messy = EUC_SAMPLE.replace("DIMENSION : 4", "DIMENSION:4")
        inst = parse_tsplib_text(messy)
        assert inst.n == 4


class TestParseExplicit:
    def test_full_matrix(self):
        inst = parse_tsplib_text(EXPLICIT_FULL)
        d = inst.distance_matrix()
        assert d[0, 1] == 2 and d[0, 2] == 3 and d[1, 2] == 4

    def test_upper_row(self):
        inst = parse_tsplib_text(UPPER_ROW)
        d = inst.distance_matrix()
        assert d[0, 1] == 2 and d[0, 2] == 3 and d[1, 2] == 4
        np.testing.assert_array_equal(d, d.T)

    def test_lower_diag_row(self):
        inst = parse_tsplib_text(LOWER_DIAG)
        d = inst.distance_matrix()
        assert d[1, 0] == 2 and d[2, 0] == 3 and d[2, 1] == 4

    def test_weight_count_mismatch(self):
        broken = UPPER_ROW.replace("4\n", "")
        with pytest.raises(TSPLIBFormatError):
            parse_tsplib_text(broken)

    def test_unsupported_format(self):
        broken = EXPLICIT_FULL.replace("FULL_MATRIX", "UPPER_COL")
        with pytest.raises(UnsupportedEdgeWeightError):
            parse_tsplib_text(broken)


class TestRoundTrip:
    def test_coordinate_roundtrip(self, tmp_path):
        inst = parse_tsplib_text(EUC_SAMPLE)
        path = tmp_path / "toy4.tsp"
        write_tsplib(inst, path)
        again = parse_tsplib(path)
        assert again.name == inst.name
        np.testing.assert_array_equal(
            again.distance_matrix(), inst.distance_matrix()
        )

    def test_explicit_roundtrip(self, tmp_path):
        inst = parse_tsplib_text(EXPLICIT_FULL)
        path = tmp_path / "exp3.tsp"
        write_tsplib(inst, path)
        again = parse_tsplib(path)
        np.testing.assert_array_equal(
            again.distance_matrix(), inst.distance_matrix()
        )

    def test_file_name_hint(self, tmp_path):
        path = tmp_path / "hinted.tsp"
        path.write_text(EUC_SAMPLE.replace("NAME : toy4\n", ""))
        inst = parse_tsplib(path)
        assert inst.name == "hinted"
