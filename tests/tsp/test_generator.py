"""Tests for the synthetic instance generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tsp.generator import clustered_instance, grid_instance, uniform_instance


class TestUniform:
    def test_shape_and_determinism(self):
        a = uniform_instance(50, seed=1)
        b = uniform_instance(50, seed=1)
        np.testing.assert_array_equal(a.coords, b.coords)
        assert a.n == 50

    def test_different_seeds(self):
        a = uniform_instance(50, seed=1)
        b = uniform_instance(50, seed=2)
        assert not np.array_equal(a.coords, b.coords)

    def test_box_respected(self):
        inst = uniform_instance(200, seed=3, box=100.0)
        assert inst.coords.min() >= 0.0
        assert inst.coords.max() <= 100.0

    def test_default_name(self):
        assert uniform_instance(10, seed=1).name == "uniform10"

    def test_custom_edge_weight_type(self):
        inst = uniform_instance(10, seed=1, edge_weight_type="ATT")
        assert inst.edge_weight_type == "ATT"
        assert inst.distance_matrix().shape == (10, 10)

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            uniform_instance(2, seed=1)


class TestClustered:
    def test_determinism(self):
        a = clustered_instance(40, seed=7, clusters=4)
        b = clustered_instance(40, seed=7, clusters=4)
        np.testing.assert_array_equal(a.coords, b.coords)

    def test_clusters_visible(self):
        # points concentrated: mean pairwise distance well below uniform
        cl = clustered_instance(100, seed=8, clusters=3, spread=0.02)
        un = uniform_instance(100, seed=8)
        assert cl.distance_matrix().mean() < un.distance_matrix().mean()

    def test_invalid_clusters(self):
        with pytest.raises(ValueError):
            clustered_instance(10, seed=1, clusters=0)


class TestGrid:
    def test_exact_count(self):
        inst = grid_instance(97, seed=9)
        assert inst.n == 97

    def test_determinism(self):
        a = grid_instance(64, seed=10)
        b = grid_instance(64, seed=10)
        np.testing.assert_array_equal(a.coords, b.coords)

    def test_near_grid_structure(self):
        inst = grid_instance(100, seed=11, pitch=100.0, jitter=0.0)
        # without jitter, nearest-neighbour distance == pitch
        d = inst.distance_matrix().astype(float)
        np.fill_diagonal(d, np.inf)
        assert d.min(axis=1).max() <= 100.0 * np.sqrt(2) + 1

    def test_nonnegative_coords(self):
        inst = grid_instance(50, seed=12)
        assert inst.coords.min() >= -1e-9
