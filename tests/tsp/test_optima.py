"""Tests for the known-optima registry."""

from __future__ import annotations

import pytest

from repro.errors import TSPError
from repro.tsp.optima import KNOWN_OPTIMA, known_optimum, optimality_gap
from repro.tsp.suite import PAPER_INSTANCE_NAMES, load_instance


class TestRegistry:
    def test_covers_full_suite(self):
        assert set(KNOWN_OPTIMA) == set(PAPER_INSTANCE_NAMES)

    def test_known_values(self):
        assert known_optimum("att48") == 10628
        assert known_optimum("pr2392") == 378032

    def test_unknown_raises(self):
        with pytest.raises(TSPError):
            known_optimum("berlin52")


class TestGap:
    def test_synthetic_instances_have_no_gap(self):
        inst = load_instance("att48")
        assert optimality_gap(inst, 99999) is None

    def test_real_instance_gap(self):
        from repro.tsp.instance import TSPInstance
        import numpy as np

        # fabricate a "real" att48-named instance (no synthetic marker)
        inst = TSPInstance(
            name="att48",
            coords=np.random.default_rng(1).uniform(0, 100, (48, 2)),
            edge_weight_type="ATT",
            comment="real TSPLIB data",
        )
        assert optimality_gap(inst, 10628) == pytest.approx(0.0)
        assert optimality_gap(inst, 11691) == pytest.approx(0.1, abs=1e-3)

    def test_unlisted_instance_none(self):
        from repro.tsp.generator import uniform_instance

        assert optimality_gap(uniform_instance(10, seed=1), 100) is None
