"""Tests for TSPInstance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TSPError
from repro.tsp.instance import TSPInstance

TRI = np.array([[0.0, 0.0], [3.0, 0.0], [0.0, 4.0]])


class TestConstruction:
    def test_coordinate_instance(self):
        inst = TSPInstance(name="tri", coords=TRI, edge_weight_type="EUC_2D")
        assert inst.n == 3

    def test_explicit_instance(self):
        m = np.array([[0, 2, 3], [2, 0, 4], [3, 4, 0]])
        inst = TSPInstance(name="ex", explicit_matrix=m)
        assert inst.n == 3
        assert inst.edge_weight_type == "EXPLICIT"

    def test_needs_coords_or_matrix(self):
        with pytest.raises(TSPError):
            TSPInstance(name="empty")

    def test_too_few_cities(self):
        with pytest.raises(TSPError):
            TSPInstance(name="two", coords=TRI[:2])

    def test_bad_coord_shape(self):
        with pytest.raises(TSPError):
            TSPInstance(name="bad", coords=np.zeros((4, 3)))

    def test_non_square_matrix(self):
        with pytest.raises(TSPError):
            TSPInstance(name="bad", explicit_matrix=np.zeros((2, 3)))


class TestDistanceMatrix:
    def test_values(self):
        inst = TSPInstance(name="tri", coords=TRI)
        d = inst.distance_matrix()
        assert d[1, 2] == 5

    def test_cached_identity(self):
        inst = TSPInstance(name="tri", coords=TRI)
        assert inst.distance_matrix() is inst.distance_matrix()

    def test_explicit_diagonal_zeroed(self):
        m = np.array([[9, 2, 3], [2, 9, 4], [3, 4, 9]])
        inst = TSPInstance(name="ex", explicit_matrix=m)
        assert np.all(np.diag(inst.distance_matrix()) == 0)

    def test_symmetry_check(self):
        inst = TSPInstance(name="tri", coords=TRI)
        assert inst.is_symmetric()


class TestHeuristicMatrix:
    def test_eta_is_reciprocal_with_shift(self):
        inst = TSPInstance(name="tri", coords=TRI)
        eta = inst.heuristic_matrix(shift=0.1)
        assert eta[1, 2] == pytest.approx(1.0 / 5.1)

    def test_diagonal_finite(self):
        inst = TSPInstance(name="tri", coords=TRI)
        eta = inst.heuristic_matrix()
        assert np.all(np.isfinite(eta))
        assert eta[0, 0] == pytest.approx(10.0)  # 1 / 0.1


class TestNNCache:
    def test_nn_lists_shape_and_cache(self):
        inst = TSPInstance(name="tri", coords=TRI)
        nn = inst.nn_lists(2)
        assert nn.shape == (3, 2)
        assert inst.nn_lists(2) is nn  # cached

    def test_nn_lists_clipped(self):
        inst = TSPInstance(name="tri", coords=TRI)
        assert inst.nn_lists(50).shape == (3, 2)
