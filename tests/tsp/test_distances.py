"""Tests for the TSPLIB distance functions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import UnsupportedEdgeWeightError
from repro.tsp.distances import (
    att_distance_matrix,
    ceil2d_distance_matrix,
    distance_matrix_from_coords,
    euc2d_distance_matrix,
    geo_distance_matrix,
    man2d_distance_matrix,
    max2d_distance_matrix,
    nint,
)

TRIANGLE = np.array([[0.0, 0.0], [3.0, 0.0], [0.0, 4.0]])

coords_strategy = st.lists(
    st.tuples(st.floats(-1e4, 1e4), st.floats(-1e4, 1e4)),
    min_size=3,
    max_size=12,
).map(np.asarray)


class TestNint:
    def test_rounds_half_up(self):
        # TSPLIB nint(x) = (int)(x + 0.5): 0.5 -> 1
        assert nint(np.array([0.5]))[0] == 1

    def test_integers_unchanged(self):
        np.testing.assert_array_equal(nint(np.array([0.0, 1.0, 7.0])), [0, 1, 7])

    def test_near_half(self):
        assert nint(np.array([2.49]))[0] == 2
        assert nint(np.array([2.51]))[0] == 3


class TestEuc2D:
    def test_345_triangle(self):
        d = euc2d_distance_matrix(TRIANGLE)
        assert d[0, 1] == 3
        assert d[0, 2] == 4
        assert d[1, 2] == 5

    def test_zero_diagonal_and_symmetry(self):
        d = euc2d_distance_matrix(TRIANGLE)
        assert np.all(np.diag(d) == 0)
        np.testing.assert_array_equal(d, d.T)

    def test_rounding(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])  # sqrt(2) = 1.414 -> 1
        assert euc2d_distance_matrix(pts)[0, 1] == 1

    @given(coords_strategy)
    def test_triangle_inequality_with_rounding_slack(self, coords):
        d = euc2d_distance_matrix(coords)
        n = d.shape[0]
        for i in range(min(n, 5)):
            for j in range(min(n, 5)):
                for k in range(min(n, 5)):
                    # rounding can violate strict triangle inequality by <= 1 per edge
                    assert d[i, j] <= d[i, k] + d[k, j] + 2


class TestCeil2D:
    def test_rounds_up(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [5.0, 5.0]])
        d = ceil2d_distance_matrix(pts)
        assert d[0, 1] == 2  # ceil(1.414)

    def test_exact_integer_not_bumped(self):
        d = ceil2d_distance_matrix(TRIANGLE)
        assert d[1, 2] == 5


class TestManhattanAndMax:
    def test_man2d(self):
        d = man2d_distance_matrix(TRIANGLE)
        assert d[1, 2] == 7  # |3| + |4|

    def test_max2d(self):
        d = max2d_distance_matrix(TRIANGLE)
        assert d[1, 2] == 4  # max(3, 4)


class TestAtt:
    def test_known_formula(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 1.0]])
        d = att_distance_matrix(pts)
        # r = sqrt(100/10) = 3.1623; t = 3; t < r -> 4
        assert d[0, 1] == 4

    def test_symmetry_and_diagonal(self):
        pts = np.array([[0.0, 0.0], [13.0, 7.0], [5.0, 9.0]])
        d = att_distance_matrix(pts)
        np.testing.assert_array_equal(d, d.T)
        assert np.all(np.diag(d) == 0)

    def test_att_at_least_euclid_over_sqrt10(self):
        pts = np.array([[0.0, 0.0], [100.0, 35.0], [42.0, 7.0]])
        att = att_distance_matrix(pts)
        euc = euc2d_distance_matrix(pts)
        # d_att ≈ d_euc / sqrt(10), rounded up
        ratio = att[0, 1] / max(euc[0, 1], 1)
        assert 0.25 < ratio < 0.40


class TestGeo:
    def test_zero_distance_same_point(self):
        pts = np.array([[45.30, 10.15], [45.30, 10.15], [50.0, 10.0]])
        d = geo_distance_matrix(pts)
        assert d[0, 0] == 0

    def test_plausible_km_scale(self):
        # one degree of latitude ~ 111 km on the TSPLIB sphere
        pts = np.array([[45.0, 10.0], [46.0, 10.0], [45.0, 11.0]])
        d = geo_distance_matrix(pts)
        assert 100 <= d[0, 1] <= 120

    def test_symmetry(self):
        pts = np.array([[45.0, 10.0], [46.3, 11.2], [44.1, 9.5]])
        d = geo_distance_matrix(pts)
        np.testing.assert_array_equal(d, d.T)


class TestDispatch:
    def test_dispatch_euc2d(self):
        d = distance_matrix_from_coords(TRIANGLE, "EUC_2D")
        assert d[1, 2] == 5

    def test_dispatch_case_insensitive(self):
        d = distance_matrix_from_coords(TRIANGLE, "euc_2d")
        assert d[1, 2] == 5

    def test_unsupported_raises(self):
        with pytest.raises(UnsupportedEdgeWeightError):
            distance_matrix_from_coords(TRIANGLE, "EUC_3D")

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            euc2d_distance_matrix(np.zeros((3, 3)))
