"""Tests for the 2-opt local search."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tsp.generator import uniform_instance
from repro.tsp.local_search import TwoOptResult, best_exchange, two_opt
from repro.tsp.tour import (
    nearest_neighbor_tour,
    random_tour,
    tour_length,
    validate_tour,
)


class TestBasics:
    def test_uncrosses_square(self):
        # unit square, crossed diagonals tour
        d = np.array(
            [[0, 1, 2, 1], [1, 0, 1, 2], [2, 1, 0, 1], [1, 2, 1, 0]], dtype=np.int64
        )
        crossed = np.array([0, 2, 1, 3, 0], dtype=np.int32)
        res = two_opt(crossed, d)
        assert res.length == 4
        assert res.improvement > 0
        validate_tour(res.tour, 4)

    def test_optimal_tour_untouched(self):
        d = np.array(
            [[0, 1, 2, 1], [1, 0, 1, 2], [2, 1, 0, 1], [1, 2, 1, 0]], dtype=np.int64
        )
        good = np.array([0, 1, 2, 3, 0], dtype=np.int32)
        res = two_opt(good, d)
        assert res.length == 4
        assert res.exchanges == 0

    def test_result_fields(self):
        inst = uniform_instance(25, seed=77)
        d = inst.distance_matrix()
        t = random_tour(25, np.random.default_rng(1))
        res = two_opt(t, d)
        assert isinstance(res, TwoOptResult)
        assert res.initial_length == tour_length(t, d)
        assert res.length == tour_length(res.tour, d)
        assert res.improvement >= 0

    def test_max_passes_cap(self):
        inst = uniform_instance(40, seed=78)
        t = random_tour(40, np.random.default_rng(2))
        res = two_opt(t, inst.distance_matrix(), max_passes=1)
        assert res.passes <= 1


class TestOptimality:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_no_improving_exchange_remains(self, seed):
        inst = uniform_instance(30, seed=seed)
        d = inst.distance_matrix()
        res = two_opt(random_tour(30, np.random.default_rng(seed)), d)
        _, _, gain = best_exchange(res.tour[:-1].astype(np.int64), d)
        assert gain < 0.5

    def test_improves_random_tours_substantially(self):
        inst = uniform_instance(60, seed=4)
        d = inst.distance_matrix()
        t = random_tour(60, np.random.default_rng(5))
        res = two_opt(t, d)
        assert res.length < 0.7 * res.initial_length

    def test_improves_or_matches_nn_tour(self):
        inst = uniform_instance(60, seed=6)
        d = inst.distance_matrix()
        nn = nearest_neighbor_tour(d)
        res = two_opt(nn, d)
        assert res.length <= tour_length(nn, d)

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(5, 30), seed=st.integers(0, 5000))
    def test_always_valid_and_never_worse(self, n, seed):
        inst = uniform_instance(n, seed=seed)
        d = inst.distance_matrix()
        t = random_tour(n, np.random.default_rng(seed))
        res = two_opt(t, d)
        validate_tour(res.tour, n)
        assert res.length <= res.initial_length


class TestWithColony:
    def test_polishes_aco_tours(self, small_instance):
        from repro.core import ACOParams, AntSystem

        colony = AntSystem(small_instance, ACOParams(seed=3, nn=10), construction=8)
        result = colony.run(5)
        res = two_opt(result.best_tour, small_instance.distance_matrix())
        assert res.length <= result.best_length
        validate_tour(res.tour, small_instance.n)
