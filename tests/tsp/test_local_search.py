"""Tests for the 2-opt local search."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tsp.generator import uniform_instance
from repro.tsp.local_search import (
    BatchTwoOptResult,
    TwoOptResult,
    best_exchange,
    two_opt,
    two_opt_batch,
)
from repro.tsp.tour import (
    nearest_neighbor_tour,
    random_tour,
    tour_length,
    validate_tour,
)

_SQUARE = np.array(
    [[0, 1, 2, 1], [1, 0, 1, 2], [2, 1, 0, 1], [1, 2, 1, 0]], dtype=np.int64
)


class TestBasics:
    def test_uncrosses_square(self):
        # unit square, crossed diagonals tour
        d = np.array(
            [[0, 1, 2, 1], [1, 0, 1, 2], [2, 1, 0, 1], [1, 2, 1, 0]], dtype=np.int64
        )
        crossed = np.array([0, 2, 1, 3, 0], dtype=np.int32)
        res = two_opt(crossed, d)
        assert res.length == 4
        assert res.improvement > 0
        validate_tour(res.tour, 4)

    def test_optimal_tour_untouched(self):
        d = np.array(
            [[0, 1, 2, 1], [1, 0, 1, 2], [2, 1, 0, 1], [1, 2, 1, 0]], dtype=np.int64
        )
        good = np.array([0, 1, 2, 3, 0], dtype=np.int32)
        res = two_opt(good, d)
        assert res.length == 4
        assert res.exchanges == 0

    def test_result_fields(self):
        inst = uniform_instance(25, seed=77)
        d = inst.distance_matrix()
        t = random_tour(25, np.random.default_rng(1))
        res = two_opt(t, d)
        assert isinstance(res, TwoOptResult)
        assert res.initial_length == tour_length(t, d)
        assert res.length == tour_length(res.tour, d)
        assert res.improvement >= 0

    def test_max_passes_cap(self):
        inst = uniform_instance(40, seed=78)
        t = random_tour(40, np.random.default_rng(2))
        res = two_opt(t, inst.distance_matrix(), max_passes=1)
        assert res.passes <= 1


class TestOptimality:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_no_improving_exchange_remains(self, seed):
        inst = uniform_instance(30, seed=seed)
        d = inst.distance_matrix()
        res = two_opt(random_tour(30, np.random.default_rng(seed)), d)
        _, _, gain = best_exchange(res.tour[:-1].astype(np.int64), d)
        assert gain < 0.5

    def test_improves_random_tours_substantially(self):
        inst = uniform_instance(60, seed=4)
        d = inst.distance_matrix()
        t = random_tour(60, np.random.default_rng(5))
        res = two_opt(t, d)
        assert res.length < 0.7 * res.initial_length

    def test_improves_or_matches_nn_tour(self):
        inst = uniform_instance(60, seed=6)
        d = inst.distance_matrix()
        nn = nearest_neighbor_tour(d)
        res = two_opt(nn, d)
        assert res.length <= tour_length(nn, d)

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(5, 30), seed=st.integers(0, 5000))
    def test_always_valid_and_never_worse(self, n, seed):
        inst = uniform_instance(n, seed=seed)
        d = inst.distance_matrix()
        t = random_tour(n, np.random.default_rng(seed))
        res = two_opt(t, d)
        validate_tour(res.tour, n)
        assert res.length <= res.initial_length


class TestSweepMode:
    def test_sweep_matches_best_mode_quality_class(self):
        """Sweep mode ends 2-opt-optimal and valid, in far fewer passes."""
        inst = uniform_instance(50, seed=91)
        d = inst.distance_matrix()
        t = random_tour(50, np.random.default_rng(9))
        res = two_opt(t, d, mode="sweep")
        validate_tour(res.tour, 50)
        assert res.length == tour_length(res.tour, d)
        _, _, gain = best_exchange(res.tour[:-1].astype(np.int64), d)
        assert gain < 0.5
        best = two_opt(t, d, mode="best")
        assert res.passes <= best.passes

    def test_sweep_never_worse_and_max_passes_zero(self):
        inst = uniform_instance(20, seed=92)
        d = inst.distance_matrix()
        t = random_tour(20, np.random.default_rng(10))
        assert two_opt(t, d, mode="sweep").length <= tour_length(t, d)
        res = two_opt(t, d, mode="sweep", max_passes=0)
        assert res.exchanges == 0
        np.testing.assert_array_equal(res.tour, t)

    def test_bad_mode_rejected(self):
        from repro.errors import ACOConfigError

        t = np.array([0, 1, 2, 3, 0], dtype=np.int32)
        with pytest.raises(ACOConfigError, match="mode"):
            two_opt(t, _SQUARE, mode="first")
        with pytest.raises(ACOConfigError, match="max_passes"):
            two_opt(t, _SQUARE, max_passes=-1)


class TestEdgeCases:
    def test_n3_is_noop(self):
        """Every 3-city tour is 2-opt-optimal; both kernels must agree."""
        d = np.array([[0, 2, 3], [2, 0, 4], [3, 4, 0]], dtype=np.int64)
        t = np.array([0, 2, 1, 0], dtype=np.int32)
        res = two_opt(t, d)
        assert res.exchanges == 0 and res.length == res.initial_length
        nn = np.argsort(d, axis=1)[:, 1:3].astype(np.int32)
        bres = two_opt_batch(t[None], d[None], nn_list=nn[None])
        assert int(bres.exchanges[0]) == 0
        np.testing.assert_array_equal(bres.tours[0], t)

    def test_already_optimal_untouched_nn_and_batch(self):
        good = np.array([0, 1, 2, 3, 0], dtype=np.int32)
        nn = np.argsort(_SQUARE, axis=1)[:, 1:4].astype(np.int32)
        res = two_opt(good, _SQUARE, nn_list=nn)
        assert res.exchanges == 0 and res.length == 4
        bres = two_opt_batch(good[None], _SQUARE[None], nn_list=nn[None])
        assert int(bres.lengths[0]) == 4 and int(bres.exchanges[0]) == 0

    def test_max_passes_zero_returns_input(self):
        inst = uniform_instance(15, seed=93)
        d = inst.distance_matrix()
        t = random_tour(15, np.random.default_rng(11))
        nn = inst.nn_lists(7)
        for res in (
            two_opt(t, d, max_passes=0),
            two_opt(t, d, max_passes=0, nn_list=nn),
        ):
            assert res.exchanges == 0
            np.testing.assert_array_equal(res.tour, t)
        bres = two_opt_batch(t[None], d[None], nn_list=nn[None], max_passes=0)
        np.testing.assert_array_equal(bres.tours[0], t)

    def test_full_width_nn_matches_full_matrix(self):
        """With nn = n-1 the candidate restriction is vacuous: the
        nn-kernel must reach the full-matrix result length."""
        for seed in (1, 2, 3, 4, 5):
            inst = uniform_instance(12, seed=seed)
            d = inst.distance_matrix()
            t = random_tour(12, np.random.default_rng(seed))
            full = two_opt(t, d)
            nn = two_opt(t, d, nn_list=inst.nn_lists(11))
            assert nn.length == full.length, seed

    def test_wall_seconds_populated(self):
        inst = uniform_instance(20, seed=94)
        d = inst.distance_matrix()
        t = random_tour(20, np.random.default_rng(12))
        assert two_opt(t, d).wall_seconds >= 0.0
        bres = two_opt_batch(t[None], d[None], nn_list=inst.nn_lists(7)[None])
        assert isinstance(bres, BatchTwoOptResult)
        assert bres.wall_seconds >= 0.0
        assert int(bres.improvement[0]) >= 0


class TestBatchKernel:
    def test_batch_uncrosses_square(self):
        crossed = np.array([0, 2, 1, 3, 0], dtype=np.int32)
        nn = np.argsort(_SQUARE, axis=1)[:, 1:4].astype(np.int32)
        res = two_opt_batch(crossed[None], _SQUARE[None], nn_list=nn[None])
        assert int(res.lengths[0]) == 4
        validate_tour(res.tours[0], 4)
        assert int(res.exchanges[0]) >= 1

    def test_batch_rows_never_worse_and_valid(self):
        inst = uniform_instance(22, seed=95)
        d = inst.distance_matrix()
        rng = np.random.default_rng(13)
        tours = np.stack([random_tour(22, rng) for _ in range(4)])
        nn = inst.nn_lists(7)
        B = tours.shape[0]
        res = two_opt_batch(
            tours,
            np.broadcast_to(d, (B,) + d.shape),
            nn_list=np.broadcast_to(nn, (B,) + nn.shape),
        )
        for b in range(B):
            validate_tour(res.tours[b], 22)
            assert int(res.lengths[b]) == tour_length(res.tours[b], d)
            assert int(res.lengths[b]) <= int(res.initial_lengths[b])


class TestWithColony:
    def test_polishes_aco_tours(self, small_instance):
        from repro.core import ACOParams, AntSystem

        colony = AntSystem(small_instance, ACOParams(seed=3, nn=10), construction=8)
        result = colony.run(5)
        res = two_opt(result.best_tour, small_instance.distance_matrix())
        assert res.length <= result.best_length
        validate_tour(res.tour, small_instance.n)
