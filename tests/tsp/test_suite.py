"""Tests for the named paper benchmark suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TSPError
from repro.tsp.suite import (
    PAPER_INSTANCE_NAMES,
    TABLE2_INSTANCES,
    TABLE3_INSTANCES,
    load_instance,
    suite_entry,
)

EXPECTED_SIZES = {
    "att48": 48,
    "kroC100": 100,
    "a280": 280,
    "pcb442": 442,
    "d657": 657,
    "pr1002": 1002,
    "pr2392": 2392,
}


class TestSuite:
    def test_names_match_paper_tables(self):
        assert TABLE2_INSTANCES == tuple(EXPECTED_SIZES)
        assert TABLE3_INSTANCES == tuple(EXPECTED_SIZES)[:-1]

    @pytest.mark.parametrize("name", [n for n in PAPER_INSTANCE_NAMES if n != "pr2392"])
    def test_sizes_match(self, name):
        inst = load_instance(name)
        assert inst.n == EXPECTED_SIZES[name]
        assert inst.name == name

    def test_att48_uses_att_metric(self):
        assert suite_entry("att48").edge_weight_type == "ATT"
        assert load_instance("att48").edge_weight_type == "ATT"

    def test_others_use_euc2d(self):
        for name in ("kroC100", "a280", "pcb442"):
            assert suite_entry(name).edge_weight_type == "EUC_2D"

    def test_deterministic(self):
        a = load_instance("att48", use_cache=False)
        b = load_instance("att48", use_cache=False)
        np.testing.assert_array_equal(a.coords, b.coords)

    def test_cache_returns_same_object(self):
        assert load_instance("kroC100") is load_instance("kroC100")

    def test_unknown_name(self):
        with pytest.raises(TSPError, match="unknown paper instance"):
            load_instance("berlin52")

    def test_entry_metadata(self):
        e = suite_entry("pcb442")
        assert e.n == 442
        assert "circuit" in e.origin

    def test_real_file_override(self, tmp_path, monkeypatch):
        # A real TSPLIB file in REPRO_TSPLIB_DIR takes precedence.
        from repro.tsp.tsplib import write_tsplib
        from repro.tsp.generator import uniform_instance

        real = uniform_instance(48, seed=999, name="att48", edge_weight_type="ATT")
        write_tsplib(real, tmp_path / "att48.tsp")
        monkeypatch.setenv("REPRO_TSPLIB_DIR", str(tmp_path))
        inst = load_instance("att48", use_cache=False)
        np.testing.assert_allclose(inst.coords, real.coords, atol=1e-5)

    def test_real_file_wrong_size_rejected(self, tmp_path, monkeypatch):
        from repro.tsp.tsplib import write_tsplib
        from repro.tsp.generator import uniform_instance

        wrong = uniform_instance(10, seed=1, name="att48")
        write_tsplib(wrong, tmp_path / "att48.tsp")
        monkeypatch.setenv("REPRO_TSPLIB_DIR", str(tmp_path))
        with pytest.raises(TSPError, match="expected 48"):
            load_instance("att48", use_cache=False)
