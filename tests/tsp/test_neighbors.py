"""Tests for nearest-neighbour candidate lists."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tsp.generator import uniform_instance
from repro.tsp.neighbors import nearest_neighbor_lists


class TestBasics:
    def test_shape_and_dtype(self):
        inst = uniform_instance(20, seed=1)
        nn = nearest_neighbor_lists(inst.distance_matrix(), 5)
        assert nn.shape == (20, 5)
        assert nn.dtype == np.int32

    def test_never_contains_self(self):
        inst = uniform_instance(25, seed=2)
        nn = nearest_neighbor_lists(inst.distance_matrix(), 10)
        for i in range(25):
            assert i not in nn[i]

    def test_sorted_by_distance(self):
        inst = uniform_instance(30, seed=3)
        d = inst.distance_matrix()
        nn = nearest_neighbor_lists(d, 8)
        for i in range(30):
            dists = d[i, nn[i]]
            assert np.all(np.diff(dists) >= 0)

    def test_contains_true_nearest(self):
        inst = uniform_instance(30, seed=4)
        d = inst.distance_matrix().astype(float)
        np.fill_diagonal(d, np.inf)
        nn = nearest_neighbor_lists(inst.distance_matrix(), 3)
        for i in range(30):
            assert nn[i, 0] == int(np.argmin(d[i]))

    def test_nn_clipped_to_n_minus_1(self):
        inst = uniform_instance(6, seed=5)
        nn = nearest_neighbor_lists(inst.distance_matrix(), 50)
        assert nn.shape == (6, 5)
        # each row is a permutation of the other cities
        for i in range(6):
            assert sorted(nn[i]) == sorted(set(range(6)) - {i})

    def test_invalid_nn(self):
        inst = uniform_instance(5, seed=6)
        with pytest.raises(ValueError):
            nearest_neighbor_lists(inst.distance_matrix(), 0)

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            nearest_neighbor_lists(np.zeros((3, 4)), 2)


class TestAgainstFullSort:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(5, 40), st.integers(1, 10), st.integers(0, 10_000))
    def test_matches_argsort_reference(self, n, nn, seed):
        inst = uniform_instance(n, seed=seed)
        d = inst.distance_matrix().astype(np.float64)
        got = nearest_neighbor_lists(inst.distance_matrix(), nn)
        work = d.copy()
        np.fill_diagonal(work, np.inf)
        k = min(nn, n - 1)
        for i in range(n):
            ref_order = np.lexsort((np.arange(n), work[i]))[:k]
            # compare by distance multiset (ties may reorder cities, but
            # lexsort tie-breaks identically: by index)
            np.testing.assert_array_equal(got[i], ref_order.astype(np.int32))
