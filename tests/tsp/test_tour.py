"""Tests for tour utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidTourError
from repro.tsp.generator import uniform_instance
from repro.tsp.tour import (
    close_tour,
    nearest_neighbor_tour,
    random_tour,
    tour_edges,
    tour_length,
    tour_lengths,
    validate_tour,
)


class TestValidate:
    def test_valid_tour_passes(self):
        t = close_tour(np.array([0, 2, 1], dtype=np.int32))
        out = validate_tour(t, 3)
        assert out.dtype == np.int32

    def test_not_closed(self):
        with pytest.raises(InvalidTourError, match="closed"):
            validate_tour(np.array([0, 1, 2, 1]), 3)

    def test_wrong_length(self):
        with pytest.raises(InvalidTourError):
            validate_tour(np.array([0, 1, 0]), 3)

    def test_repeat_city(self):
        with pytest.raises(InvalidTourError, match="permutation"):
            validate_tour(np.array([0, 1, 1, 0]), 3)

    def test_out_of_range(self):
        with pytest.raises(InvalidTourError):
            validate_tour(np.array([0, 1, 5, 0]), 3)


class TestLength:
    def test_triangle_length(self):
        d = np.array([[0, 3, 4], [3, 0, 5], [4, 5, 0]])
        t = close_tour(np.array([0, 1, 2]))
        assert tour_length(t, d) == 12

    def test_vectorised_matches_scalar(self):
        inst = uniform_instance(15, seed=9)
        d = inst.distance_matrix()
        rng = np.random.default_rng(1)
        tours = np.stack([random_tour(15, rng) for _ in range(8)])
        vec = tour_lengths(tours, d)
        for k in range(8):
            assert vec[k] == tour_length(tours[k], d)

    def test_length_invariant_under_rotation(self):
        inst = uniform_instance(12, seed=10)
        d = inst.distance_matrix()
        rng = np.random.default_rng(2)
        t = random_tour(12, rng)
        body = t[:-1]
        rotated = close_tour(np.roll(body, 3))
        assert tour_length(t, d) == tour_length(rotated, d)

    def test_length_invariant_under_reversal_symmetric(self):
        inst = uniform_instance(12, seed=11)
        d = inst.distance_matrix()
        t = random_tour(12, np.random.default_rng(3))
        rev = close_tour(t[:-1][::-1].copy())
        assert tour_length(t, d) == tour_length(rev, d)


class TestEdges:
    def test_edge_count(self):
        t = close_tour(np.array([0, 1, 2, 3]))
        e = tour_edges(t)
        assert e.shape == (4, 2)
        assert tuple(e[-1]) == (3, 0)


class TestRandomTour:
    @given(st.integers(3, 50), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_always_valid(self, n, seed):
        t = random_tour(n, np.random.default_rng(seed))
        validate_tour(t, n)


class TestNearestNeighborTour:
    def test_valid_tour(self):
        inst = uniform_instance(30, seed=12)
        t = nearest_neighbor_tour(inst.distance_matrix())
        validate_tour(t, 30)

    def test_starts_where_asked(self):
        inst = uniform_instance(10, seed=13)
        t = nearest_neighbor_tour(inst.distance_matrix(), start=4)
        assert t[0] == 4 and t[-1] == 4

    def test_bad_start(self):
        inst = uniform_instance(10, seed=14)
        with pytest.raises(InvalidTourError):
            nearest_neighbor_tour(inst.distance_matrix(), start=10)

    def test_beats_random_on_average(self):
        inst = uniform_instance(60, seed=15)
        d = inst.distance_matrix()
        nn_len = tour_length(nearest_neighbor_tour(d), d)
        rng = np.random.default_rng(4)
        rand_lens = [tour_length(random_tour(60, rng), d) for _ in range(10)]
        assert nn_len < min(rand_lens)

    def test_greedy_first_step(self):
        inst = uniform_instance(20, seed=16)
        d = inst.distance_matrix().astype(float)
        t = nearest_neighbor_tour(inst.distance_matrix(), start=0)
        masked = d[0].copy()
        masked[0] = np.inf
        assert t[1] == int(np.argmin(masked))
