"""Local-search requests through the micro-batching service.

``BatchKey`` carries the ls triple (algorithm, passes, target), so
same-geometry requests that differ in polishing bucket separately; unknown
values are answered with an ``error`` line exactly like unknown variants;
and :class:`~repro.serve.service.ServiceStats` counts how many packed
batches ran with a local-search stage.
"""

from __future__ import annotations

import json

import pytest

from repro.core import ACOParams
from repro.errors import ACOConfigError, ReproError, ServeError
from repro.experiments.harness import run_service
from repro.serve import SolveRequest
from repro.serve.protocol import decode_request, encode_request
from repro.tsp import uniform_instance


class TestRequestValidation:
    def test_unknown_local_search_rejected(self):
        inst = uniform_instance(12, seed=61)
        with pytest.raises(ACOConfigError, match="local search"):
            SolveRequest(instance=inst, local_search="3opt")

    def test_unknown_ls_target_rejected(self):
        inst = uniform_instance(12, seed=62)
        with pytest.raises(ACOConfigError, match="ls target"):
            SolveRequest(
                instance=inst, local_search="2opt", ls_target="global-best"
            )

    def test_bad_ls_passes_rejected(self):
        inst = uniform_instance(12, seed=63)
        with pytest.raises(ACOConfigError, match="ls_passes"):
            SolveRequest(instance=inst, local_search="2opt", ls_passes=0)

    def test_ls_knobs_without_algorithm_rejected(self):
        """Knobs on a disabled stage are an error response, never a
        silently ignored (and bucket-splitting) no-op."""
        inst = uniform_instance(12, seed=64)
        with pytest.raises(ACOConfigError, match="local-search"):
            SolveRequest(instance=inst, ls_passes=2)
        with pytest.raises(ACOConfigError, match="local-search"):
            SolveRequest(instance=inst, ls_target="best-so-far")


class TestBucketing:
    def test_ls_fields_split_the_bucket(self):
        inst = uniform_instance(14, seed=65)
        base = dict(instance=inst, params=ACOParams(seed=1, nn=7), iterations=5)
        plain = SolveRequest(**base)
        polished = SolveRequest(**base, local_search="2opt")
        capped = SolveRequest(**base, local_search="2opt", ls_passes=2)
        retargeted = SolveRequest(
            **base, local_search="2opt", ls_target="best-so-far"
        )
        keys = {
            r.bucket_key for r in (plain, polished, capped, retargeted)
        }
        assert len(keys) == 4
        assert plain.bucket_key.local_search == "none"
        assert polished.bucket_key.local_search == "2opt"

    def test_equal_ls_requests_share_a_bucket(self):
        inst = uniform_instance(14, seed=66)
        a = SolveRequest(
            instance=inst,
            params=ACOParams(seed=1, nn=7),
            local_search="2opt",
            ls_passes=3,
        )
        b = SolveRequest(
            instance=inst,
            params=ACOParams(seed=9, nn=7),
            local_search="2opt",
            ls_passes=3,
        )
        assert a.bucket_key == b.bucket_key


class TestWire:
    def test_roundtrip_preserves_ls_fields(self):
        inst = uniform_instance(12, seed=67)
        request = SolveRequest(
            instance=inst,
            iterations=3,
            variant="acs",
            local_search="2opt",
            ls_passes=2,
            ls_target="best-so-far",
        )
        line = encode_request(request, "r9")
        req_id, clone = decode_request(line, default_id="x")
        assert req_id == "r9"
        assert clone.local_search == "2opt"
        assert clone.ls_passes == 2
        assert clone.ls_target == "best-so-far"
        assert clone.bucket_key == request.bucket_key

    def test_ls_defaults_to_none_and_stays_off_the_wire(self):
        inst = uniform_instance(12, seed=68)
        line = encode_request(SolveRequest(instance=inst), "r1")
        assert b"local_search" not in line
        _, clone = decode_request(line, default_id="x")
        assert clone.local_search == "none"
        assert clone.ls_passes is None

    def test_unknown_local_search_becomes_error_response(self):
        payload = {
            "id": "bad-ls",
            "instance": {
                "coords": [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]],
            },
            "local_search": "3opt",
        }
        with pytest.raises((ServeError, ACOConfigError)) as err:
            decode_request(json.dumps(payload), default_id="x")
        # The connection handler addresses its error line with this id.
        assert getattr(err.value, "req_id", None) == "bad-ls"
        assert isinstance(err.value, ReproError)


class TestServiceStats:
    def test_ls_batches_counted_and_buckets_split(self):
        """A mixed burst packs plain and polished requests into different
        batches; the stats ledger counts the ls ones."""
        inst = uniform_instance(14, seed=69)
        requests = [
            SolveRequest(
                instance=inst,
                params=ACOParams(seed=10 + i, nn=7),
                iterations=4,
                variant="acs",
                local_search=ls,
            )
            for ls in ("none", "2opt")
            for i in range(2)
        ]
        load = run_service(requests, max_batch=2, max_wait=5.0)
        assert load.stats.batches == 2, load.stats.snapshot()
        assert load.stats.ls_batches == 1
        assert load.stats.snapshot()["ls_batches"] == 1
        ls_values = {key.local_search for key in load.stats.batches_per_bucket}
        assert ls_values == {"none", "2opt"}
        # Polished riders never resolve worse than their plain seed-twins.
        plain = [r.best_length for r in load.results[:2]]
        polished = [r.best_length for r in load.results[2:]]
        assert all(p <= q for p, q in zip(polished, plain))
