"""Tests for the JSON-lines wire protocol and the TCP front-end."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core import ACOParams, AntSystem
from repro.errors import ServeError
from repro.serve import SolveRequest, SolveService, request_over_tcp, serve_tcp
from repro.serve.protocol import (
    decode_request,
    encode_request,
    instance_from_json,
    instance_to_json,
)
from repro.tsp import uniform_instance


def run_async(coro):
    return asyncio.run(coro)


class TestEncodeDecode:
    def test_instance_roundtrip(self):
        inst = uniform_instance(10, seed=3, name="rt")
        clone = instance_from_json(instance_to_json(inst))
        assert clone.name == "rt"
        assert clone.edge_weight_type == inst.edge_weight_type
        np.testing.assert_allclose(clone.coords, inst.coords)
        np.testing.assert_array_equal(
            clone.distance_matrix(), inst.distance_matrix()
        )

    def test_suite_instance_by_name(self):
        inst = instance_from_json({"suite": "att48"})
        assert inst.n == 48

    def test_request_roundtrip(self):
        inst = uniform_instance(10, seed=4)
        request = SolveRequest(
            instance=inst,
            params=ACOParams(seed=9, nn=5, alpha=2.0),
            iterations=7,
            report_every=2,
            deadline=1.5,
            target_length=123,
            construction=6,
            pheromone=3,
        )
        req_id, clone = decode_request(
            encode_request(request, "abc"), default_id="zz"
        )
        assert req_id == "abc"
        assert clone.iterations == 7
        assert clone.report_every == 2
        assert clone.deadline == 1.5
        assert clone.target_length == 123
        assert clone.construction == 6
        assert clone.pheromone == 3
        assert clone.params == request.params
        assert clone.bucket_key == request.bucket_key

    def test_decode_rejects_garbage(self):
        with pytest.raises(ServeError):
            decode_request(b"not json\n", default_id="d")
        with pytest.raises(ServeError):
            decode_request(b"[1, 2]\n", default_id="d")
        with pytest.raises(ServeError):
            decode_request(b"{}\n", default_id="d")  # no instance
        with pytest.raises(ServeError):
            decode_request(
                b'{"instance": {"suite": "att48"}, "params": {"bogus": 1}}\n',
                default_id="d",
            )

    def test_decode_wraps_typed_garbage_as_serve_error(self):
        # Well-formed JSON with wrong-typed values must become a ServeError
        # (-> error response), not a raw TypeError/ValueError that would
        # drop the connection.
        for payload in (
            b'{"instance": {"suite": "att48"}, "params": {"alpha": "two"}}\n',
            b'{"instance": {"coords": [[1, 2], [3]]}}\n',
            b'{"instance": {"suite": "att48"}, "iterations": [5]}\n',
        ):
            with pytest.raises(ServeError) as err:
                decode_request(payload, default_id="d")
            assert getattr(err.value, "req_id", None) == "d"

    def test_decode_applies_default_id(self):
        req_id, _ = decode_request(
            b'{"instance": {"suite": "att48"}}\n', default_id="req-7"
        )
        assert req_id == "req-7"


class TestTcpServer:
    def test_roundtrip_matches_solo(self):
        inst = uniform_instance(16, seed=21)
        params = ACOParams(seed=5, nn=7)
        request = SolveRequest(
            instance=inst, params=params, iterations=4, report_every=2
        )

        async def drive():
            async with SolveService(max_batch=2, max_wait=0.02) as service:
                server = await serve_tcp(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                try:
                    updates, final = await request_over_tcp(
                        "127.0.0.1", port, request
                    )
                finally:
                    server.close()
                    await server.wait_closed()
                return updates, final

        updates, final = run_async(drive())
        assert [u["iteration"] for u in updates] == [2, 4]
        solo = AntSystem(inst, params).run(4)
        assert final["best_length"] == solo.best_length
        assert final["best_tour"] == [int(c) for c in solo.best_tour]
        assert final["iterations_run"] == 4
        assert final["early"] is None

    def test_pipelined_requests_interleave_by_id(self):
        inst_a = uniform_instance(16, seed=22)
        inst_b = uniform_instance(16, seed=23)

        async def drive():
            async with SolveService(max_batch=2, max_wait=1.0) as service:
                server = await serve_tcp(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                try:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", port
                    )
                    for rid, inst in (("a", inst_a), ("b", inst_b)):
                        req = SolveRequest(
                            instance=inst,
                            params=ACOParams(seed=3, nn=7),
                            iterations=4,
                            report_every=2,
                        )
                        writer.write(encode_request(req, rid))
                    await writer.drain()
                    finals = {}
                    while len(finals) < 2:
                        line = await asyncio.wait_for(
                            reader.readline(), timeout=30
                        )
                        obj = json.loads(line)
                        if obj["type"] == "result":
                            finals[obj["id"]] = obj
                    writer.close()
                    await writer.wait_closed()
                finally:
                    server.close()
                    await server.wait_closed()
                return finals, service.stats

        finals, stats = run_async(drive())
        assert set(finals) == {"a", "b"}
        # Both rode one packed batch (same geometry, pipelined in time).
        assert stats.batches == 1 and stats.rows_packed == 2
        solo_a = AntSystem(inst_a, ACOParams(seed=3, nn=7)).run(4)
        assert finals["a"]["best_length"] == solo_a.best_length

    def test_malformed_request_gets_error_response(self):
        async def drive():
            async with SolveService(max_batch=1, max_wait=0.01) as service:
                server = await serve_tcp(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                try:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", port
                    )
                    writer.write(b'{"id": "bad", "no_instance": true}\n')
                    await writer.drain()
                    line = await asyncio.wait_for(reader.readline(), timeout=10)
                    obj = json.loads(line)
                    # The connection survives for later requests.
                    writer.write(
                        b'{"id": "ok", "instance": {"suite": "att48"},'
                        b' "iterations": 1}\n'
                    )
                    await writer.drain()
                    accepted = json.loads(
                        await asyncio.wait_for(reader.readline(), timeout=10)
                    )
                    writer.close()
                    await writer.wait_closed()
                finally:
                    server.close()
                    await server.wait_closed()
                return obj, accepted

        obj, accepted = run_async(drive())
        assert obj["type"] == "error"
        assert obj["id"] == "bad"
        assert "instance" in obj["message"]
        assert accepted == {"type": "accepted", "id": "ok"}

    def test_error_after_drain_refuses_request(self):
        async def drive():
            service = SolveService(max_batch=1, max_wait=0.01)
            await service.start()
            server = await serve_tcp(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            await service.drain()
            try:
                request = SolveRequest(
                    instance=uniform_instance(10, seed=1), iterations=1
                )
                with pytest.raises(ServeError) as err:
                    await request_over_tcp("127.0.0.1", port, request)
                return str(err.value)
            finally:
                server.close()
                await server.wait_closed()

        message = run_async(drive())
        assert "ServiceClosedError" in message
