"""End-to-end test of the ``gpu-aco serve`` CLI: real process, real TCP,
real SIGINT graceful drain."""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGINT") or os.name == "nt",
    reason="POSIX signal semantics required",
)


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _spawn_server(port: int) -> subprocess.Popen:
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.abspath(src), env.get("PYTHONPATH")) if p
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", str(port), "--max-batch", "2", "--max-wait-ms", "20",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        start_new_session=True,  # keep the test runner's signals away
    )


def _connect(port: int, deadline: float = 15.0) -> socket.socket:
    end = time.monotonic() + deadline
    while True:
        try:
            return socket.create_connection(("127.0.0.1", port), timeout=5)
        except OSError:
            if time.monotonic() > end:
                raise
            time.sleep(0.1)


def test_serve_cli_roundtrip_and_graceful_sigint_drain():
    port = _free_port()
    proc = _spawn_server(port)
    try:
        sock = _connect(port)
        request = {
            "id": "t1",
            "instance": {"suite": "att48"},
            "iterations": 4,
            "report_every": 2,
            "params": {"seed": 3},
        }
        sock.sendall((json.dumps(request) + "\n").encode())
        stream = sock.makefile()
        kinds, final = [], None
        while final is None:
            obj = json.loads(stream.readline())
            kinds.append(obj["type"])
            if obj["type"] == "result":
                final = obj
            assert obj["type"] != "error", obj
        sock.close()

        assert kinds[0] == "accepted"
        assert kinds.count("update") == 2  # one per report_every boundary
        assert final["best_length"] > 0
        assert len(final["best_tour"]) == 49

        os.killpg(proc.pid, signal.SIGINT)
        rc = proc.wait(timeout=30)
        out = proc.stdout.read()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    assert rc == 0, out
    assert "draining" in out
    assert "drained" in out
    assert "'completed': 1" in out
    assert "Traceback" not in out
