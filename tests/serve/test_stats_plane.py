"""The live stats plane: ServiceStats distributions + the {"op": "stats"} wire.

Covers the request-lifecycle histograms (queue-wait / batch-wall /
total-latency), flush-cause counters, the lock-guarded worker-thread
mutation path, and the TCP admin op end to end (including the
``stats_over_tcp`` client behind ``gpu-aco stats``).
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.core import ACOParams
from repro.errors import ACOConfigError, ServeError
from repro.serve import (
    ServiceStats,
    SolveRequest,
    SolveService,
    serve_tcp,
    stats_over_tcp,
)
from repro.serve.service import FLUSH_CAUSES, REQUEST_OUTCOMES
from repro.tsp import uniform_instance


def run_async(coro):
    return asyncio.run(coro)


def _request(n_seed=21, **kwargs):
    kwargs.setdefault("iterations", 3)
    kwargs.setdefault("report_every", 1)
    return SolveRequest(
        instance=uniform_instance(16, seed=n_seed),
        params=ACOParams(seed=5, nn=7),
        **kwargs,
    )


class TestServiceStats:
    def test_observe_flush_counts_cause_and_occupancy(self):
        stats = ServiceStats()
        key = _request().bucket_key
        stats.observe_flush(key, "full", [0.01, 0.02])
        stats.observe_flush(key, "max_wait", [0.03])
        assert stats.flush_causes == {"full": 1, "max_wait": 1, "drain": 0}
        assert stats.rows_per_bucket[key] == 3
        assert stats.queue_wait.count == 3
        assert stats.batch_rows.count == 2
        assert stats.batch_rows.max == 2.0

    def test_observe_flush_rejects_unknown_cause(self):
        with pytest.raises(ACOConfigError):
            ServiceStats().observe_flush(_request().bucket_key, "panic", [])

    def test_observe_resolution_outcomes(self):
        stats = ServiceStats()
        for outcome, latency in (
            ("completed", 0.5),
            ("target", 0.1),
            ("deadline", 1.0),
            ("failed", 0.2),
            ("timeout", 0.3),
            ("shed", 0.05),
        ):
            stats.observe_resolution(outcome, latency)
        assert stats.completed == 1
        assert stats.resolved_by_target == 1
        assert stats.resolved_by_deadline == 1
        assert stats.failed == 1
        assert stats.requests_timed_out == 1
        assert stats.requests_shed == 1
        assert stats.request_latency.count == len(REQUEST_OUTCOMES)
        with pytest.raises(ACOConfigError):
            stats.observe_resolution("lost", 0.1)

    def test_snapshot_shape(self):
        stats = ServiceStats()
        stats.observe_submitted()
        stats.observe_resolution("completed", 0.25)
        snap = stats.snapshot()
        json.dumps(snap)  # wire payload must be JSON-friendly
        assert snap["submitted"] == 1
        assert snap["flush_causes"] == dict.fromkeys(FLUSH_CAUSES, 0)
        assert snap["request_latency_seconds"]["count"] == 1
        assert snap["request_latency_seconds"]["p50"] == 0.25
        for dist in (
            "queue_wait_seconds", "batch_wall_seconds", "batch_rows",
        ):
            assert snap[dist]["count"] == 0

    def test_concurrent_mutation_from_threads(self):
        """Worker threads resolve early riders while the loop thread counts
        completions — the lock must keep every tally exact."""
        stats = ServiceStats()

        def hammer(outcome):
            for _ in range(2000):
                stats.observe_resolution(outcome, 0.001)
                stats.observe_submitted()

        threads = [
            threading.Thread(target=hammer, args=(outcome,))
            for outcome in ("completed", "target", "deadline", "failed")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.submitted == 8000
        assert stats.completed == 2000
        assert stats.resolved_by_target == 2000
        assert stats.resolved_by_deadline == 2000
        assert stats.failed == 2000
        assert stats.request_latency.count == 8000


class TestLifecycleDistributions:
    def test_latency_histograms_cover_every_request(self):
        async def drive():
            async with SolveService(max_batch=2, max_wait=0.01) as service:
                for _ in range(4):
                    handle = await service.submit(_request())
                    await handle.result()
                return service.stats

        stats = run_async(drive())
        snap = stats.snapshot()
        assert snap["submitted"] == 4
        assert snap["request_latency_seconds"]["count"] == 4
        assert snap["queue_wait_seconds"]["count"] == 4
        assert snap["batch_wall_seconds"]["count"] == snap["batches"]
        assert snap["rows_packed"] == 4
        assert snap["request_latency_seconds"]["p95"] > 0.0
        # Queue wait is part of total latency, never more than it.
        assert (
            snap["queue_wait_seconds"]["p50"]
            <= snap["request_latency_seconds"]["max"]
        )

    def test_flush_cause_full_when_bucket_fills(self):
        async def drive():
            async with SolveService(max_batch=2, max_wait=30.0) as service:
                handles = [await service.submit(_request()) for _ in range(2)]
                for h in handles:
                    await h.result()
                return service.stats

        stats = run_async(drive())
        # max_wait is far away: only the bucket filling can have launched.
        assert stats.flush_causes["full"] == 1
        assert stats.flush_causes["max_wait"] == 0

    def test_flush_cause_max_wait_for_partial_bucket(self):
        async def drive():
            async with SolveService(max_batch=8, max_wait=0.01) as service:
                handle = await service.submit(_request())
                await handle.result()
                return service.stats

        stats = run_async(drive())
        assert stats.flush_causes["max_wait"] == 1
        assert stats.flush_causes["full"] == 0

    def test_flush_cause_drain_on_shutdown(self):
        async def drive():
            service = SolveService(max_batch=8, max_wait=30.0)
            await service.start()
            handle = await service.submit(_request())
            await service.drain()  # flushes the waiting partial bucket
            await handle.result()
            return service.stats

        stats = run_async(drive())
        assert stats.flush_causes["drain"] == 1
        assert stats.flush_causes["max_wait"] == 0


class TestStatsWire:
    def test_stats_op_roundtrip(self):
        async def drive():
            async with SolveService(max_batch=1, max_wait=0.01) as service:
                server = await serve_tcp(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                try:
                    handle = await service.submit(_request())
                    await handle.result()
                    snap = await stats_over_tcp("127.0.0.1", port)
                finally:
                    server.close()
                    await server.wait_closed()
                return snap

        snap = run_async(drive())
        assert snap["submitted"] == 1
        assert snap["completed"] == 1
        assert snap["request_latency_seconds"]["count"] == 1
        assert snap["flush_causes"]["full"] == 1  # max_batch=1 fills instantly

    def test_stats_op_echoes_id_and_interleaves_with_solves(self):
        async def drive():
            async with SolveService(max_batch=1, max_wait=0.01) as service:
                server = await serve_tcp(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                try:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", port
                    )
                    writer.write(b'{"op": "stats", "id": "s7"}\n')
                    await writer.drain()
                    line = await asyncio.wait_for(reader.readline(), timeout=10)
                    obj = json.loads(line)
                    # The same connection still accepts solve requests.
                    writer.write(
                        b'{"id": "ok", "instance": {"suite": "att48"},'
                        b' "iterations": 1}\n'
                    )
                    await writer.drain()
                    accepted = json.loads(
                        await asyncio.wait_for(reader.readline(), timeout=10)
                    )
                    writer.close()
                    await writer.wait_closed()
                finally:
                    server.close()
                    await server.wait_closed()
                return obj, accepted

        obj, accepted = run_async(drive())
        assert obj["type"] == "stats"
        assert obj["id"] == "s7"
        assert "request_latency_seconds" in obj["stats"]
        assert accepted == {"type": "accepted", "id": "ok"}

    def test_unknown_op_gets_error_line(self):
        async def drive():
            async with SolveService(max_batch=1, max_wait=0.01) as service:
                server = await serve_tcp(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                try:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", port
                    )
                    writer.write(b'{"op": "reboot", "id": "x"}\n')
                    await writer.drain()
                    obj = json.loads(
                        await asyncio.wait_for(reader.readline(), timeout=10)
                    )
                    writer.close()
                    await writer.wait_closed()
                finally:
                    server.close()
                    await server.wait_closed()
                return obj

        obj = run_async(drive())
        assert obj["type"] == "error"
        assert "reboot" in obj["message"]

    def test_stats_over_tcp_raises_on_error_response(self):
        async def drive():
            server = await asyncio.start_server(
                _error_responder, "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            try:
                with pytest.raises(ServeError, match="nope"):
                    await stats_over_tcp("127.0.0.1", port)
            finally:
                server.close()
                await server.wait_closed()

        async def _error_responder(reader, writer):
            await reader.readline()
            writer.write(
                b'{"type": "error", "error": "X", "message": "nope"}\n'
            )
            await writer.drain()
            writer.close()

        run_async(drive())


class TestInProcessClient:
    def test_client_stats_matches_service(self):
        from repro.serve import AsyncSolveClient

        async def drive():
            async with SolveService(max_batch=1, max_wait=0.01) as service:
                client = AsyncSolveClient(service)
                await client.solve_and_wait(
                    uniform_instance(16, seed=21),
                    params=ACOParams(seed=5, nn=7),
                    iterations=2,
                )
                return client.stats(), service.stats.snapshot()

        client_snap, service_snap = run_async(drive())
        assert client_snap["submitted"] == service_snap["submitted"] == 1
        assert client_snap["completed"] == 1
