"""Tests for the async micro-batching solve service.

Written against plain ``asyncio.run`` so the suite needs no pytest-asyncio
plugin (CI installs it for the dedicated serve job, but the tier-1 run must
pass in a bare ``[test]`` environment).
"""

from __future__ import annotations

import asyncio
import math

import numpy as np
import pytest

from repro.core import ACOParams, AntSystem
from repro.errors import (
    ACOConfigError,
    ServeError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.serve import (
    AsyncSolveClient,
    SolveRequest,
    SolveService,
)
from repro.tsp import uniform_instance

ITERATIONS = 6
K = 3  # report_every: boundaries at iterations 3 and 6


def run_async(coro):
    return asyncio.run(coro)


def _params(seed: int) -> ACOParams:
    return ACOParams(seed=seed, nn=7)


def _request(instance, seed: int, **kwargs) -> SolveRequest:
    kwargs.setdefault("iterations", ITERATIONS)
    kwargs.setdefault("report_every", K)
    return SolveRequest(instance=instance, params=_params(seed), **kwargs)


@pytest.fixture(scope="module")
def sized_instances():
    """Four distinct instances for each of three distinct sizes."""
    return {
        n: [uniform_instance(n, seed=1000 * n + i) for i in range(4)]
        for n in (16, 20, 24)
    }


class TestRequestValidation:
    def test_rejects_bad_iterations(self):
        inst = uniform_instance(12, seed=1)
        with pytest.raises(ACOConfigError):
            SolveRequest(instance=inst, iterations=0)

    def test_rejects_bad_report_every(self):
        inst = uniform_instance(12, seed=1)
        with pytest.raises(ACOConfigError):
            SolveRequest(instance=inst, report_every=0)

    def test_rejects_bad_deadline_and_target(self):
        inst = uniform_instance(12, seed=1)
        with pytest.raises(ACOConfigError):
            SolveRequest(instance=inst, deadline=0.0)
        with pytest.raises(ACOConfigError):
            SolveRequest(instance=inst, target_length=0)

    def test_bucket_key_separates_sizes_and_schedules(self):
        a = _request(uniform_instance(16, seed=1), 1)
        b = _request(uniform_instance(16, seed=2), 2)
        c = _request(uniform_instance(20, seed=1), 1)
        d = _request(uniform_instance(16, seed=1), 1, iterations=9)
        assert a.bucket_key == b.bucket_key  # same geometry+schedule pack
        assert a.bucket_key != c.bucket_key  # size splits
        assert a.bucket_key != d.bucket_key  # iteration budget splits

    def test_service_config_validation(self):
        with pytest.raises(ACOConfigError):
            SolveService(max_batch=0)
        with pytest.raises(ACOConfigError):
            SolveService(max_wait=-1.0)
        with pytest.raises(ACOConfigError):
            SolveService(workers=0)
        with pytest.raises(ACOConfigError):
            SolveService(max_batch=8, max_pending=4)


class TestEndToEndPacking:
    """The acceptance scenario: a concurrent mixed-size burst is packed,
    streamed, and bit-identical to solo runs."""

    def test_burst_packs_streams_and_matches_solo(self, sized_instances):
        requests = [
            _request(inst, seed=10 + i)
            for n, group in sized_instances.items()
            for i, inst in enumerate(group)
        ]
        assert len(requests) == 12  # >= 12 requests over >= 3 distinct sizes
        max_batch = 4

        async def drive():
            async with SolveService(
                max_batch=max_batch, max_wait=5.0, workers=2
            ) as service:
                handles = [await service.submit(r) for r in requests]

                async def consume(handle):
                    ups = [u async for u in handle]
                    return ups, await handle.result()

                pairs = await asyncio.gather(*(consume(h) for h in handles))
                return pairs, service.stats

        pairs, stats = run_async(drive())

        # Packing: at most ceil(requests-per-size / B) batches per bucket.
        per_size = 4
        assert stats.batches == 3 * math.ceil(per_size / max_batch)
        for key, count in stats.batches_per_bucket.items():
            assert count <= math.ceil(per_size / max_batch), key
        assert stats.rows_packed == 12 and stats.mean_batch_size == 4.0
        assert stats.submitted == 12
        assert stats.completed == 12
        assert stats.failed == 0

        for request, (updates, result) in zip(requests, pairs):
            # Streaming: >= 1 boundary update before the final result, and
            # best-so-far streams are monotone non-increasing.
            assert len(updates) == ITERATIONS // K
            bests = [u.best_length for u in updates]
            assert bests == sorted(bests, reverse=True) or all(
                a >= b for a, b in zip(bests, bests[1:])
            )
            assert result.best_length == bests[-1]

            # Finals: bit-identical to a solo run with the same seed/params.
            solo = AntSystem(request.instance, request.params).run(ITERATIONS)
            assert result.best_length == solo.best_length
            np.testing.assert_array_equal(result.best_tour, solo.best_tour)
            assert (
                result.iteration_best_lengths == solo.iteration_best_lengths
            )

    def test_heterogeneous_params_share_a_bucket(self):
        """Same geometry but different alpha/beta/rho/seed rows pack into
        one batch and still match their solo references."""
        import dataclasses

        inst_a = uniform_instance(18, seed=5)
        inst_b = uniform_instance(18, seed=6)
        base = _params(3)
        combos = [
            (inst_a, dataclasses.replace(base, alpha=1.0, beta=2.0, rho=0.5)),
            (inst_b, dataclasses.replace(base, alpha=2.0, beta=3.0, rho=0.2, seed=9)),
            (inst_a, dataclasses.replace(base, alpha=0.5, beta=5.0, rho=0.9, seed=4)),
        ]
        requests = [
            SolveRequest(
                instance=inst, params=p, iterations=ITERATIONS, report_every=K
            )
            for inst, p in combos
        ]

        async def drive():
            async with SolveService(max_batch=3, max_wait=5.0) as service:
                handles = [await service.submit(r) for r in requests]
                results = await asyncio.gather(*(h.result() for h in handles))
                return results, service.stats

        results, stats = run_async(drive())
        assert stats.batches == 1 and stats.rows_packed == 3
        for (inst, p), result in zip(combos, results):
            solo = AntSystem(inst, p).run(ITERATIONS)
            assert result.best_length == solo.best_length
            np.testing.assert_array_equal(result.best_tour, solo.best_tour)


class TestTimeoutFlush:
    def test_partial_bucket_flushes_after_max_wait(self):
        inst = uniform_instance(14, seed=2)

        async def drive():
            async with SolveService(max_batch=8, max_wait=0.05) as service:
                handle = await service.submit(_request(inst, 7))
                result = await asyncio.wait_for(handle.result(), timeout=30)
                return result, service.stats

        result, stats = run_async(drive())
        assert stats.batches == 1 and stats.rows_packed == 1
        solo = AntSystem(inst, _params(7)).run(ITERATIONS)
        assert result.best_length == solo.best_length


class TestEarlyResolution:
    def test_target_length_resolves_early(self):
        inst = uniform_instance(16, seed=3)
        # Any positive tour length satisfies a huge target at boundary one.
        request = _request(inst, 5, iterations=40, target_length=10**9)

        async def drive():
            async with SolveService(max_batch=1, max_wait=0.01) as service:
                handle = await service.submit(request)
                ups = [u async for u in handle]
                result = await handle.result()
                return ups, result, service.stats

        ups, result, stats = run_async(drive())
        assert len(ups) >= 1
        assert result.iteration_best_lengths == []  # early snapshot, no trace
        assert stats.resolved_by_target == 1
        assert stats.completed == 0
        # The batch stopped early: fewer colony-iterations than the budget.
        assert stats.colony_iterations < 40

    def test_deadline_resolves_early_with_best_so_far(self):
        inst = uniform_instance(16, seed=4)
        # Deadline far below one boundary's wall time, but checked at the
        # first boundary: resolves there with the best-so-far.
        request = _request(inst, 6, iterations=40, deadline=1e-6)

        async def drive():
            async with SolveService(max_batch=1, max_wait=0.01) as service:
                handle = await service.submit(request)
                result = await handle.result()
                return result, service.stats

        result, stats = run_async(drive())
        assert result.best_length > 0
        assert stats.resolved_by_deadline == 1
        assert stats.colony_iterations < 40

    def test_deadline_rider_does_not_stop_patient_riders(self):
        inst_a = uniform_instance(16, seed=7)
        inst_b = uniform_instance(16, seed=8)
        hurried = _request(inst_a, 11, iterations=9, deadline=1e-6)
        patient = _request(inst_b, 12, iterations=9)

        async def drive():
            async with SolveService(max_batch=2, max_wait=5.0) as service:
                h1 = await service.submit(hurried)
                h2 = await service.submit(patient)
                r1 = await h1.result()
                r2 = await h2.result()
                return r1, r2, service.stats

        r1, r2, stats = run_async(drive())
        solo = AntSystem(inst_b, _params(12)).run(9)
        assert r2.best_length == solo.best_length  # patient rider unharmed
        assert r2.iteration_best_lengths == solo.iteration_best_lengths
        assert r1.iteration_best_lengths == []  # hurried rider resolved early
        assert stats.resolved_by_deadline == 1 and stats.completed == 1


class TestBackpressureAndDrain:
    def test_submit_nowait_overload(self):
        inst = uniform_instance(14, seed=9)

        async def drive():
            # max_wait large: requests sit queued, holding their slots.
            async with SolveService(
                max_batch=4, max_wait=30.0, max_pending=4
            ) as service:
                for i in range(3):
                    service.submit_nowait(_request(inst, 20 + i))
                # Slot 4 fills the bucket -> launches; slots stay held until
                # the batch resolves, so a 5th immediate submit overflows.
                service.submit_nowait(_request(inst, 23))
                with pytest.raises(ServiceOverloadedError):
                    service.submit_nowait(_request(inst, 24))

        run_async(drive())

    def test_submit_blocks_until_capacity_frees(self):
        inst = uniform_instance(14, seed=10)

        async def drive():
            async with SolveService(
                max_batch=2, max_wait=0.01, max_pending=2
            ) as service:
                h1 = await service.submit(_request(inst, 30))
                h2 = await service.submit(_request(inst, 31))
                # Full: this submit must suspend, then complete once the
                # in-flight batch resolves and releases slots.
                h3 = await asyncio.wait_for(
                    service.submit(_request(inst, 32)), timeout=30
                )
                await asyncio.gather(h1.result(), h2.result(), h3.result())
                return service.stats

        stats = run_async(drive())
        assert stats.submitted == 3
        assert stats.completed == 3

    def test_drain_flushes_queued_and_rejects_new(self):
        inst = uniform_instance(14, seed=11)

        async def drive():
            service = SolveService(max_batch=8, max_wait=30.0)
            await service.start()
            handle = await service.submit(_request(inst, 40))
            # Undersized bucket, far from its max_wait flush: drain must
            # run it anyway.
            await service.drain()
            assert handle.done
            result = await handle.result()
            with pytest.raises(ServiceClosedError):
                await service.submit(_request(inst, 41))
            with pytest.raises(ServiceClosedError):
                service.submit_nowait(_request(inst, 41))
            return result, service.stats

        result, stats = run_async(drive())
        assert stats.batches == 1
        solo = AntSystem(inst, _params(40)).run(ITERATIONS)
        assert result.best_length == solo.best_length

    def test_drain_is_idempotent_and_restart_refused(self):
        async def drive():
            service = SolveService()
            await service.start()
            await service.drain()
            await service.drain()
            with pytest.raises(ServiceClosedError):
                await service.start()

        run_async(drive())


class TestStatsSemantics:
    def test_throughput_derives_from_batch_level_wall(self, sized_instances):
        """Service stats must use BatchRunResult.wall_seconds sums, never
        summed per-row shares (the satellite regression)."""
        requests = [
            _request(inst, 50 + i)
            for i, inst in enumerate(sized_instances[16])
        ]

        async def drive():
            async with SolveService(max_batch=2, max_wait=5.0) as service:
                handles = [await service.submit(r) for r in requests]
                results = await asyncio.gather(*(h.result() for h in handles))
                return results, service.stats

        results, stats = run_async(drive())
        assert stats.batches == 2
        # Per-row shares: each row reports batch_wall / B, so summing all
        # rows of all batches reconstructs the engine wall exactly...
        row_share_sum = sum(r.wall_seconds for r in results)
        assert row_share_sum == pytest.approx(stats.engine_wall_seconds)
        # ... and the throughput derives from the batch-level number.
        assert stats.colony_iterations == len(requests) * ITERATIONS
        assert stats.colonies_per_second == pytest.approx(
            stats.colony_iterations / stats.engine_wall_seconds
        )
        snap = stats.snapshot()
        assert snap["batches"] == 2 and snap["mean_batch_size"] == 2.0

    def test_failed_batch_rejects_all_riders(self, monkeypatch):
        inst = uniform_instance(14, seed=12)

        async def drive():
            async with SolveService(max_batch=1, max_wait=0.01) as service:
                def boom(key, pack):
                    raise RuntimeError("engine exploded")

                monkeypatch.setattr(service, "_run_batch_sync", boom)
                handle = await service.submit(_request(inst, 60))
                with pytest.raises(ServeError):
                    await handle.result()
                # The stream terminates instead of hanging.
                ups = [u async for u in handle]
                return ups, service.stats

        ups, stats = run_async(drive())
        assert ups == []
        assert stats.failed == 1


class TestAsyncClient:
    def test_client_solve_and_stream(self):
        inst = uniform_instance(16, seed=13)

        async def drive():
            async with SolveService(max_batch=1, max_wait=0.01) as service:
                client = AsyncSolveClient(service)
                handle = await client.solve(
                    inst, _params(8), iterations=ITERATIONS, report_every=K
                )
                ups = [u async for u in handle]
                result = await handle.result()
                direct = await client.solve_and_wait(
                    inst,
                    params=_params(8),
                    iterations=ITERATIONS,
                    report_every=K,
                )
                return ups, result, direct

        ups, result, direct = run_async(drive())
        assert len(ups) == ITERATIONS // K
        solo = AntSystem(inst, _params(8)).run(ITERATIONS)
        assert result.best_length == solo.best_length
        assert direct.best_length == solo.best_length
