"""Mixed-variant request bursts through the micro-batching service.

The serve-side half of the variant redesign: ``BatchKey`` carries the
variant, so same-geometry requests running different algorithms bucket
separately, each packed batch runs one
:class:`~repro.core.variant.VariantStrategy`, and every rider's final is
bit-identical to its solo reference run.
"""

from __future__ import annotations

import pytest

from repro.core import ACOParams, AntSystem
from repro.core.reference import (
    ReferenceAntColonySystem,
    ReferenceMaxMinAntSystem,
)
from repro.errors import ACOConfigError, ServeError
from repro.experiments.harness import run_service
from repro.serve import SolveRequest
from repro.serve.protocol import decode_request, encode_request
from repro.tsp import uniform_instance

ITERATIONS = 4


def _solo_best(request: SolveRequest) -> int:
    if request.variant == "acs":
        return ReferenceAntColonySystem(
            request.instance, request.params
        ).run(request.iterations).best_length
    if request.variant == "mmas":
        return ReferenceMaxMinAntSystem(
            request.instance, request.params
        ).run(request.iterations).best_length
    return AntSystem(request.instance, request.params).run(
        request.iterations
    ).best_length


class TestVariantBucketing:
    def test_variant_splits_the_bucket(self):
        inst = uniform_instance(14, seed=31)
        base = dict(instance=inst, params=ACOParams(seed=1, nn=7), iterations=5)
        a = SolveRequest(**base)
        b = SolveRequest(**base, variant="acs")
        c = SolveRequest(**base, variant="mmas")
        assert a.bucket_key.variant == "as"
        assert len({a.bucket_key, b.bucket_key, c.bucket_key}) == 3

    def test_unknown_variant_rejected(self):
        inst = uniform_instance(12, seed=32)
        with pytest.raises(ACOConfigError, match="variant"):
            SolveRequest(instance=inst, variant="acs2")

    def test_owned_kernel_selections_rejected_not_ignored(self):
        """A variant-owned kernel field is an error response, never a
        silently ignored (and bucket-splitting) no-op."""
        inst = uniform_instance(12, seed=37)
        with pytest.raises(ACOConfigError, match="construction"):
            SolveRequest(instance=inst, variant="acs", construction=5)
        with pytest.raises(ACOConfigError, match="pheromone"):
            SolveRequest(instance=inst, variant="mmas", pheromone=2)
        # Explicitly spelling out the defaults stays compatible, and mmas
        # legitimately composes with any construction kernel.
        SolveRequest(instance=inst, variant="acs", construction=8, pheromone=1)
        SolveRequest(instance=inst, variant="mmas", construction=4)

    def test_mixed_variant_burst_packs_per_variant(self):
        """Six same-geometry requests, two per variant, max_batch=2: the
        service must pack exactly one batch per variant and resolve every
        rider bit-identical to its solo reference."""
        inst = uniform_instance(14, seed=33)
        requests = [
            SolveRequest(
                instance=inst,
                params=ACOParams(seed=10 + i, nn=7),
                iterations=ITERATIONS,
                variant=variant,
            )
            for variant in ("as", "acs", "mmas")
            for i in range(2)
        ]
        load = run_service(requests, max_batch=2, max_wait=5.0)
        assert load.stats.batches == 3, load.stats.snapshot()
        assert load.stats.batches_per_variant == {"as": 1, "acs": 1, "mmas": 1}
        keys = {key.variant for key in load.stats.batches_per_bucket}
        assert keys == {"as", "acs", "mmas"}
        for request, result in zip(requests, load.results):
            assert result.best_length == _solo_best(request), request.variant

    def test_variant_streams_monotone(self):
        inst = uniform_instance(16, seed=34)
        requests = [
            SolveRequest(
                instance=inst,
                params=ACOParams(seed=s, nn=7),
                iterations=6,
                report_every=2,
                variant="mmas",
            )
            for s in (1, 2, 3)
        ]
        load = run_service(requests, max_batch=3, max_wait=5.0)
        for updates in load.updates:
            bests = [u.best_length for u in updates]
            assert bests and all(a >= b for a, b in zip(bests, bests[1:]))


class TestVariantWire:
    def test_roundtrip_preserves_variant(self):
        inst = uniform_instance(12, seed=35)
        request = SolveRequest(
            instance=inst, iterations=3, variant="mmas"
        )
        line = encode_request(request, "r7")
        req_id, clone = decode_request(line, default_id="x")
        assert req_id == "r7"
        assert clone.variant == "mmas"
        assert clone.bucket_key == request.bucket_key

    def test_variant_defaults_to_as(self):
        inst = uniform_instance(12, seed=36)
        line = encode_request(SolveRequest(instance=inst), "r1")
        _, clone = decode_request(line, default_id="x")
        assert clone.variant == "as"

    def test_unknown_variant_becomes_error_response(self):
        import json

        payload = {
            "id": "bad",
            "instance": {
                "coords": [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]],
            },
            "variant": "antsys",
        }
        with pytest.raises((ServeError, ACOConfigError)) as err:
            decode_request(json.dumps(payload), default_id="x")
        # The connection handler addresses its error line with this id.
        assert getattr(err.value, "req_id", None) == "bad"
