"""Serve-tier failure isolation: retries, timeouts, shedding, health.

Chaos scenarios driven by injected faults live in :mod:`tests.chaos`;
this file pins the service-level policy surface — retry budgets and
validation, hard-timeout semantics vs. the soft deadline, priority
shedding through ``submit_nowait``, and the health probe.  Plain
``asyncio.run`` throughout (no pytest-asyncio in tier-1).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core import ACOParams
from repro.errors import (
    ACOConfigError,
    ServeError,
    ServeTimeoutError,
    ServiceOverloadedError,
)
from repro.serve import FaultPlan, SolveRequest, SolveService
from repro.tsp import uniform_instance


def _request(seed: int, **kwargs) -> SolveRequest:
    kwargs.setdefault("iterations", 4)
    kwargs.setdefault("report_every", 2)
    return SolveRequest(
        instance=uniform_instance(12, seed=700 + seed),
        params=ACOParams(seed=seed, nn=7),
        **kwargs,
    )


class TestRequestValidation:
    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ACOConfigError):
            _request(1, timeout=0.0)
        with pytest.raises(ACOConfigError):
            _request(1, timeout=-1.0)

    def test_priority_not_part_of_bucket_key(self):
        a = _request(1, priority=0)
        b = _request(1, priority=9)
        assert a.bucket_key == b.bucket_key

    def test_service_rejects_negative_retry_budget(self):
        with pytest.raises(ACOConfigError):
            SolveService(retry_budget=-1)
        with pytest.raises(ACOConfigError):
            SolveService(retry_backoff=-0.1)


class TestHardTimeout:
    def test_expired_before_launch_fails_with_timeout(self):
        """A request whose budget is gone before its batch launches is
        rejected at the flush boundary, never run."""

        async def main():
            async with SolveService(
                max_batch=4, max_wait=0.2, workers=1
            ) as service:
                handle = await service.submit(_request(1, timeout=1e-6))
                with pytest.raises(ServeTimeoutError):
                    await handle.result()
                snap = service.stats.snapshot()
            assert snap["requests_timed_out"] == 1
            assert snap["completed"] == 0

        asyncio.run(main())

    def test_timeout_does_not_sink_co_batched_riders(self):
        async def main():
            async with SolveService(
                max_batch=2, max_wait=0.05, workers=1
            ) as service:
                doomed = await service.submit(_request(1, timeout=1e-6))
                rider = await service.submit(_request(2))
                with pytest.raises(ServeTimeoutError):
                    await doomed.result()
                result = await rider.result()
            assert result.best_length > 0

        asyncio.run(main())

    def test_deadline_still_resolves_best_so_far(self):
        """The soft deadline keeps its resolve-with-partial contract —
        distinct from the hard timeout's failure contract."""

        async def main():
            async with SolveService(
                max_batch=1, max_wait=0.0, workers=1
            ) as service:
                handle = await service.submit(
                    _request(3, iterations=400, report_every=2, deadline=0.05)
                )
                result = await handle.result()
            assert result.best_length > 0

        asyncio.run(main())


class TestLoadShedding:
    @staticmethod
    def _full_service() -> SolveService:
        # max_wait is huge so queued requests stay queued (sheddable);
        # max_pending == max_batch == 2 makes capacity trivial to fill.
        return SolveService(
            max_batch=2, max_wait=60.0, workers=1, max_pending=2
        )

    def test_sheds_lowest_priority_for_a_higher_one(self):
        async def main():
            async with self._full_service() as service:
                low = service.submit_nowait(_request(1, priority=0))
                # Capacity is now 2/2 queued (bucket below max_batch of 2?
                # no — 2 fills the bucket; use distinct shapes instead).
                high = service.submit_nowait(
                    _request(2, iterations=6, priority=5)
                )
                vip = service.submit_nowait(
                    _request(3, iterations=8, priority=9)
                )
                with pytest.raises(ServiceOverloadedError):
                    await low.result()
                snap = service.stats.snapshot()
                assert snap["requests_shed"] == 1
                # Drain completes the two survivors.
            assert (await high.result()).best_length > 0
            assert (await vip.result()).best_length > 0

        asyncio.run(main())

    def test_refuses_when_nothing_outranked_is_queued(self):
        async def main():
            async with self._full_service() as service:
                service.submit_nowait(_request(1, iterations=4, priority=5))
                service.submit_nowait(_request(2, iterations=6, priority=5))
                with pytest.raises(ServiceOverloadedError):
                    service.submit_nowait(_request(3, iterations=8, priority=5))
                snap = service.stats.snapshot()
                assert snap["requests_shed"] == 0

        asyncio.run(main())

    def test_sheds_youngest_among_equal_priority(self):
        async def main():
            async with self._full_service() as service:
                older = service.submit_nowait(_request(1, iterations=4))
                await asyncio.sleep(0.01)
                younger = service.submit_nowait(_request(2, iterations=6))
                service.submit_nowait(_request(3, iterations=8, priority=1))
                with pytest.raises(ServiceOverloadedError):
                    await younger.result()
                assert not older.done

        asyncio.run(main())


class TestRetryPolicy:
    def test_jittered_backoff_schedule_is_seeded(self):
        """Same jitter seed => same backoff schedule (reproducible chaos)."""
        import random

        def schedule(seed):
            rng = random.Random(seed)
            return [
                0.05 * (2**attempt) * (1.0 + rng.random())
                for attempt in range(4)
            ]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_zero_budget_surfaces_first_failure(self):
        async def main():
            plan = FaultPlan(fail_batches=(0,))
            async with SolveService(
                max_batch=2,
                max_wait=0.01,
                workers=1,
                retry_budget=0,
                retry_backoff=0.0,
                faults=plan,
            ) as service:
                handle = await service.submit(_request(1))
                with pytest.raises(ServeError) as err:
                    await handle.result()
                assert "batch execution failed" in str(err.value)
                snap = service.stats.snapshot()
            assert snap["failed"] == 1
            assert snap["requests_retried"] == 0

        asyncio.run(main())


class TestHealthProbe:
    def test_idle_service_reports_healthy(self):
        async def main():
            async with SolveService(max_batch=2, workers=2) as service:
                health = service.health()
            assert health["accepting"] is True
            assert health["queued"] == 0
            assert health["inflight_batches"] == 0
            assert health["workers"] == 2
            assert health["workers_alive"] == 2
            assert health["last_batch_age_seconds"] is None

        asyncio.run(main())

    def test_health_reflects_completed_work_and_drain(self):
        async def main():
            service = SolveService(max_batch=1, max_wait=0.0, workers=1)
            async with service:
                handle = await service.submit(_request(1))
                await handle.result()
                live = service.health()
                assert live["last_batch_age_seconds"] is not None
                assert live["slots_taken"] == 0
            after = service.health()
            assert after["accepting"] is False

        asyncio.run(main())

    def test_client_health_mirrors_service(self):
        from repro.serve import AsyncSolveClient

        async def main():
            async with SolveService(max_batch=2) as service:
                client = AsyncSolveClient(service)
                assert client.health() == service.health()

        asyncio.run(main())
