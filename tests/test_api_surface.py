"""API-surface and error-hierarchy tests.

Downstream users import from ``repro``/subpackage roots; these tests pin the
public surface so refactors cannot silently drop it.
"""

from __future__ import annotations

import pytest

import repro
import repro.errors as errors


class TestTopLevelApi:
    EXPECTED = {
        "ACOParams",
        "ACSParams",
        "ArrayBackend",
        "available_backends",
        "get_backend",
        "AntColonySystem",
        "AntSystem",
        "MaxMinAntSystem",
        "MMASParams",
        "RunResult",
        "ChoiceKernel",
        "make_construction",
        "make_pheromone",
        "DeviceSpec",
        "TESLA_C1060",
        "TESLA_M2050",
        "DEVICES",
        "TSPInstance",
        "load_instance",
        "paper_suite",
        "parse_tsplib",
        "uniform_instance",
    }

    def test_all_exports_present(self):
        for name in self.EXPECTED:
            assert hasattr(repro, name), f"repro.{name} missing"
            assert name in repro.__all__

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_subpackage_roots_import(self):
        import repro.backend
        import repro.core
        import repro.experiments
        import repro.rng
        import repro.seq
        import repro.simt
        import repro.tsp
        import repro.util  # noqa: F401

    def test_docstring_quickstart_runs(self):
        """The package docstring's example must actually work."""
        from repro import AntSystem, load_instance

        colony = AntSystem(load_instance("att48"), construction=8, pheromone=1)
        result = colony.run(iterations=2)
        assert result.best_length > 0


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            if name == "RunInterrupted":
                # Deliberate outlier: it must stay catchable as a plain
                # KeyboardInterrupt so Ctrl-C semantics survive for callers
                # that never heard of it (see its docstring).
                assert issubclass(cls, KeyboardInterrupt)
                assert not issubclass(cls, errors.ReproError)
                continue
            if name == "WorkerKilledError":
                # Second deliberate outlier: a simulated worker death must
                # punch through bare `except Exception` recovery blocks the
                # way a real SIGKILL would, so it derives from BaseException
                # (see its docstring).  The retry machinery catches it by
                # name.
                assert issubclass(cls, BaseException)
                assert not issubclass(cls, Exception)
                assert not issubclass(cls, errors.ReproError)
                continue
            assert issubclass(cls, errors.ReproError)

    def test_serve_errors_group(self):
        assert issubclass(errors.ServiceClosedError, errors.ServeError)
        assert issubclass(errors.ServiceOverloadedError, errors.ServeError)
        assert issubclass(errors.ServeTimeoutError, errors.ServeError)
        assert issubclass(errors.InjectedFaultError, errors.ServeError)
        assert issubclass(errors.ServeError, errors.ReproError)

    def test_subsystem_groups(self):
        assert issubclass(errors.TSPLIBFormatError, errors.TSPError)
        assert issubclass(errors.UnsupportedEdgeWeightError, errors.TSPLIBFormatError)
        assert issubclass(errors.InvalidTourError, errors.TSPError)
        assert issubclass(errors.LaunchConfigError, errors.SimtError)
        assert issubclass(errors.OccupancyError, errors.SimtError)
        assert issubclass(errors.MemoryModelError, errors.SimtError)
        assert issubclass(errors.DeviceFeatureError, errors.SimtError)
        assert issubclass(errors.CalibrationError, errors.ExperimentError)

    def test_format_error_carries_line_number(self):
        err = errors.TSPLIBFormatError("bad token", line_no=17)
        assert "line 17" in str(err)
        assert err.line_no == 17

    def test_single_except_catches_everything(self):
        from repro.core import ACOParams

        with pytest.raises(errors.ReproError):
            ACOParams(rho=2.0)
        with pytest.raises(errors.ReproError):
            from repro.tsp import load_instance

            load_instance("nonexistent99")


class TestRegistriesConsistent:
    def test_construction_and_pheromone_cover_paper_rows(self):
        from repro.core import CONSTRUCTION_VERSIONS, PHEROMONE_VERSIONS

        assert sorted(CONSTRUCTION_VERSIONS) == list(range(1, 9))
        assert sorted(PHEROMONE_VERSIONS) == list(range(1, 6))

    def test_devices_registry(self):
        assert set(repro.DEVICES) == {"c1060", "m2050"}
