"""Park-Miller minimal-standard LCG — the paper's "device function" RNG.

The sequential ACOTSP code draws its uniforms from ``ran01``, a Park-Miller
(Lehmer) generator with multiplier 16807 modulo the Mersenne prime 2^31 - 1,
evaluated with Schrage's trick to avoid 64-bit overflow in 32-bit C.  The
paper's kernel version 3 replaces CURAND with this same generator compiled as
a device function and reports a 10-20 % speed-up ("Although randomness could,
in principle, be compromised, this function is used by the sequential code").

We implement the exact recurrence vectorised over streams; see
:func:`lcg_step` for why the direct 64-bit modular form replaces Schrage's
decomposition without changing a single output.
"""

from __future__ import annotations

import numpy as np

from repro.rng.streams import DeviceRNG, split_seed

__all__ = ["ParkMillerLCG", "LCG_IA", "LCG_IM", "lcg_step"]

LCG_IA = 16807
LCG_IM = 2147483647  # 2**31 - 1


def lcg_step(state: np.ndarray, xp=np) -> np.ndarray:
    """One Park-Miller step, vectorised.

    The C code needs Schrage's decomposition (``k = s / IQ; s = IA * (s - k *
    IQ) - IR * k``) because ``IA * s`` overflows 32-bit arithmetic; in int64
    the product is at most ``16807 * (2^31 - 2) < 2^46``, so ``(IA * s) mod
    IM`` can be computed directly and yields the *identical* value (that
    identity is exactly what Schrage's trick proves).  Because ``IM = 2^31 -
    1`` is a Mersenne prime, the modulo itself reduces to mask-and-shift
    folding (``x mod (2^31 - 1) == (x & IM) + (x >> 31)``, folded once more
    into ``[0, IM)``) — no integer division anywhere, which matters when the
    simulator advances millions of streams per construction step.

    Parameters
    ----------
    state:
        ``int64`` array of current states, each in ``[1, IM - 1]``.
    xp:
        Array module the state lives in (numpy by default; a backend's
        ``xp`` for device-resident streams).  Integer arithmetic is exact,
        so every branch returns identical values on every backend.

    Returns
    -------
    numpy.ndarray
        Next states, same shape/dtype, each in ``[1, IM - 1]``.
    """
    if state.size < 8192:
        # Few streams: ufunc-call overhead dominates, so the two-op direct
        # modulo wins despite the hardware divide.
        return (state * LCG_IA) % LCG_IM
    x = state * LCG_IA  # < 2^46, exact in int64
    x = (x & LCG_IM) + (x >> 31)  # < 2^31 + 2^15: at most one more fold
    if xp is np:
        np.subtract(x, LCG_IM, out=x, where=x >= LCG_IM)
    else:
        x -= (x >= LCG_IM) * LCG_IM
    return x


class ParkMillerLCG(DeviceRNG):
    """Stream-parallel Park-Miller generator (ACOTSP's ``ran01``).

    Each stream's state is a positive 31-bit integer; zero is invalid (it is
    a fixed point of the recurrence), so seeding maps into ``[1, IM - 1]``.

    Examples
    --------
    >>> rng = ParkMillerLCG(n_streams=4, seed=42)
    >>> u = rng.uniform()
    >>> u.shape, bool((u >= 0).all() and (u < 1).all())
    ((4,), True)
    """

    cost_kind = "lcg"

    def __init__(self, n_streams: int, seed: int, backend=None) -> None:
        super().__init__(n_streams=n_streams, seed=seed, backend=backend)
        self._state = self.backend.from_host(self._derive_states(seed, n_streams))
        # Block-fill caches (lazily sized: streams can grow when from_seeds
        # installs a batched state vector).
        self._powers: dict[int, np.ndarray] = {}
        self._iblock: np.ndarray | None = None
        self._ifold: np.ndarray | None = None
        self._shift: np.ndarray | None = None
        self._mask: np.ndarray | None = None

    @classmethod
    def _derive_states(cls, seed: int, n_streams: int) -> np.ndarray:
        sub = split_seed(seed, n_streams)
        # Map 64-bit sub-seeds into the valid state range [1, IM-1].
        return (sub % np.uint64(LCG_IM - 1)).astype(np.int64) + 1

    def _load_states(self, per_seed_states: list) -> None:
        self._state = self.backend.from_host(np.concatenate(per_seed_states))
        # The stream count just changed: drop block-fill scratch sized for
        # the old one (powers are per-rounds, stream-count independent).
        self._iblock = self._ifold = self._shift = self._mask = None

    def _next_raw(self) -> np.ndarray:
        self._state = lcg_step(self._state, xp=self.backend.xp)
        return self._state

    def _max_raw(self) -> float:
        return float(LCG_IM)

    #: block elements up to which the jump-ahead outer product beats
    #: row-by-row stepping (beyond it the 2x int64 scratch falls out of
    #: cache and every fold pass streams from DRAM; measured crossover)
    JUMP_AHEAD_MAX_ELEMENTS = 1 << 16

    def uniform_block(self, rounds: int, out: np.ndarray | None = None) -> np.ndarray:
        """Bulk fill, bit-identical to ``rounds`` sequential :meth:`uniform` calls.

        Cache-sized blocks use **jump-ahead**: a Lehmer generator has no
        additive term, so the ``r``-th successor of state ``s`` is just
        ``s * IA^r mod IM`` — the whole ``(rounds, n_streams)`` block is one
        outer product of the state vector with precomputed multiplier
        powers, reduced mod the Mersenne prime by three mask-and-shift
        folds.  ~12 block-wide operations replace ``rounds`` sequential
        vector steps — the same trick the paper's bulk-generation kernel
        (construction version 6) uses to fill its texture buffer at
        streaming rates.  Exactness: products are below ``(IM - 1)^2 <
        2^62`` (exact in int64), three ``(x & IM) + (x >> 31)`` folds fully
        reduce any such value, and valid states are never ``0 mod IM`` (IM
        is prime), so no fold can land on the ``IM``-fixed-point.

        Wider blocks would push the outer product's int64 scratch out of
        cache, so they step row by row in-place in the persistent state
        vector — :func:`lcg_step`'s folding, minus its per-step temporary
        allocations.
        """
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        xp = self.backend.xp
        if out is None:
            out = xp.empty((rounds, self.n_streams), dtype=np.float64)
        elif out.shape[0] < rounds or out.shape[1:] != (self.n_streams,):
            raise ValueError(
                f"out buffer {out.shape} cannot hold ({rounds}, {self.n_streams})"
            )
        block = out[:rounds]
        if rounds == 0:
            return block
        if rounds * self.n_streams <= self.JUMP_AHEAD_MAX_ELEMENTS:
            self._fill_jump_ahead(rounds, block, xp)
        elif xp is np:
            self._fill_rows_inplace(rounds, block)
        else:
            st = self._state
            for r in range(rounds):
                st = lcg_step(st, xp=xp)
                xp.true_divide(st, float(LCG_IM), out=block[r])
            self._state = st
        self.samples_drawn += rounds * self.n_streams
        return block

    def _fill_jump_ahead(self, rounds: int, block: np.ndarray, xp) -> None:
        """Outer-product fill of ``block[:rounds]`` with raw states."""
        powers = self._powers.get(rounds)
        if powers is None:
            powers = self.backend.from_host(
                np.array(
                    [pow(LCG_IA, r, LCG_IM) for r in range(1, rounds + 1)],
                    dtype=np.int64,
                )[:, None]
            )
            self._powers[rounds] = powers
        if (
            self._iblock is None
            or self._iblock.shape[0] < rounds
            or self._iblock.shape[1] != self.n_streams
        ):
            grow = (
                rounds
                if self._iblock is None or self._iblock.shape[1] != self.n_streams
                else max(rounds, self._iblock.shape[0]),
                self.n_streams,
            )
            self._iblock = xp.empty(grow, dtype=np.int64)
            self._ifold = xp.empty(grow, dtype=np.int64)
        x = self._iblock[:rounds]
        t = self._ifold[:rounds]
        xp.multiply(self._state[None, :], powers, out=x)  # < 2^62, exact
        for _ in range(3):
            xp.right_shift(x, 31, out=t)
            xp.bitwise_and(x, LCG_IM, out=x)
            xp.add(x, t, out=x)
        self._state = x[-1].copy()
        # Fused cast-and-divide: int64 -> float64 is exact below 2^31.
        xp.true_divide(x, float(LCG_IM), out=block)

    def _fill_rows_inplace(self, rounds: int, block: np.ndarray) -> None:
        """Row-by-row fill for wide streams, allocation-free (numpy only)."""
        st = self._state
        if self._shift is None or self._shift.shape != st.shape:
            self._shift = np.empty(st.shape, dtype=np.int64)
            self._mask = np.empty(st.shape, dtype=bool)
        shift, mask = self._shift, self._mask
        for r in range(rounds):
            # lcg_step's mask-and-shift folding, in place: the shift is
            # taken from the full product before the low bits are masked.
            np.multiply(st, LCG_IA, out=st)
            np.right_shift(st, 31, out=shift)
            np.bitwise_and(st, LCG_IM, out=st)
            np.add(st, shift, out=st)
            np.greater_equal(st, LCG_IM, out=mask)
            np.subtract(st, LCG_IM, out=st, where=mask)
            # Fused cast-and-divide into the row (one pass, bit-identical).
            np.true_divide(st, float(LCG_IM), out=block[r])

    @property
    def state(self) -> np.ndarray:
        """Copy of the per-stream states (for tests and checkpointing)."""
        return self._state.copy()

    def state_arrays(self) -> dict[str, np.ndarray]:
        return {"state": self.backend.to_host(self._state).copy()}

    def load_state_arrays(self, arrays: dict) -> None:
        state = np.asarray(arrays["state"], dtype=np.int64)
        self._check_state_shape(state, "state")
        if bool((state < 1).any()) or bool((state >= LCG_IM).any()):
            raise ValueError(
                f"LCG states must lie in [1, {LCG_IM - 1}]; checkpoint holds "
                "out-of-range values"
            )
        self._state = self.backend.from_host(state.copy())
