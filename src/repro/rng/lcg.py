"""Park-Miller minimal-standard LCG — the paper's "device function" RNG.

The sequential ACOTSP code draws its uniforms from ``ran01``, a Park-Miller
(Lehmer) generator with multiplier 16807 modulo the Mersenne prime 2^31 - 1,
evaluated with Schrage's trick to avoid 64-bit overflow in 32-bit C.  The
paper's kernel version 3 replaces CURAND with this same generator compiled as
a device function and reports a 10-20 % speed-up ("Although randomness could,
in principle, be compromised, this function is used by the sequential code").

We implement the exact recurrence (including Schrage's decomposition, so the
intermediate arithmetic stays within the ranges the C code uses) vectorised
over streams.
"""

from __future__ import annotations

import numpy as np

from repro.rng.streams import DeviceRNG, split_seed

__all__ = ["ParkMillerLCG", "LCG_IA", "LCG_IM", "lcg_step"]

LCG_IA = 16807
LCG_IM = 2147483647  # 2**31 - 1
_IQ = LCG_IM // LCG_IA  # 127773
_IR = LCG_IM % LCG_IA  # 2836


def lcg_step(state: np.ndarray) -> np.ndarray:
    """One Park-Miller step via Schrage's method, vectorised.

    Parameters
    ----------
    state:
        ``int64`` array of current states, each in ``[1, IM - 1]``.

    Returns
    -------
    numpy.ndarray
        Next states, same shape/dtype, each in ``[1, IM - 1]``.
    """
    k = state // _IQ
    nxt = LCG_IA * (state - k * _IQ) - _IR * k
    np.add(nxt, LCG_IM, out=nxt, where=nxt < 0)
    return nxt


class ParkMillerLCG(DeviceRNG):
    """Stream-parallel Park-Miller generator (ACOTSP's ``ran01``).

    Each stream's state is a positive 31-bit integer; zero is invalid (it is
    a fixed point of the recurrence), so seeding maps into ``[1, IM - 1]``.

    Examples
    --------
    >>> rng = ParkMillerLCG(n_streams=4, seed=42)
    >>> u = rng.uniform()
    >>> u.shape, bool((u >= 0).all() and (u < 1).all())
    ((4,), True)
    """

    cost_kind = "lcg"

    def __init__(self, n_streams: int, seed: int) -> None:
        super().__init__(n_streams=n_streams, seed=seed)
        sub = split_seed(seed, n_streams)
        # Map 64-bit sub-seeds into the valid state range [1, IM-1].
        self._state = (sub % np.uint64(LCG_IM - 1)).astype(np.int64) + 1

    def _next_raw(self) -> np.ndarray:
        self._state = lcg_step(self._state)
        return self._state

    def _max_raw(self) -> float:
        return float(LCG_IM)

    @property
    def state(self) -> np.ndarray:
        """Copy of the per-stream states (for tests and checkpointing)."""
        return self._state.copy()
