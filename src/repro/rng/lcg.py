"""Park-Miller minimal-standard LCG — the paper's "device function" RNG.

The sequential ACOTSP code draws its uniforms from ``ran01``, a Park-Miller
(Lehmer) generator with multiplier 16807 modulo the Mersenne prime 2^31 - 1,
evaluated with Schrage's trick to avoid 64-bit overflow in 32-bit C.  The
paper's kernel version 3 replaces CURAND with this same generator compiled as
a device function and reports a 10-20 % speed-up ("Although randomness could,
in principle, be compromised, this function is used by the sequential code").

We implement the exact recurrence vectorised over streams; see
:func:`lcg_step` for why the direct 64-bit modular form replaces Schrage's
decomposition without changing a single output.
"""

from __future__ import annotations

import numpy as np

from repro.rng.streams import DeviceRNG, split_seed

__all__ = ["ParkMillerLCG", "LCG_IA", "LCG_IM", "lcg_step"]

LCG_IA = 16807
LCG_IM = 2147483647  # 2**31 - 1


def lcg_step(state: np.ndarray, xp=np) -> np.ndarray:
    """One Park-Miller step, vectorised.

    The C code needs Schrage's decomposition (``k = s / IQ; s = IA * (s - k *
    IQ) - IR * k``) because ``IA * s`` overflows 32-bit arithmetic; in int64
    the product is at most ``16807 * (2^31 - 2) < 2^46``, so ``(IA * s) mod
    IM`` can be computed directly and yields the *identical* value (that
    identity is exactly what Schrage's trick proves).  Because ``IM = 2^31 -
    1`` is a Mersenne prime, the modulo itself reduces to mask-and-shift
    folding (``x mod (2^31 - 1) == (x & IM) + (x >> 31)``, folded once more
    into ``[0, IM)``) — no integer division anywhere, which matters when the
    simulator advances millions of streams per construction step.

    Parameters
    ----------
    state:
        ``int64`` array of current states, each in ``[1, IM - 1]``.
    xp:
        Array module the state lives in (numpy by default; a backend's
        ``xp`` for device-resident streams).  Integer arithmetic is exact,
        so every branch returns identical values on every backend.

    Returns
    -------
    numpy.ndarray
        Next states, same shape/dtype, each in ``[1, IM - 1]``.
    """
    if state.size < 8192:
        # Few streams: ufunc-call overhead dominates, so the two-op direct
        # modulo wins despite the hardware divide.
        return (state * LCG_IA) % LCG_IM
    x = state * LCG_IA  # < 2^46, exact in int64
    x = (x & LCG_IM) + (x >> 31)  # < 2^31 + 2^15: at most one more fold
    if xp is np:
        np.subtract(x, LCG_IM, out=x, where=x >= LCG_IM)
    else:
        x -= (x >= LCG_IM) * LCG_IM
    return x


class ParkMillerLCG(DeviceRNG):
    """Stream-parallel Park-Miller generator (ACOTSP's ``ran01``).

    Each stream's state is a positive 31-bit integer; zero is invalid (it is
    a fixed point of the recurrence), so seeding maps into ``[1, IM - 1]``.

    Examples
    --------
    >>> rng = ParkMillerLCG(n_streams=4, seed=42)
    >>> u = rng.uniform()
    >>> u.shape, bool((u >= 0).all() and (u < 1).all())
    ((4,), True)
    """

    cost_kind = "lcg"

    def __init__(self, n_streams: int, seed: int, backend=None) -> None:
        super().__init__(n_streams=n_streams, seed=seed, backend=backend)
        self._state = self.backend.from_host(self._derive_states(seed, n_streams))

    @classmethod
    def _derive_states(cls, seed: int, n_streams: int) -> np.ndarray:
        sub = split_seed(seed, n_streams)
        # Map 64-bit sub-seeds into the valid state range [1, IM-1].
        return (sub % np.uint64(LCG_IM - 1)).astype(np.int64) + 1

    def _load_states(self, per_seed_states: list) -> None:
        self._state = self.backend.from_host(np.concatenate(per_seed_states))

    def _next_raw(self) -> np.ndarray:
        self._state = lcg_step(self._state, xp=self.backend.xp)
        return self._state

    def _max_raw(self) -> float:
        return float(LCG_IM)

    @property
    def state(self) -> np.ndarray:
        """Copy of the per-stream states (for tests and checkpointing)."""
        return self._state.copy()
