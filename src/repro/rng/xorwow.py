"""XORWOW generator — CURAND's default engine, standing in for the library RNG.

The baseline kernels in the paper draw their uniforms from the NVIDIA CURAND
library, whose default pseudo-random engine is Marsaglia's XORWOW: a 160-bit
xorshift state plus a Weyl counter (period ~2^192 - 2^32).  Version 3 of the
tour-construction study removes CURAND in favour of the LCG device function;
the observed 10-20 % gain is a *cost* difference, not a behavioural one, so we
reproduce XORWOW exactly (per Marsaglia, "Xorshift RNGs", JSS 2003) and let the
cost model charge it more per sample.
"""

from __future__ import annotations

import numpy as np

from repro.rng.streams import DeviceRNG, split_seed

__all__ = ["XorwowRNG"]

_WEYL = np.uint32(362437)
_TWO32 = float(2**32)


class XorwowRNG(DeviceRNG):
    """Stream-parallel XORWOW (the CURAND default engine).

    State per stream: five 32-bit xorshift words ``x, y, z, w, v`` plus the
    Weyl counter ``d``.  The update is::

        t = x ^ (x >> 2);  x=y; y=z; z=w; w=v
        v = (v ^ (v << 4)) ^ (t ^ (t << 1))
        d += 362437
        output = v + d

    Examples
    --------
    >>> rng = XorwowRNG(n_streams=2, seed=7)
    >>> rng.uniform().shape
    (2,)
    """

    cost_kind = "curand"

    def __init__(self, n_streams: int, seed: int, backend=None) -> None:
        super().__init__(n_streams=n_streams, seed=seed, backend=backend)
        self._x, self._y, self._z, self._w, self._v, self._d = (
            self.backend.from_host(word)
            for word in self._derive_states(seed, n_streams)
        )

    @classmethod
    def _derive_states(
        cls, seed: int, n_streams: int
    ) -> tuple[np.ndarray, ...]:
        # Six words of state per stream, derived independently.
        words = [
            (split_seed(seed + i, n_streams) & np.uint64(0xFFFFFFFF)).astype(
                np.uint32
            )
            for i in range(6)
        ]
        x, y, z, w, v, d = words
        # Guard against the all-zero xorshift state (probability ~2^-160, but
        # deterministic seeds deserve a deterministic guard).
        dead = (x | y | z | w | v) == 0
        x[dead] = np.uint32(1)
        return x, y, z, w, v, d

    def _load_states(self, per_seed_states: list) -> None:
        self._x, self._y, self._z, self._w, self._v, self._d = (
            self.backend.from_host(
                np.concatenate([states[i] for states in per_seed_states])
            )
            for i in range(6)
        )

    def _next_raw(self) -> np.ndarray:
        x, v = self._x, self._v
        t = x ^ (x >> np.uint32(2))
        self._x = self._y
        self._y = self._z
        self._z = self._w
        self._w = v
        v_new = (v ^ (v << np.uint32(4))) ^ (t ^ (t << np.uint32(1)))
        self._v = v_new
        self._d = self._d + _WEYL
        return v_new + self._d

    def _max_raw(self) -> float:
        return _TWO32

    @property
    def state(self) -> tuple[np.ndarray, ...]:
        """Copies of the six per-stream state words (x, y, z, w, v, d)."""
        return (
            self._x.copy(),
            self._y.copy(),
            self._z.copy(),
            self._w.copy(),
            self._v.copy(),
            self._d.copy(),
        )

    _STATE_WORDS = ("x", "y", "z", "w", "v", "d")

    def state_arrays(self) -> dict[str, np.ndarray]:
        to_host = self.backend.to_host
        return {
            word: to_host(getattr(self, f"_{word}")).copy()
            for word in self._STATE_WORDS
        }

    def load_state_arrays(self, arrays: dict) -> None:
        words = []
        for word in self._STATE_WORDS:
            arr = np.asarray(arrays[word], dtype=np.uint32)
            self._check_state_shape(arr, word)
            words.append(arr)
        for word, arr in zip(self._STATE_WORDS, words):
            setattr(self, f"_{word}", self.backend.from_host(arr.copy()))
