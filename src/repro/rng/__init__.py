"""Random-number generation substrate.

The paper compares two RNG strategies for the tour-construction kernel:

* the NVIDIA **CURAND** library (whose default engine is XORWOW), used by the
  baseline kernels, and
* a small **device function** — the same linear-congruential generator the
  sequential ACOTSP code uses — which gave a further 10-20 % speed-up
  (Table II, version 3) at the cost of weaker randomness guarantees.

Both are implemented here for real, deterministically seeded, and vectorised
across independent per-thread streams so the simulated kernels can consume
thousands of streams in lockstep exactly as the GPU would.
"""

from __future__ import annotations

from repro.rng.lcg import LCG_IA, LCG_IM, ParkMillerLCG
from repro.rng.streams import (
    BlockedDraws,
    DeviceRNG,
    StepDraws,
    make_draws,
    split_seed,
)
from repro.rng.xorwow import XorwowRNG

__all__ = [
    "DeviceRNG",
    "BlockedDraws",
    "StepDraws",
    "ParkMillerLCG",
    "XorwowRNG",
    "split_seed",
    "make_draws",
    "LCG_IA",
    "LCG_IM",
    "make_rng",
    "make_batched_rng",
]

_GENERATORS = {
    "lcg": ParkMillerLCG,
    "xorwow": XorwowRNG,
    "curand": XorwowRNG,  # alias: CURAND's default engine is XORWOW
}


def make_rng(kind: str, n_streams: int, seed: int, backend=None) -> DeviceRNG:
    """Instantiate a generator by name.

    Parameters
    ----------
    kind:
        ``"lcg"`` (device-function generator), ``"xorwow"`` or its alias
        ``"curand"``.
    n_streams:
        Number of independent per-thread streams.
    seed:
        Master seed; per-stream seeds are derived with :func:`split_seed`.
    backend:
        Array backend (name, instance or ``None`` for the resolved default)
        holding the per-stream state vector.
    """
    try:
        cls = _GENERATORS[kind]
    except KeyError:
        raise ValueError(
            f"unknown rng kind {kind!r}; expected one of {sorted(_GENERATORS)}"
        ) from None
    return cls(n_streams=n_streams, seed=seed, backend=backend)


def make_batched_rng(
    kind: str, streams_per_colony: int, seeds, backend=None
) -> DeviceRNG:
    """Batched generator: ``streams_per_colony`` streams per seed in ``seeds``.

    Stream block ``b`` reproduces exactly the sequence
    ``make_rng(kind, streams_per_colony, seeds[b])`` produces — the invariant
    the batched colony engine relies on for solo/batch equivalence.
    """
    try:
        cls = _GENERATORS[kind]
    except KeyError:
        raise ValueError(
            f"unknown rng kind {kind!r}; expected one of {sorted(_GENERATORS)}"
        ) from None
    return cls.from_seeds(streams_per_colony, seeds, backend=backend)
