"""Common interface for vectorised per-thread RNG streams.

A GPU kernel gives every thread its own generator state; the simulator mirrors
that with *stream-parallel* generators: one object holds ``n_streams``
independent states and every call to :meth:`DeviceRNG.uniform` advances all of
them by one step, returning a vector of samples.  This is both faithful to the
CUDA programming model and the numpy-friendly way to generate numbers for
thousands of simulated threads at once (see the vectorisation guidance in the
scientific-python optimisation notes).
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["DeviceRNG", "split_seed"]

_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)


def split_seed(seed: int, n: int) -> np.ndarray:
    """Derive ``n`` well-separated 64-bit sub-seeds from a master seed.

    Uses the SplitMix64 finaliser, the standard tool for seeding families of
    generators from a single integer without correlated low bits.

    Returns
    -------
    numpy.ndarray
        ``uint64`` array of shape ``(n,)``; entries are never zero (zero is a
        degenerate state for xorshift-family generators).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    z = (np.uint64(seed) + _SPLITMIX_GAMMA * np.arange(1, n + 1, dtype=np.uint64))
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    z = z ^ (z >> np.uint64(31))
    z[z == 0] = np.uint64(1)
    return z


class DeviceRNG(abc.ABC):
    """Abstract stream-parallel uniform generator.

    Subclasses implement :meth:`_next_raw`, producing one ``uint32``/``int32``
    word per stream; the base class converts to floats and tracks how many
    numbers have been drawn (the cost model charges per generated sample, and
    the charge differs between the library generator and the device LCG).

    A generator can also be built *batched* via :meth:`from_seeds`: the state
    vector then holds ``len(seeds)`` independently seeded colonies laid out
    contiguously, so batch row ``b`` of a ``uniform().reshape(B, -1)`` draw is
    bit-identical to the sequence a solo generator seeded with ``seeds[b]``
    produces.  This is the property that lets the batched engine reproduce
    solo runs exactly.
    """

    #: modelled device cost class, read by the SIMT cost model
    cost_kind: str = "lcg"

    def __init__(self, n_streams: int, seed: int, backend=None) -> None:
        from repro.backend import resolve_backend

        if n_streams <= 0:
            raise ValueError(f"n_streams must be positive, got {n_streams}")
        self.n_streams = int(n_streams)
        self.seed = int(seed)
        self.samples_drawn = 0
        #: where the per-stream state vector lives; seeds are always derived
        #: on the host (cheap, once) and uploaded through the backend.
        self.backend = resolve_backend(backend)

    # -- subclass interface -------------------------------------------------

    @abc.abstractmethod
    def _next_raw(self) -> np.ndarray:
        """Advance every stream one step; return ``(n_streams,)`` raw words."""

    @abc.abstractmethod
    def _max_raw(self) -> float:
        """Exclusive upper bound of the raw word range (for normalisation)."""

    @classmethod
    @abc.abstractmethod
    def _derive_states(cls, seed: int, n_streams: int):
        """Per-stream state for one seed — the exact ``__init__`` derivation."""

    @abc.abstractmethod
    def _load_states(self, per_seed_states: list) -> None:
        """Replace the state vector with concatenated per-seed states."""

    # -- batched construction ------------------------------------------------

    @classmethod
    def from_seeds(cls, streams_per_seed: int, seeds, backend=None) -> "DeviceRNG":
        """Batched generator: ``streams_per_seed`` streams per entry of ``seeds``.

        Stream block ``b`` (rows ``[b * streams_per_seed, (b + 1) *
        streams_per_seed)``) carries exactly the state a solo generator
        ``cls(streams_per_seed, seeds[b])`` would hold, so every draw,
        reshaped to ``(len(seeds), streams_per_seed)``, reproduces the solo
        sequences row for row.
        """
        seeds = [int(s) for s in seeds]
        if not seeds:
            raise ValueError("from_seeds needs at least one seed")
        if streams_per_seed <= 0:
            raise ValueError(
                f"streams_per_seed must be positive, got {streams_per_seed}"
            )
        # Construct with a single throwaway stream (deriving the full batch
        # state in __init__ would be immediately discarded), then install
        # the real per-seed state blocks.
        rng = cls(n_streams=1, seed=seeds[0], backend=backend)
        rng._load_states([cls._derive_states(s, streams_per_seed) for s in seeds])
        rng.n_streams = int(streams_per_seed) * len(seeds)
        return rng

    # -- public API ----------------------------------------------------------

    def uniform(self) -> np.ndarray:
        """One uniform ``float64`` in ``[0, 1)`` per stream, shape ``(n_streams,)``."""
        raw = self._next_raw()
        self.samples_drawn += self.n_streams
        # Single-pass cast-and-divide; bit-identical to astype + divide
        # (each element is exactly representable in float64 before dividing).
        return self.backend.xp.true_divide(raw, self._max_raw())

    def uniform_block(self, rounds: int) -> np.ndarray:
        """Draw ``rounds`` successive vectors; shape ``(rounds, n_streams)``.

        Streams advance in lockstep, so row ``r`` holds the ``r``-th draw of
        every stream — exactly the access pattern of a construction step that
        needs one number per (step, thread) pair.
        """
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        out = self.backend.xp.empty((rounds, self.n_streams), dtype=np.float64)
        for r in range(rounds):
            out[r] = self.uniform()
        return out

    def uniform_scalar(self, stream: int = 0) -> float:
        """Draw one vector but return only ``stream``'s sample.

        Convenience for scalar consumers (e.g. the sequential code path);
        note that *all* streams still advance, mirroring a warp in which one
        lane's value is used.
        """
        return float(self.uniform()[stream])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(n_streams={self.n_streams}, seed={self.seed}, "
            f"samples_drawn={self.samples_drawn})"
        )
