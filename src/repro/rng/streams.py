"""Common interface for vectorised per-thread RNG streams.

A GPU kernel gives every thread its own generator state; the simulator mirrors
that with *stream-parallel* generators: one object holds ``n_streams``
independent states and every call to :meth:`DeviceRNG.uniform` advances all of
them by one step, returning a vector of samples.  This is both faithful to the
CUDA programming model and the numpy-friendly way to generate numbers for
thousands of simulated threads at once (see the vectorisation guidance in the
scientific-python optimisation notes).
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["DeviceRNG", "BlockedDraws", "StepDraws", "make_draws", "split_seed"]

#: cap on elements pregenerated per ``uniform_block`` chunk by
#: :class:`BlockedDraws` (float64 words; 1 << 19 elements = 4 MiB) — bulk
#: generation amortises per-call overhead, but blocks must stay cache-sized:
#: measured on the batched engines, 4 MiB chunks beat 64 MiB ones by ~5-10 %
#: (a huge block is evicted before its tail rows are consumed).
MAX_BLOCK_ELEMENTS = 1 << 19

_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)


def split_seed(seed: int, n: int) -> np.ndarray:
    """Derive ``n`` well-separated 64-bit sub-seeds from a master seed.

    Uses the SplitMix64 finaliser, the standard tool for seeding families of
    generators from a single integer without correlated low bits.

    Returns
    -------
    numpy.ndarray
        ``uint64`` array of shape ``(n,)``; entries are never zero (zero is a
        degenerate state for xorshift-family generators).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    z = (np.uint64(seed) + _SPLITMIX_GAMMA * np.arange(1, n + 1, dtype=np.uint64))
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    z = z ^ (z >> np.uint64(31))
    z[z == 0] = np.uint64(1)
    return z


class DeviceRNG(abc.ABC):
    """Abstract stream-parallel uniform generator.

    Subclasses implement :meth:`_next_raw`, producing one ``uint32``/``int32``
    word per stream; the base class converts to floats and tracks how many
    numbers have been drawn (the cost model charges per generated sample, and
    the charge differs between the library generator and the device LCG).

    A generator can also be built *batched* via :meth:`from_seeds`: the state
    vector then holds ``len(seeds)`` independently seeded colonies laid out
    contiguously, so batch row ``b`` of a ``uniform().reshape(B, -1)`` draw is
    bit-identical to the sequence a solo generator seeded with ``seeds[b]``
    produces.  This is the property that lets the batched engine reproduce
    solo runs exactly.
    """

    #: modelled device cost class, read by the SIMT cost model
    cost_kind: str = "lcg"

    def __init__(self, n_streams: int, seed: int, backend=None) -> None:
        from repro.backend import resolve_backend

        if n_streams <= 0:
            raise ValueError(f"n_streams must be positive, got {n_streams}")
        self.n_streams = int(n_streams)
        self.seed = int(seed)
        self.samples_drawn = 0
        #: where the per-stream state vector lives; seeds are always derived
        #: on the host (cheap, once) and uploaded through the backend.
        self.backend = resolve_backend(backend)

    # -- subclass interface -------------------------------------------------

    @abc.abstractmethod
    def _next_raw(self) -> np.ndarray:
        """Advance every stream one step; return ``(n_streams,)`` raw words."""

    @abc.abstractmethod
    def _max_raw(self) -> float:
        """Exclusive upper bound of the raw word range (for normalisation)."""

    @classmethod
    @abc.abstractmethod
    def _derive_states(cls, seed: int, n_streams: int):
        """Per-stream state for one seed — the exact ``__init__`` derivation."""

    @abc.abstractmethod
    def _load_states(self, per_seed_states: list) -> None:
        """Replace the state vector with concatenated per-seed states."""

    # -- batched construction ------------------------------------------------

    @classmethod
    def from_seeds(cls, streams_per_seed: int, seeds, backend=None) -> "DeviceRNG":
        """Batched generator: ``streams_per_seed`` streams per entry of ``seeds``.

        Stream block ``b`` (rows ``[b * streams_per_seed, (b + 1) *
        streams_per_seed)``) carries exactly the state a solo generator
        ``cls(streams_per_seed, seeds[b])`` would hold, so every draw,
        reshaped to ``(len(seeds), streams_per_seed)``, reproduces the solo
        sequences row for row.
        """
        seeds = [int(s) for s in seeds]
        if not seeds:
            raise ValueError("from_seeds needs at least one seed")
        if streams_per_seed <= 0:
            raise ValueError(
                f"streams_per_seed must be positive, got {streams_per_seed}"
            )
        # Construct with a single throwaway stream (deriving the full batch
        # state in __init__ would be immediately discarded), then install
        # the real per-seed state blocks.
        rng = cls(n_streams=1, seed=seeds[0], backend=backend)
        rng._load_states([cls._derive_states(s, streams_per_seed) for s in seeds])
        rng.n_streams = int(streams_per_seed) * len(seeds)
        return rng

    # -- public API ----------------------------------------------------------

    def uniform(self) -> np.ndarray:
        """One uniform ``float64`` in ``[0, 1)`` per stream, shape ``(n_streams,)``."""
        raw = self._next_raw()
        self.samples_drawn += self.n_streams
        # Single-pass cast-and-divide; bit-identical to astype + divide
        # (each element is exactly representable in float64 before dividing).
        return self.backend.xp.true_divide(raw, self._max_raw())

    def uniform_block(self, rounds: int, out: np.ndarray | None = None) -> np.ndarray:
        """Draw ``rounds`` successive vectors; shape ``(rounds, n_streams)``.

        Streams advance in lockstep, so row ``r`` holds the ``r``-th draw of
        every stream — exactly the access pattern of a construction step that
        needs one number per (step, thread) pair.  Bit-identical to ``rounds``
        sequential :meth:`uniform` calls (each raw word is exactly
        representable in float64 before the single normalising divide), but
        amortised: one output allocation and one vectorised divide for the
        whole block instead of one of each per draw.

        ``out`` optionally supplies a preallocated ``(>= rounds, n_streams)``
        float64 buffer (e.g. from a :class:`~repro.backend.WorkBuffers`
        arena); the filled ``out[:rounds]`` view is returned.
        """
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        xp = self.backend.xp
        if out is None:
            out = xp.empty((rounds, self.n_streams), dtype=np.float64)
        elif out.shape[0] < rounds or out.shape[1:] != (self.n_streams,):
            raise ValueError(
                f"out buffer {out.shape} cannot hold ({rounds}, {self.n_streams})"
            )
        block = out[:rounds]
        max_raw = self._max_raw()
        for r in range(rounds):
            # Fused cast-and-divide into the row: one pass over the block
            # instead of a cast pass plus a divide pass (bit-identical —
            # every raw word is exactly representable in float64).
            xp.true_divide(self._next_raw(), max_raw, out=block[r])
        self.samples_drawn += rounds * self.n_streams
        return block

    # -- checkpointing --------------------------------------------------------

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Host copies of the generator's mutable per-stream state.

        The checkpoint seam: together with ``samples_drawn`` this is
        everything needed to resume the stream bit-identically.  Keys are
        generator-specific (``{"state": ...}`` for the LCG, the six state
        words for XORWOW); :meth:`load_state_arrays` accepts exactly what
        this returns.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support state capture"
        )

    def load_state_arrays(self, arrays: dict) -> None:
        """Replace the per-stream state with a :meth:`state_arrays` capture.

        The stream count must match; draws after the load continue the
        captured sequence exactly (pinned by the checkpoint parity suite).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support state restore"
        )

    def _check_state_shape(self, arr: np.ndarray, key: str) -> None:
        if arr.shape != (self.n_streams,):
            raise ValueError(
                f"state array {key!r} has shape {arr.shape}; this generator "
                f"holds {self.n_streams} streams"
            )

    def uniform_scalar(self, stream: int = 0) -> float:
        """Draw one vector but return only ``stream``'s sample.

        Convenience for scalar consumers (e.g. the sequential code path);
        note that *all* streams still advance, mirroring a warp in which one
        lane's value is used.
        """
        return float(self.uniform()[stream])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(n_streams={self.n_streams}, seed={self.seed}, "
            f"samples_drawn={self.samples_drawn})"
        )


class BlockedDraws:
    """Per-step draw vectors served from bulk pregenerated blocks.

    A construction kernel that consumes one uniform vector per step wraps its
    generator in ``BlockedDraws(rng, rounds)`` and calls :meth:`next` once per
    step.  Draws are pregenerated up to ``block_rounds`` steps at a time with
    a single :meth:`DeviceRNG.uniform_block` call — the paper's bulk-RNG
    amortisation — and handed out as zero-copy row views, so the steady-state
    per-step cost collapses to an index bump.  The consumption order is the
    same per-step lockstep, so tours built from blocked draws are
    bit-identical to tours built from per-step :meth:`DeviceRNG.uniform`
    calls (pinned by the rng test-suite).

    Parameters
    ----------
    rng:
        The generator to pregenerate from.
    rounds:
        Exact number of :meth:`next` calls the consumer will make; drawing
        past it raises (an over-consuming kernel would silently desync the
        stream otherwise).
    work:
        Optional :class:`~repro.backend.WorkBuffers` arena; when given, the
        block buffer itself is hoisted across iterations under ``key``.
    max_block_elements:
        Cap on pregenerated elements per chunk; wide stream counts are served
        in several chunks so memory stays bounded.
    """

    def __init__(
        self,
        rng: DeviceRNG,
        rounds: int,
        *,
        work=None,
        key: str = "rng.block",
        max_block_elements: int = MAX_BLOCK_ELEMENTS,
    ) -> None:
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        self.rng = rng
        self.remaining = int(rounds)
        per_chunk = max(1, int(max_block_elements) // max(1, rng.n_streams))
        self.block_rounds = min(int(rounds), per_chunk) if rounds else 0
        self._work = work
        self._key = key
        self._block: np.ndarray | None = None
        self._pos = 0
        self._filled = 0

    def next(self) -> np.ndarray:
        """The next ``(n_streams,)`` draw vector (a view into the block)."""
        if self.remaining <= 0:
            raise ValueError("BlockedDraws exhausted: all pregenerated rounds consumed")
        if self._block is None or self._pos >= self._filled:
            take = min(self.block_rounds, self.remaining)
            out = None
            if self._work is not None:
                out = self._work.get(
                    self._key, (self.block_rounds, self.rng.n_streams), np.float64
                )
            self._block = self.rng.uniform_block(take, out=out)
            self._filled = take
            self._pos = 0
        row = self._block[self._pos]
        self._pos += 1
        self.remaining -= 1
        return row


class StepDraws:
    """Per-step :meth:`DeviceRNG.uniform` calls — the unamortised reference.

    Same interface as :class:`BlockedDraws`; used by the pre-amortisation
    baseline mode (``BatchEngine(amortize=False)``) so benchmarks can measure
    exactly what bulk generation buys.
    """

    def __init__(self, rng: DeviceRNG, rounds: int | None = None) -> None:
        self.rng = rng
        self.remaining = None if rounds is None else int(rounds)

    def next(self) -> np.ndarray:
        if self.remaining is not None:
            if self.remaining <= 0:
                raise ValueError("StepDraws exhausted: all declared rounds consumed")
            self.remaining -= 1
        return self.rng.uniform()


def make_draws(
    rng: DeviceRNG,
    rounds: int,
    *,
    bulk: bool = True,
    work=None,
    key: str = "rng.block",
):
    """A draw stream for ``rounds`` per-step vectors: blocked or stepwise."""
    if bulk:
        return BlockedDraws(rng, rounds, work=work, key=key)
    return StepDraws(rng, rounds)
