"""Calibrated cost-model constants for the paper's devices and CPU baseline.

The structural model (instruction/traffic counts, occupancy, launch shapes)
is analytic; only the bulk constants below are fitted — once — against the
paper's own numbers:

* GPU constants per device against Tables II-IV (log-space least squares,
  see :mod:`repro.experiments.calibrate`);
* CPU constants against the sequential times *implied* by the figures
  (reported speed-up × reported GPU time).

Re-run the fit with ``python -m repro.experiments calibrate``; it prints a
replacement for the dictionaries below.  The committed values are the result
of that procedure (see EXPERIMENTS.md for the resulting per-cell errors).
"""

from __future__ import annotations

from repro.seq.cost import CpuCostParams
from repro.simt.device import TESLA_C1060, TESLA_M2050, DeviceSpec
from repro.simt.timing import CostParams

__all__ = ["gpu_cost_params", "cpu_cost_params", "GPU_CALIBRATION", "CPU_CALIBRATION"]


#: Fitted GPU cost constants, keyed by device name.
GPU_CALIBRATION: dict[str, CostParams] = {
    TESLA_C1060.name: CostParams(
        cpi_flop=1.0,
        cpi_int=2.15096,
        cpi_special=42.8451,
        cycles_rng_lcg=62.3423,
        cycles_rng_curand=68.5765,
        issue_efficiency=0.7,
        mem_efficiency=0.73538,
        random_derate=3.19075,
        cache_hit_fraction=0.0,
        tex_hit_fraction=0.9,
        smem_words_per_cycle_per_sm=63.9654,
        atomic_ns=2.32932,
        atomic_hot_latency_ns=40.0,
        launch_overhead_s=6.21309e-05,
        barrier_latency_s=6.40713e-07,
        divergence_penalty_cycles=1.0,
        compute_occ_knee=0.297842,
        memory_occ_knee=0.0297414,
    ),
    TESLA_M2050.name: CostParams(
        cpi_flop=1.0,
        cpi_int=2.83747,
        cpi_special=4.0,
        cycles_rng_lcg=80.0,
        cycles_rng_curand=96.0,
        issue_efficiency=0.7,
        mem_efficiency=0.700313,
        random_derate=8.0,
        cache_hit_fraction=0.45,
        tex_hit_fraction=0.92,
        smem_words_per_cycle_per_sm=11.6208,
        atomic_ns=2.21607,
        atomic_hot_latency_ns=20.0,
        launch_overhead_s=1.64886e-05,
        barrier_latency_s=2.71621e-07,
        divergence_penalty_cycles=12.0221,
        compute_occ_knee=0.447012,
        memory_occ_knee=0.0737865,
    ),
}

#: Fitted CPU cost constants.  Note: the construction op classes (arith,
#: streaming refs, branches) co-occur in fixed proportions in ACOTSP's inner
#: loops, so only their *blend* (~8 ns per candidate evaluation) is
#: identified by the fit — the individual splits are not meaningful.
CPU_CALIBRATION = CpuCostParams(
    arith_ns=0.1,
    mem_seq_ns=3.82957,
    mem_rand_ns=14.3762,
    rng_ns=2.0,
    pow_ns=10.0,
    branch_ns=0.2,
)


def gpu_cost_params(device: DeviceSpec) -> CostParams:
    """Calibrated :class:`CostParams` for a paper device.

    Unknown devices get the physics-flavoured :class:`CostParams` defaults —
    the model stays usable for hypothetical hardware, just uncalibrated.
    """
    return GPU_CALIBRATION.get(device.name, CostParams())


def cpu_cost_params() -> CpuCostParams:
    """Calibrated CPU constants for the sequential baseline."""
    return CPU_CALIBRATION
