"""Asymptotic-scaling analysis: do the kernels scale as the paper says?

The paper's formulas imply sharp growth exponents in the instance size n
(with the paper's m = n):

=====================================  =================  =========
kernel                                 dominant term      exponent
=====================================  =================  =========
task-based construction (v1-3)         m·n·n candidates   ~3
nn-list construction (v4-6)            m·n·nn + fallback  ~2
data-parallel construction (v7-8)      m·n·n threadswork  ~3
atomic pheromone update (v1-2)         m·n atomics + n²   ~2
scatter-to-gather update (v4-5)        2 n⁴ (÷ θ)         ~4
symmetric reduction update (v3)        n⁴ / θ             ~4
sequential full construction           m·n·n              ~3
sequential update                      n² (+ cache cliff) ~2
=====================================  =================  =========

:func:`scaling_exponent` fits a log-log slope of the modeled time across a
size sweep; the test-suite asserts the exponents land in the paper-implied
bands.  This validates the *structure* of the cost model independently of
calibration (constants shift the intercept, never the slope).
"""

from __future__ import annotations

import numpy as np

from repro.core.construction import expected_fallback_steps, make_construction
from repro.core.pheromone import make_pheromone
from repro.errors import ExperimentError
from repro.experiments.calibration import cpu_cost_params, gpu_cost_params
from repro.seq.cost import estimate_cpu_time
from repro.seq.engine import predict_construction_ops_for, predict_update_ops_for
from repro.simt.device import DeviceSpec
from repro.simt.timing import estimate_time

__all__ = ["scaling_exponent", "model_time_series", "EXPECTED_EXPONENTS"]

#: (lo, hi) bands for the fitted log-log slope of each subject.
#:
#: The *effective* exponents sit below the raw count exponents because GPU
#: efficiency improves with size (the occupancy/grid-fill cliff inflates
#: small instances) — exactly what the paper's own tables show: Table II's
#: version 3 grows ×3448 while n grows ×49.8 (slope ≈ 2.1, not 3), and
#: Table III's scatter-to-gather grows with slope ≈ 3.8, not 4.
EXPECTED_EXPONENTS: dict[str, tuple[float, float]] = {
    "construction_v1": (1.9, 3.1),
    "construction_v3": (1.9, 3.1),
    "construction_v4": (1.4, 2.9),
    "construction_v7": (2.4, 3.5),
    "pheromone_v1": (1.5, 2.6),
    "pheromone_v3": (3.4, 4.4),
    "pheromone_v4": (3.4, 4.4),
    "pheromone_v5": (3.4, 4.4),
    "seq_construct_full": (2.5, 3.5),
    "seq_update": (1.8, 2.9),
}

#: default size sweep — large enough that fixed overheads stop mattering
DEFAULT_SIZES: tuple[int, ...] = (400, 700, 1200, 2000)


def _gpu_time(subject: str, n: int, device: DeviceSpec) -> float:
    params = gpu_cost_params(device)
    kind, _, version = subject.rpartition("_v")
    try:
        v = int(version)
    except ValueError:
        raise ExperimentError(f"unknown scaling subject {subject!r}") from None
    try:
        if kind == "construction":
            strategy = make_construction(v)
            nn = min(30, n - 1)
            fb = expected_fallback_steps(n, n, nn) if 4 <= v <= 6 else 0.0
            stats, launch = strategy.predict_stats(n, n, nn, device, fallback_steps=fb)
        elif kind == "pheromone":
            strategy = make_pheromone(v)
            stats, launch = strategy.predict_stats(n, n, device)
        else:
            raise ExperimentError(f"unknown scaling subject {subject!r}")
    except ValueError as exc:
        raise ExperimentError(f"unknown scaling subject {subject!r}: {exc}") from exc
    return estimate_time(
        stats,
        device,
        params,
        effective_parallelism=launch.occupancy(device).effective_parallelism,
    )


def _seq_time(subject: str, n: int) -> float:
    params = cpu_cost_params()
    if subject == "seq_construct_full":
        ops = predict_construction_ops_for(n, n, min(30, n - 1), "full")
    elif subject == "seq_update":
        ops = predict_update_ops_for(n, n)
    else:
        raise ExperimentError(f"unknown scaling subject {subject!r}")
    return estimate_cpu_time(ops, params)


def model_time_series(
    subject: str,
    device: DeviceSpec,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
) -> list[float]:
    """Modeled seconds of ``subject`` across an instance-size sweep."""
    if subject.startswith("seq_"):
        return [_seq_time(subject, n) for n in sizes]
    return [_gpu_time(subject, n, device) for n in sizes]


def scaling_exponent(
    subject: str,
    device: DeviceSpec,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
) -> float:
    """Fitted log-log slope of modeled time vs n.

    A slope of 4.0 means the subject scales as n⁴ over the sweep — the
    scatter-to-gather signature.
    """
    if len(sizes) < 2:
        raise ExperimentError("scaling needs at least two sizes")
    times = model_time_series(subject, device, sizes)
    slope, _ = np.polyfit(np.log(np.asarray(sizes, float)), np.log(times), 1)
    return float(slope)
