"""Fit the cost-model constants against the paper's own numbers.

Three fits, in dependency order:

1. **CPU** — the sequential constants against the sequential times *implied*
   by the paper: ``reported speed-up × reported C1060 kernel time`` for
   Figure 4(a) (× Table II v6), Figure 4(b) (× Table II v8) and Figure 5
   (× Table III v1).
2. **C1060** — against every cell of Table II and Table III (86 exact
   targets).
3. **M2050** — against every cell of Table IV, plus the construction times
   implied by the M2050 curves of Figures 4(a)/4(b) and the fitted CPU model
   (down-weighted: the figure points are digitised).

All fits are log-space least squares (``scipy.optimize.least_squares``):
parameters are optimised as logarithms (guaranteeing positivity), residuals
are ``ln(model / target)``, so a residual of 0.69 is a factor-of-2 error.
Fractional parameters (efficiencies, knees, hit rates) are bounded below 1.

Only *constants* are fitted; every count, formula and launch shape stays
analytic, so the fit cannot manufacture orderings the model does not
structurally produce (see DESIGN.md).

Run ``python -m repro.experiments calibrate`` to reproduce the committed
values in :mod:`repro.experiments.calibration`.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np
from scipy.optimize import least_squares

from repro.errors import CalibrationError
from repro.experiments import paper_data as pd
from repro.experiments.calibration import CPU_CALIBRATION, GPU_CALIBRATION
from repro.experiments.harness import (
    construction_model_time,
    device_by_key,
    pheromone_model_time,
    sequential_model_time,
)
from repro.seq.cost import CpuCostParams
from repro.simt.timing import CostParams

__all__ = [
    "fit_cpu",
    "fit_gpu",
    "calibration_targets_cpu",
    "calibration_targets_gpu",
    "render_calibration_module",
]

#: CostParams fields fitted for each GPU, with physically sensible bounds —
#: the fit must stay inside the regime where the model's *shape* guarantees
#: hold (e.g. a CURAND sample can never be cheaper than an LCG sample, so
#: CURAND is parameterised as ``lcg × ratio`` with ratio >= 1.1).  The rest
#: of the fields stay at their committed values (cpi_flop is degenerate with
#: issue_efficiency).
GPU_FIT_BOUNDS: dict[str, tuple[float, float]] = {
    "cpi_int": (0.5, 8.0),
    "cpi_special": (4.0, 400.0),
    "cycles_rng_lcg": (4.0, 80.0),
    "rng_curand_ratio": (1.1, 20.0),  # pseudo-field: curand = lcg * ratio
    "mem_efficiency": (0.2, 0.95),
    "random_derate": (0.5, 8.0),
    "atomic_ns": (0.5, 20.0),
    "launch_overhead_s": (2e-6, 2e-4),
    "barrier_latency_s": (5e-8, 1e-5),
    "smem_words_per_cycle_per_sm": (4.0, 64.0),
    "memory_occ_knee": (0.02, 0.9),
    "compute_occ_knee": (0.02, 0.9),
    "divergence_penalty_cycles": (1.0, 64.0),
}

GPU_FIT_FIELDS: tuple[str, ...] = tuple(GPU_FIT_BOUNDS)

CPU_FIT_BOUNDS: dict[str, tuple[float, float]] = {
    "arith_ns": (0.1, 5.0),
    "mem_seq_ns": (0.2, 5.0),
    "mem_rand_ns": (1.0, 60.0),
    "rng_ns": (2.0, 50.0),
    "pow_ns": (10.0, 300.0),
    "branch_ns": (0.2, 8.0),
}

CPU_FIT_FIELDS: tuple[str, ...] = tuple(CPU_FIT_BOUNDS)


# --------------------------------------------------------------- CPU targets


def calibration_targets_cpu() -> list[tuple[str, str, float, float]]:
    """(kind, instance, target_seconds, weight) for the CPU fit."""
    targets: list[tuple[str, str, float, float]] = []
    # Fig 4(a): sequential NN-list construction = speedup × Table II v6.
    fig = pd.FIG4A["c1060"]
    for i, name in enumerate(fig.instances):
        gpu_ms = pd.TABLE2_MS[6][i]
        targets.append(("construct_nnlist", name, fig.speedups[i] * gpu_ms * 1e-3, 1.0))
    # Fig 4(b): sequential fully probabilistic = speedup × Table II v8.
    fig = pd.FIG4B["c1060"]
    for i, name in enumerate(fig.instances):
        gpu_ms = pd.TABLE2_MS[8][i]
        targets.append(("construct_full", name, fig.speedups[i] * gpu_ms * 1e-3, 1.0))
    # Fig 5: sequential pheromone update = speedup × Table III v1.
    fig = pd.FIG5["c1060"]
    for i, name in enumerate(fig.instances):
        gpu_ms = pd.TABLE3_MS[1][i]
        targets.append(("update", name, fig.speedups[i] * gpu_ms * 1e-3, 1.0))
    return targets


def fit_cpu(*, verbose: bool = False) -> CpuCostParams:
    """Least-squares fit of the CPU constants; returns the fitted params."""
    targets = calibration_targets_cpu()
    base = CPU_CALIBRATION

    def unpack(x: np.ndarray) -> CpuCostParams:
        vals = np.exp(x)
        return base.with_overrides(**dict(zip(CPU_FIT_FIELDS, vals)))

    def residuals(x: np.ndarray) -> np.ndarray:
        params = unpack(x)
        res = []
        for kind, name, target, weight in targets:
            model = sequential_model_time(kind, name, params=params)
            res.append(weight * np.log(model / target))
        return np.asarray(res)

    lo = np.log([CPU_FIT_BOUNDS[f][0] for f in CPU_FIT_FIELDS])
    hi = np.log([CPU_FIT_BOUNDS[f][1] for f in CPU_FIT_FIELDS])
    x0 = np.clip(np.log([getattr(base, f) for f in CPU_FIT_FIELDS]), lo, hi)
    sol = least_squares(residuals, x0, bounds=(lo, hi), method="trf", max_nfev=2000)
    if not sol.success:  # pragma: no cover - scipy rarely fails here
        raise CalibrationError(f"CPU fit failed: {sol.message}")
    fitted = unpack(sol.x)
    if verbose:  # pragma: no cover - CLI path
        _report("CPU", residuals(sol.x))
    return fitted


# --------------------------------------------------------------- GPU targets


def calibration_targets_gpu(
    device_key: str, cpu_params: CpuCostParams | None = None
) -> list[tuple[Callable[[CostParams], float], float, float]]:
    """(model_fn, target_seconds, weight) for one device's fit."""
    device = device_by_key(device_key)
    targets: list[tuple[Callable[[CostParams], float], float, float]] = []

    def add_construction(version: int, name: str, target_s: float, weight: float) -> None:
        targets.append(
            (
                lambda p, v=version, nm=name: construction_model_time(
                    v, nm, device, params=p
                ),
                target_s,
                weight,
            )
        )

    def add_pheromone(version: int, name: str, target_s: float, weight: float) -> None:
        targets.append(
            (
                lambda p, v=version, nm=name: pheromone_model_time(
                    v, nm, device, params=p
                ),
                target_s,
                weight,
            )
        )

    if device_key == "c1060":
        for version, row in pd.TABLE2_MS.items():
            for name, ms in zip(pd.TABLE2_INSTANCES, row):
                add_construction(version, name, ms * 1e-3, 1.0)
        for version, row in pd.TABLE3_MS.items():
            for name, ms in zip(pd.TABLE3_INSTANCES, row):
                add_pheromone(version, name, ms * 1e-3, 1.0)
    elif device_key == "m2050":
        for version, row in pd.TABLE4_MS.items():
            for name, ms in zip(pd.TABLE3_INSTANCES, row):
                add_pheromone(version, name, ms * 1e-3, 1.0)
        # Construction on the M2050 appears only through the figures:
        # implied GPU time = fitted sequential time / figure speed-up.
        cpu = cpu_params if cpu_params is not None else CPU_CALIBRATION
        for fig, version, kind in (
            (pd.FIG4A["m2050"], 6, "construct_nnlist"),
            (pd.FIG4B["m2050"], 8, "construct_full"),
        ):
            for i, name in enumerate(fig.instances):
                seq_s = sequential_model_time(kind, name, params=cpu)
                add_construction(version, name, seq_s / fig.speedups[i], 0.5)
    else:  # pragma: no cover - defensive
        raise CalibrationError(f"no calibration targets for device {device_key!r}")
    return targets


def fit_gpu(
    device_key: str,
    *,
    cpu_params: CpuCostParams | None = None,
    verbose: bool = False,
) -> CostParams:
    """Least-squares fit of one device's GPU constants."""
    device = device_by_key(device_key)
    base = GPU_CALIBRATION[device.name]
    targets = calibration_targets_gpu(device_key, cpu_params)

    def unpack(x: np.ndarray) -> CostParams:
        vals = np.exp(x)
        kw = dict(zip(GPU_FIT_FIELDS, vals))
        ratio = kw.pop("rng_curand_ratio")
        kw["cycles_rng_curand"] = kw["cycles_rng_lcg"] * ratio
        return base.with_overrides(**kw)

    def residuals(x: np.ndarray) -> np.ndarray:
        params = unpack(x)
        return np.asarray(
            [w * np.log(fn(params) / target) for fn, target, w in targets]
        )

    def start_value(field: str) -> float:
        if field == "rng_curand_ratio":
            return max(1.2, base.cycles_rng_curand / base.cycles_rng_lcg)
        return getattr(base, field)

    lo = np.log([GPU_FIT_BOUNDS[f][0] for f in GPU_FIT_FIELDS])
    hi = np.log([GPU_FIT_BOUNDS[f][1] for f in GPU_FIT_FIELDS])
    x0 = np.clip(np.log([start_value(f) for f in GPU_FIT_FIELDS]), lo, hi)
    sol = least_squares(residuals, x0, bounds=(lo, hi), method="trf", max_nfev=4000)
    if not sol.success:  # pragma: no cover
        raise CalibrationError(f"{device_key} fit failed: {sol.message}")
    fitted = unpack(sol.x)
    if verbose:  # pragma: no cover - CLI path
        _report(device.name, residuals(sol.x))
    return fitted


def _report(label: str, res: np.ndarray) -> None:  # pragma: no cover - CLI
    print(
        f"[{label}] n={res.size} mean|lnr|={np.mean(np.abs(res)):.3f} "
        f"max|lnr|={np.max(np.abs(res)):.3f}"
    )


# ------------------------------------------------------------------ render


def render_calibration_module(
    cpu: CpuCostParams, gpus: dict[str, CostParams]
) -> str:
    """Python source for the fitted dictionaries (paste into calibration.py)."""

    def fmt_params(p, indent: str) -> str:
        lines = []
        for f in dataclasses.fields(p):
            lines.append(f"{indent}{f.name}={getattr(p, f.name):.6g},")
        return "\n".join(lines)

    parts = ["GPU_CALIBRATION = {"]
    for name, p in gpus.items():
        parts.append(f"    {name!r}: CostParams(")
        parts.append(fmt_params(p, " " * 8))
        parts.append("    ),")
    parts.append("}")
    parts.append("")
    parts.append("CPU_CALIBRATION = CpuCostParams(")
    parts.append(fmt_params(cpu, " " * 4))
    parts.append(")")
    return "\n".join(parts)


def run_calibration(verbose: bool = True) -> tuple[CpuCostParams, dict[str, CostParams]]:
    """The full three-stage fit; returns (cpu, {device_name: params})."""
    cpu = fit_cpu(verbose=verbose)
    c1060 = fit_gpu("c1060", cpu_params=cpu, verbose=verbose)
    m2050 = fit_gpu("m2050", cpu_params=cpu, verbose=verbose)
    return cpu, {
        device_by_key("c1060").name: c1060,
        device_by_key("m2050").name: m2050,
    }
