"""Experiment harness: model-mode artefacts plus batched functional sweeps.

The model-mode half evaluates the calibrated analytical model over the
paper's benchmark sizes.  Model mode needs only instance *dimensions* (n, m,
nn) — never the coordinate data — so reproducing Table II's pr2392 column
takes milliseconds.  The measured counterpart (functional simulation under
``pytest-benchmark``) lives in ``benchmarks/``.

The functional half dispatches replicate and parameter-sweep workloads
through the :class:`~repro.core.batch.BatchEngine`: :func:`run_replicas`
runs B seed-replicas and :func:`run_sweep` runs a parameter grid ×
replicas, each as one vectorized batch instead of B sequential Python runs.

Each model runner returns an :class:`ExperimentResult` bundling the model
rows, the paper rows, shape metrics and rendered tables.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.batch import BatchEngine, BatchRunResult
from repro.core.choice import ChoiceKernel
from repro.core.construction import expected_fallback_steps, make_construction
from repro.core.params import ACOParams
from repro.core.pheromone import make_pheromone
from repro.errors import ExperimentError, RunInterrupted
from repro.experiments.calibration import cpu_cost_params, gpu_cost_params
from repro.seq.cost import estimate_cpu_time
from repro.seq.engine import (
    SequentialAntSystem,
    predict_construction_ops_for,
    predict_update_ops_for,
)
from repro.simt.device import DEVICES, TESLA_M2050, DeviceSpec
from repro.simt.timing import estimate_time
from repro.tsp.instance import TSPInstance
from repro.tsp.suite import suite_entry
from repro.util.tables import Table

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "run_experiment",
    "construction_model_time",
    "pheromone_model_time",
    "sequential_model_time",
    "run_replicas",
    "run_sweep",
    "run_service",
    "ServiceLoadResult",
    "SweepResult",
    "SWEEPABLE_FIELDS",
]


@dataclass
class ExperimentResult:
    """Outcome of one artefact reproduction.

    Attributes
    ----------
    id / title:
        Artefact identifier (``table2`` ...) and human title.
    instances:
        Column names.
    model_rows / paper_rows:
        Row label -> values (milliseconds for tables, speed-up factors for
        figures).
    metrics:
        Shape metrics (orderings, crossovers, log errors).
    notes:
        Caveats to surface in reports.
    """

    id: str
    title: str
    instances: tuple[str, ...]
    model_rows: dict[str, list[float]]
    paper_rows: dict[str, list[float]]
    metrics: dict[str, object] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    unit: str = "ms"

    def table(self, *, paper: bool = False) -> Table:
        """Rendered table of the model (or paper) rows."""
        source = self.paper_rows if paper else self.model_rows
        headers = ["version"] + list(self.instances)
        t = Table(
            headers,
            title=f"{self.title} — {'paper' if paper else 'model'} ({self.unit})",
        )
        for label, values in source.items():
            t.add_row([label] + [_fmt(v) for v in values])
        return t

    def side_by_side(self) -> Table:
        """Model/paper interleaved, for eyeballing agreement."""
        headers = ["version", "source"] + list(self.instances)
        t = Table(headers, title=f"{self.title} — model vs paper ({self.unit})")
        for label in self.model_rows:
            t.add_row([label, "model"] + [_fmt(v) for v in self.model_rows[label]])
            if label in self.paper_rows:
                t.add_row(["", "paper"] + [_fmt(v) for v in self.paper_rows[label]])
        return t

    def render(self) -> str:
        lines = [self.side_by_side().render(), ""]
        if self.metrics:
            lines.append("shape metrics:")
            for key, val in self.metrics.items():
                lines.append(f"  {key}: {val}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(v: float) -> str:
    if v >= 1000:
        return f"{v:.0f}"
    if v >= 10:
        return f"{v:.1f}"
    return f"{v:.2f}"


# ------------------------------------------------------------- model pieces


def _dims(instance_name: str, nn: int = 30) -> tuple[int, int, int]:
    """(n, m, nn) for a paper instance, with the paper's m = n."""
    entry = suite_entry(instance_name)
    n = entry.n
    return n, n, min(nn, n - 1)


def construction_model_time(
    version: int,
    instance_name: str,
    device: DeviceSpec,
    *,
    nn: int = 30,
    fallback_steps: float | None = None,
    include_choice: bool = True,
    params=None,
    **strategy_options,
) -> float:
    """Modeled seconds of one construction iteration (Table II cell).

    ``fallback_steps=None`` uses the closed-form expectation model; pass a
    measured count for higher fidelity.  ``params`` overrides the calibrated
    :class:`~repro.simt.timing.CostParams` (used by the calibration fit).
    """
    n, m, nn = _dims(instance_name, nn)
    strategy = make_construction(version, **strategy_options)
    if fallback_steps is None:
        fallback_steps = (
            expected_fallback_steps(n, m, nn) if 4 <= strategy.version <= 6 else 0.0
        )
    if params is None:
        params = gpu_cost_params(device)
    stats, launch = strategy.predict_stats(n, m, nn, device, fallback_steps=fallback_steps)
    total = estimate_time(
        stats,
        device,
        params,
        effective_parallelism=launch.occupancy(device).effective_parallelism,
    )
    if include_choice and strategy.needs_choice_info:
        ck = ChoiceKernel()
        cstats, claunch = ck.predict_stats(n, device)
        total += estimate_time(
            cstats,
            device,
            params,
            effective_parallelism=claunch.occupancy(device).effective_parallelism,
        )
    return total


def pheromone_model_time(
    version: int,
    instance_name: str,
    device: DeviceSpec,
    *,
    hot_degree: float = 0.0,
    params=None,
    **strategy_options,
) -> float:
    """Modeled seconds of one pheromone update (Table III/IV cell).

    ``params`` overrides the calibrated constants (calibration fit hook).
    """
    n, m, _ = _dims(instance_name)
    strategy = make_pheromone(version, **strategy_options)
    if params is None:
        params = gpu_cost_params(device)
    stats, launch = strategy.predict_stats(n, m, device, hot_degree=hot_degree)
    return estimate_time(
        stats,
        device,
        params,
        effective_parallelism=launch.occupancy(device).effective_parallelism,
    )


_SEQ_KINDS = ("construct_nnlist", "construct_full", "update")


def sequential_model_time(
    kind: str,
    instance_name: str,
    *,
    nn: int = 30,
    fallback_steps: float | None = None,
    params=None,
) -> float:
    """Modeled seconds of the sequential baseline for one stage.

    ``construct_*`` kinds include the per-iteration choice-info pass the C
    code performs before construction, mirroring what the GPU side counts.
    ``params`` overrides the calibrated :class:`~repro.seq.cost.CpuCostParams`.
    """
    if kind not in _SEQ_KINDS:
        raise ExperimentError(f"kind must be one of {_SEQ_KINDS}, got {kind!r}")
    n, m, nn = _dims(instance_name, nn)
    if params is None:
        params = cpu_cost_params()
    if kind == "update":
        ops = predict_update_ops_for(n, m)
        return estimate_cpu_time(ops, params)
    mode = "nnlist" if kind == "construct_nnlist" else "full"
    if fallback_steps is None:
        fallback_steps = expected_fallback_steps(n, m, nn) if mode == "nnlist" else 0.0
    ops = SequentialAntSystem.predict_choice_ops(n) + predict_construction_ops_for(
        n, m, nn, mode, fallback_steps=fallback_steps
    )
    return estimate_cpu_time(ops, params)


# -------------------------------------------------- batched functional runs

#: ACOParams fields a sweep may vary; everything else must stay uniform
#: across the batch (array shapes share n, m and nn).
SWEEPABLE_FIELDS = ("alpha", "beta", "rho", "eta_shift", "seed")


def run_replicas(
    instance: TSPInstance,
    *,
    replicas: int,
    iterations: int,
    params: ACOParams | None = None,
    device: DeviceSpec = TESLA_M2050,
    construction: int | str = 8,
    pheromone: int | str = 1,
    seed_stride: int = 1,
    backend=None,
    report_every: int = 1,
    variant: str = "as",
    variant_options: dict | None = None,
    local_search: str = "none",
    local_search_options: dict | None = None,
) -> BatchRunResult:
    """Run ``replicas`` independent seed-replicas as one vectorized batch.

    Row ``b`` uses seed ``params.seed + b * seed_stride`` and is
    bit-identical to a solo run with that seed — the whole point is
    getting B solo runs for roughly the interpreter cost of one.
    ``backend`` selects the array substrate (name, instance, or ``None``
    for ``ACO_BACKEND`` / numpy); ``report_every=K`` amortises host
    transfers and report materialization over K-iteration device-resident
    blocks (results are bit-identical for every K); ``variant`` selects
    the ACO algorithm (``"as"``, ``"acs"``, ``"mmas"`` — all batched);
    ``local_search`` enables boundary-time tour polishing (``"2opt"``).
    """
    engine = BatchEngine.replicas(
        instance,
        params,
        replicas=replicas,
        seed_stride=seed_stride,
        device=device,
        construction=construction,
        pheromone=pheromone,
        backend=backend,
        variant=variant,
        variant_options=variant_options,
        local_search=local_search,
        local_search_options=local_search_options,
    )
    return engine.run(iterations, report_every=report_every)


@dataclass
class SweepResult:
    """Outcome of a :func:`run_sweep` call.

    ``points[i]`` holds the parameter overrides of grid point ``i``;
    ``results[i]`` its per-replica
    :class:`~repro.core.colony.RunResult` list.  The underlying
    :class:`~repro.core.batch.BatchRunResult` (one batch over every point ×
    replica) is kept for wall-clock accounting.
    """

    points: list[dict[str, float]]
    results: list[list]  # per point: list[RunResult], one per replica
    batch: BatchRunResult
    iterations: int

    def best_lengths(self, i: int) -> np.ndarray:
        return np.array([r.best_length for r in self.results[i]], dtype=np.int64)

    def table(self) -> Table:
        """One row per grid point: overrides, best/mean/std across replicas."""
        keys = sorted({k for p in self.points for k in p}) or ["-"]
        t = Table(
            keys + ["replicas", "best", "mean", "std"],
            title=f"parameter sweep ({self.iterations} iterations)",
        )
        for i, point in enumerate(self.points):
            lengths = self.best_lengths(i)
            t.add_row(
                [point.get(k, "-") for k in keys]
                + [
                    len(self.results[i]),
                    int(lengths.min()),
                    f"{lengths.mean():.1f}",
                    f"{lengths.std():.1f}",
                ]
            )
        return t


def run_sweep(
    instance: TSPInstance,
    grid: dict[str, Sequence],
    *,
    iterations: int,
    replicas: int = 1,
    params: ACOParams | None = None,
    device: DeviceSpec = TESLA_M2050,
    construction: int | str = 8,
    pheromone: int | str = 1,
    backend=None,
    report_every: int = 1,
    variant: str = "as",
    variant_options: dict | None = None,
    local_search: str = "none",
    local_search_options: dict | None = None,
) -> SweepResult:
    """Cartesian parameter sweep × seed replicas, one vectorized batch.

    ``grid`` maps :data:`SWEEPABLE_FIELDS` names to value lists; every grid
    point is replicated ``replicas`` times with seeds ``seed + r``.  All
    ``len(grid product) * replicas`` colonies run together through the
    :class:`~repro.core.batch.BatchEngine`; ``report_every=K`` amortises
    the host boundary over K-iteration device-resident blocks
    (bit-identical results for every K); ``variant`` selects the ACO
    algorithm the whole sweep runs (``"as"``, ``"acs"``, ``"mmas"``);
    ``local_search`` enables boundary-time tour polishing (``"2opt"``).
    """
    base = params or ACOParams()
    for key, values in grid.items():
        if key not in SWEEPABLE_FIELDS:
            raise ExperimentError(
                f"cannot sweep {key!r}; sweepable fields: {SWEEPABLE_FIELDS}"
            )
        if not values:
            raise ExperimentError(f"sweep axis {key!r} has no values")
    keys = list(grid)
    # An empty grid degenerates to the single base-parameter point
    # (itertools.product() of nothing yields one empty combination).
    points = [
        dict(zip(keys, combo))
        for combo in itertools.product(*(grid[k] for k in keys))
    ]
    if replicas < 1:
        raise ExperimentError(f"replicas must be >= 1, got {replicas}")
    if "seed" in grid and replicas > 1:
        # Replica seeds are point_seed + r; combined with a swept seed axis
        # adjacent points would silently share colonies (seed s+1 appears in
        # both point s's replicas and point s+1's), skewing per-point stats.
        raise ExperimentError(
            "cannot combine a 'seed' sweep axis with replicas > 1; sweep the "
            "seed values directly instead"
        )
    plist = []
    for point in points:
        for r in range(replicas):
            overrides = dict(point)
            overrides["seed"] = int(overrides.get("seed", base.seed)) + r
            plist.append(dataclasses.replace(base, **overrides))
    engine = BatchEngine(
        instance,
        plist,
        device=device,
        construction=construction,
        pheromone=pheromone,
        backend=backend,
        variant=variant,
        variant_options=variant_options,
        local_search=local_search,
        local_search_options=local_search_options,
    )

    def _bundle(batch: BatchRunResult) -> SweepResult:
        results = [
            batch.results[i * replicas : (i + 1) * replicas]
            for i in range(len(points))
        ]
        return SweepResult(
            points=points, results=results, batch=batch, iterations=iterations
        )

    try:
        batch = engine.run(iterations, report_every=report_every)
    except RunInterrupted as exc:
        # Re-raise with the partial re-bundled per grid point, so callers
        # (the CLI) can render the same table a finished sweep would get.
        raise RunInterrupted(
            _bundle(exc.partial), "sweep interrupted"
        ) from None
    return _bundle(batch)


# ----------------------------------------------------- service load generation


@dataclass
class ServiceLoadResult:
    """Outcome of a :func:`run_service` burst.

    ``results[i]`` / ``updates[i]`` belong to ``requests[i]`` in submission
    order; ``stats`` is the service's counter block (all throughput numbers
    derived from batch-level wall clocks); ``wall_seconds`` is the whole
    burst end-to-end, queueing and packing overhead included.
    """

    results: list  # list[RunResult]
    updates: list[list]  # per request: list[SolveUpdate]
    stats: object  # ServiceStats
    wall_seconds: float

    @property
    def best_lengths(self) -> np.ndarray:
        return np.array([r.best_length for r in self.results], dtype=np.int64)


def run_service(
    requests: Sequence,
    *,
    max_batch: int = 8,
    max_wait: float = 0.05,
    workers: int = 1,
    max_pending: int | None = None,
    backend=None,
    device: DeviceSpec = TESLA_M2050,
) -> ServiceLoadResult:
    """Fire a burst of :class:`~repro.serve.SolveRequest` jobs at a fresh
    micro-batching service and gather every stream and final.

    The synchronous load-generator counterpart of :func:`run_replicas` /
    :func:`run_sweep`: all requests are submitted concurrently, the service
    packs equal-geometry requests into shared engine batches, and the call
    returns once every request resolved and the service drained.  Useful
    for packing experiments ("what does max_wait buy at this request
    mix?") and as the reference driver for the serve test-suite.
    """
    import asyncio

    from repro.serve import SolveService

    requests = list(requests)
    if not requests:
        raise ExperimentError("run_service needs at least one request")

    async def _drive():
        service = SolveService(
            max_batch=max_batch,
            max_wait=max_wait,
            workers=workers,
            max_pending=max_pending or max(len(requests), max_batch),
            backend=backend,
            device=device,
        )
        async with service:
            handles = [await service.submit(r) for r in requests]

            async def consume(handle):
                ups = [u async for u in handle]
                return ups, await handle.result()

            pairs = await asyncio.gather(*(consume(h) for h in handles))
        return pairs, service.stats

    from repro.util.timer import WallClock

    with WallClock() as clock:
        pairs, stats = asyncio.run(_drive())
    return ServiceLoadResult(
        results=[res for _, res in pairs],
        updates=[ups for ups, _ in pairs],
        stats=stats,
        wall_seconds=clock.elapsed,
    )


# ----------------------------------------------------------------- registry

# Populated by the runner modules at import time (they call register()).
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {}


def register(exp_id: str) -> Callable:
    """Decorator adding a runner to the registry under ``exp_id``."""

    def wrap(fn: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        EXPERIMENTS[exp_id] = fn
        return fn

    return wrap


def run_experiment(exp_id: str, **kwargs) -> ExperimentResult:
    """Run one artefact reproduction by id (``table2`` ... ``fig5``)."""
    # Import runners lazily so the registry is populated on first use
    # without import cycles.
    from repro.experiments import figures, tables  # noqa: F401

    try:
        fn = EXPERIMENTS[exp_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(**kwargs)


def device_by_key(key: str) -> DeviceSpec:
    try:
        return DEVICES[key]
    except KeyError:
        raise ExperimentError(
            f"unknown device key {key!r}; known: {sorted(DEVICES)}"
        ) from None
