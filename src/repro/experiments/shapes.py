"""Shape metrics: how well the model reproduces the paper's *findings*.

Absolute milliseconds from a calibrated analytical model are not the claim;
the claim is the shape of the results — which kernel wins, how slow-downs
grow, where speed-up curves cross 1x and where they peak.  These helpers
quantify each of those against the paper data.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.experiments.paper_data import FigureSeries
from repro.util.stats import (
    crossover_index,
    log_ratio,
    monotone_fraction,
    spearman_rank_correlation,
)

__all__ = [
    "ordering_agreement",
    "mean_abs_log_ratio",
    "row_log_errors",
    "curve_metrics",
]


def ordering_agreement(
    model_rows: Mapping[int, Sequence[float]],
    paper_rows: Mapping[int, Sequence[float]],
) -> dict[str, float]:
    """Version-ordering agreement between model and paper, per column.

    For each instance column, ranks the kernel versions by model time and by
    paper time and computes Spearman's rho.  Returns per-column rho plus the
    mean (key ``"mean"``); 1.0 everywhere means the model reproduces every
    ordering in the table.
    """
    versions = sorted(model_rows)
    if versions != sorted(paper_rows):
        raise ValueError("model and paper rows must cover the same versions")
    n_cols = len(next(iter(model_rows.values())))
    out: dict[str, float] = {}
    rhos = []
    for col in range(n_cols):
        model_col = [model_rows[v][col] for v in versions]
        paper_col = [paper_rows[v][col] for v in versions]
        rho = spearman_rank_correlation(model_col, paper_col)
        out[f"col{col}"] = rho
        rhos.append(rho)
    out["mean"] = float(np.mean(rhos))
    return out


def row_log_errors(
    model_rows: Mapping[int, Sequence[float]],
    paper_rows: Mapping[int, Sequence[float]],
) -> dict[int, float]:
    """Mean |ln(model/paper)| per version row."""
    out: dict[int, float] = {}
    for v in sorted(model_rows):
        errs = [
            abs(log_ratio(mv, pv))
            for mv, pv in zip(model_rows[v], paper_rows[v])
        ]
        out[v] = float(np.mean(errs))
    return out


def mean_abs_log_ratio(
    model_rows: Mapping[int, Sequence[float]],
    paper_rows: Mapping[int, Sequence[float]],
) -> float:
    """Mean |ln(model/paper)| over every table cell.

    0.69 corresponds to a factor of 2; calibrated tables typically sit well
    below that.
    """
    per_row = row_log_errors(model_rows, paper_rows)
    return float(np.mean(list(per_row.values())))


def curve_metrics(
    model_speedups: Sequence[float],
    paper: FigureSeries,
) -> dict[str, float | bool | int | None]:
    """Shape agreement between a modelled speed-up curve and a figure series.

    Returns
    -------
    dict with keys:
        ``peak_instance_match`` — model peaks at the paper's peak instance;
        ``model_peak`` / ``paper_peak`` — the peak values;
        ``peak_log_error`` — |ln(model_peak / paper_peak)|;
        ``crossover_match`` — first instance above 1x agrees within one
        position (None-safe: both never crossing also matches);
        ``rise_monotone_fraction`` — monotone-increase fraction up to the
        paper's peak position;
        ``spearman`` — rank correlation of the full curves.
    """
    model = np.asarray(model_speedups, dtype=np.float64)
    ref = np.asarray(paper.speedups, dtype=np.float64)
    if model.shape != ref.shape:
        raise ValueError(
            f"curve length {model.shape} differs from paper series {ref.shape}"
        )
    peak_pos = paper.instances.index(paper.peak_instance)
    model_peak_pos = int(np.argmax(model))

    cross_model = crossover_index(model, 1.0)
    cross_paper = crossover_index(ref, 1.0)
    if cross_model is None and cross_paper is None:
        crossover_match = True
    elif cross_model is None or cross_paper is None:
        crossover_match = False
    else:
        crossover_match = abs(cross_model - cross_paper) <= 1

    rise = model[: peak_pos + 1]
    return {
        "peak_instance_match": model_peak_pos == peak_pos,
        "model_peak": float(model[peak_pos]),
        "paper_peak": float(paper.peak_value),
        "peak_log_error": abs(log_ratio(float(model[peak_pos]), paper.peak_value)),
        "crossover_model": cross_model,
        "crossover_paper": cross_paper,
        "crossover_match": crossover_match,
        "rise_monotone_fraction": (
            monotone_fraction(rise, increasing=True) if rise.size >= 2 else 1.0
        ),
        "spearman": spearman_rank_correlation(model, ref),
    }
