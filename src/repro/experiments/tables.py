"""Runners for Tables II, III and IV.

Each runner evaluates the calibrated model over the paper's instance sizes
and compares against the transcribed paper rows: per-column version-ordering
(Spearman), per-row log errors, and the derived bottom row (total speed-up /
slow-down) the paper prints.
"""

from __future__ import annotations

from repro.experiments import paper_data as pd
from repro.experiments.harness import (
    ExperimentResult,
    construction_model_time,
    device_by_key,
    pheromone_model_time,
    register,
)
from repro.experiments.shapes import (
    mean_abs_log_ratio,
    ordering_agreement,
    row_log_errors,
)

__all__ = ["run_table2", "run_table3", "run_table4"]


@register("table2")
def run_table2(*, nn: int = 30) -> ExperimentResult:
    """Table II — tour-construction kernel versions 1-8 on the C1060."""
    device = device_by_key("c1060")
    instances = pd.TABLE2_INSTANCES

    model: dict[int, list[float]] = {}
    for version in range(1, 9):
        model[version] = [
            construction_model_time(version, name, device, nn=nn) * 1e3
            for name in instances
        ]

    metrics: dict[str, object] = {}
    metrics["ordering"] = ordering_agreement(model, pd.TABLE2_MS)
    metrics["row_log_errors"] = row_log_errors(model, pd.TABLE2_MS)
    metrics["mean_abs_log_ratio"] = mean_abs_log_ratio(model, pd.TABLE2_MS)
    model_speedup = [model[1][i] / model[8][i] for i in range(len(instances))]
    metrics["model_total_speedup"] = [round(s, 2) for s in model_speedup]
    metrics["paper_total_speedup"] = list(pd.TABLE2_SPEEDUP_ROW)
    # The paper's headline shape: the data-parallel kernel (v8) wins the
    # small instances but loses to the best nn-list kernel (v6) at scale.
    metrics["v8_beats_v6_small"] = model[8][0] < model[6][0]
    metrics["v6_beats_v8_large"] = model[6][-1] < model[8][-1]

    model_rows = {pd.CONSTRUCTION_LABELS[v]: model[v] for v in sorted(model)}
    model_rows["Total speed-up attained"] = model_speedup
    paper_rows = {pd.CONSTRUCTION_LABELS[v]: list(pd.TABLE2_MS[v]) for v in pd.TABLE2_MS}
    paper_rows["Total speed-up attained"] = list(pd.TABLE2_SPEEDUP_ROW)

    return ExperimentResult(
        id="table2",
        title="Table II: tour construction times (Tesla C1060)",
        instances=instances,
        model_rows=model_rows,
        paper_rows=paper_rows,
        metrics=metrics,
        notes=[
            "fallback counts use the closed-form expectation model; "
            "benchmarks/bench_table2_tour_construction.py measures them functionally",
        ],
    )


def _pheromone_table(
    exp_id: str,
    title: str,
    device_key: str,
    paper_ms: dict[int, tuple[float, ...]],
    paper_slowdown: tuple[float, ...],
    theta: int,
) -> ExperimentResult:
    device = device_by_key(device_key)
    instances = pd.TABLE3_INSTANCES

    model: dict[int, list[float]] = {}
    for version in range(1, 6):
        options = {"theta": theta} if version >= 3 else {}
        model[version] = [
            pheromone_model_time(version, name, device, **options) * 1e3
            for name in instances
        ]

    metrics: dict[str, object] = {}
    metrics["ordering"] = ordering_agreement(model, {v: list(paper_ms[v]) for v in paper_ms})
    metrics["row_log_errors"] = row_log_errors(model, paper_ms)
    metrics["mean_abs_log_ratio"] = mean_abs_log_ratio(model, paper_ms)
    slowdown = [model[5][i] / model[1][i] for i in range(len(instances))]
    metrics["model_total_slowdown"] = [round(s, 1) for s in slowdown]
    metrics["paper_total_slowdown"] = list(paper_slowdown)
    # The paper's stated trend: the scatter-to-gather slow-down explodes
    # with the benchmark size.
    growth = all(slowdown[i] < slowdown[i + 1] for i in range(len(slowdown) - 1))
    metrics["slowdown_grows_with_n"] = growth

    model_rows = {pd.PHEROMONE_LABELS[v]: model[v] for v in sorted(model)}
    model_rows["Total slow-down incurred"] = slowdown
    paper_rows = {pd.PHEROMONE_LABELS[v]: list(paper_ms[v]) for v in paper_ms}
    paper_rows["Total slow-down incurred"] = list(paper_slowdown)

    return ExperimentResult(
        id=exp_id,
        title=title,
        instances=instances,
        model_rows=model_rows,
        paper_rows=paper_rows,
        metrics=metrics,
    )


@register("table3")
def run_table3(*, theta: int = 256) -> ExperimentResult:
    """Table III — pheromone-update kernel versions 1-5 on the C1060."""
    return _pheromone_table(
        "table3",
        "Table III: pheromone update times (Tesla C1060)",
        "c1060",
        pd.TABLE3_MS,
        pd.TABLE3_SLOWDOWN_ROW,
        theta,
    )


@register("table4")
def run_table4(*, theta: int = 256) -> ExperimentResult:
    """Table IV — pheromone-update kernel versions 1-5 on the M2050."""
    return _pheromone_table(
        "table4",
        "Table IV: pheromone update times (Tesla M2050)",
        "m2050",
        pd.TABLE4_MS,
        pd.TABLE4_SLOWDOWN_ROW,
        theta,
    )
