"""Every number the paper reports in its evaluation section.

Tables II-IV are transcribed verbatim (milliseconds).  The figures are
published only as plots; their *headline* values come from the text (peaks
of 2.65x / 3x for Fig. 4(a), 22x / 29x for Fig. 4(b), 3.87x / 18.77x for
Fig. 5) and the remaining points are digitised approximations, flagged as
such — shape checks treat them as soft references (trend/crossover/peak),
never as exact targets.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "TABLE2_INSTANCES",
    "TABLE3_INSTANCES",
    "TABLE2_MS",
    "TABLE2_SPEEDUP_ROW",
    "TABLE3_MS",
    "TABLE3_SLOWDOWN_ROW",
    "TABLE4_MS",
    "TABLE4_SLOWDOWN_ROW",
    "FigureSeries",
    "FIG4A",
    "FIG4B",
    "FIG5",
    "CONSTRUCTION_LABELS",
    "PHEROMONE_LABELS",
]

#: Table II columns (all seven benchmark instances).
TABLE2_INSTANCES: tuple[str, ...] = (
    "att48",
    "kroC100",
    "a280",
    "pcb442",
    "d657",
    "pr1002",
    "pr2392",
)

#: Tables III/IV and Figure 5 stop at pr1002.
TABLE3_INSTANCES: tuple[str, ...] = TABLE2_INSTANCES[:-1]

#: Table II row labels, keyed by kernel version.
CONSTRUCTION_LABELS: dict[int, str] = {
    1: "Baseline Version",
    2: "Choice Kernel",
    3: "Without CURAND",
    4: "NNList",
    5: "NNList + Shared Memory",
    6: "NNList + Shared&Texture Memory",
    7: "Increasing Data Parallelism",
    8: "Data Parallelism + Texture Memory",
}

#: Table III/IV row labels, keyed by kernel version.
PHEROMONE_LABELS: dict[int, str] = {
    1: "Atomic Ins. + Shared Memory",
    2: "Atomic Ins.",
    3: "Instruction & Thread Reduction",
    4: "Scatter to Gather + Tilling",
    5: "Scatter to Gather",
}

#: Table II — tour-construction times (ms) on the Tesla C1060.
TABLE2_MS: dict[int, tuple[float, ...]] = {
    1: (13.14, 56.89, 497.93, 1201.52, 2770.32, 6181.0, 63357.7),
    2: (4.83, 17.56, 135.15, 334.28, 659.05, 1912.59, 18582.9),
    3: (4.5, 15.78, 119.65, 296.31, 630.01, 1624.05, 15514.9),
    4: (2.36, 6.39, 33.08, 72.79, 143.36, 338.88, 2312.98),
    5: (1.81, 4.42, 21.42, 44.26, 84.15, 203.15, 2450.52),
    6: (1.35, 3.51, 16.97, 38.39, 75.07, 178.3, 2105.77),
    7: (0.36, 0.93, 13.89, 37.18, 125.17, 419.53, 5525.76),
    8: (0.34, 0.91, 12.12, 36.57, 123.17, 417.72, 5461.06),
}

#: Table II bottom row — "Total speed-up attained" (version 1 / version 8).
TABLE2_SPEEDUP_ROW: tuple[float, ...] = (38.09, 62.83, 41.09, 32.86, 22.49, 14.8, 11.6)

#: Table III — pheromone-update times (ms) on the Tesla C1060.
TABLE3_MS: dict[int, tuple[float, ...]] = {
    1: (0.15, 0.35, 1.76, 3.45, 7.44, 17.45),
    2: (0.16, 0.36, 1.99, 3.74, 7.74, 18.23),
    3: (1.18, 3.8, 103.77, 496.44, 2304.54, 12345.4),
    4: (1.03, 5.83, 242.02, 1489.88, 7092.57, 37499.2),
    5: (2.01, 11.3, 489.91, 3022.85, 14460.4, 200201.0),
}

#: Table III bottom row — "Total slow-down incurred" (version 5 / version 1).
TABLE3_SLOWDOWN_ROW: tuple[float, ...] = (
    12.73,
    31.42,
    278.7,
    875.29,
    1944.23,
    11471.59,
)

#: Table IV — pheromone-update times (ms) on the Tesla M2050.
TABLE4_MS: dict[int, tuple[float, ...]] = {
    1: (0.04, 0.09, 0.43, 0.79, 1.85, 4.22),
    2: (0.04, 0.09, 0.45, 0.88, 1.98, 4.37),
    3: (0.83, 2.76, 88.25, 501.32, 2302.37, 12449.9),
    4: (0.8, 4.45, 219.8, 1362.32, 6316.75, 33571.0),
    5: (0.66, 4.5, 264.38, 1555.03, 7537.1, 40977.3),
}

#: Table IV bottom row — "Total slow-downs attained".
TABLE4_SLOWDOWN_ROW: tuple[float, ...] = (
    17.3,
    50.73,
    587.96,
    1737.95,
    3859.52,
    9478.68,
)


@dataclass(frozen=True)
class FigureSeries:
    """One speed-up curve from a paper figure.

    Attributes
    ----------
    device_key:
        ``"c1060"`` or ``"m2050"``.
    instances:
        Benchmark names along the x axis.
    speedups:
        Speed-up values; digitised approximations except where noted.
    peak_value / peak_instance:
        The headline peak stated in the paper's text (exact).
    approximate:
        True when the non-peak points are read off the plot.
    """

    device_key: str
    instances: tuple[str, ...]
    speedups: tuple[float, ...]
    peak_value: float
    peak_instance: str
    approximate: bool = True


#: Figure 4(a) — NN-list tour construction (kernel v6, nn = 30) vs the
#: sequential NN-list code.  Text: CPU wins the smallest benchmarks; peaks
#: of 2.65x (C1060) and 3x (M2050) at pr1002; decline at pr2392.
FIG4A: dict[str, FigureSeries] = {
    "c1060": FigureSeries(
        "c1060",
        TABLE2_INSTANCES,
        (0.30, 0.60, 1.20, 1.60, 2.00, 2.65, 1.90),
        peak_value=2.65,
        peak_instance="pr1002",
    ),
    "m2050": FigureSeries(
        "m2050",
        TABLE2_INSTANCES,
        (0.35, 0.70, 1.40, 1.90, 2.40, 3.00, 2.40),
        peak_value=3.00,
        peak_instance="pr1002",
    ),
}

#: Figure 4(b) — data-parallel construction (kernel v8) vs the fully
#: probabilistic sequential code.  Text: up to 22x (C1060) and 29x (M2050);
#: fine-grained threads help even the smallest benchmarks; decline at pr2392.
FIG4B: dict[str, FigureSeries] = {
    "c1060": FigureSeries(
        "c1060",
        TABLE2_INSTANCES,
        (7.0, 9.0, 13.0, 16.0, 18.0, 22.0, 14.0),
        peak_value=22.0,
        peak_instance="pr1002",
    ),
    "m2050": FigureSeries(
        "m2050",
        TABLE2_INSTANCES,
        (9.0, 12.0, 17.0, 21.0, 24.0, 29.0, 19.0),
        peak_value=29.0,
        peak_instance="pr1002",
    ),
}

#: Figure 5 — best pheromone kernel (v1) vs the sequential update.  Text:
#: near-linear growth; C1060 capped at 3.87x by emulated float atomics
#: (sequential wins the smallest instances); M2050 reaches 18.77x.
FIG5: dict[str, FigureSeries] = {
    "c1060": FigureSeries(
        "c1060",
        TABLE3_INSTANCES,
        (0.50, 0.90, 1.60, 2.20, 3.00, 3.87),
        peak_value=3.87,
        peak_instance="pr1002",
    ),
    "m2050": FigureSeries(
        "m2050",
        TABLE3_INSTANCES,
        (2.00, 4.00, 8.00, 11.50, 15.00, 18.77),
        peak_value=18.77,
        peak_instance="pr1002",
    ),
}
