"""Experiment harness: regenerate every table and figure of the paper.

Artefact ids: ``table2``, ``table3``, ``table4``, ``fig4a``, ``fig4b``,
``fig5``.  Each has a runner in its own module returning an
:class:`~repro.experiments.harness.ExperimentResult` that carries the
model-reproduced rows, the paper's reported rows, and shape metrics
(orderings, trends, crossovers).

Run from the command line::

    python -m repro.experiments table2
    python -m repro.experiments all
    python -m repro.experiments calibrate
"""

from __future__ import annotations

from repro.experiments.calibration import cpu_cost_params, gpu_cost_params
from repro.experiments.harness import (
    EXPERIMENTS,
    ExperimentResult,
    run_experiment,
)
from repro.experiments.scaling import (
    EXPECTED_EXPONENTS,
    model_time_series,
    scaling_exponent,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "run_experiment",
    "gpu_cost_params",
    "cpu_cost_params",
    "EXPECTED_EXPONENTS",
    "model_time_series",
    "scaling_exponent",
]
