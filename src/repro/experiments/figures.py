"""Runners for Figures 4(a), 4(b) and 5 — GPU vs sequential speed-ups.

Each figure divides a modeled sequential stage time by the modeled GPU
kernel time, per instance and device, and checks the shape features the
paper's text states explicitly: crossover locations, peak instances, peak
magnitudes and the rise/fall pattern.
"""

from __future__ import annotations

from repro.experiments import paper_data as pd
from repro.experiments.harness import (
    ExperimentResult,
    construction_model_time,
    device_by_key,
    pheromone_model_time,
    register,
    sequential_model_time,
)
from repro.experiments.shapes import curve_metrics

__all__ = ["run_fig4a", "run_fig4b", "run_fig5"]


def _speedup_figure(
    exp_id: str,
    title: str,
    paper_series: dict[str, pd.FigureSeries],
    gpu_time_fn,
    seq_time_fn,
    instances: tuple[str, ...],
    notes: list[str],
) -> ExperimentResult:
    model_rows: dict[str, list[float]] = {}
    paper_rows: dict[str, list[float]] = {}
    metrics: dict[str, object] = {}

    for device_key, series in paper_series.items():
        device = device_by_key(device_key)
        speedups = []
        for name in instances:
            gpu_s = gpu_time_fn(name, device)
            seq_s = seq_time_fn(name)
            speedups.append(seq_s / gpu_s)
        label = device.name
        model_rows[label] = speedups
        paper_rows[label] = list(series.speedups)
        metrics[device_key] = curve_metrics(speedups, series)

    return ExperimentResult(
        id=exp_id,
        title=title,
        instances=instances,
        model_rows=model_rows,
        paper_rows=paper_rows,
        metrics=metrics,
        notes=notes + [
            "paper curves are digitised approximations except the peak values, "
            "which the text states exactly",
        ],
        unit="speed-up (x)",
    )


@register("fig4a")
def run_fig4a(*, nn: int = 30) -> ExperimentResult:
    """Figure 4(a) — NN-list construction (kernel v6) vs sequential NN code."""
    return _speedup_figure(
        "fig4a",
        "Figure 4(a): tour construction speed-up, NN list (NN = 30)",
        pd.FIG4A,
        gpu_time_fn=lambda name, dev: construction_model_time(6, name, dev, nn=nn),
        seq_time_fn=lambda name: sequential_model_time("construct_nnlist", name, nn=nn),
        instances=pd.TABLE2_INSTANCES,
        notes=[
            "sequential side: ACOTSP neighbour_choose_and_move_to_next with "
            "best-next fallback, including the per-iteration choice-info pass",
        ],
    )


@register("fig4b")
def run_fig4b() -> ExperimentResult:
    """Figure 4(b) — data-parallel construction (v8) vs fully probabilistic
    sequential code."""
    return _speedup_figure(
        "fig4b",
        "Figure 4(b): tour construction speed-up, fully probabilistic",
        pd.FIG4B,
        gpu_time_fn=lambda name, dev: construction_model_time(8, name, dev),
        seq_time_fn=lambda name: sequential_model_time("construct_full", name),
        instances=pd.TABLE2_INSTANCES,
        notes=[
            "GPU side uses the independent-roulette selection; sequential side "
            "is the exact proportional rule over all unvisited cities",
        ],
    )


@register("fig5")
def run_fig5() -> ExperimentResult:
    """Figure 5 — best pheromone kernel (v1) vs the sequential update."""
    return _speedup_figure(
        "fig5",
        "Figure 5: pheromone update speed-up (atomic + shared kernel)",
        pd.FIG5,
        gpu_time_fn=lambda name, dev: pheromone_model_time(1, name, dev),
        seq_time_fn=lambda name: sequential_model_time("update", name),
        instances=pd.TABLE3_INSTANCES,
        notes=[
            "the C1060 pays the CC 1.x float-atomic CAS emulation factor, "
            "which is why its curve sits an order of magnitude below the M2050's",
        ],
    )
