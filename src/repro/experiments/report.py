"""EXPERIMENTS.md generation: paper-vs-model record for every artefact.

``python -m repro.experiments report`` regenerates the file at the repo
root; the committed copy is the output of exactly that command.
"""

from __future__ import annotations

import io

from repro.experiments.harness import ExperimentResult, run_experiment
from repro.util.tables import Table

__all__ = ["ALL_EXPERIMENT_IDS", "generate_experiments_md", "render_markdown_result"]

ALL_EXPERIMENT_IDS: tuple[str, ...] = (
    "table2",
    "table3",
    "table4",
    "fig4a",
    "fig4b",
    "fig5",
)

_HEADER = """# EXPERIMENTS — paper vs model

Reproduction record for every table and figure in the evaluation section of
*Parallelization Strategies for Ant Colony Optimisation on GPUs* (Cecilia et
al., 2011).  Regenerate with `python -m repro.experiments report`.

**Reading guide.**  GPU kernel times come from the calibrated analytical
SIMT model (`repro.simt.timing`); sequential times from the calibrated CPU
model (`repro.seq.cost`).  Absolute numbers are therefore *modelled*, and
the claim under test is the **shape**: version orderings within each column,
growth trends, crossovers and peak locations/magnitudes.  `mean |ln r|` is
the mean absolute natural-log model/paper ratio over the table's cells
(0.69 = a factor of 2).  Figure reference points are digitised from the
plots except the peak values, which the paper's text states exactly.

"""


def _metrics_lines(result: ExperimentResult) -> list[str]:
    lines: list[str] = []
    m = result.metrics
    if "mean_abs_log_ratio" in m:
        lines.append(f"- mean |ln(model/paper)| over cells: **{m['mean_abs_log_ratio']:.3f}**")
        ordering = m.get("ordering", {})
        if ordering:
            lines.append(
                f"- version-ordering agreement (Spearman rho per column, mean): "
                f"**{ordering['mean']:.3f}**"
            )
        for key in (
            "v8_beats_v6_small",
            "v6_beats_v8_large",
            "slowdown_grows_with_n",
        ):
            if key in m:
                lines.append(f"- {key.replace('_', ' ')}: **{m[key]}**")
        if "model_total_speedup" in m:
            lines.append(
                f"- total speed-up row, model: {m['model_total_speedup']} "
                f"vs paper: {m['paper_total_speedup']}"
            )
        if "model_total_slowdown" in m:
            lines.append(
                f"- total slow-down row, model: {m['model_total_slowdown']} "
                f"vs paper: {m['paper_total_slowdown']}"
            )
    else:
        for dev_key, dev_metrics in m.items():
            parts = []
            parts.append(f"peak {dev_metrics['model_peak']:.2f}x vs paper {dev_metrics['paper_peak']:.2f}x")
            parts.append(f"peak |ln r| {dev_metrics['peak_log_error']:.2f}")
            parts.append(f"crossover match: {dev_metrics['crossover_match']}")
            parts.append(f"rise monotone: {dev_metrics['rise_monotone_fraction']:.2f}")
            parts.append(f"spearman {dev_metrics['spearman']:.2f}")
            lines.append(f"- **{dev_key}**: " + "; ".join(parts))
    return lines


def render_markdown_result(result: ExperimentResult) -> str:
    """One artefact's markdown section."""
    buf = io.StringIO()
    buf.write(f"## {result.id}: {result.title}\n\n")
    table = Table(
        ["row", "source"] + list(result.instances),
        title=None,
    )
    for label in result.model_rows:
        table.add_row(
            [label, "model"] + [_fmt(v) for v in result.model_rows[label]]
        )
        if label in result.paper_rows:
            table.add_row(
                ["", "paper"] + [_fmt(v) for v in result.paper_rows[label]]
            )
    buf.write(table.render_markdown())
    buf.write("\n\n")
    for line in _metrics_lines(result):
        buf.write(line + "\n")
    for note in result.notes:
        buf.write(f"- note: {note}\n")
    buf.write("\n")
    return buf.getvalue()


def _fmt(v: float) -> str:
    if v >= 1000:
        return f"{v:.0f}"
    if v >= 10:
        return f"{v:.1f}"
    return f"{v:.2f}"


def generate_experiments_md() -> str:
    """The full EXPERIMENTS.md content."""
    buf = io.StringIO()
    buf.write(_HEADER)
    for exp_id in ALL_EXPERIMENT_IDS:
        result = run_experiment(exp_id)
        buf.write(render_markdown_result(result))
    buf.write(_FOOTER)
    return buf.getvalue()


_FOOTER = """## Known gaps

- **Figure 4(a) at pr2392**: the paper shows the speed-up *declining* past
  pr1002 (GPU occupancy collapse plus the bit-packed tabu overhead on the
  C1060).  The model reproduces the bit-packed cost and the shrinking
  blocks, but the fitted occupancy knees under-penalise the effect, so the
  modelled curve keeps rising where the paper's falls.  The crossover
  (GPU overtakes CPU from a280) and the peak band are reproduced.
- **Figure 4(b) small instances**: the paper reports ~7x already at att48;
  the model gives ~2x (C1060).  The paper's sequential side appears to
  carry per-call overheads that a size-independent linear op model cannot
  express without hurting the large-instance fit.
- **Table III, Scatter-to-Gather at pr1002**: the paper's 200.2 s cell
  grows ~14x from d657 where the access-count formula (2 n^4) gives ~5.4x;
  the remaining factor is likely TLB/partition-camping pathology outside
  the model.  The modelled cell (107.6 s) still dwarfs every other version
  by orders of magnitude, which is the finding.
- CPU constants are identified only as a blend (the op classes co-occur in
  fixed ratios); individual nanosecond values are not meaningful.
"""
