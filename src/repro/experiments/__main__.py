"""Command-line entry: ``python -m repro.experiments <command>``.

Commands
--------
``table2 | table3 | table4 | fig4a | fig4b | fig5``
    Run one artefact reproduction and print the model-vs-paper comparison.
``all``
    Run every artefact.
``report [path]``
    Regenerate EXPERIMENTS.md (default: ./EXPERIMENTS.md).
``calibrate``
    Re-run the cost-model fit and print the replacement dictionaries for
    ``repro/experiments/calibration.py``.
"""

from __future__ import annotations

import sys

from repro.experiments.harness import run_experiment
from repro.experiments.report import ALL_EXPERIMENT_IDS, generate_experiments_md


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print(__doc__)
        return 2
    cmd = args[0]

    if cmd in ALL_EXPERIMENT_IDS:
        print(run_experiment(cmd).render())
        return 0

    if cmd == "all":
        for exp_id in ALL_EXPERIMENT_IDS:
            print("=" * 100)
            print(run_experiment(exp_id).render())
        return 0

    if cmd == "report":
        path = args[1] if len(args) > 1 else "EXPERIMENTS.md"
        content = generate_experiments_md()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)
        print(f"wrote {path} ({len(content.splitlines())} lines)")
        return 0

    if cmd == "calibrate":
        from repro.experiments.calibrate import (
            render_calibration_module,
            run_calibration,
        )

        cpu, gpus = run_calibration(verbose=True)
        print(render_calibration_module(cpu, gpus))
        return 0

    print(f"unknown command {cmd!r}; see --help below\n")
    print(__doc__)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
