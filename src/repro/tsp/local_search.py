"""2-opt local search — ACOTSP's companion tour-improvement step.

The paper's evaluation times the pure Ant System, but the ACOTSP code it
compares against ships 2-opt/2.5-opt/3-opt local search, and any practical
ACO deployment runs one of them on the constructed tours.  This module
provides two implementations over the symmetric TSP:

* :func:`two_opt` — the solo reference.  ``mode="best"`` (default)
  evaluates every exchange ``(i, j)`` — replacing edges
  ``(t[i], t[i+1])`` and ``(t[j], t[j+1])`` with ``(t[i], t[j])`` and
  ``(t[i+1], t[j+1])`` — via one vectorised ``(n, n)`` gain matrix per
  pass and applies the single best one; ``mode="sweep"`` applies *every*
  improving move of one gain build (gain-descending, re-checked against
  the current tour before each application), amortising the O(n²) build
  over many exchanges.  The gain buffer is allocated once and reused
  across passes.
* :func:`two_opt_batch` — the batched nn-restricted kernel: per-row
  best-improvement sweeps over ``B`` tours at once, candidates limited to
  each city's ``nn`` nearest neighbours (the ACOTSP candidate-list
  restriction), all gain math in ``(B, n, nn)`` integer tensors through
  the ``xp`` array-module seam with optional
  :class:`~repro.backend.WorkBuffers` scratch.  Row ``b`` is
  bit-identical to :func:`two_opt` with the same ``nn_list`` applied to
  that row alone — the parity invariant
  ``tests/property/test_local_search_parity.py`` pins.

For the symmetric TSP every applied exchange strictly decreases the tour
length, so termination is guaranteed; the result is 2-opt-optimal over the
searched neighbourhood.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ACOConfigError, InvalidTourError
from repro.tsp.tour import tour_length, validate_tour

__all__ = [
    "two_opt",
    "two_opt_batch",
    "TwoOptResult",
    "BatchTwoOptResult",
    "best_exchange",
]

#: "never pick this candidate" gain sentinel (beats -inf: stays integer)
_NEG_GAIN = np.int64(np.iinfo(np.int64).min // 4)


@dataclass
class TwoOptResult:
    """Outcome of a 2-opt run."""

    tour: np.ndarray  # (n + 1) int32 closed tour, 2-opt optimal
    length: int  # final tour length
    initial_length: int
    passes: int  # improvement passes applied
    exchanges: int  # exchanges applied (== passes for best-improvement)
    wall_seconds: float = 0.0  # wall-clock spent inside the search

    @property
    def improvement(self) -> int:
        return self.initial_length - self.length


@dataclass
class BatchTwoOptResult:
    """Outcome of a batched 2-opt run over ``B`` tours."""

    tours: np.ndarray  # (B, n + 1) int32 closed tours (fresh arrays)
    lengths: np.ndarray  # (B,) int64 final lengths
    initial_lengths: np.ndarray  # (B,) int64
    passes: int  # lockstep passes run (max over rows)
    exchanges: np.ndarray  # (B,) int64 exchanges applied per row
    wall_seconds: float = 0.0

    @property
    def improvement(self) -> np.ndarray:
        return self.initial_lengths - self.lengths


def _exchange_mask(n: int) -> np.ndarray:
    """Valid full-matrix exchange pairs: ``i < j`` minus the wrap pair."""
    mask = np.triu(np.ones((n, n), dtype=bool), k=1)
    mask[0, n - 1] = False
    return mask


def _gain_matrix(
    body: np.ndarray,
    dist: np.ndarray,
    out: np.ndarray | None = None,
    invalid: np.ndarray | None = None,
) -> np.ndarray:
    """Gain of every 2-opt exchange on the open tour ``body`` (n cities).

    ``gain[i, j]`` (for ``i < j``) is the length *decrease* from replacing
    edges ``(body[i], body[i+1])`` and ``(body[j], body[(j+1) % n])`` with
    ``(body[i], body[j])`` and ``(body[i+1], body[(j+1) % n])``.
    Invalid/degenerate pairs are set to ``-inf``.  ``out`` supplies a
    reusable ``(n, n)`` float64 buffer and ``invalid`` the precomputed
    complement of :func:`_exchange_mask` (both rebuilt when omitted).
    """
    n = body.shape[0]
    nxt = np.roll(body, -1)
    # removed edges: d(a, a_next) broadcast along rows/cols
    removed = dist[body, nxt]
    rem = removed[:, None] + removed[None, :]
    add = dist[body[:, None], body[None, :]] + dist[nxt[:, None], nxt[None, :]]
    if out is None:
        out = np.empty((n, n), dtype=np.float64)
    np.subtract(rem, add, out=out)
    # only i < j with j != i (adjacent j = i + 1 yields zero gain naturally;
    # the pair (0, n-1) re-creates the same tour, mask it out).
    if invalid is None:
        invalid = ~_exchange_mask(n)
    out[invalid] = -np.inf
    return out


def best_exchange(body: np.ndarray, dist: np.ndarray) -> tuple[int, int, float]:
    """The best 2-opt exchange ``(i, j, gain)`` for an open tour."""
    gain = _gain_matrix(body, dist)
    flat = int(np.argmax(gain))
    i, j = divmod(flat, body.shape[0])
    return i, j, float(gain[i, j])


def two_opt(
    tour: np.ndarray,
    dist: np.ndarray,
    *,
    max_passes: int | None = None,
    min_gain: float = 0.5,
    mode: str = "best",
    nn_list: np.ndarray | None = None,
) -> TwoOptResult:
    """Improve a closed tour to (best-improvement) 2-opt optimality.

    Parameters
    ----------
    tour:
        Closed tour (``n + 1`` entries, first == last).
    dist:
        ``(n, n)`` integer distance matrix.
    max_passes:
        Optional cap on improvement passes (``None`` = run to optimality;
        ``0`` returns the input untouched).
    min_gain:
        Minimum gain to accept an exchange; the default 0.5 accepts every
        strictly positive integer gain while rejecting float-noise zeros.
    mode:
        ``"best"`` applies the single best exchange per gain build (the
        reference semantics); ``"sweep"`` applies every improving move of
        one build in gain-descending order, re-checking each against the
        current tour — far fewer O(n²) builds on long descents.
    nn_list:
        Optional ``(n, nn)`` candidate lists (``instance.nn_lists``): the
        search then only considers exchanges whose removed edge pairs a
        city with one of its ``nn`` nearest neighbours, like ACOTSP.
        Delegates to :func:`two_opt_batch` with ``B = 1`` (``mode`` must
        stay ``"best"``).

    Returns
    -------
    TwoOptResult
        With a validated, closed, 2-opt-optimal tour.

    Examples
    --------
    >>> import numpy as np
    >>> d = np.array([[0, 1, 4, 1], [1, 0, 1, 4], [4, 1, 0, 1], [1, 4, 1, 0]])
    >>> crossed = np.array([0, 2, 1, 3, 0], dtype=np.int32)  # length 4+1+4+1=10
    >>> res = two_opt(crossed, d)
    >>> res.length
    4
    """
    t_start = time.perf_counter()
    if mode not in ("best", "sweep"):
        raise ACOConfigError(f"mode must be 'best' or 'sweep', got {mode!r}")
    if max_passes is not None and max_passes < 0:
        raise ACOConfigError(f"max_passes must be >= 0, got {max_passes}")
    d = np.asarray(dist)
    n = d.shape[0]
    t = validate_tour(np.asarray(tour), n)
    initial = tour_length(t, d)

    if nn_list is not None:
        if mode != "best":
            raise ACOConfigError(
                "nn-restricted 2-opt supports mode='best' only; the sweep "
                "mode is full-matrix"
            )
        res = two_opt_batch(
            t[None],
            d[None],
            nn_list=np.asarray(nn_list, dtype=np.int32)[None],
            max_passes=max_passes,
            min_gain=min_gain,
        )
        return TwoOptResult(
            tour=res.tours[0],
            length=int(res.lengths[0]),
            initial_length=int(res.initial_lengths[0]),
            passes=res.passes,
            exchanges=int(res.exchanges[0]),
            wall_seconds=time.perf_counter() - t_start,
        )

    body = t[:-1].astype(np.int64).copy()
    gain_buf = np.empty((n, n), dtype=np.float64)  # reused across passes
    invalid = ~_exchange_mask(n)
    passes = 0
    exchanges = 0
    if mode == "best":
        while max_passes is None or passes < max_passes:
            passes += 1
            g = _gain_matrix(body, d, out=gain_buf, invalid=invalid)
            flat = int(np.argmax(g))
            i, j = divmod(flat, n)
            if g[i, j] < min_gain:
                passes -= 1  # the final scan found nothing; do not count it
                break
            # reverse the segment between i+1 and j (inclusive)
            body[i + 1 : j + 1] = body[i + 1 : j + 1][::-1]
            exchanges += 1
    else:
        # Sweep mode: one gain build serves many exchanges.  Moves are
        # identified by their end *cities* (positions go stale after each
        # reversal) and re-checked O(1) against the current successors; a
        # re-checked gain is exact for the current tour, so staleness can
        # only skip a move, never corrupt the tour.
        pos = np.empty(n, dtype=np.int64)
        pos[body] = np.arange(n)
        while max_passes is None or passes < max_passes:
            g = _gain_matrix(body, d, out=gain_buf, invalid=invalid)
            flat = g.reshape(-1)
            cand = np.nonzero(flat >= min_gain)[0]
            if cand.size == 0:
                break
            order = np.argsort(-flat[cand], kind="stable")
            snap = body.copy()  # cities at build-time positions
            applied = 0
            for fi in cand[order]:
                i0, j0 = divmod(int(fi), n)
                a, c = int(snap[i0]), int(snap[j0])
                pi, pj = int(pos[a]), int(pos[c])
                ni = int(body[(pi + 1) % n])
                nj = int(body[(pj + 1) % n])
                g2 = int(d[a, ni]) + int(d[c, nj]) - int(d[a, c]) - int(d[ni, nj])
                if g2 < min_gain:
                    continue  # stale: a previous reversal ate this gain
                lo, hi = (pi, pj) if pi < pj else (pj, pi)
                body[lo + 1 : hi + 1] = body[lo + 1 : hi + 1][::-1]
                pos[body[lo + 1 : hi + 1]] = np.arange(lo + 1, hi + 1)
                exchanges += 1
                applied += 1
            if not applied:
                break
            passes += 1

    final = np.concatenate([body, body[:1]]).astype(np.int32)
    length = tour_length(final, d)
    if length > initial:
        raise InvalidTourError(
            f"2-opt increased the tour length ({initial} -> {length}); "
            "this indicates a corrupted distance matrix"
        )
    return TwoOptResult(
        tour=final,
        length=int(length),
        initial_length=int(initial),
        passes=passes,
        exchanges=exchanges,
        wall_seconds=time.perf_counter() - t_start,
    )


def two_opt_batch(
    tours: np.ndarray,
    dist: np.ndarray,
    *,
    nn_list: np.ndarray | None = None,
    lengths: np.ndarray | None = None,
    max_passes: int | None = None,
    min_gain: float = 0.5,
    xp=np,
    work=None,
) -> BatchTwoOptResult:
    """Batched nn-restricted best-improvement 2-opt over ``B`` tours.

    Per pass, every row evaluates the gain of every candidate exchange —
    removed edge ``(c_i, succ_i)`` paired with removed edge
    ``(c_j, succ_j)`` where ``c_j`` ranges over ``c_i``'s candidate list —
    as one ``(B, n, nn)`` integer tensor (no ``(B, n, n)`` materialisation),
    applies the single best exchange per row, and repeats until no row has
    a gain ``>= min_gain``.  Rows proceed in lockstep but never couple:
    row ``b`` is bit-identical to a ``B = 1`` run of that row (integer
    gains have no float ties, and numpy/CuPy argmax both take the first
    maximum), which is what makes the batch a pure throughput transform.

    Parameters
    ----------
    tours:
        ``(B, n + 1)`` int closed tours (not validated; the engine hands in
        tours it already evaluated).
    dist:
        ``(B, n, n)`` integer distances — a broadcast view with a length-1
        batch stride (replicas of one instance) works.
    nn_list:
        ``(B, n, nn)`` candidate lists (broadcast views fine).  ``None``
        searches the full neighbourhood (each city's ``n - 1`` others).
    lengths:
        Optional ``(B,)`` exact initial lengths (skips one gather).
    max_passes:
        Optional cap on lockstep passes (``0`` returns the input untouched).
    min_gain:
        As in :func:`two_opt`.
    xp / work:
        Array module and optional :class:`~repro.backend.WorkBuffers`
        arena (keys namespaced ``ls.*``) — the engine's backend seam.

    Returns
    -------
    BatchTwoOptResult
        Freshly allocated ``tours``/``lengths``; ``exchanges`` counts per
        row, ``passes`` counts lockstep rounds (the max over rows).
    """
    t_start = time.perf_counter()
    if tours.ndim != 2:
        raise InvalidTourError(f"tours must be (B, n + 1), got shape {tours.shape}")
    B, n1 = tours.shape
    n = n1 - 1
    if max_passes is not None and max_passes < 0:
        raise ACOConfigError(f"max_passes must be >= 0, got {max_passes}")
    # (B, n * n) flat distance rows; a view for both real layouts (full
    # stacks and broadcast replicas merge their contiguous trailing axes).
    dflat = dist.reshape(B, n * n)

    def _buf(key: str, shape, dtype):
        if work is None:
            return xp.empty(shape, dtype=dtype)
        return work.get("ls." + key, shape, dtype)

    body = _buf("body", (B, n), np.int64)
    body[...] = tours[:, :-1]
    if lengths is None:
        nxt0 = xp.roll(body, -1, axis=1)
        initial = xp.take_along_axis(dflat, body * n + nxt0, axis=1).sum(axis=1)
    else:
        initial = lengths.astype(np.int64)
    exchanges = xp.zeros(B, dtype=np.int64)
    total_gain = xp.zeros(B, dtype=np.int64)
    passes = 0

    # n <= 3 has no non-degenerate exchange (every pair is adjacent or the
    # wrap pair, both zero-gain on a symmetric matrix); skip the loop so the
    # all-pairs candidate template below never needs width < 1.
    if n >= 4 and (max_passes is None or max_passes > 0):
        if nn_list is None:
            # All-pairs candidates: city c's list is (c + 1 + k) % n for
            # k in [0, n - 1) — every other city, backend-pure to build.
            r = xp.arange(n, dtype=np.int64)
            tpl = (r[:, None] + 1 + xp.arange(n - 1, dtype=np.int64)[None, :]) % n
            nn_arr = xp.broadcast_to(tpl[None], (B, n, n - 1))
        else:
            nn_arr = nn_list
        K = nn_arr.shape[2]

        # city -> position index, maintained across reversals
        pos = _buf("pos", (B, n), np.int64)
        xp.put_along_axis(
            pos,
            body,
            xp.broadcast_to(xp.arange(n, dtype=np.int64), (B, n)),
            axis=1,
        )
        gain = _buf("gain", (B, n, K), np.int64)
        ipos = xp.arange(n, dtype=np.int64)[None, :, None]
        to_host = getattr(xp, "asnumpy", np.asarray)

        while max_passes is None or passes < max_passes:
            succ = xp.roll(body, -1, axis=1)
            removed = xp.take_along_axis(dflat, body * n + succ, axis=1)
            # candidate partner cities of position i: nn rows of city body[i]
            cand = xp.take_along_axis(nn_arr, body[:, :, None], axis=1).astype(
                np.int64
            )
            cflat = cand.reshape(B, n * K)
            jpos = xp.take_along_axis(pos, cflat, axis=1)
            succ_j = xp.take_along_axis(succ, jpos, axis=1).reshape(B, n, K)
            removed_j = xp.take_along_axis(removed, jpos, axis=1).reshape(B, n, K)
            jpos = jpos.reshape(B, n, K)
            d_new1 = xp.take_along_axis(
                dflat, (body[:, :, None] * n + cand).reshape(B, n * K), axis=1
            ).reshape(B, n, K)
            d_new2 = xp.take_along_axis(
                dflat, (succ[:, :, None] * n + succ_j).reshape(B, n * K), axis=1
            ).reshape(B, n, K)
            # gain = removed_i + removed_j - d(c_i, c_j) - d(succ_i, succ_j);
            # adjacent pairs and the wrap pair come out exactly 0 on a
            # symmetric matrix, so min_gain=0.5 rejects them without masks.
            xp.add(removed[:, :, None], removed_j, out=gain)
            xp.subtract(gain, d_new1, out=gain)
            xp.subtract(gain, d_new2, out=gain)
            # a candidate list containing the city itself would fake a gain
            gain[jpos == ipos] = _NEG_GAIN

            flat = gain.reshape(B, n * K)
            bidx = xp.argmax(flat, axis=1)
            bgain = xp.take_along_axis(flat, bidx[:, None], axis=1)[:, 0]
            apply_rows = bgain >= min_gain
            if not bool(apply_rows.any()):
                break
            passes += 1
            i_sel = bidx // K
            j_sel = xp.take_along_axis(
                jpos.reshape(B, n * K), bidx[:, None], axis=1
            )[:, 0]
            # Segment reversals are ragged per row — a small host loop over
            # the improving rows (boundary-time code; B is tens, not
            # thousands).  The reversal between sorted positions realises
            # the computed gain exactly (symmetric matrix).
            h_rows = np.nonzero(to_host(apply_rows))[0]  # lint: ignore[backend-purity]
            h_i = to_host(i_sel)
            h_j = to_host(j_sel)
            for b in h_rows:
                pi, pj = int(h_i[b]), int(h_j[b])
                lo, hi = (pi, pj) if pi < pj else (pj, pi)
                seg = body[b, lo + 1 : hi + 1][::-1].copy()
                body[b, lo + 1 : hi + 1] = seg
                pos[b, seg] = xp.arange(lo + 1, hi + 1, dtype=np.int64)
            exchanges += apply_rows
            total_gain += xp.where(apply_rows, bgain, 0)

    out_tours = xp.empty((B, n + 1), dtype=np.int32)
    out_tours[:, :n] = body
    out_tours[:, n] = body[:, 0]
    return BatchTwoOptResult(
        tours=out_tours,
        lengths=initial - total_gain,
        initial_lengths=initial,
        passes=passes,
        exchanges=exchanges,
        wall_seconds=time.perf_counter() - t_start,
    )
