"""2-opt local search — ACOTSP's companion tour-improvement step.

The paper's evaluation times the pure Ant System, but the ACOTSP code it
compares against ships 2-opt/2.5-opt/3-opt local search, and any practical
ACO deployment runs one of them on the constructed tours.  This module
provides a best-improvement 2-opt:

* each pass evaluates every exchange ``(i, j)`` — replacing edges
  ``(t[i], t[i+1])`` and ``(t[j], t[j+1])`` with ``(t[i], t[j])`` and
  ``(t[i+1], t[j+1])`` — via one vectorised ``(n, n)`` gain matrix,
* the single best exchange is applied (segment reversal) and the pass
  repeats until no exchange improves the tour.

For the symmetric TSP every applied exchange strictly decreases the tour
length, so termination is guaranteed; the result is 2-opt-optimal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidTourError
from repro.tsp.tour import tour_length, validate_tour

__all__ = ["two_opt", "TwoOptResult", "best_exchange"]


@dataclass
class TwoOptResult:
    """Outcome of a 2-opt run."""

    tour: np.ndarray  # (n + 1) int32 closed tour, 2-opt optimal
    length: int  # final tour length
    initial_length: int
    passes: int  # improvement passes applied
    exchanges: int  # exchanges applied (== passes for best-improvement)

    @property
    def improvement(self) -> int:
        return self.initial_length - self.length


def _gain_matrix(body: np.ndarray, dist: np.ndarray) -> np.ndarray:
    """Gain of every 2-opt exchange on the open tour ``body`` (n cities).

    ``gain[i, j]`` (for ``i < j``) is the length *decrease* from replacing
    edges ``(body[i], body[i+1])`` and ``(body[j], body[(j+1) % n])`` with
    ``(body[i], body[j])`` and ``(body[i+1], body[(j+1) % n])``.
    Invalid/degenerate pairs are set to ``-inf``.
    """
    n = body.shape[0]
    nxt = np.roll(body, -1)
    # removed edges: d(a, a_next) broadcast along rows/cols
    removed = dist[body, nxt]
    rem = removed[:, None] + removed[None, :]
    add = dist[body[:, None], body[None, :]] + dist[nxt[:, None], nxt[None, :]]
    gain = rem - add
    # only i < j with j != i (adjacent j = i + 1 yields zero gain naturally;
    # the pair (0, n-1) re-creates the same tour, mask it out).
    mask = np.triu(np.ones((n, n), dtype=bool), k=1)
    mask[0, n - 1] = False
    out = np.where(mask, gain, -np.inf)
    return out


def best_exchange(body: np.ndarray, dist: np.ndarray) -> tuple[int, int, float]:
    """The best 2-opt exchange ``(i, j, gain)`` for an open tour."""
    gain = _gain_matrix(body, dist)
    flat = int(np.argmax(gain))
    i, j = divmod(flat, body.shape[0])
    return i, j, float(gain[i, j])


def two_opt(
    tour: np.ndarray,
    dist: np.ndarray,
    *,
    max_passes: int | None = None,
    min_gain: float = 0.5,
) -> TwoOptResult:
    """Improve a closed tour to (best-improvement) 2-opt optimality.

    Parameters
    ----------
    tour:
        Closed tour (``n + 1`` entries, first == last).
    dist:
        ``(n, n)`` integer distance matrix.
    max_passes:
        Optional cap on improvement passes (``None`` = run to optimality).
    min_gain:
        Minimum gain to accept an exchange; the default 0.5 accepts every
        strictly positive integer gain while rejecting float-noise zeros.

    Returns
    -------
    TwoOptResult
        With a validated, closed, 2-opt-optimal tour.

    Examples
    --------
    >>> import numpy as np
    >>> d = np.array([[0, 1, 4, 1], [1, 0, 1, 4], [4, 1, 0, 1], [1, 4, 1, 0]])
    >>> crossed = np.array([0, 2, 1, 3, 0], dtype=np.int32)  # length 4+1+4+1=10
    >>> res = two_opt(crossed, d)
    >>> res.length
    4
    """
    d = np.asarray(dist)
    n = d.shape[0]
    t = validate_tour(np.asarray(tour), n)
    body = t[:-1].astype(np.int64).copy()
    initial = tour_length(t, d)

    passes = 0
    exchanges = 0
    while max_passes is None or passes < max_passes:
        passes += 1
        i, j, gain = best_exchange(body, d)
        if gain < min_gain:
            passes -= 1  # the final scan found nothing; do not count it
            break
        # reverse the segment between i+1 and j (inclusive)
        body[i + 1 : j + 1] = body[i + 1 : j + 1][::-1]
        exchanges += 1

    final = np.concatenate([body, body[:1]]).astype(np.int32)
    length = tour_length(final, d)
    if length > initial:
        raise InvalidTourError(
            f"2-opt increased the tour length ({initial} -> {length}); "
            "this indicates a corrupted distance matrix"
        )
    return TwoOptResult(
        tour=final,
        length=int(length),
        initial_length=int(initial),
        passes=passes,
        exchanges=exchanges,
    )
