"""Known optimal tour lengths of the real TSPLIB instances.

The synthetic suite preserves instance *sizes*, so these optima do not apply
to it — but when real TSPLIB files are supplied through ``REPRO_TSPLIB_DIR``
(see :mod:`repro.tsp.suite`), solution quality can be reported as a gap to
the proven optimum.  Values from Reinelt's TSPLIB optimal-solutions index.
"""

from __future__ import annotations

from repro.errors import TSPError
from repro.tsp.instance import TSPInstance

__all__ = ["KNOWN_OPTIMA", "known_optimum", "optimality_gap"]

#: Proven optimal tour lengths (TSPLIB's STSP index).
KNOWN_OPTIMA: dict[str, int] = {
    "att48": 10628,
    "kroC100": 20749,
    "a280": 2579,
    "pcb442": 50778,
    "d657": 48912,
    "pr1002": 259045,
    "pr2392": 378032,
}


def known_optimum(name: str) -> int:
    """The proven optimum of a real TSPLIB instance.

    Raises
    ------
    TSPError
        For names outside the paper's suite.
    """
    try:
        return KNOWN_OPTIMA[name]
    except KeyError:
        raise TSPError(
            f"no recorded optimum for {name!r}; known: {sorted(KNOWN_OPTIMA)}"
        ) from None


def optimality_gap(instance: TSPInstance, tour_length: int) -> float | None:
    """Relative gap to the proven optimum, or ``None`` for synthetic data.

    A gap applies only when the instance carries real TSPLIB coordinates;
    synthetic suite instances are detected by their generator comment.

    Returns
    -------
    float | None
        ``(tour_length - optimum) / optimum`` when applicable.
    """
    if instance.name not in KNOWN_OPTIMA:
        return None
    if "synthetic" in (instance.comment or ""):
        return None
    opt = KNOWN_OPTIMA[instance.name]
    return (tour_length - opt) / opt
