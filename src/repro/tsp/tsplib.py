"""TSPLIB 95 parser and writer.

Covers the instance classes the paper's benchmarks use (2-D coordinate
instances with ``EUC_2D``/``ATT`` weights) plus the other common symmetric
formats so real TSPLIB files — when available — drop straight in:

* ``NODE_COORD_SECTION`` with ``EUC_2D``, ``CEIL_2D``, ``MAN_2D``, ``MAX_2D``,
  ``ATT``, ``GEO``;
* ``EDGE_WEIGHT_SECTION`` (``EXPLICIT``) in ``FULL_MATRIX``, ``UPPER_ROW``,
  ``LOWER_ROW``, ``UPPER_DIAG_ROW``, ``LOWER_DIAG_ROW`` layouts.

The parser is line-oriented and forgiving about whitespace, matching the
variety found in the wild; unknown keywords are preserved but ignored.
"""

from __future__ import annotations

import os


import numpy as np

from repro.errors import TSPLIBFormatError, UnsupportedEdgeWeightError
from repro.tsp.instance import TSPInstance

__all__ = ["parse_tsplib", "parse_tsplib_text", "write_tsplib"]

_COORD_TYPES = {"EUC_2D", "CEIL_2D", "MAN_2D", "MAX_2D", "ATT", "GEO"}
_MATRIX_FORMATS = {
    "FULL_MATRIX",
    "UPPER_ROW",
    "LOWER_ROW",
    "UPPER_DIAG_ROW",
    "LOWER_DIAG_ROW",
}
_SECTION_KEYWORDS = {
    "NODE_COORD_SECTION",
    "EDGE_WEIGHT_SECTION",
    "DISPLAY_DATA_SECTION",
    "TOUR_SECTION",
    "EOF",
}


def _split_header(line: str) -> tuple[str, str] | None:
    """Split ``KEY : value`` headers; returns None for section keywords."""
    stripped = line.strip()
    if not stripped:
        return None
    if ":" in stripped:
        key, _, value = stripped.partition(":")
        return key.strip().upper(), value.strip()
    if stripped.upper() in _SECTION_KEYWORDS:
        return None
    # Keyword with no colon and no known section: treat as a bare header.
    return stripped.upper(), ""


def parse_tsplib_text(text: str, *, name_hint: str = "unnamed") -> TSPInstance:
    """Parse TSPLIB content from a string.

    Parameters
    ----------
    text:
        Full file contents.
    name_hint:
        Name used when the file lacks a ``NAME`` header.

    Raises
    ------
    TSPLIBFormatError
        On malformed content.
    UnsupportedEdgeWeightError
        For edge-weight types/formats outside the supported set.
    """
    lines = text.splitlines()
    headers: dict[str, str] = {}
    coords: list[tuple[float, float]] | None = None
    weights: list[float] | None = None

    i = 0
    n_lines = len(lines)
    while i < n_lines:
        raw = lines[i]
        stripped = raw.strip()
        upper = stripped.upper()
        if not stripped:
            i += 1
            continue
        if upper == "EOF":
            break
        if upper == "NODE_COORD_SECTION":
            coords, i = _read_coords(lines, i + 1, headers)
            continue
        if upper == "EDGE_WEIGHT_SECTION":
            weights, i = _read_weights(lines, i + 1)
            continue
        if upper in ("DISPLAY_DATA_SECTION", "TOUR_SECTION"):
            # Skip the section body: it has DIMENSION (or n+1) numeric lines.
            i = _skip_numeric_block(lines, i + 1)
            continue
        kv = _split_header(raw)
        if kv is not None:
            headers[kv[0]] = kv[1]
        i += 1

    return _build_instance(headers, coords, weights, name_hint)


def parse_tsplib(path: str | os.PathLike[str]) -> TSPInstance:
    """Parse a TSPLIB file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    base = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return parse_tsplib_text(text, name_hint=base)


# ------------------------------------------------------------------ sections


def _read_coords(
    lines: list[str], start: int, headers: dict[str, str]
) -> tuple[list[tuple[float, float]], int]:
    dim = _dimension(headers)
    coords: list[tuple[float, float]] = []
    i = start
    while i < len(lines) and len(coords) < dim:
        stripped = lines[i].strip()
        i += 1
        if not stripped:
            continue
        if stripped.upper() == "EOF":
            break
        parts = stripped.split()
        if len(parts) < 3:
            raise TSPLIBFormatError(
                f"node line needs 'index x y', got {stripped!r}", line_no=i
            )
        try:
            x, y = float(parts[1]), float(parts[2])
        except ValueError as exc:
            raise TSPLIBFormatError(f"bad coordinate in {stripped!r}", line_no=i) from exc
        coords.append((x, y))
    if len(coords) != dim:
        raise TSPLIBFormatError(
            f"NODE_COORD_SECTION has {len(coords)} nodes, DIMENSION says {dim}"
        )
    return coords, i


def _read_weights(lines: list[str], start: int) -> tuple[list[float], int]:
    weights: list[float] = []
    i = start
    while i < len(lines):
        stripped = lines[i].strip()
        if not stripped:
            i += 1
            continue
        upper = stripped.upper()
        if upper in _SECTION_KEYWORDS or ":" in stripped:
            break
        try:
            weights.extend(float(tok) for tok in stripped.split())
        except ValueError as exc:
            raise TSPLIBFormatError(
                f"bad weight token in {stripped!r}", line_no=i + 1
            ) from exc
        i += 1
    return weights, i


def _skip_numeric_block(lines: list[str], start: int) -> int:
    i = start
    while i < len(lines):
        stripped = lines[i].strip()
        if stripped and (stripped.upper() in _SECTION_KEYWORDS or ":" in stripped):
            return i
        i += 1
    return i


def _dimension(headers: dict[str, str]) -> int:
    try:
        dim = int(headers["DIMENSION"])
    except KeyError:
        raise TSPLIBFormatError("missing DIMENSION header") from None
    except ValueError:
        raise TSPLIBFormatError(
            f"DIMENSION must be an integer, got {headers['DIMENSION']!r}"
        ) from None
    if dim < 3:
        raise TSPLIBFormatError(f"DIMENSION must be >= 3, got {dim}")
    return dim


# ----------------------------------------------------------------- assembly


def _build_instance(
    headers: dict[str, str],
    coords: list[tuple[float, float]] | None,
    weights: list[float] | None,
    name_hint: str,
) -> TSPInstance:
    name = headers.get("NAME", name_hint) or name_hint
    comment = headers.get("COMMENT", "")
    ewt = headers.get("EDGE_WEIGHT_TYPE", "EUC_2D").upper()
    dim = _dimension(headers)

    if ewt in _COORD_TYPES:
        if coords is None:
            raise TSPLIBFormatError(
                f"EDGE_WEIGHT_TYPE {ewt} requires a NODE_COORD_SECTION"
            )
        return TSPInstance(
            name=name,
            coords=np.asarray(coords, dtype=np.float64),
            edge_weight_type=ewt,
            comment=comment,
        )

    if ewt == "EXPLICIT":
        if weights is None:
            raise TSPLIBFormatError("EXPLICIT instances need an EDGE_WEIGHT_SECTION")
        fmt = headers.get("EDGE_WEIGHT_FORMAT", "FULL_MATRIX").upper()
        matrix = _assemble_matrix(np.asarray(weights, dtype=np.float64), dim, fmt)
        coords_arr = np.asarray(coords, dtype=np.float64) if coords else None
        return TSPInstance(
            name=name,
            coords=coords_arr,
            explicit_matrix=matrix,
            comment=comment,
        )

    raise UnsupportedEdgeWeightError(
        f"EDGE_WEIGHT_TYPE {ewt!r} is not supported; "
        f"supported: {sorted(_COORD_TYPES | {'EXPLICIT'})}"
    )


def _assemble_matrix(flat: np.ndarray, n: int, fmt: str) -> np.ndarray:
    """Expand a flat EDGE_WEIGHT_SECTION into a full symmetric matrix."""
    if fmt not in _MATRIX_FORMATS:
        raise UnsupportedEdgeWeightError(
            f"EDGE_WEIGHT_FORMAT {fmt!r} is not supported; supported: {sorted(_MATRIX_FORMATS)}"
        )
    expected = {
        "FULL_MATRIX": n * n,
        "UPPER_ROW": n * (n - 1) // 2,
        "LOWER_ROW": n * (n - 1) // 2,
        "UPPER_DIAG_ROW": n * (n + 1) // 2,
        "LOWER_DIAG_ROW": n * (n + 1) // 2,
    }[fmt]
    if flat.size != expected:
        raise TSPLIBFormatError(
            f"{fmt} of dimension {n} needs {expected} weights, got {flat.size}"
        )

    out = np.zeros((n, n), dtype=np.float64)
    if fmt == "FULL_MATRIX":
        out[:] = flat.reshape(n, n)
    elif fmt in ("UPPER_ROW", "UPPER_DIAG_ROW"):
        k = 0 if fmt == "UPPER_DIAG_ROW" else 1
        iu = np.triu_indices(n, k=k)
        out[iu] = flat
        out.T[iu] = flat
    else:  # LOWER_ROW, LOWER_DIAG_ROW
        k = 0 if fmt == "LOWER_DIAG_ROW" else -1
        il = np.tril_indices(n, k=k)
        out[il] = flat
        out.T[il] = flat
    np.fill_diagonal(out, 0.0)
    return out.astype(np.int64)


# ------------------------------------------------------------------- writer


def write_tsplib(instance: TSPInstance, path: str | os.PathLike[str]) -> None:
    """Write a coordinate-based instance in TSPLIB format.

    Explicit-matrix instances are written as ``FULL_MATRIX``.
    """
    lines: list[str] = [
        f"NAME : {instance.name}",
        f"COMMENT : {instance.comment or 'written by repro.tsp'}",
        "TYPE : TSP",
        f"DIMENSION : {instance.n}",
    ]
    if instance.edge_weight_type != "EXPLICIT":
        assert instance.coords is not None
        lines.append(f"EDGE_WEIGHT_TYPE : {instance.edge_weight_type}")
        lines.append("NODE_COORD_SECTION")
        for i, (x, y) in enumerate(instance.coords, start=1):
            lines.append(f"{i} {x:.6f} {y:.6f}")
    else:
        lines.append("EDGE_WEIGHT_TYPE : EXPLICIT")
        lines.append("EDGE_WEIGHT_FORMAT : FULL_MATRIX")
        lines.append("EDGE_WEIGHT_SECTION")
        matrix = instance.distance_matrix()
        lines.extend(" ".join(str(int(v)) for v in row) for row in matrix)
    lines.append("EOF")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")
