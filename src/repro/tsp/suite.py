"""The paper's benchmark suite, recreated synthetically by name and size.

Table II uses seven TSPLIB instances; Tables III/IV and the figures use the
first six.  The original data files are not available offline, so
:func:`load_instance` produces deterministic synthetic instances with the
**same name, city count and TSPLIB edge-weight type** (att48 uses the ATT
pseudo-Euclidean metric; the rest are EUC_2D).  Generator families are chosen
to mirror the geometric character of the originals (geography vs drilled
boards); see DESIGN.md's substitution table for the argument why only n and
nn matter for the kernel-cost results.

If a real TSPLIB file for the requested name is present in the directory
named by the ``REPRO_TSPLIB_DIR`` environment variable, it is parsed and used
instead of the synthetic instance.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Literal

from repro.errors import TSPError
from repro.tsp.generator import clustered_instance, grid_instance, uniform_instance
from repro.tsp.instance import TSPInstance

__all__ = [
    "PAPER_INSTANCE_NAMES",
    "TABLE2_INSTANCES",
    "TABLE3_INSTANCES",
    "SuiteEntry",
    "load_instance",
    "paper_suite",
]

_GeneratorKind = Literal["uniform", "clustered", "grid"]


@dataclass(frozen=True)
class SuiteEntry:
    """Metadata for one named benchmark instance."""

    name: str
    n: int
    edge_weight_type: str
    family: _GeneratorKind
    seed: int
    origin: str  # what the real TSPLIB instance is, for documentation


#: The suite in the order the paper's tables print it.
_SUITE: dict[str, SuiteEntry] = {
    e.name: e
    for e in [
        SuiteEntry("att48", 48, "ATT", "clustered", 48001, "48 US state capitals"),
        SuiteEntry("kroC100", 100, "EUC_2D", "uniform", 100003, "Krolak/Felts/Nelson 100-city"),
        SuiteEntry("a280", 280, "EUC_2D", "grid", 280001, "drilling problem (Ludwig)"),
        SuiteEntry("pcb442", 442, "EUC_2D", "grid", 442001, "printed circuit board (Groetschel/Juenger/Reinelt)"),
        SuiteEntry("d657", 657, "EUC_2D", "clustered", 657001, "drilling problem (Reinelt)"),
        SuiteEntry("pr1002", 1002, "EUC_2D", "uniform", 1002001, "Padberg/Rinaldi 1002-city"),
        SuiteEntry("pr2392", 2392, "EUC_2D", "grid", 2392001, "Padberg/Rinaldi 2392-city"),
    ]
}

#: Instance names used by Table II (all seven).
PAPER_INSTANCE_NAMES: tuple[str, ...] = tuple(_SUITE)

#: Table II columns.
TABLE2_INSTANCES: tuple[str, ...] = PAPER_INSTANCE_NAMES

#: Tables III/IV and the figures stop at pr1002.
TABLE3_INSTANCES: tuple[str, ...] = PAPER_INSTANCE_NAMES[:-1]

_CACHE: dict[str, TSPInstance] = {}


def _generate(entry: SuiteEntry) -> TSPInstance:
    kwargs = dict(seed=entry.seed, name=entry.name, edge_weight_type=entry.edge_weight_type)
    if entry.family == "uniform":
        return uniform_instance(entry.n, **kwargs)
    if entry.family == "clustered":
        return clustered_instance(entry.n, clusters=max(4, entry.n // 60), **kwargs)
    return grid_instance(entry.n, **kwargs)


def _try_real_file(name: str) -> TSPInstance | None:
    directory = os.environ.get("REPRO_TSPLIB_DIR")
    if not directory:
        return None
    path = os.path.join(directory, f"{name}.tsp")
    if not os.path.isfile(path):
        return None
    from repro.tsp.tsplib import parse_tsplib

    return parse_tsplib(path)


def load_instance(name: str, *, use_cache: bool = True) -> TSPInstance:
    """Load a paper-suite instance by name (synthetic unless a real file exists).

    Parameters
    ----------
    name:
        One of :data:`PAPER_INSTANCE_NAMES`.
    use_cache:
        Reuse a previously built instance (distance matrices are expensive
        for pr2392); pass ``False`` to force a rebuild.

    Raises
    ------
    TSPError
        For unknown names.
    """
    try:
        entry = _SUITE[name]
    except KeyError:
        raise TSPError(
            f"unknown paper instance {name!r}; known: {list(_SUITE)}"
        ) from None
    if use_cache and name in _CACHE:
        return _CACHE[name]
    inst = _try_real_file(name) or _generate(entry)
    if inst.n != entry.n:
        raise TSPError(
            f"instance {name!r} has n={inst.n}, expected {entry.n} "
            "(a real TSPLIB file with the wrong content?)"
        )
    if use_cache:
        _CACHE[name] = inst
    return inst


def paper_suite(names: tuple[str, ...] = PAPER_INSTANCE_NAMES) -> list[TSPInstance]:
    """Load several suite instances (default: all of Table II's columns)."""
    return [load_instance(n) for n in names]


def suite_entry(name: str) -> SuiteEntry:
    """Expose the metadata record for a named instance."""
    try:
        return _SUITE[name]
    except KeyError:
        raise TSPError(f"unknown paper instance {name!r}") from None
