"""Deterministic synthetic TSP instance generators.

The original TSPLIB data files are not redistributable inside this offline
environment, so the paper's benchmark suite is recreated from seeded
generators (see :mod:`repro.tsp.suite`).  Three families are provided:

* :func:`uniform_instance` — i.i.d. uniform points, the classical random
  Euclidean TSP model (matches the "spread cities" structure of kroC100/pr
  instances well enough for kernel-cost purposes);
* :func:`clustered_instance` — Gaussian clusters, mimicking instances derived
  from real geography (att48, d657);
* :func:`grid_instance` — jittered grid points, mimicking drilled-board
  instances (a280, pcb442, pr2392 are drilling/board layouts).

Kernel cost in the reproduced paper depends on the instance *size* (and the
candidate-list width), not on coordinate values, so any of these preserves
the relevant behaviour; the families mostly matter for the solution-quality
examples.
"""

from __future__ import annotations

import numpy as np

from repro.tsp.instance import TSPInstance

__all__ = ["uniform_instance", "clustered_instance", "grid_instance"]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence(seed))


def uniform_instance(
    n: int,
    *,
    seed: int,
    name: str | None = None,
    edge_weight_type: str = "EUC_2D",
    box: float = 10_000.0,
) -> TSPInstance:
    """Uniform random points in ``[0, box]^2``.

    Parameters
    ----------
    n:
        Number of cities (>= 3).
    seed:
        Generator seed; equal seeds give identical instances.
    name:
        Instance name; defaults to ``"uniform<n>"``.
    edge_weight_type:
        TSPLIB distance type for the instance.
    box:
        Side length of the coordinate square.
    """
    if n < 3:
        raise ValueError(f"n must be >= 3, got {n}")
    rng = _rng(seed)
    coords = rng.uniform(0.0, box, size=(n, 2))
    return TSPInstance(
        name=name or f"uniform{n}",
        coords=coords,
        edge_weight_type=edge_weight_type,
        comment=f"synthetic uniform instance (seed={seed})",
    )


def clustered_instance(
    n: int,
    *,
    seed: int,
    clusters: int = 8,
    name: str | None = None,
    edge_weight_type: str = "EUC_2D",
    box: float = 10_000.0,
    spread: float = 0.06,
) -> TSPInstance:
    """Gaussian-cluster points: ``clusters`` centres, isotropic noise.

    ``spread`` is the cluster standard deviation as a fraction of ``box``.
    """
    if n < 3:
        raise ValueError(f"n must be >= 3, got {n}")
    if clusters < 1:
        raise ValueError(f"clusters must be >= 1, got {clusters}")
    rng = _rng(seed)
    centers = rng.uniform(0.15 * box, 0.85 * box, size=(clusters, 2))
    assign = rng.integers(0, clusters, size=n)
    coords = centers[assign] + rng.normal(0.0, spread * box, size=(n, 2))
    coords = np.clip(coords, 0.0, box)
    return TSPInstance(
        name=name or f"clustered{n}",
        coords=coords,
        edge_weight_type=edge_weight_type,
        comment=f"synthetic clustered instance (seed={seed}, clusters={clusters})",
    )


def grid_instance(
    n: int,
    *,
    seed: int,
    name: str | None = None,
    edge_weight_type: str = "EUC_2D",
    pitch: float = 100.0,
    jitter: float = 0.15,
) -> TSPInstance:
    """Jittered-grid points, emulating drilled-board TSPLIB instances.

    Cities sit on a near-square grid with spacing ``pitch``; each is
    displaced by uniform noise of amplitude ``jitter * pitch``.  Excess grid
    slots are dropped at random so exactly ``n`` cities remain.
    """
    if n < 3:
        raise ValueError(f"n must be >= 3, got {n}")
    rng = _rng(seed)
    side = int(np.ceil(np.sqrt(n)))
    xs, ys = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    pts = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(np.float64) * pitch
    keep = rng.permutation(pts.shape[0])[:n]
    coords = pts[np.sort(keep)]
    coords = coords + rng.uniform(-jitter * pitch, jitter * pitch, size=coords.shape)
    coords -= coords.min(axis=0)
    return TSPInstance(
        name=name or f"grid{n}",
        coords=coords,
        edge_weight_type=edge_weight_type,
        comment=f"synthetic jittered-grid instance (seed={seed})",
    )
