"""Tour utilities: validation, length, edges, heuristic constructions.

A tour is stored the ACOTSP way: an ``int32`` array of ``n + 1`` city
indices whose last entry repeats the first (the closing edge is explicit).
The GPU kernels in the paper use the same layout — it is what makes the
"thread per tour position" pheromone-deposit kernels natural.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidTourError

__all__ = [
    "tour_length",
    "tour_lengths",
    "tour_lengths_batch",
    "tour_edges",
    "validate_tour",
    "random_tour",
    "nearest_neighbor_tour",
    "close_tour",
]


def close_tour(perm: np.ndarray) -> np.ndarray:
    """Append the starting city to a permutation, yielding the n+1 layout."""
    perm = np.asarray(perm, dtype=np.int32)
    if perm.ndim != 1:
        raise InvalidTourError(f"permutation must be 1-D, got shape {perm.shape}")
    return np.concatenate([perm, perm[:1]])


def validate_tour(tour: np.ndarray, n: int) -> np.ndarray:
    """Validate the closed-tour layout; returns the tour as ``int32``.

    Raises
    ------
    InvalidTourError
        If the tour has the wrong length, is not closed, visits a city twice
        or references a city outside ``[0, n)``.
    """
    t = np.asarray(tour)
    if t.ndim != 1 or t.shape[0] != n + 1:
        raise InvalidTourError(
            f"tour must have n + 1 = {n + 1} entries, got shape {t.shape}"
        )
    t = t.astype(np.int32, copy=False)
    if t[0] != t[-1]:
        raise InvalidTourError(
            f"tour must be closed (first == last), got {t[0]} != {t[-1]}"
        )
    body = t[:-1]
    if body.min(initial=0) < 0 or body.max(initial=0) >= n:
        raise InvalidTourError("tour references a city outside [0, n)")
    counts = np.bincount(body, minlength=n)
    if not np.all(counts == 1):
        dupes = np.nonzero(counts != 1)[0][:5]
        raise InvalidTourError(f"tour is not a permutation (bad cities: {dupes.tolist()})")
    return t


def tour_length(tour: np.ndarray, dist: np.ndarray) -> int:
    """Length of a closed tour under an integer distance matrix."""
    t = np.asarray(tour, dtype=np.int64)
    return int(dist[t[:-1], t[1:]].sum())


def tour_lengths(tours: np.ndarray, dist: np.ndarray) -> np.ndarray:
    """Vectorised lengths of ``(m, n + 1)`` closed tours; returns ``int64``."""
    t = np.asarray(tours, dtype=np.int64)
    if t.ndim != 2:
        raise InvalidTourError(f"tours must be (m, n + 1), got shape {t.shape}")
    return dist[t[:, :-1], t[:, 1:]].sum(axis=1)


def tour_lengths_batch(
    tours: np.ndarray, dist: np.ndarray, xp=np, work=None
) -> np.ndarray:
    """Lengths of ``(B, m, n + 1)`` closed tours under ``(B, n, n)`` distances.

    ``dist`` may be a broadcast view with a length-1 batch axis (replicas of
    one instance); row ``b`` equals ``tour_lengths(tours[b], dist[b])``.
    ``xp`` selects the array module when tours/distances live on a non-numpy
    backend (integer sums, so every backend returns identical values — and
    integer addition is exact, so the two gather spellings below cannot
    diverge either).

    ``work`` optionally supplies a :class:`~repro.backend.WorkBuffers`
    arena: the int64 tour copy and the flat edge-index scratch are then
    hoisted across iterations instead of reallocated per call.  The returned
    lengths array is always freshly allocated (it escapes into reports).
    """
    if work is None:
        t = xp.asarray(tours, dtype=np.int64)
        if t.ndim != 3:
            raise InvalidTourError(f"tours must be (B, m, n + 1), got shape {t.shape}")
        b_idx = xp.arange(t.shape[0])[:, None, None]
        return dist[b_idx, t[:, :, :-1], t[:, :, 1:]].sum(axis=2)
    if tours.ndim != 3:
        raise InvalidTourError(f"tours must be (B, m, n + 1), got shape {tours.shape}")
    B, m, n1 = tours.shape
    n = n1 - 1
    t = work.get("tourlen.t", (B, m, n1), np.int64)
    t[...] = tours
    idx = work.get("tourlen.idx", (B, m, n), np.int64)
    xp.multiply(t[:, :, :-1], n, out=idx)
    xp.add(idx, t[:, :, 1:], out=idx)
    # (B, n * n) flat distance rows; a view for both real layouts (full
    # stacks and broadcast replicas merge their contiguous trailing axes).
    d = xp.take_along_axis(dist.reshape(B, n * n), idx.reshape(B, m * n), axis=1)
    return d.reshape(B, m, n).sum(axis=2)


def tour_edges(tour: np.ndarray) -> np.ndarray:
    """Directed edge list ``(n, 2)`` of a closed tour."""
    t = np.asarray(tour, dtype=np.int32)
    return np.stack([t[:-1], t[1:]], axis=1)


def random_tour(n: int, rng: np.random.Generator) -> np.ndarray:
    """A uniformly random closed tour over ``n`` cities."""
    return close_tour(rng.permutation(n).astype(np.int32))


def nearest_neighbor_tour(dist: np.ndarray, start: int = 0) -> np.ndarray:
    """Greedy nearest-neighbour heuristic tour.

    ACOTSP seeds the pheromone matrix with ``tau0 = m / C_nn`` where ``C_nn``
    is the length of this tour, so the heuristic is part of the substrate.

    Parameters
    ----------
    dist:
        ``(n, n)`` distance matrix.
    start:
        Starting city.

    Returns
    -------
    numpy.ndarray
        Closed tour of ``n + 1`` ``int32`` entries.
    """
    d = np.asarray(dist, dtype=np.float64)
    n = d.shape[0]
    if not 0 <= start < n:
        raise InvalidTourError(f"start city {start} outside [0, {n})")
    visited = np.zeros(n, dtype=bool)
    perm = np.empty(n, dtype=np.int32)
    perm[0] = start
    visited[start] = True
    cur = start
    # The O(n^2) greedy scan; each step vectorises the candidate search.
    masked = d.copy()
    masked[:, start] = np.inf
    for step in range(1, n):
        row = masked[cur]
        nxt = int(np.argmin(row))
        perm[step] = nxt
        visited[nxt] = True
        masked[:, nxt] = np.inf
        cur = nxt
    return close_tour(perm)
