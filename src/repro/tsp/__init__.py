"""TSP substrate: instances, TSPLIB I/O, distances, tours, neighbour lists.

The paper evaluates on seven TSPLIB instances (att48, kroC100, a280, pcb442,
d657, pr1002, pr2392).  This subpackage provides:

* a TSPLIB parser/writer covering the edge-weight types those instances use
  (and the other common ones), so real TSPLIB files work when available;
* vectorised distance-matrix construction with TSPLIB-exact integer rounding;
* nearest-neighbour candidate lists (the paper's ``NNList``, nn = 30);
* tour utilities (validation, length, nearest-neighbour heuristic tours); and
* deterministic synthetic generators plus :mod:`repro.tsp.suite`, which
  recreates the paper's instances by **name and size** when the original data
  files are not on disk (see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

from repro.tsp.distances import (
    EDGE_WEIGHT_FUNCTIONS,
    att_distance_matrix,
    ceil2d_distance_matrix,
    distance_matrix_from_coords,
    euc2d_distance_matrix,
    geo_distance_matrix,
)
from repro.tsp.generator import (
    clustered_instance,
    grid_instance,
    uniform_instance,
)
from repro.tsp.instance import TSPInstance
from repro.tsp.local_search import TwoOptResult, two_opt
from repro.tsp.neighbors import nearest_neighbor_lists
from repro.tsp.optima import KNOWN_OPTIMA, known_optimum, optimality_gap
from repro.tsp.suite import PAPER_INSTANCE_NAMES, load_instance, paper_suite
from repro.tsp.tour import (
    nearest_neighbor_tour,
    random_tour,
    tour_edges,
    tour_length,
    validate_tour,
)
from repro.tsp.tsplib import parse_tsplib, parse_tsplib_text, write_tsplib

__all__ = [
    "TSPInstance",
    "parse_tsplib",
    "parse_tsplib_text",
    "write_tsplib",
    "distance_matrix_from_coords",
    "euc2d_distance_matrix",
    "ceil2d_distance_matrix",
    "att_distance_matrix",
    "geo_distance_matrix",
    "EDGE_WEIGHT_FUNCTIONS",
    "nearest_neighbor_lists",
    "tour_length",
    "tour_edges",
    "validate_tour",
    "random_tour",
    "nearest_neighbor_tour",
    "two_opt",
    "TwoOptResult",
    "uniform_instance",
    "clustered_instance",
    "grid_instance",
    "load_instance",
    "paper_suite",
    "PAPER_INSTANCE_NAMES",
    "KNOWN_OPTIMA",
    "known_optimum",
    "optimality_gap",
]
