"""TSPLIB distance functions, vectorised over full coordinate sets.

Every function follows the TSPLIB 95 specification *exactly*, including its
integer rounding conventions (``nint(x) = int(x + 0.5)`` for non-negative x),
because ACO tour lengths — and hence pheromone deposits ``1/C_k`` — are
defined over these integer distances.  All matrix builders return ``int64``
arrays with a zero diagonal.

The inner computations use numpy broadcasting over ``(n, 1, 2) - (1, n, 2)``
coordinate differences, the cache-friendly idiom recommended by the
scientific-python optimisation guide, rather than per-pair Python loops.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

__all__ = [
    "nint",
    "euc2d_distance_matrix",
    "ceil2d_distance_matrix",
    "man2d_distance_matrix",
    "max2d_distance_matrix",
    "att_distance_matrix",
    "geo_distance_matrix",
    "distance_matrix_from_coords",
    "EDGE_WEIGHT_FUNCTIONS",
]

_GEO_PI = 3.141592  # TSPLIB uses this truncated constant, not math.pi
_GEO_RRR = 6378.388  # TSPLIB Earth radius in km


def nint(x: np.ndarray) -> np.ndarray:
    """TSPLIB's ``nint``: truncation of ``x + 0.5`` (x is always >= 0 here)."""
    return np.floor(np.asarray(x, dtype=np.float64) + 0.5).astype(np.int64)


def _coords(coords: np.ndarray) -> np.ndarray:
    arr = np.asarray(coords, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"coords must have shape (n, 2), got {arr.shape}")
    return arr


def _pairwise_deltas(coords: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return broadcast coordinate differences ``(dx, dy)``, each ``(n, n)``."""
    c = _coords(coords)
    dx = c[:, None, 0] - c[None, :, 0]
    dy = c[:, None, 1] - c[None, :, 1]
    return dx, dy


def euc2d_distance_matrix(coords: np.ndarray) -> np.ndarray:
    """``EUC_2D``: rounded Euclidean distance, ``nint(sqrt(dx^2 + dy^2))``."""
    dx, dy = _pairwise_deltas(coords)
    return nint(np.sqrt(dx * dx + dy * dy))


def ceil2d_distance_matrix(coords: np.ndarray) -> np.ndarray:
    """``CEIL_2D``: Euclidean distance rounded up."""
    dx, dy = _pairwise_deltas(coords)
    return np.ceil(np.sqrt(dx * dx + dy * dy) - 1e-12).astype(np.int64)


def man2d_distance_matrix(coords: np.ndarray) -> np.ndarray:
    """``MAN_2D``: rounded Manhattan distance."""
    dx, dy = _pairwise_deltas(coords)
    return nint(np.abs(dx) + np.abs(dy))


def max2d_distance_matrix(coords: np.ndarray) -> np.ndarray:
    """``MAX_2D``: maximum of the rounded per-axis distances."""
    dx, dy = _pairwise_deltas(coords)
    return np.maximum(nint(np.abs(dx)), nint(np.abs(dy)))


def att_distance_matrix(coords: np.ndarray) -> np.ndarray:
    """``ATT``: pseudo-Euclidean distance used by att48/att532.

    ``r = sqrt((dx^2 + dy^2) / 10); t = nint(r); d = t + 1 if t < r else t``.
    """
    dx, dy = _pairwise_deltas(coords)
    r = np.sqrt((dx * dx + dy * dy) / 10.0)
    t = nint(r)
    return np.where(t < r, t + 1, t)


def _geo_radians(coords: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """TSPLIB GEO coordinate conversion: DDD.MM (degrees.minutes) to radians."""
    c = _coords(coords)
    deg = np.trunc(c)
    minutes = c - deg
    return tuple(  # type: ignore[return-value]
        (_GEO_PI * (deg[:, i] + 5.0 * minutes[:, i] / 3.0) / 180.0 for i in range(2))
    )


def geo_distance_matrix(coords: np.ndarray) -> np.ndarray:
    """``GEO``: geographical distance on the TSPLIB idealised Earth (km)."""
    lat, lon = _geo_radians(coords)
    q1 = np.cos(lon[:, None] - lon[None, :])
    q2 = np.cos(lat[:, None] - lat[None, :])
    q3 = np.cos(lat[:, None] + lat[None, :])
    arg = 0.5 * ((1.0 + q1) * q2 - (1.0 - q1) * q3)
    # Guard acos domain against float round-off.
    arg = np.clip(arg, -1.0, 1.0)
    d = (_GEO_RRR * np.arccos(arg) + 1.0).astype(np.int64)
    np.fill_diagonal(d, 0)
    return d


#: Map from TSPLIB ``EDGE_WEIGHT_TYPE`` keyword to the matrix builder.
EDGE_WEIGHT_FUNCTIONS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "EUC_2D": euc2d_distance_matrix,
    "CEIL_2D": ceil2d_distance_matrix,
    "MAN_2D": man2d_distance_matrix,
    "MAX_2D": max2d_distance_matrix,
    "ATT": att_distance_matrix,
    "GEO": geo_distance_matrix,
}


def distance_matrix_from_coords(coords: np.ndarray, edge_weight_type: str) -> np.ndarray:
    """Build the full integer distance matrix for a coordinate-based instance.

    Parameters
    ----------
    coords:
        ``(n, 2)`` coordinates.
    edge_weight_type:
        TSPLIB keyword; see :data:`EDGE_WEIGHT_FUNCTIONS`.

    Returns
    -------
    numpy.ndarray
        ``(n, n)`` ``int64`` matrix with zero diagonal.
    """
    try:
        fn = EDGE_WEIGHT_FUNCTIONS[edge_weight_type.upper()]
    except KeyError:
        from repro.errors import UnsupportedEdgeWeightError

        raise UnsupportedEdgeWeightError(
            f"EDGE_WEIGHT_TYPE {edge_weight_type!r} is not supported; "
            f"supported: {sorted(EDGE_WEIGHT_FUNCTIONS)}"
        ) from None
    d = fn(coords)
    np.fill_diagonal(d, 0)
    return d
