"""The :class:`TSPInstance` container.

An instance is either coordinate-based (TSPLIB ``NODE_COORD_SECTION`` plus an
``EDGE_WEIGHT_TYPE``) or explicit-matrix based.  Distance matrices and
nearest-neighbour lists are computed lazily and cached, since several kernel
variants share them within one experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TSPError
from repro.tsp.distances import distance_matrix_from_coords

__all__ = ["TSPInstance"]


@dataclass
class TSPInstance:
    """A symmetric TSP instance.

    Parameters
    ----------
    name:
        Instance name (TSPLIB ``NAME`` field), e.g. ``"att48"``.
    coords:
        ``(n, 2)`` city coordinates, or ``None`` for explicit-matrix instances.
    edge_weight_type:
        TSPLIB keyword (``EUC_2D``, ``ATT``, ...) or ``"EXPLICIT"``.
    explicit_matrix:
        Full ``(n, n)`` distance matrix for ``EXPLICIT`` instances.
    comment:
        Free-text comment (TSPLIB ``COMMENT``).

    Examples
    --------
    >>> import numpy as np
    >>> inst = TSPInstance(name="tri", coords=np.array([[0., 0.], [3., 0.], [0., 4.]]),
    ...                    edge_weight_type="EUC_2D")
    >>> inst.n
    3
    >>> int(inst.distance_matrix()[1, 2])
    5
    """

    name: str
    coords: np.ndarray | None = None
    edge_weight_type: str = "EUC_2D"
    explicit_matrix: np.ndarray | None = None
    comment: str = ""
    _dist: np.ndarray | None = field(default=None, repr=False, compare=False)
    _nn_cache: dict[int, np.ndarray] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.coords is None and self.explicit_matrix is None:
            raise TSPError("TSPInstance needs coords or an explicit matrix")
        if self.coords is not None:
            self.coords = np.asarray(self.coords, dtype=np.float64)
            if self.coords.ndim != 2 or self.coords.shape[1] != 2:
                raise TSPError(f"coords must be (n, 2), got {self.coords.shape}")
            if self.coords.shape[0] < 3:
                raise TSPError("a TSP instance needs at least 3 cities")
        if self.explicit_matrix is not None:
            m = np.asarray(self.explicit_matrix)
            if m.ndim != 2 or m.shape[0] != m.shape[1]:
                raise TSPError(f"explicit matrix must be square, got {m.shape}")
            if self.coords is not None and m.shape[0] != self.coords.shape[0]:
                raise TSPError("explicit matrix size disagrees with coords")
            self.explicit_matrix = m.astype(np.int64, copy=False)
            self.edge_weight_type = "EXPLICIT"

    # ------------------------------------------------------------------ size

    @property
    def n(self) -> int:
        """Number of cities."""
        if self.coords is not None:
            return int(self.coords.shape[0])
        assert self.explicit_matrix is not None
        return int(self.explicit_matrix.shape[0])

    # -------------------------------------------------------------- distances

    def distance_matrix(self) -> np.ndarray:
        """Full integer distance matrix (cached; do not mutate the result)."""
        if self._dist is None:
            if self.explicit_matrix is not None:
                d = self.explicit_matrix.copy()
                np.fill_diagonal(d, 0)
                self._dist = d
            else:
                assert self.coords is not None
                self._dist = distance_matrix_from_coords(
                    self.coords, self.edge_weight_type
                )
        return self._dist

    def heuristic_matrix(self, *, shift: float = 0.1) -> np.ndarray:
        """ACO heuristic ``eta[i, j] = 1 / (d[i, j] + shift)`` as float64.

        The ``shift`` (ACOTSP uses 0.1) keeps ``eta`` finite on the diagonal
        and on zero-distance city pairs.
        """
        d = self.distance_matrix().astype(np.float64)
        return 1.0 / (d + shift)

    def nn_lists(self, nn: int) -> np.ndarray:
        """Nearest-neighbour candidate lists, shape ``(n, nn)`` (cached)."""
        from repro.tsp.neighbors import nearest_neighbor_lists

        key = int(nn)
        if key not in self._nn_cache:
            self._nn_cache[key] = nearest_neighbor_lists(self.distance_matrix(), key)
        return self._nn_cache[key]

    # ------------------------------------------------------------------ misc

    def is_symmetric(self) -> bool:
        """True when the distance matrix equals its transpose."""
        d = self.distance_matrix()
        return bool(np.array_equal(d, d.T))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TSPInstance(name={self.name!r}, n={self.n}, "
            f"edge_weight_type={self.edge_weight_type!r})"
        )
