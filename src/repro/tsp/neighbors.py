"""Nearest-neighbour candidate lists (the paper's ``NNList``).

Version 4 of the tour-construction study restricts the probabilistic choice
to each city's ``nn`` nearest neighbours (the paper uses nn = 30, and notes
values between 15 and 40 are typical).  ACOTSP builds, for every city, the
list of its ``nn`` closest *other* cities sorted by increasing distance; we
reproduce that with a vectorised ``argpartition`` + in-partition sort, which
is O(n^2 + n·nn·log nn) instead of a full O(n^2 log n) sort.
"""

from __future__ import annotations

import numpy as np

__all__ = ["nearest_neighbor_lists"]


def nearest_neighbor_lists(dist: np.ndarray, nn: int) -> np.ndarray:
    """Compute per-city nearest-neighbour lists.

    Parameters
    ----------
    dist:
        ``(n, n)`` symmetric distance matrix.
    nn:
        List length; clipped to ``n - 1`` (a city is never its own neighbour).

    Returns
    -------
    numpy.ndarray
        ``(n, nn)`` ``int32`` array; row ``i`` holds the indices of city
        ``i``'s nearest neighbours in increasing-distance order (ties broken
        by city index, matching a stable sort of the C code).
    """
    d = np.asarray(dist)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValueError(f"dist must be square, got shape {d.shape}")
    n = d.shape[0]
    if nn <= 0:
        raise ValueError(f"nn must be positive, got {nn}")
    nn = min(int(nn), n - 1)

    # Exclude self-loops by masking the diagonal with +inf.
    work = d.astype(np.float64, copy=True)
    np.fill_diagonal(work, np.inf)

    # argpartition pulls the nn smallest per row in O(n); a secondary sort of
    # just those nn entries restores increasing-distance order.
    part = np.argpartition(work, nn - 1, axis=1)[:, :nn]
    part_d = np.take_along_axis(work, part, axis=1)
    # Stable lexicographic order: distance first, then city index.
    order = np.lexsort((part, part_d), axis=1)
    out = np.take_along_axis(part, order, axis=1).astype(np.int32)
    return out
