"""Nearest-neighbour candidate lists (the paper's ``NNList``).

Version 4 of the tour-construction study restricts the probabilistic choice
to each city's ``nn`` nearest neighbours (the paper uses nn = 30, and notes
values between 15 and 40 are typical).  ACOTSP builds, for every city, the
list of its ``nn`` closest *other* cities sorted by increasing distance; we
reproduce that with a vectorised ``argpartition`` + in-partition sort, which
is O(n^2 + n·nn·log nn) instead of a full O(n^2 log n) sort.
"""

from __future__ import annotations

import numpy as np

__all__ = ["nearest_neighbor_lists"]


def nearest_neighbor_lists(dist: np.ndarray, nn: int) -> np.ndarray:
    """Compute per-city nearest-neighbour lists.

    Parameters
    ----------
    dist:
        ``(n, n)`` symmetric distance matrix.
    nn:
        List length; clipped to ``n - 1`` (a city is never its own neighbour).

    Returns
    -------
    numpy.ndarray
        ``(n, nn)`` ``int32`` array; row ``i`` holds the indices of city
        ``i``'s nearest neighbours in increasing-distance order (ties broken
        by city index, matching a stable sort of the C code).
    """
    d = np.asarray(dist)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValueError(f"dist must be square, got shape {d.shape}")
    n = d.shape[0]
    if nn <= 0:
        raise ValueError(f"nn must be positive, got {nn}")
    nn = min(int(nn), n - 1)

    # A plain argpartition on distances picks an *arbitrary* subset when
    # several cities tie at the list boundary; the index tie-break must be
    # part of the partition key.  Integer distances (the ACOTSP convention)
    # admit an exact composite key ``d * n + j`` that makes the order total.
    if np.issubdtype(d.dtype, np.integer) and (
        n == 1 or int(d.max()) < (2**62) // n
    ):
        key = d.astype(np.int64) * n + np.arange(n, dtype=np.int64)
        np.fill_diagonal(key, np.iinfo(np.int64).max)
        part = np.argpartition(key, nn - 1, axis=1)[:, :nn]
        part_key = np.take_along_axis(key, part, axis=1)
        order = np.argsort(part_key, axis=1)
        return np.take_along_axis(part, order, axis=1).astype(np.int32)

    # Generic (float) distances: full per-row lexsort — distance first, city
    # index second — whose prefix is exactly the tie-broken list.  O(n² log n)
    # instead of the integer branch's partition, but this path only runs for
    # non-integer matrices (which no suite instance produces) and only once
    # per instance at load time.
    work = d.astype(np.float64, copy=True)
    np.fill_diagonal(work, np.inf)
    idx = np.broadcast_to(np.arange(n), (n, n))
    order = np.lexsort((idx, work), axis=1)[:, :nn]
    return order.astype(np.int32)
