"""Lint driver: walk paths, build contexts, run rules, collect findings."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from .config import DEFAULT_CONFIG, LintConfig
from .context import FileContext
from .finding import Finding, Severity
from .registry import Rule, select_rules

#: directories never descended into when expanding a path argument
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".venv", "venv", "node_modules", ".pytest_cache", ".ruff_cache"}
)


@dataclass
class LintResult:
    """The outcome of one lint run over a set of paths."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: files that failed to parse: path -> error message.  A syntax error
    #: is itself an error-severity condition (the gate must not silently
    #: skip unparseable code).
    parse_errors: dict[str, str] = field(default_factory=dict)

    @property
    def error_count(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR) + len(
            self.parse_errors
        )

    @property
    def warning_count(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.WARNING)

    @property
    def exit_code(self) -> int:
        return 1 if self.error_count else 0

    def as_dict(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "errors": self.error_count,
            "warnings": self.warning_count,
            "parse_errors": dict(self.parse_errors),
            "findings": [f.as_dict() for f in self.findings],
        }


def iter_python_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    seen: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py") and path not in seen:
                seen.add(path)
                out.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
            for name in sorted(files):
                if not name.endswith(".py"):
                    continue
                full = os.path.join(root, name)
                if full not in seen:
                    seen.add(full)
                    out.append(full)
    return sorted(out)


def lint_paths(
    paths: list[str],
    *,
    rules: list[Rule] | None = None,
    rule_ids: list[str] | None = None,
    config: LintConfig | None = None,
) -> LintResult:
    """Run the (selected) rules over every python file under ``paths``."""
    config = config or DEFAULT_CONFIG
    active = rules if rules is not None else select_rules(rule_ids)
    result = LintResult()
    for path in iter_python_files(paths):
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
            tree = ast.parse(source, filename=path)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            result.parse_errors[path] = str(exc)
            continue
        result.files_checked += 1
        ctx = FileContext(path, source, tree)
        for rule in active:
            for finding in rule.check(ctx, config):
                if ctx.is_suppressed(finding.line, finding.rule):
                    continue
                result.findings.append(finding)
    result.findings.sort()
    return result
