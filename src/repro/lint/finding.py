"""Finding and severity model of the invariant linter.

A :class:`Finding` is one rule violation at one source location.  Rules
attach a :class:`Severity`; only ``ERROR`` findings gate CI (``gpu-aco
lint`` exits 1), ``WARNING`` findings print but pass.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How a finding affects the lint exit status."""

    ERROR = "error"  #: gate: presence fails the lint run
    WARNING = "warning"  #: advisory: printed, never fails the run

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: where, which rule, what and how severe.

    Orders by location first (file, line, col) so reports read like a
    compiler's output; ``as_dict`` is the ``--json`` wire form.
    """

    file: str  #: path as scanned (relative when the scan root was)
    line: int  #: 1-based source line
    col: int  #: 0-based column offset
    rule: str = field(compare=False)  #: rule id, e.g. ``"backend-purity"``
    severity: Severity = field(compare=False)
    message: str = field(compare=False)
    #: the offending source line, stripped (context for the table/report)
    snippet: str = field(compare=False, default="")

    def as_dict(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        """Compiler-style one-liner: ``file:line:col: severity[rule] message``."""
        return (
            f"{self.file}:{self.line}:{self.col}: "
            f"{self.severity.value}[{self.rule}] {self.message}"
        )
