"""repro.lint — AST-based invariant checker for this codebase.

Generic linters cannot see this repo's load-bearing invariants: array
math in hot paths must flow through the ``ArrayBackend`` seam, engine
randomness through seeded ``DeviceRNG`` streams, no host sync inside
``report_every`` K-blocks, and ``ServiceStats`` mutations only under
their lock.  ``repro.lint`` makes each one a machine-checked gate
(``gpu-aco lint``, CI job ``lint-invariants``).

Rules: ``backend-purity``, ``determinism``, ``host-sync``,
``lock-discipline``.  Suppress a single line with ``# lint:
ignore[rule-id]``; mark K-loop interiors with ``# lint: hot-region`` (or
``@hot_region``), worker-thread code with ``# lint: worker-thread`` (or
``@worker_thread``); declare lock ownership with ``# guarded-by:
<lock>`` on the attribute's declaration.
"""

from .config import DEFAULT_CONFIG, LintConfig
from .context import FileContext, module_key
from .finding import Finding, Severity
from .markers import hot_region, worker_thread
from .registry import Rule, all_rules, get_rule, register, select_rules
from .runner import LintResult, iter_python_files, lint_paths

__all__ = [
    "DEFAULT_CONFIG",
    "LintConfig",
    "FileContext",
    "module_key",
    "Finding",
    "Severity",
    "hot_region",
    "worker_thread",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
    "select_rules",
    "LintResult",
    "iter_python_files",
    "lint_paths",
]
