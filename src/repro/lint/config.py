"""Scope and allowlist configuration for the invariant rules.

Every deliberate exception to a rule lives HERE, with a reason string,
rather than as an anonymous inline suppression — the config is the
documentation of why each exception is sound.  Inline ``# lint:
ignore[...]`` comments are reserved for one-off local idioms where the
surrounding code already explains itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _in_scope(module: str, scopes: frozenset[str]) -> bool:
    """True when ``module`` (a :func:`repro.lint.context.module_key`)
    matches one of ``scopes`` — exact file or directory prefix."""
    for scope in scopes:
        if scope.endswith("/"):
            if module.startswith(scope):
                return True
        elif module == scope:
            return True
    return False


@dataclass(frozen=True)
class LintConfig:
    """Rule scoping and documented allowlists."""

    # ------------------------------------------------------ backend-purity
    #: Hot-path modules where array math must flow through the ``xp`` seam
    #: (the numpy path is the parity reference, CuPy the target — raw
    #: ``np.`` calls silently pin work to the host).
    hot_path_modules: frozenset[str] = frozenset(
        {
            "core/batch.py",
            "core/variant.py",
            "core/choice.py",
            "core/construction/",
            "core/pheromone/",
            "tsp/local_search.py",
        }
    )
    #: numpy attributes that are backend-neutral in any context: dtypes,
    #: scalar constants and dtype-introspection helpers.  These carry no
    #: array data, so using them off-seam costs nothing on device.
    np_neutral_attrs: frozenset[str] = frozenset(
        {
            # dtypes
            "float32",
            "float64",
            "int8",
            "int16",
            "int32",
            "int64",
            "uint8",
            "uint16",
            "uint32",
            "uint64",
            "bool_",
            "intp",
            "dtype",
            # scalar constants
            "inf",
            "nan",
            "pi",
            "e",
            "newaxis",
            # dtype/limits introspection (returns python scalars/objects)
            "finfo",
            "iinfo",
            "ndarray",
            "generic",
        }
    )
    #: Calls whose *arguments* are expected to be host arrays:
    #: ``bk.from_host(np.stack(rows))`` stages on the host by design.
    host_staging_callees: frozenset[str] = frozenset({"from_host"})

    # --------------------------------------------------------- determinism
    #: Where engine randomness/time is policed: everything the parity
    #: suites pin bit-exact.
    determinism_scopes: frozenset[str] = frozenset({"core/", "rng/", "tsp/"})
    #: module -> reason; ``time.perf_counter`` is allowed in these modules
    #: because the readings feed observability fields only (phase
    #: accounting, ``wall_seconds``), never the search trajectory.
    perf_counter_allowlist: dict[str, str] = field(
        default_factory=lambda: {
            "core/batch.py": (
                "engine phase accounting (construct/fold/update spans) — "
                "observability only, never feeds the search trajectory"
            ),
            "tsp/local_search.py": (
                "two-opt wall_seconds reporting — observability only"
            ),
        }
    )
    #: module -> reason; seeded private RNG streams pinned as exceptions.
    seeded_rng_allowlist: dict[str, str] = field(
        default_factory=lambda: {
            "obs/metrics.py": (
                "ReservoirHistogram's private seeded random.Random — "
                "sampling noise isolated from engine streams by design"
            ),
        }
    )
    #: Modules exempt from the time-source check entirely (the one place
    #: wall clocks are supposed to live, plus observability).
    time_source_exempt_prefixes: frozenset[str] = frozenset(
        {"util/timer.py", "obs/"}
    )

    # ----------------------------------------------------------- host-sync
    #: method names that force a device→host transfer / stream sync when
    #: called on an array inside a K-loop interior.
    host_sync_methods: frozenset[str] = frozenset({"to_host", "item", "get", "tolist"})
    #: builtins that implicitly sync when applied to a device array.
    host_sync_builtins: frozenset[str] = frozenset({"float", "int", "bool"})

    # ------------------------------------------------------ lock-discipline
    #: guard name meaning "event-loop-confined, not lock-protected":
    #: mutations are flagged only from ``# lint: worker-thread`` functions.
    loop_guard_name: str = "loop"

    def is_hot_path(self, module: str) -> bool:
        return _in_scope(module, self.hot_path_modules)

    def in_determinism_scope(self, module: str) -> bool:
        return _in_scope(module, self.determinism_scopes)

    def time_source_exempt(self, module: str) -> bool:
        return _in_scope(module, self.time_source_exempt_prefixes)


DEFAULT_CONFIG = LintConfig()
