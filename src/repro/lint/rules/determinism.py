"""determinism: engine randomness and time must come from pinned sources.

Inside ``core/``, ``rng/`` and ``tsp/`` the bit-exact parity suites own
every random bit — engine randomness flows through the seeded
``DeviceRNG``/LCG streams.  This rule flags:

* any stdlib ``random`` usage (global stream or ``random.Random``) —
  the engine has no business near it; ``obs.metrics``' private *seeded*
  ``random.Random`` is the pinned exception (see
  ``LintConfig.seeded_rng_allowlist``);
* global-stream ``numpy.random.*`` calls (``np.random.rand`` /
  ``np.random.seed`` …) — they mutate hidden process-wide state;
* *unseeded* numpy RNG construction (``np.random.default_rng()`` with no
  arguments).  Seeded construction (``default_rng(SeedSequence(seed))``
  in ``tsp/generator.py``) is the sanctioned idiom;
* wall-clock reads (``time.time()``, ``perf_counter()`` …) — a time
  value that reaches the search trajectory breaks replayability.
  ``util/timer.py`` and ``obs/`` are exempt wholesale; per-module
  ``perf_counter`` allowlist entries cover observability-only readings
  (engine phase accounting, ``wall_seconds``) with a documented reason.
"""

from __future__ import annotations

import ast

from ..config import LintConfig
from ..context import FileContext
from ..finding import Severity
from ..registry import Rule, register

#: numpy RNG constructors: fine when seeded, flagged when argument-less.
_NP_RNG_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.RandomState",
        "numpy.random.Generator",
    }
)
_TIME_SOURCES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)
_PERF_COUNTERS = frozenset({"time.perf_counter", "time.perf_counter_ns"})


@register
class DeterminismRule(Rule):
    id = "determinism"
    severity = Severity.ERROR
    description = (
        "core/rng/tsp randomness must use seeded DeviceRNG/LCG streams; "
        "no global RNG state or wall-clock reads"
    )

    def check(self, ctx: FileContext, config: LintConfig):
        if not config.in_determinism_scope(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or ctx.in_annotation(node):
                continue
            qual = ctx.qualified(node.func)
            if qual is None:
                continue
            seeded = bool(node.args or node.keywords)
            if qual == "random.Random" or qual.startswith("random."):
                if seeded and ctx.module in config.seeded_rng_allowlist:
                    continue  # documented exception (see LintConfig)
                yield self.finding(
                    ctx,
                    node,
                    f"stdlib `{qual}` in engine scope — randomness must come "
                    "from the seeded DeviceRNG/LCG streams",
                )
            elif qual in _NP_RNG_CONSTRUCTORS:
                if not seeded:
                    yield self.finding(
                        ctx,
                        node,
                        f"unseeded `{qual}()` — construct RNGs from an "
                        "explicit seed so runs replay bit-exact",
                    )
            elif qual.startswith("numpy.random."):
                yield self.finding(
                    ctx,
                    node,
                    f"global-stream `{qual}` mutates hidden process-wide RNG "
                    "state — use a seeded generator instead",
                )
            elif qual in _TIME_SOURCES:
                if config.time_source_exempt(ctx.module):
                    continue
                if (
                    qual in _PERF_COUNTERS
                    and ctx.module in config.perf_counter_allowlist
                ):
                    continue  # documented observability-only reading
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read `{qual}()` in engine scope — time must "
                    "not reach the search trajectory (use util.timer / obs "
                    "seams, or add a documented allowlist entry)",
                )
