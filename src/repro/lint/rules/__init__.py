"""Rule modules — importing this package registers every rule."""

from . import backend_purity, determinism, host_sync, lock_discipline

__all__ = ["backend_purity", "determinism", "host_sync", "lock_discipline"]
