"""host-sync: no device→host transfer inside ``report_every`` K-blocks.

PR 3's amortization win depends on K-iteration blocks staying
device-resident with host transfer only at boundaries — the static twin
of ``test_report_every``'s runtime pin.  Functions are opted in as
K-loop interiors with a ``# lint: hot-region`` comment or the
``@hot_region`` decorator (:mod:`repro.lint.markers`); nested closures
inherit the mark.

Inside a hot region this flags:

* explicit transfer methods: ``.to_host(...)``, ``.item()``,
  ``.tolist()``, and zero-argument ``.get()`` (the CuPy array transfer —
  ``dict.get(key)`` takes arguments and is not flagged);
* implicit syncs: ``float(x)`` / ``int(x)`` / ``bool(x)`` over a
  non-literal operand, which force a scalar off the device.
"""

from __future__ import annotations

import ast

from ..config import LintConfig
from ..context import FileContext
from ..finding import Severity
from ..registry import Rule, register


@register
class HostSyncRule(Rule):
    id = "host-sync"
    severity = Severity.ERROR
    description = (
        "no host transfer/sync (.to_host/.item/.get/float()) inside "
        "# lint: hot-region functions"
    )

    def check(self, ctx: FileContext, config: LintConfig):
        if not ctx.hot_functions:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or ctx.in_annotation(node):
                continue
            if not ctx.in_hot_region(node):
                continue
            fn = node.func
            if isinstance(fn, ast.Attribute) and fn.attr in config.host_sync_methods:
                if fn.attr == "get" and (node.args or node.keywords):
                    continue  # dict.get(key[, default]) — not an array transfer
                yield self.finding(
                    ctx,
                    node,
                    f"`.{fn.attr}()` forces a device→host transfer inside a "
                    "K-loop interior — move it to the report_every boundary",
                )
            elif isinstance(fn, ast.Name) and fn.id in config.host_sync_builtins:
                if len(node.args) == 1 and not isinstance(node.args[0], ast.Constant):
                    yield self.finding(
                        ctx,
                        node,
                        f"`{fn.id}(...)` on a non-literal implicitly syncs a "
                        "device scalar inside a K-loop interior — keep the "
                        "value on-device until the boundary",
                    )
