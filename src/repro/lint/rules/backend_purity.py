"""backend-purity: hot paths must route array math through the ``xp`` seam.

The numpy path is the parity reference and CuPy the target (the whole
point of the paper's GPU strategy mapping) — a raw ``np.`` call inside a
seam function silently pins that op to the host on the CuPy backend.

Scope: the hot-path modules in :class:`~repro.lint.config.LintConfig`.
Within them, a *seam function* is one that receives the backend (a
parameter named ``xp``/``bk``/``backend``) or references ``xp`` — i.e. a
function that was written to be backend-generic.  Direct ``numpy`` calls
there are flagged, except:

* backend-neutral attributes (dtypes, ``inf``, ``finfo`` …) — carry no
  array data;
* arguments of host-staging calls (``bk.from_host(np.stack(rows))``
  builds on the host *by design*);
* ``numpy.random.*`` — that is the determinism rule's jurisdiction.

Host-side setup code (``create()``, solo reference paths) has no ``xp``
in sight and is naturally out of scope.
"""

from __future__ import annotations

import ast

from ..config import LintConfig
from ..context import FileContext, _dotted
from ..finding import Severity
from ..registry import Rule, register

SEAM_PARAMS = frozenset({"xp", "bk", "backend"})


@register
class BackendPurityRule(Rule):
    id = "backend-purity"
    severity = Severity.ERROR
    description = (
        "hot-path seam functions must route array ops through xp, not raw numpy"
    )

    def check(self, ctx: FileContext, config: LintConfig):
        if not config.is_hot_path(ctx.module):
            return
        seam = self._seam_functions(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualified(node.func)
            if qual is None or not qual.startswith("numpy."):
                continue
            if qual.startswith("numpy.random."):
                continue  # determinism rule's jurisdiction
            if ctx.in_annotation(node):
                continue
            fn = ctx.enclosing_function(node)
            if fn is None or id(fn) not in seam:
                continue
            first_attr = qual.split(".")[1]
            if first_attr in config.np_neutral_attrs:
                continue
            if self._in_host_staging(ctx, node, config):
                continue
            dotted = _dotted(node.func) or qual
            yield self.finding(
                ctx,
                node,
                f"direct numpy call `{dotted}` inside seam function "
                f"`{fn.name}` — route through the `xp` backend seam",
            )

    @staticmethod
    def _seam_functions(ctx: FileContext) -> set[int]:
        """ids of backend-generic functions; seam-ness is inherited by
        closures nested inside a seam function."""
        seam: set[int] = set()
        for fn in ctx.functions:
            a = fn.args
            names = {arg.arg for arg in (*a.posonlyargs, *a.args, *a.kwonlyargs)}
            if names & SEAM_PARAMS:
                seam.add(id(fn))
                continue
            for sub in ast.walk(fn):
                if isinstance(sub, ast.Name) and sub.id in SEAM_PARAMS:
                    seam.add(id(fn))
                    break
        changed = True
        while changed:
            changed = False
            for fn in ctx.functions:
                if id(fn) in seam:
                    continue
                parent = ctx.enclosing_function(fn)
                if parent is not None and id(parent) in seam:
                    seam.add(id(fn))
                    changed = True
        return seam

    @staticmethod
    def _in_host_staging(ctx: FileContext, node: ast.AST, config: LintConfig) -> bool:
        for anc in ctx.ancestors(node):
            if (
                isinstance(anc, ast.Call)
                and isinstance(anc.func, ast.Attribute)
                and anc.func.attr in config.host_staging_callees
            ):
                return True
        return False
