"""lock-discipline: guarded attributes may only mutate under their lock.

``# guarded-by: <lock>`` annotations on attribute declarations (dataclass
fields or ``self.x = ...`` in ``__init__``/``__post_init__``) declare the
lock protecting that attribute.  This rule flags any *mutation* of a
guarded attribute — assignment, augmented assignment, subscript store, or
a mutating container-method call (``.append``/``.update``/…) — made via
``self.<attr>`` outside a ``with self.<lock>:`` block.

Reads are deliberately NOT flagged: ``threading.Lock`` is not reentrant,
and this codebase's pattern is unguarded read-only properties invoked
*inside* an already-locked ``snapshot()`` (see ``ServiceStats``).

The special guard name ``loop`` means "event-loop-confined, not
lock-protected": mutation is allowed from loop-side code and flagged only
inside functions marked ``# lint: worker-thread`` (or ``@worker_thread``),
which run on engine worker threads.

Constructor bodies (``__init__``/``__post_init__``) are exempt — the
object is not yet shared.  Scope limitation: only ``self.<attr>`` chains
are matched, i.e. mutations from within the owning class; cross-object
mutations need their own annotation on the owning class.
"""

from __future__ import annotations

import ast

from ..config import LintConfig
from ..context import FileContext
from ..finding import Severity
from ..registry import Rule, register

#: container methods that mutate their receiver in place
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "sort",
    }
)
_CTOR_NAMES = frozenset({"__init__", "__post_init__"})


def _self_attr(node: ast.AST) -> str | None:
    """``self.x`` (possibly behind subscripts: ``self.x[k]``) -> ``"x"``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@register
class LockDisciplineRule(Rule):
    id = "lock-discipline"
    severity = Severity.ERROR
    description = (
        "attributes annotated `# guarded-by: <lock>` must only mutate "
        "under `with self.<lock>:` (guard `loop` = event-loop-confined)"
    )

    def check(self, ctx: FileContext, config: LintConfig):
        if not ctx.guard_comments:
            return
        guards = self._collect_guards(ctx)
        if not any(guards.values()):
            return
        for node in ast.walk(ctx.tree):
            for attr, site in self._mutations(node):
                cls = ctx.enclosing_class(site)
                if cls is None:
                    continue
                lock = guards.get(id(cls), {}).get(attr)
                if lock is None:
                    continue
                fn = ctx.enclosing_function(site)
                if fn is not None and fn.name in _CTOR_NAMES:
                    continue  # not yet shared
                if lock == config.loop_guard_name:
                    if ctx.in_worker_thread(site):
                        yield self.finding(
                            ctx,
                            site,
                            f"`self.{attr}` is event-loop-confined "
                            "(guarded-by: loop) but mutated from a "
                            "worker-thread function — marshal through "
                            "call_soon_threadsafe",
                        )
                elif not self._holds_lock(ctx, site, lock):
                    yield self.finding(
                        ctx,
                        site,
                        f"`self.{attr}` is guarded-by `{lock}` but mutated "
                        f"outside `with self.{lock}:`",
                    )

    # ------------------------------------------------------------ guards

    def _guard_at(self, ctx: FileContext, line: int) -> str | None:
        lock = ctx.guard_comments.get(line)
        if lock is not None:
            return lock
        prev = line - 1
        if prev in ctx.own_line_comments:
            return ctx.guard_comments.get(prev)
        return None

    def _collect_guards(self, ctx: FileContext) -> dict[int, dict[str, str]]:
        """``id(ClassDef) -> {attr name -> lock name}`` from annotations on
        class-body field declarations and ``self.x = ...`` statements."""
        out: dict[int, dict[str, str]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                out.setdefault(id(node), {})
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AnnAssign):
                targets = [node.target]
            elif isinstance(node, ast.Assign):
                targets = node.targets
            else:
                continue
            lock = self._guard_at(ctx, node.lineno)
            if lock is None:
                continue
            cls = ctx.enclosing_class(node)
            if cls is None:
                continue
            for t in targets:
                if isinstance(t, ast.Name):  # class-body field declaration
                    out[id(cls)][t.id] = lock
                else:
                    attr = _self_attr(t)
                    if attr is not None:
                        out[id(cls)][attr] = lock
        return out

    # --------------------------------------------------------- mutations

    @staticmethod
    def _mutations(node: ast.AST):
        """Yield ``(attr, location node)`` for each self-attribute mutation
        expressed by ``node``."""
        if isinstance(node, ast.Assign):
            for t in node.targets:
                attr = _self_attr(t)
                if attr is not None:
                    yield attr, node
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            attr = _self_attr(node.target)
            if attr is not None and (
                not isinstance(node, ast.AnnAssign) or node.value is not None
            ):
                yield attr, node
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
        ):
            attr = _self_attr(node.func.value)
            if attr is not None:
                yield attr, node

    @staticmethod
    def _holds_lock(ctx: FileContext, node: ast.AST, lock: str) -> bool:
        for anc in ctx.ancestors(node):
            if isinstance(anc, (ast.With, ast.AsyncWith)):
                for item in anc.items:
                    expr = item.context_expr
                    attr = _self_attr(expr)
                    if attr == lock:
                        return True
            elif isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A `with self._lock:` in a *calling* frame cannot be seen
                # statically; crossing a function boundary means the lock
                # must be taken (or the site suppressed) in this frame.
                return False
        return False
