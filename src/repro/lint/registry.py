"""Rule base class and registry.

A rule is a class with an ``id``, a ``severity``, a one-line
``description`` and a ``check(ctx, config)`` generator yielding
:class:`~repro.lint.finding.Finding`s.  Rules self-register via the
:func:`register` decorator; the runner iterates :func:`all_rules`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .config import LintConfig
from .context import FileContext
from .finding import Finding, Severity


class Rule:
    """Base class for one invariant check."""

    id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def check(self, ctx: FileContext, config: LintConfig) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover

    def finding(
        self,
        ctx: FileContext,
        node,
        message: str,
        *,
        severity: Severity | None = None,
    ) -> Finding:
        """Build a finding anchored at ``node``'s location."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            file=ctx.path,
            line=line,
            col=col,
            rule=self.id,
            severity=severity or self.severity,
            message=message,
            snippet=ctx.snippet(line),
        )


_RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and index a rule by its id."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _RULES:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _RULES[cls.id] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id (imports the rule package so
    registration side effects have happened)."""
    from . import rules  # noqa: F401  (registration side effect)

    return [_RULES[k] for k in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    from . import rules  # noqa: F401

    try:
        return _RULES[rule_id]
    except KeyError:
        known = ", ".join(sorted(_RULES))
        raise KeyError(f"unknown rule {rule_id!r} (known: {known})") from None


def select_rules(rule_ids: Iterable[str] | None = None) -> list[Rule]:
    if not rule_ids:
        return all_rules()
    return [get_rule(r) for r in rule_ids]
