"""Rendering for lint results: findings table, rule listing, JSON."""

from __future__ import annotations

import json

from ..util.tables import Table
from .registry import Rule
from .runner import LintResult


def render_findings(result: LintResult) -> str:
    """Human-readable report: one table of findings plus a summary line."""
    parts: list[str] = []
    if result.findings:
        table = Table(
            ["location", "severity", "rule", "message"],
            title="lint findings",
        )
        for f in result.findings:
            table.add_row(
                [f"{f.file}:{f.line}:{f.col}", f.severity.value, f.rule, f.message]
            )
        parts.append(table.render())
    for path, err in sorted(result.parse_errors.items()):
        parts.append(f"{path}: error[parse] {err}")
    summary = (
        f"{result.files_checked} files checked: "
        f"{result.error_count} error(s), {result.warning_count} warning(s)"
    )
    parts.append(summary)
    return "\n".join(parts)


def render_json(result: LintResult) -> str:
    return json.dumps(result.as_dict(), indent=2, sort_keys=True)


def render_rule_list(rules: list[Rule]) -> str:
    table = Table(["rule", "severity", "description"], title="lint rules")
    for rule in rules:
        table.add_row([rule.id, rule.severity.value, rule.description])
    return table.render()
