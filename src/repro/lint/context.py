"""Per-file analysis context shared by every lint rule.

One :class:`FileContext` wraps a parsed module with everything rules need
beyond the bare AST:

* **comments** — a line-indexed comment map (via :mod:`tokenize`), the
  carrier for inline suppressions (``# lint: ignore[rule-id]``), region
  markers (``# lint: hot-region``, ``# lint: worker-thread``) and lock
  annotations (``# guarded-by: <lock>``);
* **alias resolution** — ``import numpy as np`` / ``from time import
  perf_counter`` are folded into qualified dotted names, so rules match
  ``numpy.random.rand`` no matter how the module spelled it;
* **structure** — parent links, enclosing-function lookup, and the set of
  nodes that live inside type annotations (skipped by value-flow rules:
  ``x: np.ndarray`` is not a numpy *call*).

Contexts are built once per file by the runner and handed to every rule.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from functools import cached_property

#: ``# lint: ignore[rule-a, rule-b]`` or a bare ``# lint: ignore``
_IGNORE_RE = re.compile(r"lint:\s*ignore(?:\[([^\]]*)\])?")
#: ``# lint: hot-region`` / ``# lint: worker-thread``
_MARKER_RE = re.compile(r"lint:\s*(hot-region|worker-thread)\b")
#: ``# guarded-by: <lock>`` (an attribute name on self, or ``loop``)
_GUARDED_RE = re.compile(r"guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: decorator names recognised as region markers (the decorator-registry
#: alternative to comment markers; see :mod:`repro.lint.markers`)
HOT_REGION_DECORATORS = frozenset({"hot_region"})
WORKER_THREAD_DECORATORS = frozenset({"worker_thread"})


@dataclass
class Suppression:
    """One inline ignore comment: which rules it silences (empty = all)."""

    line: int
    rules: frozenset[str]  #: empty frozenset means "every rule"

    def covers(self, rule_id: str) -> bool:
        return not self.rules or rule_id in self.rules


def module_key(path: str) -> str:
    """The repo-relative classification key rules scope on.

    Paths inside the installed package are normalised to their
    package-relative form (``.../src/repro/core/batch.py`` →
    ``core/batch.py``), so scope configuration is stable no matter where
    the tree was scanned from.  Paths outside a ``repro`` package keep
    their scanned relative form (``benchmarks/conftest.py``).
    """
    p = path.replace("\\", "/")
    for anchor in ("/src/repro/", "src/repro/", "/repro/", "repro/"):
        idx = p.find(anchor)
        if idx != -1:
            return p[idx + len(anchor):]
    return p.lstrip("./")


class FileContext:
    """Everything rules need to analyse one parsed source file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.module = module_key(path)
        self.lines = source.splitlines()
        #: line -> comment text (without the leading ``#``)
        self.comments: dict[int, str] = {}
        #: lines that contain *only* a comment (suppressions there apply to
        #: the following statement line)
        self.own_line_comments: set[int] = set()
        self._scan_comments()
        self.suppressions: dict[int, Suppression] = {
            line: supp for line, supp in self._parse_suppressions()
        }
        #: marker kind -> lines where the marker comment appears
        self.marker_lines: dict[str, list[int]] = {
            "hot-region": [],
            "worker-thread": [],
        }
        for line, text in self.comments.items():
            m = _MARKER_RE.search(text)
            if m:
                self.marker_lines[m.group(1)].append(line)
        #: line -> lock name from a ``# guarded-by:`` annotation
        self.guard_comments: dict[int, str] = {}
        for line, text in self.comments.items():
            g = _GUARDED_RE.search(text)
            if g:
                self.guard_comments[line] = g.group(1)

    # ------------------------------------------------------------- comments

    def _scan_comments(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for tok in tokens:
                if tok.type == tokenize.COMMENT:
                    line = tok.start[0]
                    self.comments[line] = tok.string.lstrip("#").strip()
                    prefix = self.lines[line - 1][: tok.start[1]]
                    if not prefix.strip():
                        self.own_line_comments.add(line)
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            # ast.parse succeeded, so this is effectively unreachable; a
            # comment-less context only loses suppressions/markers.
            pass

    def _parse_suppressions(self):
        for line, text in self.comments.items():
            m = _IGNORE_RE.search(text)
            if m is None:
                continue
            names = m.group(1)
            rules = (
                frozenset(r.strip() for r in names.split(",") if r.strip())
                if names
                else frozenset()
            )
            yield line, Suppression(line=line, rules=rules)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """True when ``line`` carries (or is preceded by a standalone
        comment line carrying) an ignore for ``rule_id``."""
        supp = self.suppressions.get(line)
        if supp is not None and supp.covers(rule_id):
            return True
        prev = line - 1
        if prev in self.own_line_comments:
            supp = self.suppressions.get(prev)
            if supp is not None and supp.covers(rule_id):
                return True
        return False

    # ------------------------------------------------------------ structure

    @cached_property
    def parents(self) -> dict[int, ast.AST]:
        """``id(child) -> parent`` for every node in the tree."""
        out: dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                out[id(child)] = parent
        return out

    def ancestors(self, node: ast.AST):
        """Yield enclosing nodes from the immediate parent to the module."""
        cur = self.parents.get(id(node))
        while cur is not None:
            yield cur
            cur = self.parents.get(id(cur))

    def enclosing_function(self, node: ast.AST):
        """The innermost ``def``/``async def`` containing ``node``."""
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def enclosing_class(self, node: ast.AST):
        for anc in self.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return anc
        return None

    @cached_property
    def functions(self) -> list:
        return [
            n
            for n in ast.walk(self.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def _marked_functions(self, kind: str, decorators: frozenset[str]) -> set[int]:
        """Function ids marked by ``kind`` comments or a known decorator.

        A comment marker marks the innermost function whose span contains
        it; marks are inherited by nested functions (a closure defined in a
        hot region runs in that region).
        """
        marked: set[int] = set()
        for fn in self.functions:
            for deco in fn.decorator_list:
                name = deco.func if isinstance(deco, ast.Call) else deco
                dotted = _dotted(name)
                if dotted is not None and dotted.split(".")[-1] in decorators:
                    marked.add(id(fn))
        for line in self.marker_lines[kind]:
            best = None
            for fn in self.functions:
                end = getattr(fn, "end_lineno", fn.lineno)
                if fn.lineno <= line <= end:
                    if best is None or fn.lineno > best.lineno:
                        best = fn  # innermost: largest start line wins
            if best is not None:
                marked.add(id(best))
        # Propagate to nested defs.
        changed = True
        while changed:
            changed = False
            for fn in self.functions:
                if id(fn) in marked:
                    continue
                parent_fn = self.enclosing_function(fn)
                if parent_fn is not None and id(parent_fn) in marked:
                    marked.add(id(fn))
                    changed = True
        return marked

    @cached_property
    def hot_functions(self) -> set[int]:
        """ids of functions marked as K-loop interiors (``hot-region``)."""
        return self._marked_functions("hot-region", HOT_REGION_DECORATORS)

    @cached_property
    def worker_functions(self) -> set[int]:
        """ids of functions marked as running on worker threads."""
        return self._marked_functions("worker-thread", WORKER_THREAD_DECORATORS)

    def in_hot_region(self, node: ast.AST) -> bool:
        fn = self.enclosing_function(node)
        return fn is not None and id(fn) in self.hot_functions

    def in_worker_thread(self, node: ast.AST) -> bool:
        fn = self.enclosing_function(node)
        return fn is not None and id(fn) in self.worker_functions

    # ---------------------------------------------------------- annotations

    @cached_property
    def annotation_nodes(self) -> set[int]:
        """ids of every node inside a type annotation (skipped by rules)."""
        out: set[int] = set()

        def mark(expr) -> None:
            if expr is None:
                return
            for sub in ast.walk(expr):
                out.add(id(sub))

        for node in ast.walk(self.tree):
            if isinstance(node, ast.AnnAssign):
                mark(node.annotation)
            elif isinstance(node, ast.arg):
                mark(node.annotation)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                mark(node.returns)
        return out

    def in_annotation(self, node: ast.AST) -> bool:
        return id(node) in self.annotation_nodes

    # -------------------------------------------------------------- aliases

    @cached_property
    def aliases(self) -> dict[str, str]:
        """Local name -> qualified dotted name, from the module's imports.

        ``import numpy as np`` maps ``np -> numpy``; ``from time import
        perf_counter`` maps ``perf_counter -> time.perf_counter``.  Only
        top-level-resolvable names are recorded — a name that shadows an
        import later in the file may be misattributed, which is acceptable
        for a repo-local linter (and fixable with an inline ignore).
        """
        out: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    out[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    out[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}" if node.module else alias.name
                    )
        return out

    def qualified(self, node: ast.AST) -> str | None:
        """The import-resolved dotted name of a Name/Attribute chain.

        ``np.random.rand`` resolves to ``numpy.random.rand`` when ``np``
        aliases numpy; returns ``None`` for chains not rooted at a plain
        name (e.g. ``self.backend.xp``).
        """
        dotted = _dotted(node)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        base = self.aliases.get(root, root)
        return f"{base}.{rest}" if rest else base

    # -------------------------------------------------------------- helpers

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))
