"""Runtime-neutral region markers the linter recognises as decorators.

``# lint: hot-region`` / ``# lint: worker-thread`` comments work
anywhere; these decorators are the structured alternative for functions
whose region membership should survive refactors that move code between
files (the decorator travels with the function, a comment may not).

Both are identity decorators — zero runtime cost, no wrapper frame.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)


def hot_region(fn: F) -> F:
    """Mark ``fn`` as a K-loop interior: no host sync allowed inside."""
    fn.__lint_hot_region__ = True
    return fn


def worker_thread(fn: F) -> F:
    """Mark ``fn`` as running on an engine worker thread: it must not
    touch event-loop-confined (``guarded-by: loop``) state."""
    fn.__lint_worker_thread__ = True
    return fn
