"""The ``gpu-aco`` console command.

Subcommands
-----------
``solve``
    Run the simulated GPU colony on a TSP instance and report the best
    tour, per-stage modeled kernel times and solution quality.  With
    ``--replicas K`` the run dispatches through the batched multi-colony
    engine: K seed-replicas advance together in vectorized operations.
    ``--variant {as,acs,mmas}`` selects the algorithm; every variant runs
    on the batched engine, so ``--replicas``, ``--backend`` and
    ``--report-every`` compose freely with all three.  Only genuinely
    unsupported combinations are rejected (``--construction`` with ``acs``,
    which owns its pseudo-random-proportional rule, and ``--pheromone``
    with ``acs``/``mmas``, which own their update schedules).
``serve``
    Async micro-batching solve service: a JSON-lines-over-TCP front-end
    that queues solve requests, packs equal-geometry requests into shared
    batched-engine runs, and streams per-boundary best-so-far updates back
    to each caller.  Ctrl-C drains gracefully (stop accepting, finish
    in-flight batches, flush streams).
``stats``
    Scrape the live stats plane of a running ``serve`` process (the
    ``{"op": "stats"}`` admin line): batch/flush counters plus queue-wait,
    batch-wall and request-latency percentiles.  ``--json`` emits the raw
    snapshot.
``sweep``
    Parameter sweep (``--param rho=0.25,0.5,0.75`` style, × ``--replicas``)
    over one instance, executed as a single vectorized batch.
``experiments ...``
    Forward to ``python -m repro.experiments`` (tables, figures, report,
    calibrate).
``bench``
    Run a ``benchmarks/bench_*.py`` script and validate the JSON artefact
    it writes against the schema pinned in ``benchmarks/conftest.py``.
``lint``
    Repo-invariant static analysis (``repro.lint``): backend purity in
    hot paths, seeded-RNG determinism, no host sync inside K-loop
    interiors, lock discipline on ``# guarded-by:`` attributes.  Exits 1
    when any error-severity finding (or syntax error) survives
    suppression; ``--json`` emits the findings, ``--rule ID`` narrows,
    ``--list-rules`` enumerates.
``devices``
    Print the simulated device inventory (the paper's Table I).
``backends``
    List the registered array backends, their availability, and — for
    unavailable ones — why the probe failed.

``solve`` and ``sweep`` accept ``--report-every K``: the run then keeps
K-iteration blocks device-resident, reporting (and transferring tours to
the host) only at K-boundaries — bit-identical results, amortised
per-iteration overhead.

``solve`` and ``sweep`` also accept ``--local-search 2opt`` (with
``--ls-passes N`` and ``--ls-target {iteration-best,best-so-far}``): elite
tours are polished with batched nn-restricted 2-opt at each report
boundary, and the improvements feed the pheromone update.

``solve`` further accepts ``--profile`` (paper-style per-phase wall-clock
table: construct / fold / local-search / update / host-sync) and
``--trace PATH`` (a ``chrome://tracing`` JSON timeline of the run); both
route through the batched engine even at ``--replicas 1``.

Ctrl-C during ``solve``/``sweep``/``bench`` reports the best-so-far result
and exits with status 130 instead of dumping a traceback.

Examples
--------
::

    gpu-aco solve att48 --iterations 50 --construction 8 --pheromone 1
    gpu-aco solve att48 --replicas 16 --iterations 20 --report-every 10
    gpu-aco solve att48 --variant mmas --replicas 4 --report-every 2
    gpu-aco solve att48 --variant acs --local-search 2opt --report-every 5
    gpu-aco sweep att48 --variant acs --param rho=0.1,0.5 --replicas 2
    gpu-aco solve att48 --backend numpy
    gpu-aco sweep att48 --param rho=0.25,0.5,0.75 --param beta=2,4 --replicas 3
    gpu-aco solve /path/to/berlin52.tsp --device c1060
    gpu-aco solve att48 --replicas 2 --profile --trace trace.json
    gpu-aco serve --port 8642 --max-batch 8 --max-wait-ms 50
    gpu-aco stats --port 8642 --json
    gpu-aco experiments table2
    gpu-aco bench loop -- --quick
    gpu-aco bench --json loop -- --quick
    gpu-aco bench --list
    gpu-aco lint src benchmarks
    gpu-aco lint --rule lock-discipline --json src
    gpu-aco lint --list-rules
    gpu-aco devices
    gpu-aco backends
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.backend import BACKENDS, available_backends, resolve_backend
from repro.core import ACOParams, AntSystem, BatchEngine
from repro.errors import ACOConfigError, BackendError, RunInterrupted
from repro.simt.device import DEVICES
from repro.tsp import load_instance, parse_tsplib
from repro.tsp.suite import PAPER_INSTANCE_NAMES
from repro.util.tables import Table, format_ms

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpu-aco",
        description="GPU Ant System for the TSP on a simulated Tesla C1060/M2050",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="run the colony on an instance")
    solve.add_argument(
        "instance",
        help=f"paper instance name ({', '.join(PAPER_INSTANCE_NAMES)}) or a .tsp file path",
    )
    solve.add_argument("--iterations", type=int, default=20)
    solve.add_argument(
        "--variant",
        choices=("as", "acs", "mmas"),
        default="as",
        help="algorithm: as (paper Ant System), acs (Ant Colony System) or "
        "mmas (MAX-MIN Ant System); all three run on the batched engine "
        "and compose with --replicas/--backend/--report-every",
    )
    solve.add_argument(
        "--construction",
        type=int,
        default=None,
        choices=range(1, 9),
        metavar="1-8",
        help="construction kernel (default 8; not valid with --variant acs, "
        "which owns its pseudo-random-proportional rule)",
    )
    solve.add_argument(
        "--pheromone",
        type=int,
        default=None,
        choices=range(1, 6),
        metavar="1-5",
        help="pheromone kernel (default 1; only valid with --variant as — "
        "acs/mmas own their update schedules)",
    )
    solve.add_argument("--device", choices=sorted(DEVICES), default="m2050")
    solve.add_argument("--ants", type=int, default=None, help="colony size (default m = n)")
    solve.add_argument("--nn", type=int, default=30, help="candidate-list width")
    solve.add_argument("--seed", type=int, default=1)
    solve.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="independent seed-replicas run as one vectorized batch",
    )
    solve.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="array backend (default: $ACO_BACKEND or numpy)",
    )
    solve.add_argument(
        "--report-every",
        type=int,
        default=1,
        metavar="K",
        help="device-resident amortized loop: report/transfer only every "
        "K-th iteration (bit-identical results; default 1)",
    )
    _add_local_search_flags(solve)
    solve.add_argument(
        "--profile",
        action="store_true",
        help="print a paper-style per-phase wall-clock table (construct / "
        "fold / local-search / update / host-sync); routes through the "
        "batched engine even at --replicas 1",
    )
    solve.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a chrome://tracing JSON timeline of the run to PATH "
        "(open in chrome://tracing or Perfetto; implies the engine path "
        "like --profile)",
    )
    solve.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="write engine checkpoints to PATH at report boundaries "
        "(atomic replace; Ctrl-C salvages a final checkpoint; implies "
        "the engine path like --profile)",
    )
    solve.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint every N iterations (default: every report "
        "boundary; must be a multiple of --report-every)",
    )
    solve.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="restore engine state from a checkpoint and run the "
        "remaining iterations (bit-identical to the uninterrupted run "
        "when the checkpoint sits on a report boundary)",
    )

    sweep = sub.add_parser(
        "sweep", help="batched parameter sweep over one instance"
    )
    sweep.add_argument(
        "instance",
        help=f"paper instance name ({', '.join(PAPER_INSTANCE_NAMES)}) or a .tsp file path",
    )
    sweep.add_argument("--iterations", type=int, default=20)
    sweep.add_argument(
        "--variant",
        choices=("as", "acs", "mmas"),
        default="as",
        help="algorithm the whole sweep runs (all on the batched engine)",
    )
    sweep.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=V1,V2,...",
        help="sweep axis, e.g. rho=0.25,0.5,0.75 (repeatable; axes combine "
        "as a cartesian grid)",
    )
    sweep.add_argument(
        "--replicas", type=int, default=1, help="seed-replicas per grid point"
    )
    sweep.add_argument(
        "--construction",
        type=int,
        default=None,
        choices=range(1, 9),
        metavar="1-8",
        help="construction kernel (default 8; not valid with --variant acs)",
    )
    sweep.add_argument(
        "--pheromone",
        type=int,
        default=None,
        choices=range(1, 6),
        metavar="1-5",
        help="pheromone kernel (default 1; only valid with --variant as)",
    )
    sweep.add_argument("--device", choices=sorted(DEVICES), default="m2050")
    sweep.add_argument("--ants", type=int, default=None)
    sweep.add_argument("--nn", type=int, default=30)
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="array backend (default: $ACO_BACKEND or numpy)",
    )
    sweep.add_argument(
        "--report-every",
        type=int,
        default=1,
        metavar="K",
        help="device-resident amortized loop: report/transfer only every "
        "K-th iteration (bit-identical results; default 1)",
    )
    _add_local_search_flags(sweep)

    serve = sub.add_parser(
        "serve",
        help="async micro-batching solve service (JSON-lines over TCP)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8642,
        help="TCP port (0 binds an ephemeral port and prints it)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=8,
        help="largest engine batch one run may hold (B); a size bucket "
        "launches as soon as it fills",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=50.0,
        help="max milliseconds a queued request may age before its bucket "
        "is flushed as a partial batch",
    )
    serve.add_argument(
        "--workers", type=int, default=1, help="engine worker threads"
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help="backpressure bound on requests in flight",
    )
    serve.add_argument("--device", choices=sorted(DEVICES), default="m2050")
    serve.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="array backend (default: $ACO_BACKEND or numpy)",
    )
    serve.add_argument(
        "--retry-budget",
        type=int,
        default=3,
        help="failed-batch re-runs each request may consume before its "
        "failure is surfaced (quarantine bisection; default 3)",
    )
    serve.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="write a checkpoint of every completed batch engine into DIR",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run N worker processes behind a BatchKey-hash router (each "
        "worker is a full solve service with the settings above); 0 "
        "(default) serves in-process with no router tier",
    )

    stats = sub.add_parser(
        "stats",
        help="scrape live stats from a running `gpu-aco serve` over TCP",
    )
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--port", type=int, default=8642)
    stats.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the raw snapshot as one JSON object instead of tables",
    )
    stats.add_argument(
        "--health",
        action="store_true",
        help='probe {"op": "health"} (liveness, queue depths, worker '
        "threads) instead of scraping the stats counters",
    )

    exps = sub.add_parser("experiments", help="reproduce paper tables/figures")
    exps.add_argument("args", nargs=argparse.REMAINDER)

    bench = sub.add_parser(
        "bench",
        help="run a benchmarks/bench_*.py script and validate its JSON artefact",
    )
    bench.add_argument(
        "name",
        nargs="?",
        default=None,
        help="benchmark name: 'loop' matches bench_loop_amortization.py; any "
        "unique substring of a bench_*.py filename works",
    )
    bench.add_argument(
        "--list",
        action="store_true",
        dest="list_benchmarks",
        help="list discoverable benchmark scripts and exit",
    )
    bench.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="machine-readable mode: capture the script's output and print "
        "one JSON object (run summary + validated artefact); pass before "
        "NAME — after it the flag is forwarded to the script",
    )
    bench.add_argument(
        "--benchmarks-dir",
        default=None,
        help="directory holding bench_*.py (default: ./benchmarks, or the "
        "repository checkout next to the installed package)",
    )
    bench.add_argument(
        "args",
        nargs=argparse.REMAINDER,
        help="extra arguments forwarded to the benchmark script "
        "(prefix with -- to separate)",
    )

    lint = sub.add_parser(
        "lint",
        help="run the repo-invariant static analysis (backend purity, "
        "determinism, host-sync, lock discipline)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to check (default: src/ and benchmarks/ "
        "when run from a checkout)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="machine-readable mode: print one JSON object with every "
        "finding instead of the table",
    )
    lint.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="ID",
        help="run only this rule (repeatable)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        dest="list_rules",
        help="list registered rules and exit",
    )

    sub.add_parser("devices", help="print the simulated device inventory")
    sub.add_parser(
        "backends", help="list registered array backends and their availability"
    )
    return parser


def _add_local_search_flags(parser) -> None:
    """The local-search seam's three flags, shared by solve and sweep."""
    parser.add_argument(
        "--local-search",
        choices=("none", "2opt"),
        default="none",
        dest="local_search",
        help="polish elite tours at each report boundary with batched "
        "nn-restricted 2-opt (default: none)",
    )
    parser.add_argument(
        "--ls-passes",
        type=int,
        default=None,
        metavar="N",
        help="cap 2-opt improvement passes per boundary (default: run to "
        "convergence)",
    )
    parser.add_argument(
        "--ls-target",
        choices=("iteration-best", "best-so-far"),
        default="iteration-best",
        help="which tours 2-opt polishes (default: iteration-best)",
    )


def _load(name_or_path: str):
    if os.path.exists(name_or_path):
        return parse_tsplib(name_or_path)
    return load_instance(name_or_path)


def _resolve_backend_arg(name: str | None):
    """Resolve a ``--backend`` value, exiting cleanly when unavailable."""
    try:
        return resolve_backend(name)
    except BackendError as exc:
        raise SystemExit(f"error: {exc}") from None


def _interrupt_banner() -> None:
    print("\ninterrupted — best-so-far result:", file=sys.stderr)


def _check_variant_flags(variant: str, construction, pheromone) -> None:
    """Reject the genuinely unsupported variant/kernel-flag combinations.

    Every variant composes with ``--replicas``/``--backend``/
    ``--report-every`` (the batched engine runs all three); only kernel
    selections a variant *owns* are rejected.
    """
    if variant == "acs" and construction is not None:
        raise SystemExit(
            "error: variant 'acs' owns its construction rule (pseudo-random-"
            "proportional); --construction is only valid with --variant "
            "as/mmas"
        )
    if variant != "as" and pheromone is not None:
        raise SystemExit(
            f"error: variant {variant!r} owns its pheromone schedule; "
            "--pheromone is only valid with --variant as"
        )


def _check_ls_flags(args) -> dict | None:
    """Validate the local-search flags; return engine options (or None)."""
    if args.local_search == "none":
        if args.ls_passes is not None or args.ls_target != "iteration-best":
            raise SystemExit(
                "error: --ls-passes/--ls-target require --local-search 2opt"
            )
        return None
    if args.ls_passes is not None and args.ls_passes < 1:
        raise SystemExit(
            f"error: --ls-passes must be >= 1, got {args.ls_passes}"
        )
    return {"passes": args.ls_passes, "target": args.ls_target}


def _ls_stats_line(args, batch) -> None:
    if args.local_search == "none":
        return
    print(
        f"local search (2opt, {args.ls_target}): {batch.ls_exchanges} "
        f"exchanges, total gain {batch.ls_gain}, "
        f"{batch.ls_wall_seconds:.2f}s in 2-opt"
    )


def _cmd_solve(args: argparse.Namespace) -> int:
    if args.replicas < 1:
        raise SystemExit(f"error: --replicas must be >= 1, got {args.replicas}")
    if args.report_every < 1:
        raise SystemExit(
            f"error: --report-every must be >= 1, got {args.report_every}"
        )
    _check_variant_flags(args.variant, args.construction, args.pheromone)
    _check_ls_flags(args)
    if args.checkpoint_every is not None:
        if args.checkpoint is None:
            raise SystemExit(
                "error: --checkpoint-every requires --checkpoint PATH"
            )
        if args.checkpoint_every < 1:
            raise SystemExit(
                f"error: --checkpoint-every must be >= 1, "
                f"got {args.checkpoint_every}"
            )
        if args.checkpoint_every % args.report_every != 0:
            raise SystemExit(
                f"error: --checkpoint-every ({args.checkpoint_every}) must "
                f"be a multiple of --report-every ({args.report_every}); "
                "checkpoints are written at report boundaries"
            )
    instance = _load(args.instance)
    device = DEVICES[args.device]
    params = ACOParams(n_ants=args.ants, nn=args.nn, seed=args.seed)
    backend = _resolve_backend_arg(args.backend)
    construction = 8 if args.construction is None else args.construction
    pheromone = 1 if args.pheromone is None else args.pheromone
    # Local search, phase accounting and checkpointing live on the batched
    # engine, so an ls-enabled, profiled/traced or checkpointed solve runs
    # through the replica path even at B=1 (any variant).
    if (
        args.replicas > 1
        or args.local_search != "none"
        or args.profile
        or args.trace
        or args.checkpoint
        or args.resume
    ):
        return _solve_replicas(
            args, instance, device, params, backend, construction, pheromone
        )
    if args.variant != "as":
        return _solve_variant(args, instance, device, params, backend, construction)
    colony = AntSystem(
        instance,
        params=params,
        device=device,
        construction=construction,
        pheromone=pheromone,
        backend=backend,
    )
    print(
        f"solving {instance.name} (n={instance.n}) on {device.name} "
        f"[backend {backend.name}] "
        f"with construction v{colony.construction.version} "
        f"({colony.construction.label}) + pheromone v{colony.pheromone.version} "
        f"({colony.pheromone.label})"
    )
    try:
        result = colony.run(args.iterations, report_every=args.report_every)
    except RunInterrupted as exc:
        _interrupt_banner()
        partial = exc.partial.results[0]
        print(f"best tour length: {partial.best_length} "
              f"(after {len(partial.iteration_best_lengths)} recorded iterations)")
        return 130
    cost = colony.cost_params()

    print(f"best tour length: {result.best_length}")
    print(f"iteration bests:  first={result.iteration_best_lengths[0]} "
          f"last={result.iteration_best_lengths[-1]}")
    t = Table(["stage", "modeled ms/iter"], title="modeled kernel times")
    for stage in ("choice", "construction", "pheromone"):
        mean = result.mean_stage_time(stage, cost)
        if mean > 0.0:
            t.add_row([stage, format_ms(mean)])
    t.add_row(["total", format_ms(result.mean_iteration_time(cost))])
    print(t.render())
    print(f"wall-clock (functional simulation): {result.wall_seconds:.2f}s "
          f"for {args.iterations} iterations")
    return 0


def _solve_variant(args, instance, device, params, backend, construction) -> int:
    """Single-colony ACS/MMAS behind ``solve --variant {acs,mmas}`` — the
    engine-backed views, with full ``--backend``/``--report-every``
    support."""
    from repro.core import AntColonySystem, MaxMinAntSystem

    variant = args.variant
    rc = 0
    try:
        if variant == "acs":
            colony = AntColonySystem(
                instance, params, device=device, backend=backend
            )
        else:
            colony = MaxMinAntSystem(
                instance,
                params,
                construction=construction,
                device=device,
                backend=backend,
            )
        print(
            f"solving {instance.name} (n={instance.n}) on {device.name} "
            f"[variant {variant}, backend {backend.name}, batched engine]"
        )
        try:
            result = colony.run(args.iterations, report_every=args.report_every)
        except RunInterrupted as exc:
            _interrupt_banner()
            result = exc.partial
            rc = 130
    except ACOConfigError as exc:
        raise SystemExit(f"error: {exc}") from None
    print(f"best tour length: {result.best_length}")
    if result.iteration_best_lengths:
        print(f"iteration bests:  first={result.iteration_best_lengths[0]} "
              f"last={result.iteration_best_lengths[-1]}")
    if variant == "mmas":
        print(f"trail reinitialisations: {result.trail_reinitialisations}")
    print(f"wall-clock (functional simulation): {result.wall_seconds:.2f}s")
    return rc


def _profile_table(batch) -> None:
    """The paper-style per-phase breakdown (its per-stage kernel-time
    tables), from the engine's always-on phase totals."""
    from repro.obs import PHASES

    breakdown = batch.phase_breakdown
    total = sum(breakdown.values())
    wall = batch.wall_seconds
    t = Table(
        ["phase", "seconds", "% of phases", "% of wall"],
        title="per-phase wall-clock (profile)",
    )
    for phase in PHASES:
        sec = breakdown.get(phase, 0.0)
        if sec == 0.0 and phase == "local-search":
            continue  # not installed; don't print a dead row
        t.add_row(
            [
                phase,
                f"{sec:.4f}",
                f"{100.0 * sec / total:5.1f}%" if total else "-",
                f"{100.0 * sec / wall:5.1f}%" if wall else "-",
            ]
        )
    t.add_row(
        [
            "total (phases)",
            f"{total:.4f}",
            "100.0%",
            f"{100.0 * total / wall:5.1f}%" if wall else "-",
        ]
    )
    print(t.render())


def _solve_replicas(
    args, instance, device, params, backend, construction, pheromone
) -> int:
    from repro.obs import MetricsRegistry, TraceRecorder

    profile = getattr(args, "profile", False)
    trace_path = getattr(args, "trace", None)
    ck_path = getattr(args, "checkpoint", None)
    resume_path = getattr(args, "resume", None)
    metrics = MetricsRegistry() if profile else None
    tracer = TraceRecorder() if trace_path else None
    engine = BatchEngine.replicas(
        instance,
        params,
        replicas=args.replicas,
        device=device,
        construction=construction,
        pheromone=pheromone,
        backend=backend,
        variant=args.variant,
        local_search=args.local_search,
        local_search_options=_check_ls_flags(args),
        metrics=metrics,
        tracer=tracer,
    )
    iterations = args.iterations
    if resume_path is not None:
        from repro.core import load_checkpoint
        from repro.errors import CheckpointError

        try:
            ck = load_checkpoint(resume_path)
            engine.restore(ck)
        except CheckpointError as exc:
            raise SystemExit(f"error: cannot resume from {resume_path}: {exc}") from exc
        iterations = args.iterations - ck.iteration
        if iterations <= 0:
            print(
                f"checkpoint {resume_path} is already at iteration "
                f"{ck.iteration} >= --iterations {args.iterations}; "
                "nothing to run"
            )
            return 0
        print(
            f"resumed from {resume_path} at iteration {ck.iteration}; "
            f"running the remaining {iterations}"
        )
    kernels = (
        f"variant {args.variant}"
        if args.variant != "as"
        else f"construction v{engine.construction.version} + "
        f"pheromone v{engine.pheromone.version}"
    )
    print(
        f"solving {instance.name} (n={instance.n}) on {device.name} "
        f"[backend {backend.name}] with "
        f"{args.replicas} batched replicas, {kernels}"
    )
    on_boundary = None
    if ck_path is not None:
        ck_every = getattr(args, "checkpoint_every", None) or args.report_every

        def on_boundary(update) -> None:
            # The final boundary fires even off the K-grid; only write on
            # aligned iterations so every checkpoint resumes bit-identical.
            if update.iteration % ck_every == 0:
                engine.checkpoint(ck_path)

    try:
        batch = engine.run(
            iterations, report_every=args.report_every, on_boundary=on_boundary
        )
    except RunInterrupted as exc:
        _interrupt_banner()
        batch = exc.partial
        rc = 130
        if ck_path is not None:
            # Salvage: the interrupt path synced best-so-far records to the
            # host, so the engine is checkpointable at the last completed
            # iteration (off-boundary under local search — best-effort).
            engine.checkpoint(ck_path)
            print(f"salvage checkpoint written to {ck_path} "
                  f"(iteration {engine.state.iteration})")
    else:
        rc = 0
        if ck_path is not None:
            engine.checkpoint(ck_path)
            print(f"final checkpoint written to {ck_path} "
                  f"(iteration {engine.state.iteration})")
    t = Table(["replica", "seed", "best length"], title="per-replica results")
    for b, res in enumerate(batch.results):
        t.add_row([b, engine.state.params[b].seed, res.best_length])
    print(t.render())
    print(f"best overall: {batch.best_length} (replica {batch.best_row})")
    _ls_stats_line(args, batch)
    iterations_run = batch.iterations_run or iterations
    print(
        f"wall-clock (batched functional simulation): {batch.wall_seconds:.2f}s "
        f"for {args.replicas} x {iterations_run} iterations "
        f"({batch.colonies_per_second(iterations_run):.1f} colony-iterations/s)"
    )
    if profile:
        _profile_table(batch)
    if tracer is not None:
        tracer.write(trace_path)
        print(f"chrome trace written to {trace_path} ({len(tracer)} spans)")
    return rc


def _parse_sweep_params(specs: list[str]) -> dict[str, list[float]]:
    grid: dict[str, list[float]] = {}
    for spec in specs:
        name, _, values = spec.partition("=")
        if not values:
            raise SystemExit(f"bad --param {spec!r}; expected NAME=V1,V2,...")
        try:
            parsed = [float(v) for v in values.split(",") if v]
        except ValueError:
            raise SystemExit(f"bad --param values in {spec!r}") from None
        # Repeating an axis name extends it: --param rho=0.2 --param rho=0.8
        # sweeps both values.
        grid.setdefault(name.strip(), []).extend(parsed)
    return grid


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.errors import ExperimentError
    from repro.experiments.harness import run_sweep

    if args.report_every < 1:
        raise SystemExit(
            f"error: --report-every must be >= 1, got {args.report_every}"
        )
    _check_variant_flags(args.variant, args.construction, args.pheromone)
    ls_options = _check_ls_flags(args)
    instance = _load(args.instance)
    device = DEVICES[args.device]
    backend = _resolve_backend_arg(args.backend)
    grid = _parse_sweep_params(args.param)
    # seed values must stay integers (they feed the RNG's seed derivation)
    if "seed" in grid:
        grid["seed"] = [int(v) for v in grid["seed"]]
    params = ACOParams(n_ants=args.ants, nn=args.nn, seed=args.seed)
    rc = 0
    try:
        sweep = run_sweep(
            instance,
            grid,
            iterations=args.iterations,
            replicas=args.replicas,
            params=params,
            device=device,
            construction=8 if args.construction is None else args.construction,
            pheromone=1 if args.pheromone is None else args.pheromone,
            backend=backend,
            report_every=args.report_every,
            variant=args.variant,
            local_search=args.local_search,
            local_search_options=ls_options,
        )
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except RunInterrupted as exc:
        _interrupt_banner()
        sweep = exc.partial
        rc = 130
    print(
        f"sweeping {instance.name} (n={instance.n}) on {device.name} "
        f"[variant {args.variant}]: "
        f"{len(sweep.points)} grid points x {args.replicas} replicas = "
        f"{sweep.batch.B} batched colonies"
    )
    print(sweep.table().render())
    _ls_stats_line(args, sweep.batch)
    iterations_run = sweep.batch.iterations_run or args.iterations
    print(
        f"wall-clock (batched functional simulation): "
        f"{sweep.batch.wall_seconds:.2f}s for {sweep.batch.B} x "
        f"{iterations_run} iterations"
    )
    return rc


def _find_benchmarks_dir(explicit: str | None):
    """Locate the benchmarks/ directory (cwd checkout or next to the package)."""
    import pathlib

    candidates = []
    if explicit is not None:
        candidates.append(pathlib.Path(explicit))
    candidates.append(pathlib.Path.cwd() / "benchmarks")
    # src layout: src/repro/cli.py -> repo root two levels above the package.
    candidates.append(pathlib.Path(__file__).resolve().parents[2] / "benchmarks")
    for cand in candidates:
        if cand.is_dir() and list(cand.glob("bench_*.py")):
            return cand.resolve()
    raise SystemExit(
        "error: no benchmarks directory with bench_*.py scripts found; "
        "pass --benchmarks-dir"
    )


def _load_bench_registry(bench_dir):
    """The artefact registry pinned in benchmarks/conftest.py.

    Maps script filename -> (artefact filename, validator callable); loaded
    straight from the file so the CLI and the test-suite validate the same
    contract.
    """
    import importlib.util

    conftest = bench_dir / "conftest.py"
    if not conftest.is_file():
        return {}
    spec = importlib.util.spec_from_file_location("_bench_conftest", conftest)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return getattr(module, "BENCH_ARTIFACTS", {})


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    import subprocess

    bench_dir = _find_benchmarks_dir(args.benchmarks_dir)
    scripts = sorted(p.name for p in bench_dir.glob("bench_*.py"))
    registry = _load_bench_registry(bench_dir)

    if args.list_benchmarks or args.name is None:
        if args.as_json:
            print(
                json.dumps(
                    [
                        {
                            "script": name,
                            "artefact": registry.get(name, (None,))[0],
                        }
                        for name in scripts
                    ]
                )
            )
            return 0
        t = Table(["script", "artefact"], title=f"benchmarks in {bench_dir}")
        for name in scripts:
            artefact = registry.get(name, (None,))[0]
            t.add_row([name, artefact or "-"])
        print(t.render())
        print("run one with: gpu-aco bench NAME [-- extra script args]")
        return 0

    exact = f"bench_{args.name}.py"
    if exact in scripts:
        matches = [exact]
    else:
        matches = [s for s in scripts if args.name in s]
    if not matches:
        raise SystemExit(
            f"error: no benchmark matches {args.name!r}; known: {', '.join(scripts)}"
        )
    if len(matches) > 1:
        raise SystemExit(
            f"error: {args.name!r} is ambiguous: {', '.join(matches)}"
        )
    script = bench_dir / matches[0]

    extra = list(args.args)
    if extra and extra[0] == "--":
        extra = extra[1:]
    # The script imports repro; make sure the subprocess resolves the same
    # package this CLI is running from, installed or from a src checkout.
    import pathlib

    env = dict(os.environ)
    pkg_parent = str(pathlib.Path(__file__).resolve().parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (pkg_parent, env.get("PYTHONPATH")) if p
    )
    cmd = [sys.executable, str(script), *extra]
    # --json mode keeps stdout clean for the single JSON object: the
    # script's own chatter is captured and carried inside that object.
    report: dict = {"script": matches[0], "validated": False, "artefact": None}

    def _emit_json() -> None:
        if proc is not None:
            report["returncode"] = proc.returncode
            if proc.stdout:
                report["run_stdout"] = proc.stdout[-4000:]
        print(json.dumps(report))

    proc = None
    if not args.as_json:
        print(f"running: {' '.join(cmd)}")
    try:
        proc = subprocess.run(
            cmd, env=env, capture_output=args.as_json, text=args.as_json
        )
    except KeyboardInterrupt:
        # The child shares our process group, so it received the SIGINT
        # too; subprocess.run has already reaped it by the time we get here.
        print("\ninterrupted — benchmark aborted, no artefact validated",
              file=sys.stderr)
        return 130
    if proc.returncode != 0:
        if args.as_json:
            report["error"] = f"script exited with {proc.returncode}"
            if proc.stderr:
                report["run_stderr"] = proc.stderr[-4000:]
            _emit_json()
        else:
            print(f"error: {matches[0]} exited with {proc.returncode}",
                  file=sys.stderr)
        return proc.returncode

    entry = registry.get(matches[0])
    if entry is None:
        if args.as_json:
            report["error"] = "no pinned artefact schema"
            _emit_json()
        else:
            print(f"{matches[0]}: no pinned artefact schema; skipping validation")
        return 0
    artefact_name, validator = entry
    out_path = None
    for i, arg in enumerate(extra):  # honour a forwarded --out override
        if arg == "--out" and i + 1 < len(extra):
            out_path = pathlib.Path(extra[i + 1])
        elif arg.startswith("--out="):
            out_path = pathlib.Path(arg.split("=", 1)[1])
    if out_path is None:
        out_path = bench_dir.parent / artefact_name
    report["artefact_path"] = str(out_path)
    if not out_path.is_file():
        if args.as_json:
            report["error"] = "expected artefact was not written"
            _emit_json()
        else:
            print(f"error: expected artefact {out_path} was not written",
                  file=sys.stderr)
        return 1
    payload = json.loads(out_path.read_text(encoding="utf-8"))
    report["artefact"] = payload
    try:
        validator(payload)
    except AssertionError as exc:
        if args.as_json:
            report["error"] = f"schema validation failed: {exc}"
            _emit_json()
        else:
            print(f"error: {out_path.name} failed schema validation: {exc}",
                  file=sys.stderr)
        return 1
    report["validated"] = True
    if args.as_json:
        _emit_json()
    else:
        print(f"validated {out_path} against the pinned schema")
    return 0


def _cmd_serve_sharded(args: argparse.Namespace) -> int:
    """Run the router tier over N worker-process shards until interrupted.

    Each worker is a full ``SolveService`` built from the same flags the
    in-process path uses; the router hashes ``BatchKey`` to shards,
    spills overflow to the least-loaded healthy shard, and respawns dead
    workers.  SIGINT/SIGTERM drain gracefully: the front listener
    closes, workers finish accepted work, then the fleet exits.
    """
    import asyncio
    import signal

    from repro.errors import ServeError
    from repro.shard import ShardConfig, ShardRouter, serve_router_tcp

    backend = _resolve_backend_arg(args.backend)
    config = ShardConfig(
        host=args.host,
        max_batch=args.max_batch,
        max_wait=args.max_wait_ms / 1000.0,
        workers=args.workers,
        max_pending=args.max_pending,
        retry_budget=args.retry_budget,
        backend=backend.name,
        device=args.device,
        checkpoint_dir=args.checkpoint_dir,
    )

    async def _main() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # non-unix loops
                pass
        async with ShardRouter(args.shards, config) as router:
            server = await serve_router_tcp(router, args.host, args.port)
            host, port = server.sockets[0].getsockname()[:2]
            print(
                f"routing on {host}:{port} over {args.shards} worker "
                f"shard(s) [backend {backend.name}, max_batch "
                f"{args.max_batch}, max_wait {args.max_wait_ms:.0f} ms, "
                f"{args.workers} thread(s)/shard] — Ctrl-C drains gracefully",
                flush=True,
            )
            try:
                await stop.wait()
            finally:
                print("\ndraining: no new requests; shards finishing "
                      "accepted work ...", flush=True)
                server.close()
                await server.wait_closed()
        print("drained; fleet stopped.")

    try:
        asyncio.run(_main())
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("\ninterrupted — fleet stopped", file=sys.stderr)
        return 130
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the async micro-batching solve service until interrupted.

    SIGINT/SIGTERM trigger the graceful-drain path: the TCP listener
    closes (no new requests), queued requests flush as final batches,
    in-flight engine runs complete and every stream is terminated before
    the process exits.  ``--shards N`` (N >= 1) switches to the
    multi-process router tier; ``--shards 0`` is this unchanged
    single-process path.
    """
    import asyncio
    import signal

    from repro.serve import SolveService, serve_tcp

    if args.shards < 0:
        raise SystemExit(f"error: --shards must be >= 0, got {args.shards}")
    if args.shards > 0:
        return _cmd_serve_sharded(args)
    backend = _resolve_backend_arg(args.backend)
    device = DEVICES[args.device]
    try:
        # Constructed before the loop starts so every config error (bad
        # max_batch/max_wait/workers/max_pending combination) surfaces as a
        # clean usage message, not a traceback out of asyncio.run.
        service = SolveService(
            max_batch=args.max_batch,
            max_wait=args.max_wait_ms / 1000.0,
            workers=args.workers,
            max_pending=args.max_pending,
            retry_budget=args.retry_budget,
            checkpoint_dir=args.checkpoint_dir,
            backend=backend,
            device=device,
        )
    except ACOConfigError as exc:
        raise SystemExit(f"error: {exc}") from None

    async def _main() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # non-unix loops
                pass
        async with service:
            server = await serve_tcp(service, args.host, args.port)
            host, port = server.sockets[0].getsockname()[:2]
            print(
                f"serving on {host}:{port} [backend {backend.name}, "
                f"max_batch {args.max_batch}, max_wait "
                f"{args.max_wait_ms:.0f} ms, {args.workers} worker(s)] — "
                "Ctrl-C drains gracefully",
                flush=True,
            )
            try:
                await stop.wait()
            finally:
                print("\ndraining: no new requests; finishing in-flight "
                      "batches and flushing streams ...", flush=True)
                server.close()
                await server.wait_closed()
        print(f"drained. stats: {service.stats.snapshot()}")

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        # Signal handler installation failed (non-unix): the interrupt
        # aborted the loop; the service still drained via __aexit__.
        print("\ninterrupted — service stopped", file=sys.stderr)
        return 130
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Scrape ``{"op": "stats"}`` from a running server and render it."""
    import asyncio
    import json

    from repro.errors import ServeError
    from repro.serve import health_over_tcp, stats_over_tcp

    plane = "health" if args.health else "stats"
    try:
        if args.health:
            snap = asyncio.run(health_over_tcp(args.host, args.port))
        else:
            snap = asyncio.run(stats_over_tcp(args.host, args.port))
    except (ServeError, OSError) as exc:
        print(
            f"error: cannot scrape {plane} from {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1
    if args.as_json:
        print(json.dumps(snap, sort_keys=True))
        return 0
    source = snap.get("source", "service")
    if args.health:
        t = Table(
            ["probe", "value"],
            title=f"{source} health @ {args.host}:{args.port}",
        )
        for key, value in snap.items():
            if key == "queue_depths":
                for bucket, depth in sorted(value.items()):
                    t.add_row([f"queue[{bucket}]", depth])
            elif key == "per_shard":
                for sid, summ in sorted(value.items(), key=lambda kv: kv[0]):
                    state = summ.get("state", "?")
                    t.add_row(
                        [
                            f"shard[{sid}]",
                            f"{state} pid={summ.get('pid')} "
                            f"outstanding={summ.get('outstanding', 0)} "
                            f"gen={summ.get('generation', 0)}",
                        ]
                    )
            elif key == "router":
                for rkey, rval in sorted(value.items()):
                    t.add_row([f"router[{rkey}]", rval])
            else:
                t.add_row([key, value])
        print(t.render())
        return 0
    t = Table(
        ["counter", "value"], title=f"{source} stats @ {args.host}:{args.port}"
    )
    t.add_row(["source", source])
    for key in (
        "submitted",
        "completed",
        "resolved_by_target",
        "resolved_by_deadline",
        "failed",
        "requests_timed_out",
        "requests_shed",
        "requests_retried",
        "batches_bisected",
        "checkpoints_written",
        "batches",
        "rows_packed",
        "ls_batches",
    ):
        t.add_row([key, snap.get(key, 0)])
    for cause, count in sorted(snap.get("flush_causes", {}).items()):
        t.add_row([f"flush[{cause}]", count])
    for rkey, rval in sorted(snap.get("router", {}).items()):
        t.add_row([f"router[{rkey}]", rval])
    print(t.render())
    h = Table(
        ["distribution", "count", "mean", "p50", "p95", "p99", "max"],
        title="request lifecycle distributions (seconds; rows for batch_rows)",
    )
    for key in (
        "queue_wait_seconds",
        "batch_wall_seconds",
        "request_latency_seconds",
        "batch_rows",
    ):
        dist = snap.get(key)
        if not dist:
            continue
        h.add_row(
            [
                key,
                dist["count"],
                f"{dist['mean']:.6g}",
                f"{dist['p50']:.6g}",
                f"{dist['p95']:.6g}",
                f"{dist['p99']:.6g}",
                f"{dist['max']:.6g}",
            ]
        )
    print(h.render())
    return 0


def _cmd_backends() -> int:
    t = Table(
        ["key", "available", "accelerated", "detail"],
        title="registered array backends",
    )
    for info in available_backends():
        t.add_row(
            [
                info.name,
                "yes" if info.available else "no",
                "yes" if info.accelerated else "no",
                "-" if info.available else (info.reason or "unavailable"),
            ]
        )
    print(t.render())
    print(
        "select with --backend NAME, the ACO_BACKEND environment variable, "
        "or AntSystem/BatchEngine(backend=...)"
    )
    return 0


def _cmd_devices() -> int:
    t = Table(
        ["key", "name", "CC", "SMs", "SPs", "clock MHz", "shared/SM", "BW GB/s",
         "fp32 atomics"],
        title="simulated devices (paper Table I)",
    )
    for key, dev in sorted(DEVICES.items()):
        t.add_row(
            [
                key,
                dev.name,
                f"{dev.compute_capability:.1f}",
                dev.sm_count,
                dev.total_sps,
                f"{dev.clock_hz / 1e6:.0f}",
                f"{dev.shared_mem_per_sm // 1024} KB",
                f"{dev.bandwidth_bytes_s / 1e9:.0f}",
                "yes" if dev.has_fp32_global_atomics else "no (emulated)",
            ]
        )
    print(t.render())
    return 0


def _cmd_lint(args) -> int:
    """Run the repo-invariant linter (``repro.lint``) over the given paths."""
    from repro.lint import all_rules, lint_paths, select_rules
    from repro.lint.report import render_findings, render_json, render_rule_list

    if args.list_rules:
        print(render_rule_list(all_rules()))
        return 0
    try:
        rules = select_rules(args.rules)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    paths = list(args.paths or [])
    if not paths:
        paths = [p for p in ("src", "benchmarks") if os.path.isdir(p)]
        if not paths:
            print(
                "error: no paths given and no src/ or benchmarks/ under the "
                "current directory",
                file=sys.stderr,
            )
            return 2
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    result = lint_paths(paths, rules=rules)
    print(render_json(result) if args.as_json else render_findings(result))
    return result.exit_code


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "solve":
            return _cmd_solve(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "stats":
            return _cmd_stats(args)
        if args.command == "devices":
            return _cmd_devices()
        if args.command == "backends":
            return _cmd_backends()
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "experiments":
            from repro.experiments.__main__ import main as exp_main

            return exp_main(args.args)
    except KeyboardInterrupt:
        # Backstop for interrupts the command didn't turn into a best-so-far
        # report (e.g. before the first iteration completed): still exit
        # with the conventional 128 + SIGINT status instead of a traceback.
        print("\ninterrupted", file=sys.stderr)
        return 130
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
