"""The analytical cost model: stats ledger × device → estimated seconds.

The model is a classical bounded-throughput estimate in the spirit of
roofline analysis, specialised to what the paper's kernels exercise:

``time = launches × t_launch
       + max(compute, dram, shared)          # overlapped pipelines
       + atomics                             # serialising tail
       + serial_barriers × t_barrier``       # per-step latency chains

* **compute** — instruction classes weighted by cycles-per-instruction,
  divided by the device's peak issue rate, derated by occupancy (latency
  hiding needs enough resident warps) and an issue-efficiency fudge.
* **dram** — post-coalescing traffic (see :mod:`repro.simt.memory`), after
  removing the estimated cache-hit fraction (0 on the C1060, which has no
  L1; substantial on Fermi), divided by derated peak bandwidth.
* **shared** — 32-bit accesses against the aggregate shared-memory
  throughput (banks × clock × SMs).
* **atomics** — effective per-op cost; float atomics on CC < 2.0 pay the
  CAS-emulation factor (the paper's Figure 5 story), and the hottest cell
  contributes a serialisation term.

All constants live in :class:`CostParams`.  Physics-flavoured defaults are
given here; the values actually used for the paper reproduction are fitted
once against the paper's own tables (`repro.experiments.calibrate`) and
recorded in `repro.experiments.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.simt.atomics import AtomicModel
from repro.simt.counters import KernelStats
from repro.simt.device import DeviceSpec
from repro.simt.memory import TRAFFIC_MULTIPLIER, AccessPattern

__all__ = ["CostParams", "estimate_time", "throughput_throttle"]


@dataclass(frozen=True)
class CostParams:
    """Calibratable constants of the kernel cost model.

    Attributes
    ----------
    cpi_flop / cpi_int / cpi_special:
        Cycles per instruction for the three instruction classes.
    cycles_rng_lcg / cycles_rng_curand:
        Cycles per random sample for the device-function LCG and the
        CURAND-style XORWOW engine (state load/store included — this gap is
        Table II's version-3 effect).
    issue_efficiency:
        Fraction of peak issue rate a real kernel sustains.
    mem_efficiency:
        Fraction of peak DRAM bandwidth sustained by streaming accesses.
    random_derate:
        Additional throughput derate applied to the RANDOM access bucket's
        traffic (DRAM row misses and partition camping on data-dependent
        gathers); 1.0 means random traffic streams at full efficiency.
    cache_hit_fraction:
        Fraction of post-coalescing traffic served by on-chip caches
        (0 for CC 1.x; Fermi's L1/L2 make scatter-gather far cheaper).
    tex_hit_fraction:
        Texture-cache hit rate for the spatially local streams the paper
        routes through textures.
    smem_words_per_cycle_per_sm:
        Shared-memory throughput (32-bit words/cycle/SM) — 16 banks on
        CC 1.3, 32 on Fermi.
    atomic_ns:
        Effective cost of one native atomic RMW, nanoseconds (aggregate
        device throughput view).
    atomic_hot_latency_ns:
        Additional serialisation per update on the hottest cell.
    launch_overhead_s:
        Host-side cost of one kernel launch.
    barrier_latency_s:
        Latency of one barrier generation on the critical path.
    divergence_penalty_cycles:
        Extra cycles charged per divergent branch execution (a split warp
        replays both paths).
    compute_occ_knee / memory_occ_knee:
        Occupancy below which compute / memory throughput degrades linearly.
    """

    cpi_flop: float = 1.0
    cpi_int: float = 1.0
    cpi_special: float = 8.0
    cycles_rng_lcg: float = 12.0
    cycles_rng_curand: float = 40.0
    issue_efficiency: float = 0.7
    mem_efficiency: float = 0.45
    random_derate: float = 2.0
    cache_hit_fraction: float = 0.0
    tex_hit_fraction: float = 0.9
    smem_words_per_cycle_per_sm: float = 16.0
    atomic_ns: float = 4.0
    atomic_hot_latency_ns: float = 40.0
    launch_overhead_s: float = 40e-6
    barrier_latency_s: float = 2.0e-6
    divergence_penalty_cycles: float = 16.0
    compute_occ_knee: float = 0.25
    memory_occ_knee: float = 0.5

    def with_overrides(self, **kw: float) -> "CostParams":
        """A copy with selected constants replaced (used by calibration)."""
        return replace(self, **kw)


def throughput_throttle(effective_parallelism: float, knee: float) -> float:
    """Throughput derate under low occupancy.

    At or above the knee the device streams at full (derated) throughput;
    below it, achievable throughput falls linearly — too few resident warps
    to hide latency.  Clamped to [1/64, 1].
    """
    if knee <= 0:
        raise ValueError(f"knee must be positive, got {knee}")
    frac = max(0.0, min(1.0, effective_parallelism))
    return max(1.0 / 64.0, min(1.0, frac / knee))


def estimate_time(
    stats: KernelStats,
    device: DeviceSpec,
    params: CostParams,
    *,
    effective_parallelism: float = 1.0,
) -> float:
    """Estimated seconds for the work in ``stats`` on ``device``.

    Parameters
    ----------
    stats:
        Work ledger (possibly merged over several launches of one stage).
    device:
        Target device.
    params:
        Cost constants (typically the calibrated set for ``device``).
    effective_parallelism:
        Occupancy × grid-fill of the dominant launch shape, from
        :class:`repro.simt.occupancy.Occupancy`.
    """
    # --- compute pipe ------------------------------------------------------
    cycles = (
        stats.flops * params.cpi_flop
        + stats.int_ops * params.cpi_int
        + stats.special_ops * params.cpi_special
        + stats.rng_lcg * params.cycles_rng_lcg
        + stats.rng_curand * params.cycles_rng_curand
        + stats.divergent_branches * params.divergence_penalty_cycles
    )
    compute_rate = (
        device.peak_ips
        * params.issue_efficiency
        * throughput_throttle(effective_parallelism, params.compute_occ_knee)
    )
    compute_s = cycles / compute_rate

    # --- DRAM pipe ----------------------------------------------------------
    cache_hit = params.cache_hit_fraction if device.has_l1_cache else 0.0
    traffic = (
        stats.gmem_coalesced_bytes * TRAFFIC_MULTIPLIER[AccessPattern.COALESCED]
        + stats.gmem_broadcast_bytes * TRAFFIC_MULTIPLIER[AccessPattern.BROADCAST]
        + stats.gmem_strided_bytes * TRAFFIC_MULTIPLIER[AccessPattern.STRIDED]
        + stats.gmem_random_bytes
        * TRAFFIC_MULTIPLIER[AccessPattern.RANDOM]
        * params.random_derate
    )
    dram_bytes = traffic * (1.0 - cache_hit)
    dram_bytes += stats.tex_bytes * (1.0 - params.tex_hit_fraction)
    mem_rate = (
        device.bandwidth_bytes_s
        * params.mem_efficiency
        * throughput_throttle(effective_parallelism, params.memory_occ_knee)
    )
    mem_s = dram_bytes / mem_rate

    # --- shared-memory pipe ---------------------------------------------------
    smem_rate = (
        params.smem_words_per_cycle_per_sm
        * device.sm_count
        * device.clock_hz
        * throughput_throttle(effective_parallelism, params.compute_occ_knee)
    )
    smem_s = stats.smem_accesses / smem_rate

    # --- atomics -------------------------------------------------------------
    fp_factor = 1.0 if device.has_fp32_global_atomics else AtomicModel.EMULATION_COST_FACTOR
    atomic_ops_eff = stats.atomics_int + stats.atomics_fp * fp_factor
    atomic_s = atomic_ops_eff * params.atomic_ns * 1e-9
    atomic_s += stats.atomic_hot_degree * params.atomic_hot_latency_ns * 1e-9

    # --- assembly -------------------------------------------------------------
    time_s = (
        stats.kernel_launches * params.launch_overhead_s
        + max(compute_s, mem_s, smem_s)
        + atomic_s
        + stats.serial_barriers * params.barrier_latency_s
    )
    return float(time_s)
