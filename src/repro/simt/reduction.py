"""Block-wide tree reductions with accounting.

The data-parallel tour-construction kernel (paper Fig. 1) ends every step
with a shared-memory reduction: each thread writes its
``choice × random × unvisited`` product to shared memory and a log2-depth
tree selects the maximum (the next city).  These helpers perform the
reduction functionally over a vectorised ``(blocks, width)`` value matrix and
record the equivalent work: ``ceil(log2 width)`` stages, each touching shared
memory and issuing one compare per active thread, plus the barrier per stage.
"""

from __future__ import annotations

import math

import numpy as np

from repro.simt.counters import KernelStats

__all__ = ["block_argmax", "block_sum", "reduction_stage_count"]


def reduction_stage_count(width: int) -> int:
    """Number of tree stages for a block of ``width`` threads (ceil log2)."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return max(1, math.ceil(math.log2(width))) if width > 1 else 0


def _account(stats: KernelStats, blocks: int, width: int) -> None:
    stages = reduction_stage_count(width)
    # Each stage: half the remaining lanes compare-and-keep; we charge one
    # shared read+write pair and one compare per participating lane.
    participating = 0
    w = width
    for _ in range(stages):
        w = (w + 1) // 2
        participating += w
    stats.reduction_steps += float(blocks * stages)
    stats.smem_accesses += float(blocks * (width + 2 * participating))
    stats.flops += float(blocks * participating)
    stats.syncthreads += float(blocks * stages)


def block_argmax(
    values: np.ndarray, stats: KernelStats | None = None, xp=np
) -> tuple[np.ndarray, np.ndarray]:
    """Per-block argmax over a ``(blocks, width)`` matrix.

    Ties resolve to the lowest index, matching a deterministic tree reduction
    that prefers the left operand on equality.  ``xp`` selects the array
    module when ``values`` lives on a non-numpy backend.

    Returns
    -------
    (argmax, max):
        ``(blocks,)`` winning lane indices and winning values.
    """
    vals = xp.asarray(values)
    if vals.ndim != 2:
        raise ValueError(f"values must be (blocks, width), got shape {vals.shape}")
    if stats is not None:
        _account(stats, vals.shape[0], vals.shape[1])
    idx = xp.argmax(vals, axis=1)
    return idx.astype(np.int64), vals[xp.arange(vals.shape[0]), idx]


def block_sum(values: np.ndarray, stats: KernelStats | None = None) -> np.ndarray:
    """Per-block sum over a ``(blocks, width)`` matrix (float64 accumulate)."""
    vals = np.asarray(values)
    if vals.ndim != 2:
        raise ValueError(f"values must be (blocks, width), got shape {vals.shape}")
    if stats is not None:
        _account(stats, vals.shape[0], vals.shape[1])
    return vals.sum(axis=1, dtype=np.float64)
