"""SIMT GPU simulator: functional execution with analytical timing.

This subpackage is the substrate that replaces the paper's CUDA hardware
(see DESIGN.md, "Substitutions").  It has three layers:

1. **Device descriptions** (:mod:`repro.simt.device`): the Tesla C1060 and
   M2050 exactly as the paper's Table I specifies them, including the CC 1.x
   limitation that global float atomics are unavailable.
2. **Functional execution with accounting** (:mod:`repro.simt.memory`,
   :mod:`repro.simt.atomics`, :mod:`repro.simt.reduction`,
   :mod:`repro.simt.counters`): kernels run as vectorised numpy programs and
   record every global/shared/texture access, atomic operation, RNG sample,
   instruction class and synchronisation into a :class:`KernelStats` ledger.
3. **Timing** (:mod:`repro.simt.occupancy`, :mod:`repro.simt.timing`): an
   occupancy calculator plus a cost model that converts a stats ledger and a
   launch configuration into estimated seconds on a given device.

A literal per-thread executor (:mod:`repro.simt.literal`) replays tiny
kernels one simulated thread at a time — generators suspend at barriers —
and is used in the test-suite to cross-validate the vectorised kernels.
"""

from __future__ import annotations

from repro.simt.atomics import AtomicModel
from repro.simt.counters import KernelStats
from repro.simt.device import DEVICES, TESLA_C1060, TESLA_M2050, DeviceSpec
from repro.simt.kernel import Kernel, KernelLaunch, LaunchConfig
from repro.simt.memory import (
    AccessPattern,
    GlobalMemory,
    SharedMemory,
    TextureMemory,
)
from repro.simt.occupancy import Occupancy, occupancy_for
from repro.simt.reduction import block_argmax, block_sum
from repro.simt.timing import CostParams, estimate_time

__all__ = [
    "DeviceSpec",
    "TESLA_C1060",
    "TESLA_M2050",
    "DEVICES",
    "KernelStats",
    "AccessPattern",
    "GlobalMemory",
    "SharedMemory",
    "TextureMemory",
    "AtomicModel",
    "Kernel",
    "KernelLaunch",
    "LaunchConfig",
    "Occupancy",
    "occupancy_for",
    "block_argmax",
    "block_sum",
    "CostParams",
    "estimate_time",
]
