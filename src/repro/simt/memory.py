"""Simulated memory spaces with traffic accounting.

The paper's pheromone-update study is, at heart, a story about memory
traffic: the scatter-to-gather kernel trades ``c = n^2`` atomics for
``l = 2 n^4`` four-byte loads, tiling divides the global share by the tile
size θ, and the symmetric "reduction" kernel halves everything.  To reproduce
those trade-offs the simulator routes every access through one of the space
objects below, which maintain a :class:`~repro.simt.counters.KernelStats`
ledger:

* :class:`GlobalMemory` — records logical bytes **and** estimated DRAM
  traffic after coalescing.  The coalescing model is per-access-pattern:
  a warp's worth of contiguous 4-byte accesses moves exactly its own bytes;
  a random-per-lane pattern moves a full 32-byte segment per lane.
* :class:`SharedMemory` — capacity-checked against the device, counts word
  accesses (the tiled kernels push the 2n^4 access stream here).
* :class:`TextureMemory` — read-only path with a locality knob; the cost
  model charges only estimated cache misses to DRAM.

The functional data itself lives in ordinary numpy arrays owned by kernels;
the spaces' ``load``/``store`` methods are *accounting* calls, either with an
explicit element count (closed-form, for O(n^4) streams that must not be
materialised) or wrapping an actual gather.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import MemoryModelError
from repro.simt.counters import KernelStats
from repro.simt.device import DeviceSpec

__all__ = [
    "AccessPattern",
    "GlobalMemory",
    "SharedMemory",
    "TextureMemory",
    "TRAFFIC_MULTIPLIER",
]


class AccessPattern(enum.Enum):
    """How a warp's lanes address memory, driving the coalescing estimate.

    COALESCED
        Lane *i* reads word *base + i*: one segment per warp.
    BROADCAST
        All lanes read the same word: one segment serves the warp.
    STRIDED
        Constant stride > 1 between lanes: partially coalesced.
    RANDOM
        Data-dependent scatter (tabu checks, ``choice_info[cur][j]`` with
        per-ant rows): a full memory segment per lane.
    """

    COALESCED = "coalesced"
    BROADCAST = "broadcast"
    STRIDED = "strided"
    RANDOM = "random"


#: DRAM bytes moved per *logical* byte requested, for 4-byte elements and the
#: 32-byte minimum segment of the Tesla-era memory controllers.  These are
#: architectural constants; the cost model additionally applies a
#: calibratable derate to the RANDOM bucket (DRAM row misses).
TRAFFIC_MULTIPLIER: dict[AccessPattern, float] = {
    AccessPattern.COALESCED: 1.0,
    # 32 lanes hitting one word still move one 32 B segment => 32/128 per warp.
    AccessPattern.BROADCAST: 0.25,
    AccessPattern.STRIDED: 4.0,
    # One 32 B segment per 4 B lane request.
    AccessPattern.RANDOM: 8.0,
}

#: KernelStats bucket name per access pattern.
_PATTERN_FIELD: dict[AccessPattern, str] = {
    AccessPattern.COALESCED: "gmem_coalesced_bytes",
    AccessPattern.BROADCAST: "gmem_broadcast_bytes",
    AccessPattern.STRIDED: "gmem_strided_bytes",
    AccessPattern.RANDOM: "gmem_random_bytes",
}


class GlobalMemory:
    """Device (video) memory accounting.

    Parameters
    ----------
    device:
        The target device (for the capacity check).
    stats:
        Ledger that receives the counts.

    Examples
    --------
    >>> from repro.simt.device import TESLA_C1060
    >>> st = KernelStats()
    >>> gm = GlobalMemory(TESLA_C1060, st)
    >>> gm.load(1024, pattern=AccessPattern.COALESCED)
    >>> st.gmem_load_bytes
    4096.0
    """

    def __init__(self, device: DeviceSpec, stats: KernelStats) -> None:
        self.device = device
        self.stats = stats
        self._allocated = 0

    # ------------------------------------------------------------ allocation

    def alloc(self, nbytes: int) -> None:
        """Track an allocation; raises when the device would be out of memory."""
        if nbytes < 0:
            raise MemoryModelError(f"allocation size must be >= 0, got {nbytes}")
        if self._allocated + nbytes > self.device.global_mem_bytes:
            raise MemoryModelError(
                f"device OOM: {self._allocated + nbytes} bytes exceeds "
                f"{self.device.name}'s {self.device.global_mem_bytes}"
            )
        self._allocated += nbytes

    def free(self, nbytes: int) -> None:
        if nbytes < 0 or nbytes > self._allocated:
            raise MemoryModelError(
                f"freeing {nbytes} bytes with only {self._allocated} allocated"
            )
        self._allocated -= nbytes

    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    # -------------------------------------------------------------- accesses

    def load(
        self,
        count: float,
        element_bytes: int = 4,
        pattern: AccessPattern = AccessPattern.COALESCED,
    ) -> None:
        """Record ``count`` element loads with the given warp access pattern."""
        self._record(count, element_bytes, pattern, store=False)

    def store(
        self,
        count: float,
        element_bytes: int = 4,
        pattern: AccessPattern = AccessPattern.COALESCED,
    ) -> None:
        """Record ``count`` element stores with the given warp access pattern."""
        self._record(count, element_bytes, pattern, store=True)

    def gather(
        self,
        array: np.ndarray,
        index: np.ndarray,
        pattern: AccessPattern = AccessPattern.RANDOM,
    ) -> np.ndarray:
        """Functionally gather ``array[index]`` while recording the loads."""
        out = array[index]
        self.load(float(np.size(index)), array.dtype.itemsize, pattern)
        return out

    def _record(
        self, count: float, element_bytes: int, pattern: AccessPattern, store: bool
    ) -> None:
        if count < 0:
            raise MemoryModelError(f"access count must be >= 0, got {count}")
        nbytes = float(count) * element_bytes
        if store:
            self.stats.gmem_store_bytes += nbytes
        else:
            self.stats.gmem_load_bytes += nbytes
        field = _PATTERN_FIELD[pattern]
        setattr(self.stats, field, getattr(self.stats, field) + nbytes)


class SharedMemory:
    """Per-block shared memory: capacity check plus access counting.

    The paper's tiled kernels stage tour segments here; kernel version 5 of
    the construction study keeps the tabu list here.  ``nbytes`` is the
    *per-block* footprint used by the occupancy calculator.
    """

    def __init__(self, device: DeviceSpec, stats: KernelStats, nbytes: int) -> None:
        if nbytes < 0:
            raise MemoryModelError(f"shared size must be >= 0, got {nbytes}")
        if nbytes > device.shared_mem_per_sm:
            raise MemoryModelError(
                f"block needs {nbytes} B shared, {device.name} has "
                f"{device.shared_mem_per_sm} B per SM"
            )
        self.device = device
        self.stats = stats
        self.nbytes = int(nbytes)

    def access(self, count: float) -> None:
        """Record ``count`` 32-bit shared-memory accesses (read or write)."""
        if count < 0:
            raise MemoryModelError(f"access count must be >= 0, got {count}")
        self.stats.smem_accesses += float(count)


class TextureMemory:
    """Read-only texture path with a locality-based hit-rate estimate.

    Kernel versions 6 and 8 read random-number streams / ``choice_info``
    through textures.  The texture cache turns spatially local reads into
    on-chip hits; the cost model charges DRAM only for the estimated misses,
    which is where the paper's ~25 % improvement comes from.
    """

    def __init__(self, device: DeviceSpec, stats: KernelStats) -> None:
        self.device = device
        self.stats = stats

    def load(self, count: float, element_bytes: int = 4) -> None:
        """Record ``count`` texture fetches."""
        if count < 0:
            raise MemoryModelError(f"fetch count must be >= 0, got {count}")
        self.stats.tex_bytes += float(count) * element_bytes

    def gather(self, array: np.ndarray, index: np.ndarray) -> np.ndarray:
        """Functionally gather through the texture path, recording fetches."""
        out = array[index]
        self.load(float(np.size(index)), array.dtype.itemsize)
        return out
