"""The :class:`KernelStats` ledger: everything a simulated kernel did.

Every simulated kernel (and the instrumented sequential code) records its
work into one of these ledgers.  The cost model converts a ledger into
estimated seconds; the test-suite cross-checks ledgers produced by the
functional simulation against each strategy's closed-form ``predict_stats``.

Counts are stored as floats because closed-form predictions use expressions
like ``2 * n**4 / theta`` that need not be integral, and because ledgers are
scaled when averaging over iterations.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields

__all__ = ["KernelStats"]


@dataclass
class KernelStats:
    """Aggregated work counters for one (or several merged) kernel launches.

    Attributes
    ----------
    flops:
        Single-precision arithmetic operations (add/mul/fma/compare).
    int_ops:
        Integer/logic/address operations that hit the SP pipes.
    special_ops:
        SFU-class operations: ``powf``, ``expf``, division, sqrt.
    rng_lcg / rng_curand:
        Random samples drawn from the device LCG / the CURAND-style XORWOW
        engine (costed differently; Table II version 3 is this distinction).
    gmem_load_bytes / gmem_store_bytes:
        Logical bytes requested from / written to global memory.
    gmem_coalesced_bytes / gmem_broadcast_bytes / gmem_strided_bytes /
    gmem_random_bytes:
        The same logical bytes, bucketed by warp access pattern; the cost
        model expands each bucket into DRAM traffic with per-pattern
        multipliers (random gathers move a full memory segment per lane).
    tex_bytes:
        Bytes fetched through the texture path.
    smem_accesses:
        Shared-memory accesses (32-bit words).
    atomics_fp / atomics_int:
        Atomic read-modify-write operations on float / integer cells.
    atomic_hot_degree:
        Maximum number of atomic operations addressed to a single cell within
        the merged launches (contention proxy; merged with ``max``).
    divergent_branches:
        Branch executions where a warp split (both paths executed).
    syncthreads:
        Block-wide barriers executed (per block, summed over blocks).
    serial_barriers:
        Barrier generations on the *critical path* — a kernel that loops
        ``n`` steps with 2 barriers per step has ``2 n`` serial barriers
        regardless of how many blocks run them concurrently.  Costed as
        latency, not throughput.
    reduction_steps:
        Tree-reduction stages executed (per block, summed over blocks).
    kernel_launches:
        Number of kernel launches merged into this ledger.
    threads_launched:
        Total threads across launches (grid × block).
    """

    flops: float = 0.0
    int_ops: float = 0.0
    special_ops: float = 0.0
    rng_lcg: float = 0.0
    rng_curand: float = 0.0
    gmem_load_bytes: float = 0.0
    gmem_store_bytes: float = 0.0
    gmem_coalesced_bytes: float = 0.0
    gmem_broadcast_bytes: float = 0.0
    gmem_strided_bytes: float = 0.0
    gmem_random_bytes: float = 0.0
    tex_bytes: float = 0.0
    smem_accesses: float = 0.0
    atomics_fp: float = 0.0
    atomics_int: float = 0.0
    atomic_hot_degree: float = 0.0
    divergent_branches: float = 0.0
    syncthreads: float = 0.0
    serial_barriers: float = 0.0
    reduction_steps: float = 0.0
    kernel_launches: float = 0.0
    threads_launched: float = 0.0

    _MAX_MERGED = ("atomic_hot_degree",)

    # ------------------------------------------------------------ operations

    def merge(self, other: "KernelStats") -> "KernelStats":
        """In-place accumulate another ledger (sum; hot-degree takes max)."""
        for f in fields(self):
            if f.name.startswith("_"):
                continue
            a, b = getattr(self, f.name), getattr(other, f.name)
            if f.name in self._MAX_MERGED:
                setattr(self, f.name, max(a, b))
            else:
                setattr(self, f.name, a + b)
        return self

    def __add__(self, other: "KernelStats") -> "KernelStats":
        out = dataclasses.replace(self)
        return out.merge(other)

    def scaled(self, factor: float) -> "KernelStats":
        """A copy with every additive counter multiplied by ``factor``.

        Used to express "per iteration" ledgers; the hot degree is a maximum
        and is left unscaled.
        """
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        out = dataclasses.replace(self)
        for f in fields(out):
            if f.name.startswith("_") or f.name in self._MAX_MERGED:
                continue
            setattr(out, f.name, getattr(out, f.name) * factor)
        return out

    # ----------------------------------------------------------- inspection

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view (stable field order), for reports and tests."""
        return {
            f.name: float(getattr(self, f.name))
            for f in fields(self)
            if not f.name.startswith("_")
        }

    def total_atomics(self) -> float:
        return self.atomics_fp + self.atomics_int

    def total_gmem_bytes(self) -> float:
        return self.gmem_load_bytes + self.gmem_store_bytes

    def approx_equal(self, other: "KernelStats", *, rtol: float = 1e-9) -> bool:
        """Field-wise closeness test used by predict-vs-simulate checks."""
        for f in fields(self):
            if f.name.startswith("_"):
                continue
            a, b = float(getattr(self, f.name)), float(getattr(other, f.name))
            if abs(a - b) > rtol * max(1.0, abs(a), abs(b)):
                return False
        return True

    def diff(self, other: "KernelStats") -> dict[str, tuple[float, float]]:
        """Fields where the two ledgers disagree — handy in test failures."""
        out: dict[str, tuple[float, float]] = {}
        for name, a in self.as_dict().items():
            b = other.as_dict()[name]
            if a != b:
                out[name] = (a, b)
        return out
