"""Device specifications — the paper's Table I, verbatim.

Each :class:`DeviceSpec` is a frozen record of hardware facts.  Calibrated
*cost-model* constants live separately in :class:`repro.simt.timing.CostParams`
so that the hardware description stays a faithful transcription of the paper.

===============================  ===========  ===========
feature                          Tesla C1060  Tesla M2050
===============================  ===========  ===========
Streaming cores per SM                     8           32
Number of SMs                             30           14
Total SPs                                240          448
Clock frequency                    1 296 MHz    1 147 MHz
Max threads per multiprocessor         1 024        1 536
Max threads per block                    512        1 024
Threads per warp                          32           32
32-bit registers per SM                 16 K         32 K
Shared memory per SM                   16 KB     16/48 KB
L1 cache per SM                           no     48/16 KB
Global memory size                      4 GB         3 GB
Memory speed                        2x800 MHz  2x1500 MHz
Memory bus width                    512 bits     384 bits
Memory bandwidth                    102 GB/s     144 GB/s
Technology                             GDDR3        GDDR5
===============================  ===========  ===========
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "TESLA_C1060", "TESLA_M2050", "DEVICES"]


@dataclass(frozen=True)
class DeviceSpec:
    """Immutable description of a CUDA device, per the paper's Table I.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"Tesla C1060"``.
    compute_capability:
        CUDA compute capability as a float (1.3, 2.0).  CC < 2.0 lacks
        hardware float atomics on global memory — the pivotal fact behind
        the paper's Figure 5 discussion.
    sm_count / sp_per_sm:
        Streaming multiprocessors and scalar processors per SM.
    clock_hz:
        SP clock in Hz.
    max_threads_per_sm / max_threads_per_block / warp_size:
        Scheduling limits.
    registers_per_sm:
        32-bit registers per SM.
    shared_mem_per_sm:
        Shared memory per SM in bytes (Fermi: the 48 KB configuration).
    l1_cache_per_sm:
        L1 data cache per SM in bytes; 0 when the architecture has none.
    global_mem_bytes / bandwidth_bytes_s / bus_width_bits:
        DRAM size, peak bandwidth (bytes/s) and bus width.
    max_blocks_per_sm:
        Hardware limit on resident blocks per SM (8 on both CC 1.3 / 2.0).
    technology:
        Memory technology string, for reports.
    """

    name: str
    compute_capability: float
    sm_count: int
    sp_per_sm: int
    clock_hz: float
    max_threads_per_sm: int
    max_threads_per_block: int
    warp_size: int
    registers_per_sm: int
    shared_mem_per_sm: int
    l1_cache_per_sm: int
    global_mem_bytes: int
    bandwidth_bytes_s: float
    bus_width_bits: int
    max_blocks_per_sm: int = 8
    technology: str = ""

    # ------------------------------------------------------------- derived

    @property
    def total_sps(self) -> int:
        """Total scalar processors (GPU cores)."""
        return self.sm_count * self.sp_per_sm

    @property
    def peak_ips(self) -> float:
        """Peak scalar instructions per second (1 instruction/SP/clock)."""
        return self.total_sps * self.clock_hz

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    @property
    def has_fp32_global_atomics(self) -> bool:
        """Hardware ``atomicAdd`` on ``float`` in global memory (CC >= 2.0)."""
        return self.compute_capability >= 2.0

    @property
    def has_l1_cache(self) -> bool:
        return self.l1_cache_per_sm > 0

    def validate_block(self, threads_per_block: int) -> None:
        """Raise :class:`~repro.errors.LaunchConfigError` for illegal blocks."""
        from repro.errors import LaunchConfigError

        if threads_per_block <= 0:
            raise LaunchConfigError(
                f"threads per block must be positive, got {threads_per_block}"
            )
        if threads_per_block > self.max_threads_per_block:
            raise LaunchConfigError(
                f"{threads_per_block} threads/block exceeds {self.name} limit "
                f"of {self.max_threads_per_block}"
            )


TESLA_C1060 = DeviceSpec(
    name="Tesla C1060",
    compute_capability=1.3,
    sm_count=30,
    sp_per_sm=8,
    clock_hz=1_296e6,
    max_threads_per_sm=1_024,
    max_threads_per_block=512,
    warp_size=32,
    registers_per_sm=16 * 1024,
    shared_mem_per_sm=16 * 1024,
    l1_cache_per_sm=0,
    global_mem_bytes=4 * 1024**3,
    bandwidth_bytes_s=102e9,
    bus_width_bits=512,
    technology="GDDR3",
)

TESLA_M2050 = DeviceSpec(
    name="Tesla M2050",
    compute_capability=2.0,
    sm_count=14,
    sp_per_sm=32,
    clock_hz=1_147e6,
    max_threads_per_sm=1_536,
    max_threads_per_block=1_024,
    warp_size=32,
    registers_per_sm=32 * 1024,
    shared_mem_per_sm=48 * 1024,
    l1_cache_per_sm=16 * 1024,
    global_mem_bytes=3 * 1024**3,
    bandwidth_bytes_s=144e9,
    bus_width_bits=384,
    technology="GDDR5",
)

#: Registry keyed by the short names used in experiment configs.
DEVICES: dict[str, DeviceSpec] = {
    "c1060": TESLA_C1060,
    "m2050": TESLA_M2050,
}
