"""Atomic-operation model, including the CC 1.x float emulation.

The pheromone-deposit kernel needs ``atomicAdd(&tau[i][j], 1/C_k)`` because
different ants feasibly share edges.  Two hardware facts from the paper:

* atomics serialise colliding updates, "which diminishes the application
  performance";
* "those atomic operations are not supported by GPUs with CCC 1.x for
  floating point operations" — on the Tesla C1060 a float ``atomicAdd`` must
  be emulated with an integer compare-and-swap loop, which is the reason
  Figure 5's C1060 speed-ups are an order of magnitude below the M2050's.

:class:`AtomicModel` performs the update *functionally* (numpy ``add.at``,
which is exactly an atomic-sum semantics) while recording the operation count
and a contention proxy (the hottest cell's update multiplicity) into the
stats ledger.  Whether the op is counted as native or emulated depends on the
device's compute capability; ``strict=True`` turns emulation into an error so
callers can assert feature requirements instead.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceFeatureError
from repro.simt.counters import KernelStats
from repro.simt.device import DeviceSpec

__all__ = ["AtomicModel"]


class AtomicModel:
    """Functional + accounted atomic operations for one device.

    Parameters
    ----------
    device:
        Target device; decides native vs emulated float atomics.
    stats:
        Ledger receiving counts.
    strict:
        When True, a float atomic on a device without hardware support raises
        :class:`~repro.errors.DeviceFeatureError` instead of being emulated.
    """

    #: cost multiplier for a CAS-emulated float atomic relative to native —
    #: the CAS loop retries under contention; 1 CAS + 1 read + loop overhead.
    EMULATION_COST_FACTOR = 4.0

    def __init__(
        self, device: DeviceSpec, stats: KernelStats, *, strict: bool = False
    ) -> None:
        self.device = device
        self.stats = stats
        self.strict = strict

    # ----------------------------------------------------------------- float

    def add_float(
        self,
        target: np.ndarray,
        flat_index: np.ndarray,
        values: np.ndarray | float,
    ) -> None:
        """``atomicAdd`` of ``values`` into ``target.flat[flat_index]``.

        ``flat_index`` may contain repeats; repeats are the contention the
        model accounts.  ``target`` is updated in place.
        """
        flat_index = np.asarray(flat_index)
        if flat_index.size == 0:
            return
        if not self.device.has_fp32_global_atomics:
            if self.strict:
                raise DeviceFeatureError(
                    f"{self.device.name} (CC {self.device.compute_capability}) "
                    "has no hardware float atomics; use emulation or another kernel"
                )
            # Emulated: each logical op is counted, and the ledger's
            # *emulated* nature is captured by the device at costing time
            # (CostParams applies EMULATION_COST_FACTOR for CC < 2.0).
        np.add.at(target.reshape(-1), flat_index.reshape(-1), values)
        ops = float(flat_index.size)
        self.stats.atomics_fp += ops
        self._record_contention(flat_index)

    # ------------------------------------------------------------------- int

    def add_int(
        self,
        target: np.ndarray,
        flat_index: np.ndarray,
        values: np.ndarray | int,
    ) -> None:
        """Integer ``atomicAdd`` (supported natively on both paper devices)."""
        flat_index = np.asarray(flat_index)
        if flat_index.size == 0:
            return
        np.add.at(target.reshape(-1), flat_index.reshape(-1), values)
        self.stats.atomics_int += float(flat_index.size)
        self._record_contention(flat_index)

    # ----------------------------------------------------- counting helpers

    def count_float_ops(self, count: float, hot_degree: float = 1.0) -> None:
        """Closed-form accounting without a functional array update.

        Used by predictors and by kernels whose functional effect was already
        applied through a vectorised equivalent.
        """
        if count < 0:
            raise ValueError(f"atomic count must be >= 0, got {count}")
        self.stats.atomics_fp += float(count)
        self.stats.atomic_hot_degree = max(self.stats.atomic_hot_degree, hot_degree)

    def _record_contention(self, flat_index: np.ndarray) -> None:
        # The hottest single address is the serialisation bound for a wave of
        # concurrent atomics; bincount over a compacted index range is O(k).
        _, counts = np.unique(flat_index.reshape(-1), return_counts=True)
        self.stats.atomic_hot_degree = max(
            self.stats.atomic_hot_degree, float(counts.max())
        )
