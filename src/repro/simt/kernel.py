"""Kernel launch configuration and launch records.

The paper's kernels are all 1-D grids of 1-D blocks (threads = ants, threads
= cities, threads = matrix cells), so :class:`LaunchConfig` models exactly
that plus the two per-block resources the occupancy calculator needs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.errors import LaunchConfigError
from repro.simt.counters import KernelStats
from repro.simt.device import DeviceSpec
from repro.simt.occupancy import Occupancy, occupancy_for

__all__ = ["LaunchConfig", "KernelLaunch", "Kernel", "grid_for"]


def grid_for(total_threads: int, block: int) -> int:
    """Blocks needed to cover ``total_threads`` with ``block``-sized blocks."""
    if total_threads <= 0:
        raise LaunchConfigError(f"total_threads must be positive, got {total_threads}")
    if block <= 0:
        raise LaunchConfigError(f"block must be positive, got {block}")
    return -(-total_threads // block)


@dataclass(frozen=True)
class LaunchConfig:
    """One kernel launch shape.

    Attributes
    ----------
    grid:
        Number of thread blocks.
    block:
        Threads per block.
    smem_per_block:
        Shared-memory bytes statically required per block.
    regs_per_thread:
        Register footprint per thread (occupancy input).
    """

    grid: int
    block: int
    smem_per_block: int = 0
    regs_per_thread: int = 16

    def __post_init__(self) -> None:
        if self.grid <= 0:
            raise LaunchConfigError(f"grid must be positive, got {self.grid}")
        if self.block <= 0:
            raise LaunchConfigError(f"block must be positive, got {self.block}")

    @property
    def total_threads(self) -> int:
        return self.grid * self.block

    def validate(self, device: DeviceSpec) -> None:
        """Check the block against the device's hard limits."""
        device.validate_block(self.block)
        if self.smem_per_block > device.shared_mem_per_sm:
            raise LaunchConfigError(
                f"{self.smem_per_block} B shared/block exceeds {device.name}'s "
                f"{device.shared_mem_per_sm} B per SM"
            )

    def occupancy(self, device: DeviceSpec) -> Occupancy:
        """Occupancy of this shape on ``device`` (validates first)."""
        self.validate(device)
        return occupancy_for(
            device,
            self.block,
            regs_per_thread=self.regs_per_thread,
            smem_per_block=self.smem_per_block,
            total_blocks=self.grid,
        )


@dataclass
class KernelLaunch:
    """Record of one launch: who ran, with what shape, and what it did."""

    name: str
    config: LaunchConfig
    stats: KernelStats = field(default_factory=KernelStats)

    def effective_parallelism(self, device: DeviceSpec) -> float:
        return self.config.occupancy(device).effective_parallelism


class Kernel(abc.ABC):
    """Base class for simulated kernels.

    Subclasses implement :meth:`launch_config` (shape for a given problem
    size) and whatever functional entry points their stage needs; the base
    provides launch bookkeeping so stats ledgers always carry launch counts
    and thread totals.
    """

    #: human-readable kernel name, e.g. ``"pheromone_deposit_atomic"``
    name: str = "kernel"

    @abc.abstractmethod
    def launch_config(self, device: DeviceSpec, **problem) -> LaunchConfig:
        """Launch shape for a problem instance on a device."""

    @staticmethod
    def record_launch(stats: KernelStats, config: LaunchConfig, count: int = 1) -> None:
        """Account ``count`` launches of ``config`` into ``stats``."""
        if count < 0:
            raise LaunchConfigError(f"launch count must be >= 0, got {count}")
        stats.kernel_launches += float(count)
        stats.threads_launched += float(count) * config.total_threads
