"""CUDA occupancy calculator.

Occupancy — resident warps per SM relative to the hardware maximum — is the
latency-hiding budget of a kernel.  The paper leans on it twice: the
task-based construction kernel "requires a relatively low number of threads"
(m = n ants is far too few to fill a C1060 at small n), and past pr1002 "the
GPU occupancy is drastically affected" once per-block shared usage grows.

Residency per SM is the minimum over four limits (threads, blocks, registers,
shared memory), exactly like NVIDIA's spreadsheet; allocation granularities
are simplified to exact division since the paper never exercises the rounding
corner cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OccupancyError
from repro.simt.device import DeviceSpec

__all__ = ["Occupancy", "occupancy_for"]


@dataclass(frozen=True)
class Occupancy:
    """Occupancy report for one kernel on one device.

    Attributes
    ----------
    blocks_per_sm:
        Concurrent resident blocks per SM.
    active_warps_per_sm:
        Resident warps per SM.
    occupancy:
        ``active_warps_per_sm / device.max_warps_per_sm`` in [0, 1].
    limiting_factor:
        Which resource bound residency: ``"threads" | "blocks" | "registers"
        | "shared_mem"``.
    grid_fill:
        Fraction of the device the *grid* can keep busy in the steady state:
        min(1, total_blocks / (blocks_per_sm × sm_count)).  A 48-block launch
        on a 30-SM C1060 cannot fill the machine no matter the occupancy —
        this is the small-instance effect in Figure 4(a).
    """

    blocks_per_sm: int
    active_warps_per_sm: int
    occupancy: float
    limiting_factor: str
    grid_fill: float

    @property
    def effective_parallelism(self) -> float:
        """Occupancy × grid fill: the scheduler's usable fraction of the GPU."""
        return self.occupancy * self.grid_fill


def occupancy_for(
    device: DeviceSpec,
    threads_per_block: int,
    *,
    regs_per_thread: int = 16,
    smem_per_block: int = 0,
    total_blocks: int | None = None,
) -> Occupancy:
    """Compute occupancy for a launch shape on a device.

    Parameters
    ----------
    device:
        Target device.
    threads_per_block:
        Block size in threads (validated against the device limit).
    regs_per_thread:
        Register footprint per thread (default 16, a typical value for the
        paper's kernels).
    smem_per_block:
        Shared-memory bytes per block.
    total_blocks:
        Grid size; when given, ``grid_fill`` reflects whether the grid can
        populate every SM.

    Raises
    ------
    OccupancyError
        When a single block already exceeds a per-SM resource.
    """
    device.validate_block(threads_per_block)
    if regs_per_thread <= 0:
        raise OccupancyError(f"regs_per_thread must be positive, got {regs_per_thread}")
    if smem_per_block < 0:
        raise OccupancyError(f"smem_per_block must be >= 0, got {smem_per_block}")

    limits: dict[str, float] = {
        "threads": device.max_threads_per_sm // threads_per_block,
        "blocks": device.max_blocks_per_sm,
    }
    regs_per_block = regs_per_thread * threads_per_block
    if regs_per_block > device.registers_per_sm:
        raise OccupancyError(
            f"one block needs {regs_per_block} registers, "
            f"{device.name} has {device.registers_per_sm} per SM"
        )
    limits["registers"] = device.registers_per_sm // regs_per_block
    if smem_per_block > 0:
        if smem_per_block > device.shared_mem_per_sm:
            raise OccupancyError(
                f"one block needs {smem_per_block} B shared, "
                f"{device.name} has {device.shared_mem_per_sm} B per SM"
            )
        limits["shared_mem"] = device.shared_mem_per_sm // smem_per_block

    limiting = min(limits, key=lambda k: limits[k])
    blocks = int(limits[limiting])
    if blocks < 1:
        raise OccupancyError(
            f"block of {threads_per_block} threads cannot be scheduled on {device.name}"
        )

    warps_per_block = -(-threads_per_block // device.warp_size)  # ceil div
    active_warps = min(blocks * warps_per_block, device.max_warps_per_sm)
    occ = active_warps / device.max_warps_per_sm

    if total_blocks is None:
        grid_fill = 1.0
    else:
        if total_blocks <= 0:
            raise OccupancyError(f"total_blocks must be positive, got {total_blocks}")
        capacity = blocks * device.sm_count
        grid_fill = min(1.0, total_blocks / capacity)

    return Occupancy(
        blocks_per_sm=blocks,
        active_warps_per_sm=int(active_warps),
        occupancy=float(occ),
        limiting_factor=limiting,
        grid_fill=float(grid_fill),
    )
