"""Literal per-thread SIMT executor, for differential testing.

The production kernels in :mod:`repro.core` are vectorised across threads for
speed.  To check that the vectorisation preserves CUDA semantics, this module
executes a *thread program* — a Python generator function, one instance per
simulated thread — with real barrier synchronisation: every ``yield`` is a
``__syncthreads()``, and the executor advances all threads of a block in
lock-step between barriers.

This is intentionally slow and only used on tiny problems in the test-suite
(e.g. validating the tree reduction, the bit-packed tabu list and the tiled
next-city selection against their vectorised equivalents).

Examples
--------
>>> def program(tid, shared, n):
...     shared["vals"][tid] = tid * 2
...     yield  # __syncthreads()
...     if tid == 0:
...         shared["total"] = sum(shared["vals"][:n])
...     yield
...     return shared["total"]
>>> shared = {"vals": [0] * 4, "total": None}
>>> run_block(program, 4, shared, 4)
[12, 12, 12, 12]
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from typing import Any

from repro.errors import SimtError

__all__ = ["run_block", "run_grid", "BarrierDivergenceError"]


class BarrierDivergenceError(SimtError):
    """Threads of one block disagreed on the number of barriers executed.

    On real hardware, a ``__syncthreads()`` inside a divergent branch hangs
    the block; the literal executor turns that bug into this exception.
    """


ThreadProgram = Callable[..., Generator[None, None, Any]]


def run_block(
    program: ThreadProgram,
    block_dim: int,
    shared: dict[str, Any],
    *args: Any,
) -> list[Any]:
    """Run ``block_dim`` instances of ``program`` with barrier semantics.

    Parameters
    ----------
    program:
        Generator function ``program(tid, shared, *args)``; each ``yield``
        is a block-wide barrier; the ``return`` value is the thread result.
    block_dim:
        Number of threads in the block.
    shared:
        The block's shared memory: a dict every thread sees.
    *args:
        Extra arguments passed to every thread.

    Returns
    -------
    list
        Per-thread return values, index = thread id.

    Raises
    ------
    BarrierDivergenceError
        If some threads hit a barrier while others finish.
    """
    if block_dim <= 0:
        raise SimtError(f"block_dim must be positive, got {block_dim}")
    threads = [program(tid, shared, *args) for tid in range(block_dim)]
    results: list[Any] = [None] * block_dim
    live: set[int] = set(range(block_dim))

    generation = 0
    while live:
        arrived: set[int] = set()
        finished: set[int] = set()
        for tid in sorted(live):
            try:
                next(threads[tid])
                arrived.add(tid)
            except StopIteration as stop:
                results[tid] = stop.value
                finished.add(tid)
        if arrived and finished:
            raise BarrierDivergenceError(
                f"barrier generation {generation}: threads {sorted(arrived)} "
                f"are waiting while threads {sorted(finished)} exited"
            )
        live -= finished
        generation += 1

    return results


def run_grid(
    program: ThreadProgram,
    grid_dim: int,
    block_dim: int,
    make_shared: Callable[[int], dict[str, Any]],
    *args: Any,
) -> list[list[Any]]:
    """Run a 1-D grid of blocks; blocks are independent (no global barrier).

    Parameters
    ----------
    program:
        Generator function ``program(tid, shared, block_idx, *args)``.
    grid_dim / block_dim:
        Grid shape.
    make_shared:
        Factory called with the block index, returning that block's shared
        dict (mirrors per-block shared memory allocation).

    Returns
    -------
    list of per-block result lists.
    """
    if grid_dim <= 0:
        raise SimtError(f"grid_dim must be positive, got {grid_dim}")
    out: list[list[Any]] = []
    for block in range(grid_dim):
        shared = make_shared(block)
        out.append(
            run_block(
                lambda tid, sh, *a, _b=block: program(tid, sh, _b, *a),
                block_dim,
                shared,
                *args,
            )
        )
    return out
