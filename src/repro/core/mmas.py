"""MAX-MIN Ant System (MMAS) — the variant behind the paper's related work.

Jiening et al. (cited in Section III) GPU-ported the *Max-Min Ant System*;
this module supplies that algorithm on our substrates, reusing the paper's
GPU tour-construction kernels unchanged (MMAS differs from AS only in trail
management, exactly the pheromone stage this repository models in detail).

MMAS (Stützle & Hoos, 2000) modifies the Ant System in three ways:

1. **Best-only deposit** — per iteration only one ant deposits: the
   iteration-best tour, or periodically the best-so-far tour (the
   ``use_best_so_far_every`` schedule).
2. **Trail limits** — after every update, pheromone is clamped into
   ``[tau_min, tau_max]`` with ``tau_max = 1 / (rho * C_best)`` and
   ``tau_min = tau_max / (2 n)``, preventing stagnation on one tour.
3. **Optimistic initialisation** — trails start at ``tau_max`` (computed
   from the greedy nearest-neighbour tour), encouraging early exploration.

On the GPU, the deposit kernel shrinks from m blocks to a single block (one
tour), making the *evaporation* sweep the dominant pheromone cost — the
ledger reflects that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.acs import require_numpy_backend
from repro.core.choice import ChoiceKernel
from repro.core.construction import TourConstruction, make_construction
from repro.core.params import ACOParams
from repro.core.report import StageReport
from repro.core.state import ColonyState
from repro.errors import ACOConfigError, RunInterrupted
from repro.rng import make_rng
from repro.simt.counters import KernelStats
from repro.simt.device import TESLA_M2050, DeviceSpec
from repro.simt.kernel import Kernel, LaunchConfig, grid_for
from repro.simt.memory import AccessPattern, GlobalMemory
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import nearest_neighbor_tour, tour_length, tour_lengths, validate_tour
from repro.util.timer import WallClock

__all__ = ["MMASParams", "MaxMinAntSystem", "MMASRunResult"]


@dataclass(frozen=True)
class MMASParams:
    """MMAS-specific knobs.

    Attributes
    ----------
    use_best_so_far_every:
        Every k-th iteration deposits the best-so-far tour instead of the
        iteration best (0 disables best-so-far deposits entirely).
    tau_min_divisor:
        ``tau_min = tau_max / (tau_min_divisor * n)`` — the classical
        choice is 2.
    """

    use_best_so_far_every: int = 5
    tau_min_divisor: float = 2.0

    def __post_init__(self) -> None:
        if self.use_best_so_far_every < 0:
            raise ACOConfigError(
                f"use_best_so_far_every must be >= 0, got {self.use_best_so_far_every}"
            )
        if self.tau_min_divisor <= 0:
            raise ACOConfigError(
                f"tau_min_divisor must be > 0, got {self.tau_min_divisor}"
            )


@dataclass
class MMASRunResult:
    """Summary of a MMAS run."""

    best_tour: np.ndarray
    best_length: int
    iteration_best_lengths: list[int]
    wall_seconds: float
    trail_reinitialisations: int = 0


class MaxMinAntSystem(Kernel):
    """GPU-simulated MAX-MIN Ant System.

    Parameters
    ----------
    instance:
        TSP instance.
    params:
        Base parameters (MMAS classically uses a lower rho, e.g. 0.2, but
        the default AS settings work).
    mmas:
        MMAS schedule/limit knobs.
    construction:
        Any of the paper's construction kernels (version 1-8, key, or
        instance); default 8.
    device:
        Simulated device.
    backend:
        Accepted for CLI/API symmetry with :class:`~repro.core.AntSystem`,
        but the solo MMAS path runs numpy only: any non-numpy value raises
        :class:`~repro.errors.ACOConfigError` instead of being silently
        ignored.

    Examples
    --------
    >>> from repro.tsp import uniform_instance
    >>> mmas = MaxMinAntSystem(uniform_instance(30, seed=4))
    >>> res = mmas.run(iterations=5)
    >>> res.best_length > 0
    True
    """

    name = "mmas"

    def __init__(
        self,
        instance: TSPInstance,
        params: ACOParams | None = None,
        mmas: MMASParams | None = None,
        construction: int | str | TourConstruction = 8,
        device: DeviceSpec = TESLA_M2050,
        backend=None,
    ) -> None:
        require_numpy_backend(backend, "MaxMinAntSystem")
        self.params = params or ACOParams()
        self.mmas = mmas or MMASParams()
        self.device = device
        self.construction = make_construction(construction)
        self.choice_kernel = ChoiceKernel()
        # Pin numpy explicitly: with backend=None the state/RNG would
        # otherwise resolve ACO_BACKEND themselves and an env-selected
        # accelerated backend would drift into this numpy-only path.
        self.state = ColonyState.create(
            instance, self.params, device, backend="numpy"
        )

        # Optimistic initialisation: tau_max from the greedy tour.
        c_nn = tour_length(nearest_neighbor_tour(self.state.dist), self.state.dist)
        self._set_limits(float(c_nn))
        self.state.pheromone[:, :] = self.tau_max
        np.fill_diagonal(self.state.pheromone, 0.0)

        streams = self.construction.rng_streams(self.state.n, self.state.m)
        self.rng = make_rng(
            self.construction.rng_kind, streams, self.params.seed,
            backend="numpy",
        )
        self.trail_reinitialisations = 0

    # -------------------------------------------------------------- limits

    def _set_limits(self, best_length: float) -> None:
        """Recompute ``tau_max``/``tau_min`` from the current best length."""
        self.tau_max = 1.0 / (self.params.rho * best_length)
        self.tau_min = self.tau_max / (self.mmas.tau_min_divisor * self.state.n)

    def clamp_trails(self) -> None:
        """Clamp pheromone into ``[tau_min, tau_max]`` (diagonal stays 0)."""
        np.clip(self.state.pheromone, self.tau_min, self.tau_max, out=self.state.pheromone)
        np.fill_diagonal(self.state.pheromone, 0.0)

    def reinitialise_trails(self) -> None:
        """Reset all trails to ``tau_max`` (stagnation escape)."""
        self.state.pheromone[:, :] = self.tau_max
        np.fill_diagonal(self.state.pheromone, 0.0)
        self.trail_reinitialisations += 1

    def branching_factor(self, lam: float = 0.05) -> float:
        """Mean λ-branching factor — the classical MMAS stagnation gauge.

        For each city, counts edges whose trail exceeds
        ``tau_min_row + lam * (tau_max_row - tau_min_row)``; values near 2
        mean the colony has converged onto a single tour.
        """
        tau = self.state.pheromone
        n = self.state.n
        off = ~np.eye(n, dtype=bool)
        rows = np.where(off, tau, np.nan)
        row_min = np.nanmin(rows, axis=1, keepdims=True)
        row_max = np.nanmax(rows, axis=1, keepdims=True)
        threshold = row_min + lam * (row_max - row_min)
        counts = np.nansum(rows >= threshold, axis=1)
        return float(counts.mean())

    # ------------------------------------------------------------- geometry

    def launch_config(self, device: DeviceSpec, **problem) -> LaunchConfig:
        n = problem.get("n", self.state.n)
        return LaunchConfig(grid=grid_for(n * n, 256), block=256)

    # --------------------------------------------------------------- update

    def update_pheromone(self, deposit_tour: np.ndarray, deposit_length: int) -> StageReport:
        """Evaporate everywhere, deposit on one tour, clamp to the limits."""
        st = self.state
        stats = KernelStats()
        launch = self.launch_config(self.device, n=st.n)
        gmem = GlobalMemory(self.device, stats)

        # Evaporation sweep (the dominant kernel: n^2 cells).
        self.record_launch(stats, launch)
        st.pheromone *= 1.0 - self.params.rho
        cells = float(st.n) * st.n
        gmem.load(cells, 4, AccessPattern.COALESCED)
        gmem.store(cells, 4, AccessPattern.COALESCED)
        stats.flops += cells

        # Single-tour deposit (one block).
        deposit_launch = LaunchConfig(grid=1, block=min(256, self.device.max_threads_per_block))
        self.record_launch(stats, deposit_launch)
        t = deposit_tour.astype(np.int64)
        a, b = t[:-1], t[1:]
        delta = 1.0 / float(deposit_length)
        st.pheromone[a, b] += delta
        st.pheromone[b, a] += delta
        stats.atomics_fp += 2.0 * st.n
        gmem.load(float(st.n + 1), 4, AccessPattern.COALESCED)

        # Clamp kernel (fused in practice; counted as one more sweep).
        self.clamp_trails()
        self.record_launch(stats, launch)
        gmem.load(cells, 4, AccessPattern.COALESCED)
        gmem.store(cells, 4, AccessPattern.COALESCED)
        stats.flops += 2.0 * cells  # two compares per cell

        return StageReport(stage="pheromone", kernel="mmas_update", stats=stats, launch=launch)

    # ------------------------------------------------------------ iteration

    def run_iteration(self) -> tuple[int, list[StageReport]]:
        """One MMAS iteration; returns (iteration best, stage reports)."""
        st = self.state
        stages: list[StageReport] = []
        if self.construction.needs_choice_info:
            stages.append(self.choice_kernel.run(st))

        result = self.construction.build(st, self.rng)
        stages.append(result.report)
        lengths = tour_lengths(result.tours, st.dist)

        it_best = int(np.argmin(lengths))
        improved = st.best_length is None or int(lengths[it_best]) < st.best_length
        st.record_tours(result.tours, lengths)
        if improved:
            assert st.best_length is not None
            self._set_limits(float(st.best_length))

        # Deposit schedule: iteration best, periodically best-so-far.
        k = self.mmas.use_best_so_far_every
        use_bsf = k > 0 and st.iteration % k == k - 1
        if use_bsf:
            assert st.best_tour is not None and st.best_length is not None
            stages.append(self.update_pheromone(st.best_tour, st.best_length))
        else:
            stages.append(
                self.update_pheromone(result.tours[it_best], int(lengths[it_best]))
            )
        st.iteration += 1
        return int(lengths[it_best]), stages

    def run(
        self,
        iterations: int,
        report_every: int = 1,
        *,
        reinit_branching: float | None = None,
    ) -> MMASRunResult:
        """Run MMAS; optionally reinitialise trails when the branching
        factor falls below ``reinit_branching`` (e.g. 2.05).

        ``report_every`` exists for signature symmetry with
        :meth:`AntSystem.run <repro.core.colony.AntSystem.run>` but the
        solo MMAS loop has no amortized path; any value other than 1
        raises instead of being silently ignored.  Ctrl-C raises
        :class:`~repro.errors.RunInterrupted` carrying the best-so-far
        :class:`MMASRunResult` (bare ``KeyboardInterrupt`` when nothing
        completed).
        """
        if iterations < 1:
            raise ACOConfigError(f"iterations must be >= 1, got {iterations}")
        if report_every != 1:
            raise ACOConfigError(
                "report_every > 1 needs the device-resident batched loop; "
                "the solo MMAS path reports every iteration (use the Ant "
                "System variant for amortized execution)"
            )
        bests: list[int] = []
        clock = WallClock()
        try:
            with clock:
                for _ in range(iterations):
                    best, _ = self.run_iteration()
                    bests.append(best)
                    if (
                        reinit_branching is not None
                        and self.branching_factor() < reinit_branching
                    ):
                        self.reinitialise_trails()
        except KeyboardInterrupt:
            st = self.state
            if st.best_tour is None or st.best_length is None:
                raise
            partial = MMASRunResult(
                best_tour=st.best_tour,
                best_length=st.best_length,
                iteration_best_lengths=bests,
                wall_seconds=clock.elapsed,
                trail_reinitialisations=self.trail_reinitialisations,
            )
            raise RunInterrupted(partial, "MMAS run interrupted") from None
        st = self.state
        assert st.best_tour is not None and st.best_length is not None
        validate_tour(st.best_tour, st.n)
        return MMASRunResult(
            best_tour=st.best_tour,
            best_length=st.best_length,
            iteration_best_lengths=bests,
            wall_seconds=clock.elapsed,
            trail_reinitialisations=self.trail_reinitialisations,
        )
