"""MAX-MIN Ant System (MMAS) — the variant behind the paper's related work.

Jiening et al. (cited in Section III) GPU-ported the *Max-Min Ant System*;
since the variant redesign this module supplies that algorithm on the
batched :class:`~repro.core.batch.BatchEngine`: MMAS reuses the paper's
tour-construction kernels unchanged (it differs from AS only in trail
management) through the roulette choice policy, and swaps the deposit-all
pheromone stage for the trail-limits update policy
(:class:`~repro.core.variant.TrailLimitsUpdate`) — best-only deposit on a
best-so-far schedule, ``[tau_min, tau_max]`` clamping that follows the
best-so-far length, optimistic initialisation at ``tau_max`` and optional
branching-factor stagnation reinitialisation.  All of it batched over B
colonies, backend-resident and amortization-safe.

:class:`MaxMinAntSystem` here is the ``B = 1`` view of the engine; the
pre-redesign solo loop is retained verbatim as
:class:`~repro.core.reference.ReferenceMaxMinAntSystem`, the parity oracle
``tests/property/test_variant_parity.py`` pins the engine against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.batch import BatchEngine
from repro.core.colony import run_engine_view
from repro.core.construction import TourConstruction
from repro.core.params import ACOParams
from repro.core.variant import MMASParams, TrailLimitsUpdate
from repro.simt.device import TESLA_M2050, DeviceSpec
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import validate_tour

__all__ = ["MMASParams", "MaxMinAntSystem", "MMASRunResult"]


@dataclass
class MMASRunResult:
    """Summary of a MMAS run."""

    best_tour: np.ndarray
    best_length: int
    iteration_best_lengths: list[int]
    wall_seconds: float
    trail_reinitialisations: int = 0


class MaxMinAntSystem:
    """GPU-simulated MAX-MIN Ant System — the engine's B=1 MMAS view.

    Parameters
    ----------
    instance:
        TSP instance.
    params:
        Base parameters (MMAS classically uses a lower rho, e.g. 0.2, but
        the default AS settings work).
    mmas:
        MMAS schedule/limit knobs.
    construction:
        Any of the paper's construction kernels (version 1-8, key, or
        instance); default 8.
    device:
        Simulated device.
    backend:
        Array backend the iteration kernels execute on — a name
        (``"numpy"``, ``"cupy"``), an
        :class:`~repro.backend.ArrayBackend` instance, or ``None`` to
        resolve ``ACO_BACKEND`` / the numpy default.

    Examples
    --------
    >>> from repro.tsp import uniform_instance
    >>> mmas = MaxMinAntSystem(uniform_instance(30, seed=4))
    >>> res = mmas.run(iterations=5)
    >>> res.best_length > 0
    True
    """

    name = "mmas"

    def __init__(
        self,
        instance: TSPInstance,
        params: ACOParams | None = None,
        mmas: MMASParams | None = None,
        construction: int | str | TourConstruction = 8,
        device: DeviceSpec = TESLA_M2050,
        backend=None,
    ) -> None:
        self.params = params or ACOParams()
        self.mmas = mmas or MMASParams()
        self.device = device
        self.engine = BatchEngine(
            instance,
            self.params,
            device=device,
            construction=construction,
            backend=backend,
            variant="mmas",
            variant_options={"mmas": self.mmas},
        )
        self.backend = self.engine.backend
        self.construction = self.engine.construction
        self.state = self.engine.state.colony_view(0)

    # -------------------------------------------------------------- limits

    @property
    def _policy(self) -> TrailLimitsUpdate:
        policy = self.engine.variant.update
        assert isinstance(policy, TrailLimitsUpdate)
        return policy

    @property
    def tau_max(self) -> float:
        """Current trail ceiling ``1 / (rho * C_best)``."""
        return float(self.backend.to_host(self._policy.tau_max)[0])

    @property
    def tau_min(self) -> float:
        """Current trail floor ``tau_max / (divisor * n)``."""
        return float(self.backend.to_host(self._policy.tau_min)[0])

    @property
    def trail_reinitialisations(self) -> int:
        assert self._policy.reinit_count is not None
        return int(self.backend.to_host(self._policy.reinit_count)[0])

    def reinitialise_trails(self) -> None:
        """Reset all trails to ``tau_max`` (stagnation escape)."""
        self._policy.reinitialise(self.engine.state)

    def branching_factor(self, lam: float = 0.05) -> float:
        """Mean λ-branching factor — the classical MMAS stagnation gauge.

        For each city, counts edges whose trail exceeds
        ``tau_min_row + lam * (tau_max_row - tau_min_row)``; values near 2
        mean the colony has converged onto a single tour.
        """
        factors = self._policy.branching_factors(self.engine.state, lam)
        return float(self.backend.to_host(factors)[0])

    # ------------------------------------------------------------ iteration

    def run_iteration(self) -> tuple[int, list]:
        """One MMAS iteration; returns (iteration best, stage reports)."""
        report = self.engine.run_iteration()[0]
        self._sync_view()
        return int(report.lengths.min()), report.stages

    def _sync_view(self) -> None:
        """Mirror the batch row's outputs into the ``self.state`` view."""
        self.engine.state.sync_colony_view(self.state)

    def run(
        self,
        iterations: int,
        report_every: int = 1,
        *,
        reinit_branching: float | None = None,
    ) -> MMASRunResult:
        """Run MMAS; optionally reinitialise trails when the branching
        factor falls below ``reinit_branching`` (e.g. 2.05).

        ``report_every=K`` runs the engine's amortized device-resident
        loop — bit-identical results for every K.  Ctrl-C raises
        :class:`~repro.errors.RunInterrupted` carrying the best-so-far
        :class:`MMASRunResult` (bare ``KeyboardInterrupt`` when nothing
        completed).
        """
        def wrap(row, wall_seconds: float) -> MMASRunResult:
            return MMASRunResult(
                best_tour=row.best_tour,
                best_length=row.best_length,
                iteration_best_lengths=row.iteration_best_lengths,
                wall_seconds=wall_seconds,
                trail_reinitialisations=self.trail_reinitialisations,
            )

        # Threshold scoped to this call (the reference loop only
        # reinitialises inside run()): restore it afterwards so later
        # manual run_iteration() stepping never silently resets trails.
        previous_reinit = self._policy.reinit_branching
        self._policy.reinit_branching = reinit_branching
        try:
            result = run_engine_view(
                self.engine, iterations, report_every, wrap,
                "MMAS run interrupted", self._sync_view,
            )
        finally:
            self._policy.reinit_branching = previous_reinit
        validate_tour(result.best_tour, self.state.n)
        return result
