"""Ant System parameterisation.

The paper sets parameters "according with the values recommended in [Dorigo &
Stützle's book]": alpha = 1, beta = 2, rho = 0.5, and — pivotal for the
study — ``m = n`` ants.  The candidate-list width is nn = 30.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ACOConfigError

__all__ = ["ACOParams"]


@dataclass(frozen=True)
class ACOParams:
    """Immutable Ant System parameters.

    Attributes
    ----------
    alpha:
        Pheromone-trail exponent of the random proportional rule (paper eq. 1).
    beta:
        Heuristic exponent.
    rho:
        Evaporation rate in (0, 1] (paper eq. 2).
    n_ants:
        Colony size; ``None`` means the paper's ``m = n``.
    nn:
        Nearest-neighbour candidate-list width (paper: 30; the book
        recommends 15-40).
    seed:
        Master RNG seed.
    eta_shift:
        ACOTSP's heuristic regulariser: ``eta = 1 / (d + eta_shift)``.

    Examples
    --------
    >>> p = ACOParams()
    >>> p.resolve_ants(100)
    100
    >>> ACOParams(n_ants=64).resolve_ants(100)
    64
    """

    alpha: float = 1.0
    beta: float = 2.0
    rho: float = 0.5
    n_ants: int | None = None
    nn: int = 30
    seed: int = 1
    eta_shift: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.rho <= 1.0:
            raise ACOConfigError(f"rho must lie in (0, 1], got {self.rho}")
        if self.alpha < 0.0 or self.beta < 0.0:
            raise ACOConfigError(
                f"alpha and beta must be >= 0, got alpha={self.alpha}, beta={self.beta}"
            )
        if self.n_ants is not None and self.n_ants < 1:
            raise ACOConfigError(f"n_ants must be >= 1, got {self.n_ants}")
        if self.nn < 1:
            raise ACOConfigError(f"nn must be >= 1, got {self.nn}")
        if self.eta_shift <= 0.0:
            raise ACOConfigError(f"eta_shift must be > 0, got {self.eta_shift}")

    def resolve_ants(self, n_cities: int) -> int:
        """Colony size for an ``n_cities`` instance (paper default: m = n)."""
        return self.n_ants if self.n_ants is not None else n_cities

    def resolve_nn(self, n_cities: int) -> int:
        """Candidate-list width clipped to ``n_cities - 1``."""
        return min(self.nn, n_cities - 1)
