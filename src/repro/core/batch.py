"""Batched multi-colony execution: ``B`` independent colonies per iteration.

The paper restructures one colony's iteration around data parallelism; this
module applies the same idea one level up.  A :class:`BatchColonyState`
stacks every per-colony array along a leading batch axis (``(B, n, n)``
matrices, ``(B, m, n + 1)`` tours), and a :class:`BatchEngine` advances all
``B`` colonies through choice, construction, tour evaluation and pheromone
update in single vectorized numpy operations — replacing B sequential
Python-level runs with one batched pass.  Rows may be replicas of one
instance with different seeds, parameter-sweep points (alpha/beta/rho), or
distinct instances of equal size.

The engine's defining invariant is **solo equivalence**: batch row ``b``
produces bit-identical tours, lengths and pheromone matrices to a solo
:class:`~repro.core.colony.AntSystem` run configured like that row.  The
batched RNG (:func:`repro.rng.make_batched_rng`) seeds stream block ``b``
exactly as a solo generator would be, and every batched kernel consumes
draws in the same per-step lockstep as its solo counterpart.
:class:`~repro.core.colony.AntSystem` itself is the ``B = 1`` view of this
engine, so the whole existing test-suite pins the batched path.

Examples
--------
>>> from repro.tsp import uniform_instance
>>> from repro.core import BatchEngine
>>> engine = BatchEngine.replicas(uniform_instance(30, seed=3), replicas=4)
>>> batch = engine.run(iterations=2)
>>> len(batch.results)
4
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.backend import ArrayBackend, WorkBuffers, resolve_backend
from repro.core.choice import ChoiceKernel
from repro.core.construction import TourConstruction, make_construction
from repro.core.params import ACOParams
from repro.core.pheromone import PheromoneUpdate, make_pheromone
from repro.core.report import IterationReport
from repro.core.state import ColonyState
from repro.core.variant import (
    IterationContext,
    LocalSearchPolicy,
    VariantStrategy,
    make_local_search,
    make_variant,
)
from repro.errors import ACOConfigError, RunInterrupted
from repro.obs import MetricsRegistry, PhaseClock, TraceRecorder
from repro.rng import make_batched_rng
from repro.simt.device import TESLA_M2050, DeviceSpec
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import nearest_neighbor_tour, tour_length, tour_lengths_batch
from repro.util.timer import WallClock

__all__ = [
    "BatchColonyState",
    "BatchEngine",
    "BatchRunResult",
    "BoundaryUpdate",
]


def _stack_or_broadcast(rows: list[np.ndarray], B: int, bk: ArrayBackend):
    """Stack per-colony host arrays onto the backend, sharing memory when
    every row is the same object (the replica case — B views of one
    uploaded matrix, not B copies)."""
    if all(r is rows[0] for r in rows):
        return bk.xp.broadcast_to(bk.from_host(rows[0]), (B,) + rows[0].shape)
    return bk.from_host(np.stack(rows))


@dataclass
class BatchColonyState:
    """Device-resident data of ``B`` colonies, batch axis first.

    Read-only per-colony inputs (``dist``, ``eta``, ``nn_list``) are
    broadcast views when all colonies share an instance; the pheromone stack
    is always ``B`` writable rows.  Rows never alias each other's mutable
    state, so batched kernels cannot couple colonies.

    Array residency: the per-colony matrices and exponent vectors live on
    ``backend`` (numpy by default); the reporting fields (``tours``,
    ``lengths``, best records) are **host** numpy arrays, refreshed at
    report boundaries by the owning engine (its backend-resident
    best-so-far fold is the single bookkeeping implementation).
    """

    instances: tuple[TSPInstance, ...]
    params: tuple[ACOParams, ...]
    device: DeviceSpec
    B: int
    n: int
    m: int
    nn: int
    dist: np.ndarray  # (B, n, n) int64, possibly broadcast
    eta: np.ndarray  # (B, n, n) float64, possibly broadcast
    pheromone: np.ndarray  # (B, n, n) float64, always materialized
    nn_list: np.ndarray  # (B, n, nn) int32, possibly broadcast
    tau0: np.ndarray  # (B,) float64
    alpha: np.ndarray  # (B,) float64 per-colony exponents
    beta: np.ndarray  # (B,)
    rho: np.ndarray  # (B,)
    #: per-row greedy nearest-neighbour tour lengths (host int64); the
    #: exact integers variant strategies derive their constants from
    #: (MMAS ``tau_max = 1 / (rho * C_nn)``)
    c_nn: np.ndarray | None = None
    backend: ArrayBackend = field(default_factory=resolve_backend)
    #: scratch arena hoisting kernel buffers across steps and iterations
    #: (``None`` = allocate per call, the pre-amortisation behaviour)
    work: WorkBuffers | None = field(default=None, repr=False)
    #: pregenerate each iteration's RNG draws in bulk (bit-identical to
    #: per-step draws; ``False`` is the benchmark baseline mode)
    bulk_rng: bool = True
    choice_info: np.ndarray | None = None  # (B, n, n), refreshed per iter
    tours: np.ndarray | None = None  # (B, m, n + 1) int32 host, last iteration
    lengths: np.ndarray | None = None  # (B, m) int64 host, last iteration
    iteration: int = 0
    best_tours: np.ndarray | None = field(default=None, repr=False)
    best_lengths: np.ndarray | None = None  # (B,) int64 host

    @classmethod
    def create(
        cls,
        instances: list[TSPInstance],
        params: list[ACOParams],
        device: DeviceSpec,
        backend: ArrayBackend | str | None = None,
    ) -> "BatchColonyState":
        """Initialise every row the ACOTSP way (``tau0 = m / C_nn`` per row).

        All rows must agree on ``n``, ``m`` and ``nn`` (the batch shares
        array shapes); per-instance derivations are cached so replicas of
        one instance build each matrix once.  Derivations run on the host;
        the resident stacks are then uploaded through ``backend`` (a no-copy
        pass-through on numpy).
        """
        bk = resolve_backend(backend)
        B = len(instances)
        if B == 0:
            raise ACOConfigError("batch needs at least one colony")
        if len(params) != B:
            raise ACOConfigError(
                f"got {B} instances but {len(params)} parameter sets"
            )
        n = instances[0].n
        if any(inst.n != n for inst in instances):
            sizes = sorted({inst.n for inst in instances})
            raise ACOConfigError(
                f"all batch instances must have equal size, got n in {sizes}"
            )
        m = params[0].resolve_ants(n)
        nn = params[0].resolve_nn(n)
        if any(p.resolve_ants(n) != m for p in params):
            raise ACOConfigError("all batch rows must use the same colony size m")
        if any(p.resolve_nn(n) != nn for p in params):
            raise ACOConfigError("all batch rows must use the same nn width")

        dist_cache: dict[int, np.ndarray] = {}
        eta_cache: dict[tuple[int, float], np.ndarray] = {}
        nn_cache: dict[int, np.ndarray] = {}
        cnn_cache: dict[int, int] = {}
        # Host staging by design: rows are filled from python loops below,
        # then shipped across the seam via bk.from_host.
        dist_rows, eta_rows, nn_rows, tau0 = [], [], [], np.empty(B)  # lint: ignore[backend-purity]
        c_nn = np.empty(B, dtype=np.int64)  # lint: ignore[backend-purity]
        for inst, p in zip(instances, params):
            key = id(inst)
            if key not in dist_cache:
                dist_cache[key] = inst.distance_matrix()
                nn_cache[key] = inst.nn_lists(nn)
                cnn_cache[key] = tour_length(
                    nearest_neighbor_tour(dist_cache[key]), dist_cache[key]
                )
            ekey = (key, p.eta_shift)
            if ekey not in eta_cache:
                eta_cache[ekey] = inst.heuristic_matrix(shift=p.eta_shift)
            dist_rows.append(dist_cache[key])
            eta_rows.append(eta_cache[ekey])
            nn_rows.append(nn_cache[key])
            tau0[len(dist_rows) - 1] = m / float(cnn_cache[key])
            c_nn[len(dist_rows) - 1] = cnn_cache[key]

        # Host staging by design: built here, shipped via bk.from_host below.
        pheromone = np.empty((B, n, n), dtype=np.float64)  # lint: ignore[backend-purity]
        pheromone[:] = tau0[:, None, None]
        diag = np.arange(n)  # lint: ignore[backend-purity]
        pheromone[:, diag, diag] = 0.0
        return cls(
            instances=tuple(instances),
            params=tuple(params),
            device=device,
            B=B,
            n=n,
            m=m,
            nn=nn,
            dist=_stack_or_broadcast(dist_rows, B, bk),
            eta=_stack_or_broadcast(eta_rows, B, bk),
            pheromone=bk.from_host(pheromone),
            nn_list=_stack_or_broadcast(nn_rows, B, bk),
            tau0=bk.from_host(tau0),
            c_nn=c_nn,
            alpha=bk.from_host(np.array([p.alpha for p in params], dtype=np.float64)),
            beta=bk.from_host(np.array([p.beta for p in params], dtype=np.float64)),
            rho=bk.from_host(np.array([p.rho for p in params], dtype=np.float64)),
            backend=bk,
        )

    # ----------------------------------------------------------- bookkeeping

    def sync_colony_view(self, view: ColonyState, b: int = 0) -> None:
        """Mirror row ``b``'s per-iteration outputs into a ``colony_view``.

        The pheromone matrix is a live view of the batch row; everything
        the engine *rebinds* each iteration (choice_info, tours, best
        records) must be re-pointed.  The single sync implementation every
        B=1 view (:class:`~repro.core.colony.AntSystem` and the
        ACS/MMAS views) shares.
        """
        view.choice_info = (
            None if self.choice_info is None else self.choice_info[b]
        )
        view.tours = None if self.tours is None else self.tours[b]
        view.lengths = None if self.lengths is None else self.lengths[b]
        view.iteration = self.iteration
        if self.best_lengths is not None:
            assert self.best_tours is not None
            view.best_length = int(self.best_lengths[b])
            view.best_tour = self.best_tours[b].copy()

    def colony_view(self, b: int) -> ColonyState:
        """A :class:`ColonyState` whose arrays view row ``b`` of the batch.

        The pheromone row is a writable view, so engine updates surface in
        the view immediately; per-iteration outputs (``choice_info``,
        ``tours``, best records) are synced by the caller after each
        iteration.
        """
        if not 0 <= b < self.B:
            raise ACOConfigError(f"batch row {b} outside [0, {self.B})")
        return ColonyState(
            instance=self.instances[b],
            params=self.params[b],
            device=self.device,
            n=self.n,
            m=self.m,
            nn=self.nn,
            dist=self.dist[b],
            eta=self.eta[b],
            pheromone=self.pheromone[b],
            nn_list=self.nn_list[b],
            tau0=float(self.tau0[b]),
            backend=self.backend,
        )

    @property
    def gpu_footprint_bytes(self) -> int:
        """Rough device footprint of the whole batch (4-byte GPU words)."""
        n, m, nn = self.n, self.m, self.nn
        per_colony = 4 * (4 * n * n) + 4 * (n * nn) + 4 * (m * (n + 1)) + 4 * m * n
        return self.B * per_colony


@dataclass(frozen=True)
class BoundaryUpdate:
    """Host snapshot of a batch's best-so-far records at a report boundary.

    Handed to :meth:`BatchEngine.run`'s ``on_boundary`` callback after the
    boundary host transfer — the arrays are fresh copies the callback may
    keep or mutate freely without touching engine state.
    """

    iteration: int  #: engine iteration count at this boundary (1-based)
    best_lengths: np.ndarray  #: (B,) int64 best-so-far tour lengths
    best_tours: np.ndarray  #: (B, n + 1) int32 best-so-far tours
    #: wall seconds per engine phase (:data:`repro.obs.PHASES`) spent in
    #: the ``report_every`` block this boundary closes
    phase_seconds: dict[str, float] | None = None


@dataclass
class BatchRunResult:
    """Outcome of a :meth:`BatchEngine.run` call.

    ``results[b]`` is a full per-colony
    :class:`~repro.core.colony.RunResult`, identical in structure (and, by
    the equivalence invariant, in content) to what a solo run of that row
    would return.

    Wall-clock semantics — the two fields measure different things:

    * ``wall_seconds`` (here) is the **true wall-clock of the whole batch
      run**: one shared measurement around the vectorized loop.  All
      throughput accounting (:meth:`colonies_per_second`, service stats)
      must derive from this number.
    * ``results[b].wall_seconds`` is that row's **amortized share**,
      ``batch wall / B`` — the per-colony cost figure a solo run of row
      ``b`` effectively paid inside the batch.  Summing row shares merely
      reconstructs the batch wall; summing shares *across different
      batches* (e.g. per-request results collected from a packing service)
      under-reports real elapsed time and must not be used for throughput.
    """

    results: list  # list[RunResult]
    wall_seconds: float
    device: DeviceSpec
    #: iterations actually executed (< requested when stopped early)
    iterations_run: int = 0
    #: ``True`` when ``on_boundary`` / ``target_lengths`` ended the run early
    stopped_early: bool = False
    #: ``True`` when the run was cut short by Ctrl-C (partial results)
    interrupted: bool = False
    #: 2-opt exchanges applied across all rows and boundaries of this run
    ls_exchanges: int = 0
    #: total tour-length gain those exchanges bought
    ls_gain: int = 0
    #: wall-clock spent inside the local-search kernel during this run
    ls_wall_seconds: float = 0.0
    #: wall seconds per engine phase (:data:`repro.obs.PHASES`) over the
    #: whole run — the paper-style construct/update breakdown; phases sum
    #: to ``wall_seconds`` up to Python loop overhead
    phase_breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def B(self) -> int:
        return len(self.results)

    @property
    def best_lengths(self) -> np.ndarray:
        """Per-colony best tour lengths, shape ``(B,)``."""
        return np.array([r.best_length for r in self.results], dtype=np.int64)

    @property
    def best_row(self) -> int:
        """Index of the colony with the overall best tour."""
        return int(np.argmin(self.best_lengths))

    @property
    def best_length(self) -> int:
        return int(self.best_lengths[self.best_row])

    @property
    def best_tour(self) -> np.ndarray:
        return self.results[self.best_row].best_tour

    def colonies_per_second(self, iterations: int | None = None) -> float:
        """Throughput in colony-iterations per wall second.

        Derived from the batch-level ``wall_seconds`` only (never from
        per-row shares — see the class docstring).  ``iterations`` defaults
        to the recorded ``iterations_run``; passing it explicitly is only
        needed for results predating the field.
        """
        if iterations is None:
            iterations = self.iterations_run
        if self.wall_seconds <= 0.0:
            return float("inf")
        return self.B * iterations / self.wall_seconds


class BatchEngine:
    """Run ``B`` independent colonies per iteration, fully vectorized.

    Parameters
    ----------
    instances:
        One :class:`~repro.tsp.instance.TSPInstance` (replicated across the
        batch) or a sequence of equal-size instances.
    params:
        One :class:`~repro.core.params.ACOParams` (replicated) or a sequence
        matching ``instances``; single instance + parameter list (or vice
        versa) broadcasts to the longer side.
    device / construction / pheromone / *_options:
        As for :class:`~repro.core.colony.AntSystem`; one strategy pair is
        shared by the whole batch (strategies are stateless between calls).
    variant:
        The ACO variant the batch runs — ``"as"`` (default), ``"acs"``,
        ``"mmas"``, or a ready-made
        :class:`~repro.core.variant.VariantStrategy`.  The variant supplies
        the choice policy (how ants pick cities; ACS owns its
        pseudo-random-proportional rule, so ``construction`` is ignored
        there) and the update policy (AS deposit-all via ``pheromone``;
        ACS global-best-only and MMAS trail limits own their schedules and
        ignore ``pheromone``).  One variant is shared by the whole batch.
    variant_options:
        Extra arguments for the variant factory (e.g.
        ``{"acs": ACSParams(q0=0.95)}`` or ``{"mmas": MMASParams(...),
        "reinit_branching": 2.05}``).
    local_search:
        Boundary-time tour polishing — ``"none"`` (default), ``"2opt"``
        (the batched nn-restricted 2-opt), or a ready-made
        :class:`~repro.core.variant.LocalSearchPolicy`.  Runs at report
        boundaries on the per-row iteration-best (or best-so-far) tours,
        with improvements folded into the best-so-far records before the
        pheromone update; composes with every variant.
    local_search_options:
        Extra arguments for the local-search policy (e.g. ``{"passes": 2,
        "target": "best-so-far"}``); only valid with an algorithm selected.
    metrics:
        A :class:`~repro.obs.MetricsRegistry` the engine publishes into —
        per-block phase-seconds histograms (``engine.phase.<name>``) and
        iteration/boundary counters.  ``None`` (the default) is the
        shared no-op :class:`~repro.obs.NullRegistry`: nothing is stored.
        Run-level phase *totals* are always kept (two float adds per phase
        per iteration) and surface as
        :attr:`BatchRunResult.phase_breakdown` either way.  Neither path
        perturbs numerics — results are bit-identical with instrumentation
        on, off, or traced (pinned by the parity suites).
    tracer:
        A :class:`~repro.obs.TraceRecorder` collecting one span per phase
        per iteration, exportable as a ``chrome://tracing`` JSON timeline
        of the whole run (``gpu-aco solve --trace``).
    backend:
        Array backend the batch executes on — a name (``"numpy"``,
        ``"cupy"``), an :class:`~repro.backend.ArrayBackend` instance, or
        ``None`` to resolve ``ACO_BACKEND`` / the numpy default.
    amortize:
        Hot-loop amortisation (default on): per-iteration bulk RNG blocks
        and a per-engine :class:`~repro.backend.WorkBuffers` scratch arena
        reused across iterations.  Results are bit-identical either way;
        ``False`` restores the per-step-draw, allocate-per-call behaviour
        and exists as the measured baseline for
        ``benchmarks/bench_loop_amortization.py``.
    work:
        An externally owned :class:`~repro.backend.WorkBuffers` arena to
        reuse instead of allocating a fresh one — the seam that lets a
        long-lived worker (e.g. one solve-service worker thread) amortise
        scratch buffers across *engines*, not just iterations.  Must live
        on the same backend as the engine; buffer keys are geometry-stamped
        so consecutive engines of different shapes coexist safely, but one
        arena must never be driven by two engines **concurrently**.
    """

    def __init__(
        self,
        instances: TSPInstance | list[TSPInstance],
        params: ACOParams | list[ACOParams] | None = None,
        device: DeviceSpec = TESLA_M2050,
        construction: int | str | TourConstruction = 8,
        pheromone: int | str | PheromoneUpdate = 1,
        construction_options: dict | None = None,
        pheromone_options: dict | None = None,
        backend: ArrayBackend | str | None = None,
        amortize: bool = True,
        work: WorkBuffers | None = None,
        variant: str | VariantStrategy = "as",
        variant_options: dict | None = None,
        local_search: str | LocalSearchPolicy = "none",
        local_search_options: dict | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: TraceRecorder | None = None,
    ) -> None:
        if isinstance(instances, TSPInstance):
            instances = [instances]
        instances = list(instances)
        if params is None:
            params = ACOParams()
        plist = [params] if isinstance(params, ACOParams) else list(params)
        if not instances or not plist:
            raise ACOConfigError("batch needs at least one colony")
        if len(instances) == 1 and len(plist) > 1:
            instances = instances * len(plist)
        if len(plist) == 1 and len(instances) > 1:
            plist = plist * len(instances)
        if len(instances) != len(plist):
            raise ACOConfigError(
                f"cannot pair {len(instances)} instances with {len(plist)} "
                "parameter sets"
            )
        self.device = device
        self.backend = resolve_backend(backend)
        self.variant = make_variant(variant, **(variant_options or {}))
        # Kernel selections a variant owns are rejected here, at the engine
        # — the single validation every entry point (library, CLI, serve)
        # goes through — never silently ignored.  The defaults (8 / 1)
        # pass, so variant-agnostic callers stay untouched.
        if self.variant.key == "acs" and construction != 8:
            raise ACOConfigError(
                "variant 'acs' owns its construction rule (pseudo-random-"
                "proportional); a construction selection is only valid "
                "with variant as/mmas"
            )
        if self.variant.key != "as" and pheromone != 1:
            raise ACOConfigError(
                f"variant {self.variant.key!r} owns its pheromone schedule; "
                "a pheromone selection is only valid with variant 'as'"
            )
        # Local-search seam: installed into the variant's third policy slot
        # before bind(); plain "none" keeps the variant's NoLocalSearch
        # default ("none" *with* options is rejected by the factory).
        if local_search != "none" or local_search_options:
            self.variant.local = make_local_search(
                local_search, **(local_search_options or {})
            )
        # Phase accounting: run totals always on, per-block histograms only
        # into a real registry, spans only into an attached tracer.  The
        # clock reads perf_counter and never touches engine arrays, so the
        # instrumented path stays bit-identical to the bare one.
        self.metrics = metrics
        self.tracer = tracer
        self.phase_clock = PhaseClock(metrics=metrics, tracer=tracer)
        self._span_labels = self.variant.span_labels()
        self._phase_mark: dict[str, float] = self.phase_clock.mark()
        # Local-search accounting over the engine's lifetime (host ints);
        # run() snapshots _ls_mark so results carry per-run deltas.
        self.ls_exchanges_total = 0
        self.ls_gain_total = 0
        self.ls_wall_seconds = 0.0
        self._ls_last: tuple[np.ndarray, np.ndarray] | None = None
        self._ls_mark: tuple[int, int, float] = (0, 0, 0.0)
        self.construction = make_construction(
            construction, **(construction_options or {})
        )
        self.pheromone = make_pheromone(pheromone, **(pheromone_options or {}))
        self.state = BatchColonyState.create(
            instances, plist, device, backend=self.backend
        )
        self.amortize = bool(amortize)
        if work is not None:
            if not self.amortize:
                raise ACOConfigError(
                    "a shared WorkBuffers arena requires amortize=True"
                )
            if work.backend.name != self.backend.name:
                raise ACOConfigError(
                    f"shared arena lives on backend {work.backend.name!r} but "
                    f"the engine runs on {self.backend.name!r}"
                )
            # Derived constants may bake in the previous owner's data (the
            # hoisted eta^beta); only the shape-checked scratch pool is safe
            # to carry across engines.
            work.reset_derived()
            self.work = work
        else:
            self.work = WorkBuffers(self.backend) if self.amortize else None
        self.state.work = self.work
        self.state.bulk_rng = self.amortize
        # Variant state (pheromone re-init, trail limits, ACS tau0) installs
        # on the fresh batch state; the RNG layout is the variant's choice
        # policy's to define (AS/MMAS delegate to the construction family).
        self.variant.bind(self.state)
        self.choice_kernel = ChoiceKernel()
        streams = self.variant.choice.rng_streams(
            self.construction, self.state.n, self.state.m
        )
        self.rng = make_batched_rng(
            self.variant.choice.rng_kind(self.construction),
            streams,
            [p.seed for p in plist],
            backend=self.backend,
        )
        # Backend-resident best-so-far fold: seeded lazily (or at run()
        # start) from the host records, consumed by update policies that
        # deposit on the best-so-far tour.
        self._fold_len: np.ndarray | None = None
        self._fold_tours: np.ndarray | None = None

    @classmethod
    def replicas(
        cls,
        instance: TSPInstance,
        params: ACOParams | None = None,
        *,
        replicas: int,
        seed_stride: int = 1,
        **kwargs,
    ) -> "BatchEngine":
        """``replicas`` rows of one instance with seeds ``seed + i * stride``."""
        import dataclasses

        if replicas < 1:
            raise ACOConfigError(f"replicas must be >= 1, got {replicas}")
        if seed_stride == 0 and replicas > 1:
            raise ACOConfigError(
                "seed_stride must be non-zero: a zero stride would run "
                "bit-identical colonies presented as independent replicas"
            )
        base = params or ACOParams()
        plist = [
            dataclasses.replace(base, seed=base.seed + i * seed_stride)
            for i in range(replicas)
        ]
        return cls(instance, plist, **kwargs)

    @property
    def B(self) -> int:
        return self.state.B

    # ----------------------------------------------------------- checkpoint

    def checkpoint(self, path=None):
        """Snapshot the engine's mutable state (optionally writing ``path``).

        Thin delegation to :mod:`repro.core.checkpoint` — returns the
        :class:`~repro.core.checkpoint.EngineCheckpoint`; with ``path``
        the snapshot is also written atomically to disk.  Capture at a
        ``report_every`` boundary (the ``on_boundary`` hook) or while the
        engine is idle; see the module docstring for the exactness
        contract.
        """
        from repro.core.checkpoint import capture_checkpoint, save_checkpoint

        ck = capture_checkpoint(self)
        if path is not None:
            save_checkpoint(ck, path)
            metrics = self.phase_clock.metrics
            if metrics.enabled:
                metrics.inc("engine.checkpoints_written")
        return ck

    def restore(self, source) -> "BatchEngine":
        """Install checkpointed state (an
        :class:`~repro.core.checkpoint.EngineCheckpoint` or a file path)
        into this engine; returns ``self`` for chaining.  The engine must
        be configured exactly like the one that wrote the checkpoint
        (fingerprint-validated)."""
        from repro.core.checkpoint import (
            EngineCheckpoint,
            load_checkpoint,
            restore_engine,
        )

        if not isinstance(source, EngineCheckpoint):
            source = load_checkpoint(source)
        restore_engine(self, source)
        return self

    # ------------------------------------------------------------ iteration

    def _seed_fold(self) -> None:
        """(Re-)seed the backend-resident best-so-far fold from the host
        records — sentinel-initialised when nothing has run yet, so the
        first iteration seeds the records exactly as a first
        ``record_tours`` call would."""
        bs = self.state
        xp = self.backend.xp
        if bs.best_lengths is None:
            self._fold_len = xp.full(
                (bs.B,), np.iinfo(np.int64).max, dtype=np.int64
            )
            self._fold_tours = xp.zeros((bs.B, bs.n + 1), dtype=np.int32)
        else:
            assert bs.best_tours is not None
            self._fold_len = self.backend.from_host(bs.best_lengths).copy()
            self._fold_tours = self.backend.from_host(bs.best_tours).copy()

    def _sync_fold_host(self) -> None:
        """Copy the fold into the host-side best records."""
        bs = self.state
        assert self._fold_len is not None and self._fold_tours is not None
        bs.best_lengths = self.backend.to_host(self._fold_len).copy()
        bs.best_tours = self.backend.to_host(self._fold_tours).copy()

    def _fold_best(self, tours, lengths) -> IterationContext:
        """Fold this iteration's results into the best-so-far records.

        Runs on the backend with the strict-improvement / first-argmin rule
        ``record_tours`` applies on the host, so the fold is bit-identical
        to per-iteration host bookkeeping.  The returned
        :class:`~repro.core.variant.IterationContext` is what best-so-far
        update policies (ACS global-best, MMAS schedules) consume — the
        records already include the current iteration, exactly as the solo
        loops see them after ``record_tours``.
        """
        # lint: hot-region
        bs = self.state
        xp = self.backend.xp
        assert self._fold_len is not None and self._fold_tours is not None
        rows = xp.arange(bs.B)
        ib = xp.argmin(lengths, axis=1)
        vals = lengths[rows, ib]
        improved = vals < self._fold_len
        imp = xp.nonzero(improved)[0]
        if imp.size:
            self._fold_len[imp] = vals[imp]
            self._fold_tours[imp] = tours[imp, ib[imp]]
        return IterationContext(
            iteration=bs.iteration,
            it_best=ib,
            it_best_lengths=vals,
            best_lengths=self._fold_len,
            best_tours=self._fold_tours,
            improved=improved,
        )

    def _advance(self, collect: bool = True):
        """One iteration's kernels on the backend — no host crossing.

        The variant's choice policy builds the tours (AS/MMAS through the
        Table II construction families, ACS through its own
        pseudo-random-proportional rule), the engine evaluates lengths and
        folds the best-so-far records, then the variant's update policy
        applies the trail update — the fold-then-update order every solo
        loop uses, so best-so-far deposits see the current iteration.

        Returns ``(tours, lengths, ctx, stages)`` with tours/lengths still
        backend-resident; ``stages`` is the per-row stage-report list when
        ``collect`` (a report boundary) and ``None`` between boundaries,
        where report materialization — and measurement that exists only to
        feed it, like atomic hot degrees — is skipped entirely.
        """
        # lint: hot-region
        bs = self.state
        clock, labels = self.phase_clock, self._span_labels

        t0 = perf_counter()
        tours, choice_reports, build_reports = self.variant.choice.build_batch(
            bs, self.construction, self.choice_kernel, self.rng, collect=collect
        )
        t1 = perf_counter()
        clock.add("construct", t0, t1, labels["construct"])
        lengths = tour_lengths_batch(
            tours, bs.dist, xp=self.backend.xp, work=self.work
        )
        ctx = self._fold_best(tours, lengths)
        t2 = perf_counter()
        clock.add("fold", t1, t2)
        # The local-search seam rides the amortized loop: polish only at
        # report boundaries (collect iterations), before the update seam,
        # so best-so-far deposits spread the improved edges.
        if collect and self.variant.local.enabled:
            ctx = self._apply_local_search(tours, lengths, ctx)
            t_ls = perf_counter()
            clock.add("local-search", t2, t_ls, labels["local-search"])
            t2 = t_ls
        pher_reports = self.variant.update.update_batch(
            bs, self.pheromone, tours, lengths, ctx, collect=collect
        )
        clock.add("update", t2, perf_counter(), labels["update"])

        if not collect:
            return tours, lengths, ctx, None
        stages: list[list] = [[] for _ in range(bs.B)]
        for reps in (choice_reports, build_reports, pher_reports):
            for b, rep in enumerate(reps):
                stages[b].append(rep)
        return tours, lengths, ctx, stages

    def _apply_local_search(
        self, tours, lengths, ctx: IterationContext
    ) -> IterationContext:
        """Boundary-time polish of the selected per-row tours.

        Improvements fold into the backend-resident best-so-far records
        (strict improvement, like :meth:`_fold_best`); for the
        ``iteration-best`` target the polished tours also replace the
        winning ants' rows in place, so iteration-best deposits (AS
        deposit-all, the MMAS schedule) and the boundary reports all see
        the improved edges.  Per-row exchange/gain counts are kept for the
        boundary's :class:`~repro.core.report.IterationReport` rows.
        """
        bs = self.state
        xp = self.backend.xp
        policy = self.variant.local
        assert self._fold_len is not None and self._fold_tours is not None
        it_best_lengths = ctx.it_best_lengths
        if policy.target == "best-so-far":
            res = policy.improve(bs, self._fold_tours, self._fold_len)
        else:
            rows = xp.arange(bs.B)
            res = policy.improve(bs, tours[rows, ctx.it_best], ctx.it_best_lengths)
            tours[rows, ctx.it_best] = res.tours
            lengths[rows, ctx.it_best] = res.lengths
            it_best_lengths = res.lengths
        better = res.lengths < self._fold_len
        imp = xp.nonzero(better)[0]
        if imp.size:
            self._fold_len[imp] = res.lengths[imp]
            self._fold_tours[imp] = res.tours[imp]
        ex = self.backend.to_host(res.exchanges)
        gain = self.backend.to_host(res.initial_lengths - res.lengths)
        self._ls_last = (ex, gain)
        self.ls_exchanges_total += int(ex.sum())
        self.ls_gain_total += int(gain.sum())
        self.ls_wall_seconds += res.wall_seconds
        return IterationContext(
            iteration=ctx.iteration,
            it_best=ctx.it_best,
            it_best_lengths=it_best_lengths,
            best_lengths=self._fold_len,
            best_tours=self._fold_tours,
            improved=ctx.improved | better,
        )

    def _ls_fields(self, b: int) -> dict:
        """Row ``b``'s local-search stats of the current boundary, as
        :class:`~repro.core.report.IterationReport` keyword fields."""
        if self._ls_last is None:
            return {}
        ex, gain = self._ls_last
        return {"ls_exchanges": int(ex[b]), "ls_gain": int(gain[b])}

    def run_iteration(self) -> list[IterationReport]:
        """One full variant iteration for every colony; one report per row.

        Every stage runs on ``self.backend``; tours and lengths cross to the
        host exactly once, at the end of the iteration, for bookkeeping and
        the per-colony reports (a no-copy pass-through on numpy).
        """
        bs = self.state
        if self._fold_len is None:
            self._seed_fold()
        tours, lengths, _, stages = self._advance(collect=True)
        t0 = perf_counter()
        bs.tours = self.backend.to_host(tours)
        bs.lengths = self.backend.to_host(lengths)
        self._sync_fold_host()
        bs.iteration += 1
        reports = [
            IterationReport(
                iteration=bs.iteration,
                tours=bs.tours[b],
                lengths=bs.lengths[b],
                stages=stages[b],
                **self._ls_fields(b),
            )
            for b in range(bs.B)
        ]
        self.phase_clock.add("host-sync", t0, perf_counter())
        return reports

    def run(
        self,
        iterations: int,
        report_every: int = 1,
        on_boundary: Callable[[BoundaryUpdate], bool | None] | None = None,
        target_lengths: int | np.ndarray | None = None,
    ) -> BatchRunResult:
        """Run several iterations for every colony, tracking per-row bests.

        ``report_every=K`` keeps the loop device-resident between report
        boundaries: tours/lengths cross to the host, and
        :class:`~repro.core.report.IterationReport` rows are materialized,
        only every K-th iteration (and at the final one), with best-so-far
        records folded on the backend in between.  The best tour, best
        length, per-iteration best lengths and the final pheromone stack
        are bit-identical for every K; only the ``reports`` lists thin out
        (boundary iterations only).  ``K=1`` (the default) is the classic
        report-every-iteration loop.

        ``on_boundary`` is called at every report boundary (so every K-th
        iteration and the last) with a :class:`BoundaryUpdate` snapshot —
        the streaming/deadline seam: callers observe best-so-far progress
        without forcing ``K=1``.  Returning ``True`` stops the run after
        that boundary.  ``target_lengths`` (scalar or ``(B,)``) stops the
        run at the first boundary where **every** row's best is at or below
        its target.  Early-stopped results are flagged ``stopped_early``
        and carry ``iterations_run < iterations``; neither hook perturbs
        the numerics of the iterations that did run.

        Ctrl-C during the loop raises
        :class:`~repro.errors.RunInterrupted` carrying a partial
        ``BatchRunResult`` with every row's best-so-far as of the last
        completed iteration (bare ``KeyboardInterrupt`` propagates when
        nothing completed).
        """
        if iterations < 1:
            raise ACOConfigError(f"iterations must be >= 1, got {iterations}")
        if report_every < 1:
            raise ACOConfigError(
                f"report_every must be >= 1, got {report_every}"
            )
        targets = None
        if target_lengths is not None:
            targets = np.broadcast_to(
                np.asarray(target_lengths, dtype=np.int64), (self.state.B,)
            )
        bs = self.state
        start_iteration = bs.iteration
        self._seed_fold()
        self._ls_mark = (
            self.ls_exchanges_total,
            self.ls_gain_total,
            self.ls_wall_seconds,
        )
        self._phase_mark = self.phase_clock.mark()
        reports: list[list[IterationReport]] = [[] for _ in range(bs.B)]
        bests: list[list[int]] = [[] for _ in range(bs.B)]
        stopped_early = False
        clock = WallClock()
        try:
            with clock:
                if report_every == 1:
                    for it in range(iterations):
                        for b, rep in enumerate(self.run_iteration()):
                            reports[b].append(rep)
                            bests[b].append(rep.best_length)
                        phase_seconds = self.phase_clock.flush_block()
                        if self._boundary_hook(
                            on_boundary, targets, phase_seconds
                        ):
                            stopped_early = it + 1 < iterations
                            break
                else:
                    stopped_early = self._run_amortized(
                        iterations, report_every, reports, bests,
                        on_boundary, targets,
                    )
        except KeyboardInterrupt:
            if bs.best_lengths is None:
                raise  # nothing completed; keep the plain Ctrl-C semantics
            partial = self._collect_results(
                reports, bests, clock.elapsed,
                iterations_run=bs.iteration - start_iteration,
                stopped_early=True, interrupted=True,
            )
            raise RunInterrupted(partial, "batch run interrupted") from None
        return self._collect_results(
            reports, bests, clock.elapsed,
            iterations_run=bs.iteration - start_iteration,
            stopped_early=stopped_early,
        )

    def _collect_results(
        self,
        reports: list[list[IterationReport]],
        bests: list[list[int]],
        elapsed: float,
        *,
        iterations_run: int,
        stopped_early: bool = False,
        interrupted: bool = False,
    ) -> BatchRunResult:
        """Fold the loop's bookkeeping into a :class:`BatchRunResult`.

        Row ``wall_seconds`` is the amortized share ``elapsed / B`` (see
        :class:`BatchRunResult` for the two fields' semantics).
        """
        from repro.core.colony import RunResult

        bs = self.state
        metrics = self.phase_clock.metrics
        if metrics.enabled:
            metrics.inc("engine.runs")
            metrics.inc("engine.iterations", iterations_run)
            metrics.inc("engine.colony_iterations", iterations_run * bs.B)
        assert bs.best_tours is not None and bs.best_lengths is not None
        results = [
            RunResult(
                best_tour=bs.best_tours[b].copy(),
                best_length=int(bs.best_lengths[b]),
                iteration_best_lengths=bests[b],
                reports=reports[b],
                wall_seconds=elapsed / bs.B,
                device=self.device,
            )
            for b in range(bs.B)
        ]
        return BatchRunResult(
            results=results,
            wall_seconds=elapsed,
            device=self.device,
            iterations_run=iterations_run,
            stopped_early=stopped_early,
            interrupted=interrupted,
            ls_exchanges=self.ls_exchanges_total - self._ls_mark[0],
            ls_gain=self.ls_gain_total - self._ls_mark[1],
            ls_wall_seconds=self.ls_wall_seconds - self._ls_mark[2],
            phase_breakdown=self.phase_clock.since(self._phase_mark),
        )

    def _boundary_hook(self, on_boundary, targets, phase_seconds=None) -> bool:
        """Fire the boundary callback / target check on fresh host records.

        Runs strictly after the boundary host transfer, so the snapshot
        handed out is already-copied host data; the hook cannot influence
        the iteration numerics, only whether the loop continues.
        """
        bs = self.state
        if on_boundary is None and targets is None:
            return False
        assert bs.best_lengths is not None and bs.best_tours is not None
        stop = False
        if on_boundary is not None:
            update = BoundaryUpdate(
                iteration=bs.iteration,
                best_lengths=bs.best_lengths.copy(),
                best_tours=bs.best_tours.copy(),
                phase_seconds=phase_seconds,
            )
            stop = bool(on_boundary(update))
        if targets is not None and bool(np.all(bs.best_lengths <= targets)):
            stop = True
        return stop

    def _run_amortized(
        self,
        iterations: int,
        report_every: int,
        reports: list[list[IterationReport]],
        bests: list[list[int]],
        on_boundary=None,
        targets=None,
    ) -> bool:
        """The device-resident ``report_every=K`` loop body.

        Best-so-far records are folded on the backend every iteration by
        :meth:`_fold_best` (the same first-argmin/strict-improvement rule
        ``record_tours`` applies on the host, so the fold is bit-identical
        to K=1); host transfer and report materialization happen only at
        K-boundaries and at the final iteration.  Returns ``True`` when a
        boundary hook or target stop ended the loop early.  A Ctrl-C
        mid-block syncs the backend-resident fold to the host before
        re-raising, so the interrupt path reports bests up to the last
        *completed* iteration, not the last boundary.
        """
        bs = self.state
        xp = self.backend.xp
        block_vals: list = []  # per-iteration (B,) iteration-best lengths

        def _sync_fold() -> None:
            """Host-sync the fold (best records + pending block bests)."""
            assert self._fold_len is not None
            if not bool(xp.all(self._fold_len < np.iinfo(np.int64).max)):
                return  # no iteration completed yet; nothing to salvage
            self._sync_fold_host()
            if block_vals:
                host_vals = self.backend.to_host(xp.stack(block_vals))
                block_vals.clear()
                for b in range(bs.B):
                    bests[b].extend(int(v) for v in host_vals[:, b])

        try:
            for it in range(iterations):
                boundary = ((it + 1) % report_every == 0) or (it + 1 == iterations)
                tours, lengths, ctx, stages = self._advance(collect=boundary)
                block_vals.append(ctx.it_best_lengths)
                bs.iteration += 1
                if boundary:
                    t0 = perf_counter()
                    host_tours = self.backend.to_host(tours)
                    host_lengths = self.backend.to_host(lengths)
                    bs.tours = host_tours
                    bs.lengths = host_lengths
                    _sync_fold()
                    for b in range(bs.B):
                        reports[b].append(
                            IterationReport(
                                iteration=bs.iteration,
                                tours=host_tours[b],
                                lengths=host_lengths[b],
                                stages=stages[b],
                                **self._ls_fields(b),
                            )
                        )
                    self.phase_clock.add("host-sync", t0, perf_counter())
                    phase_seconds = self.phase_clock.flush_block()
                    if self._boundary_hook(on_boundary, targets, phase_seconds):
                        return it + 1 < iterations
        except KeyboardInterrupt:
            _sync_fold()
            raise
        return False
