"""Engine checkpoint/resume: snapshot a :class:`BatchEngine` at a boundary.

Skinderowicz's GPU-based Parallel Ant Colony System keeps long runs viable
because colony state is cheap to snapshot at iteration boundaries — for
this engine that state is small and explicit: the pheromone stack, the
best-so-far records, the per-stream RNG states and the iteration counter.
Everything else the engine holds (choice_info, fold scratch, work buffers,
ACS ``tau0``, eta/distance stacks) is *derived* deterministically at
construction or at the next iteration, so a checkpoint restores into a
freshly built engine and ``run(remaining)`` is bit-identical to the
uninterrupted run.

Exactness contract
------------------
Capture at a ``report_every`` boundary (the :meth:`BatchEngine.run`
``on_boundary`` hook fires after the boundary host transfer, so the host
best records are fresh) and resume with the same ``report_every``.  A
checkpoint taken at iteration ``c`` with ``c % K == 0`` keeps every later
boundary — and therefore every local-search application point — aligned
with the uninterrupted run; the parity suite pins bit-identical tours,
lengths, pheromone matrices and RNG stream positions across the variant
grid.

File format
-----------
A compressed ``.npz`` archive.  ``__meta__`` holds one JSON document
(magic, format version, iteration counter, RNG bookkeeping, and the full
config *fingerprint*); the remaining entries are the state arrays
(``pheromone``, ``best_lengths``, ``best_tours``, ``rng/<word>``, and the
MMAS trail limits when the variant carries them).  Writes are atomic
(tmp file + ``os.replace``), so a crash mid-write never corrupts an
existing checkpoint.  Readers validate magic and version, then the
fingerprint against the engine they are restoring into — resuming with a
different variant, instance, parameterisation or kernel selection raises
:class:`~repro.errors.CheckpointError` instead of silently diverging.
"""

from __future__ import annotations

import hashlib
import json
import os
import weakref
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError

__all__ = [
    "CHECKPOINT_MAGIC",
    "FORMAT_VERSION",
    "EngineCheckpoint",
    "engine_fingerprint",
    "instance_digest",
    "capture_checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "restore_engine",
]

CHECKPOINT_MAGIC = "gpu-aco-checkpoint"
FORMAT_VERSION = 1

#: distance-matrix digests keyed by instance identity — replicas of one
#: instance hash its matrix once per process, not once per checkpoint
_DIGEST_CACHE: dict[int, str] = {}


def _instance_digest(instance) -> str:
    """sha256 of the instance's exact integer distance matrix."""
    key = id(instance)
    digest = _DIGEST_CACHE.get(key)
    if digest is None:
        dist = np.ascontiguousarray(instance.distance_matrix())
        digest = hashlib.sha256(dist.tobytes()).hexdigest()
        try:
            # Evict when the instance dies: a recycled id() must never
            # serve another instance's digest.
            weakref.finalize(instance, _DIGEST_CACHE.pop, key, None)
        except TypeError:
            return digest  # not weakref-able: compute, don't cache
        _DIGEST_CACHE[key] = digest
    return digest


#: Public name for the canonical per-instance content digest.  Checkpoint
#: rows and the shard router's shared-memory instance cache key off the
#: same value, so "equal instance" means the same thing in both systems.
instance_digest = _instance_digest


def engine_fingerprint(engine) -> dict:
    """Configuration identity of an engine, as a JSON-native dict.

    Two engines with equal fingerprints produce bit-identical runs from
    equal state, so restore refuses a mismatch.  Only JSON-native types
    (str/int/float/bool/list/dict) appear — the fingerprint must survive
    a JSON round-trip through the checkpoint file unchanged.
    """
    bs = engine.state
    variant = engine.variant
    local = variant.local
    ls: dict = {"key": local.key}
    if local.enabled:
        ls["target"] = local.target
        ls["passes"] = getattr(local, "passes", None)
    options: dict = {}
    if variant.key == "acs":
        acs = variant.choice.acs
        options = {"q0": acs.q0, "xi": acs.xi}
    elif variant.key == "mmas":
        upd = variant.update
        options = {
            "use_best_so_far_every": upd.mmas.use_best_so_far_every,
            "tau_min_divisor": upd.mmas.tau_min_divisor,
            "reinit_branching": upd.reinit_branching,
        }
    return {
        "B": bs.B,
        "n": bs.n,
        "m": bs.m,
        "nn": bs.nn,
        "backend": engine.backend.name,
        "variant": variant.key,
        "choice": variant.choice.key,
        "update": variant.update.key,
        "local_search": ls,
        "variant_options": options,
        "construction": {
            "key": engine.construction.key,
            "version": engine.construction.version,
        },
        "pheromone": {
            "key": engine.pheromone.key,
            "version": engine.pheromone.version,
        },
        "rng": {
            "kind": type(engine.rng).__name__,
            "n_streams": engine.rng.n_streams,
        },
        "rows": [
            {
                "instance": inst.name,
                "digest": _instance_digest(inst),
                "alpha": p.alpha,
                "beta": p.beta,
                "rho": p.rho,
                "n_ants": p.n_ants,
                "nn": p.nn,
                "seed": p.seed,
                "eta_shift": p.eta_shift,
            }
            for inst, p in zip(bs.instances, bs.params)
        ],
    }


@dataclass(frozen=True)
class EngineCheckpoint:
    """One captured engine state: a JSON-native ``meta`` dict plus host
    numpy ``arrays``.  Produced by :func:`capture_checkpoint` /
    :func:`load_checkpoint`; consumed by :func:`save_checkpoint` /
    :func:`restore_engine`."""

    meta: dict
    arrays: dict

    @property
    def iteration(self) -> int:
        """Engine iteration count the checkpoint was taken at."""
        return int(self.meta["iteration"])

    @property
    def fingerprint(self) -> dict:
        return self.meta["fingerprint"]


def capture_checkpoint(engine) -> EngineCheckpoint:
    """Snapshot the engine's complete mutable state onto the host.

    Safe at any point the engine is not mid-``run()`` — including inside
    an ``on_boundary`` callback, which is the intended seam.  The
    backend-resident best-so-far fold is synced to the host records first,
    so a capture always sees bests up to the last completed iteration.
    """
    bs = engine.state
    bk = engine.backend
    if engine._fold_len is not None:
        engine._sync_fold_host()
    arrays: dict = {"pheromone": bk.to_host(bs.pheromone).copy()}
    has_best = bs.best_lengths is not None
    if has_best:
        arrays["best_lengths"] = bs.best_lengths.copy()
        arrays["best_tours"] = bs.best_tours.copy()
    for key, arr in engine.rng.state_arrays().items():
        arrays[f"rng/{key}"] = arr
    update = engine.variant.update
    if update.key == "trail_limits" and update.tau_max is not None:
        arrays["mmas/tau_max"] = bk.to_host(update.tau_max).copy()
        arrays["mmas/tau_min"] = bk.to_host(update.tau_min).copy()
        arrays["mmas/reinit_count"] = bk.to_host(update.reinit_count).copy()
    meta = {
        "magic": CHECKPOINT_MAGIC,
        "format_version": FORMAT_VERSION,
        "iteration": bs.iteration,
        "has_best": has_best,
        "rng_samples_drawn": engine.rng.samples_drawn,
        "ls_exchanges_total": engine.ls_exchanges_total,
        "ls_gain_total": engine.ls_gain_total,
        "ls_wall_seconds": engine.ls_wall_seconds,
        "fingerprint": engine_fingerprint(engine),
    }
    return EngineCheckpoint(meta=meta, arrays=arrays)


def save_checkpoint(source, path: str | Path) -> Path:
    """Write a checkpoint atomically; returns the final path.

    ``source`` is an :class:`EngineCheckpoint` or an engine (captured
    first).  The archive lands under a temporary name in the target
    directory and is moved into place with ``os.replace``, so readers
    never observe a half-written file and an existing checkpoint survives
    a crash mid-write.
    """
    engine = None
    if not isinstance(source, EngineCheckpoint):
        engine = source
        source = capture_checkpoint(engine)
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh,
                __meta__=np.array(json.dumps(source.meta)),
                **source.arrays,
            )
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc
    finally:
        if tmp.exists():  # replace failed or savez raised mid-write
            tmp.unlink(missing_ok=True)
    if engine is not None:
        metrics = engine.phase_clock.metrics
        if metrics.enabled:
            metrics.inc("engine.checkpoints_written")
    return path


def load_checkpoint(path: str | Path) -> EngineCheckpoint:
    """Read and validate a checkpoint file (magic + format version)."""
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            try:
                meta = json.loads(np.asarray(data["__meta__"]).item())
            except (KeyError, json.JSONDecodeError) as exc:
                raise CheckpointError(
                    f"{path} is not a gpu-aco checkpoint (bad metadata)"
                ) from exc
            arrays = {k: data[k] for k in data.files if k != "__meta__"}
    except (OSError, zipfile.BadZipFile, ValueError) as exc:
        if isinstance(exc, CheckpointError):
            raise
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if meta.get("magic") != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path} is not a gpu-aco checkpoint")
    version = meta.get("format_version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"{path} uses checkpoint format version {version}; this build "
            f"reads version {FORMAT_VERSION}"
        )
    return EngineCheckpoint(meta=meta, arrays=arrays)


def _fingerprint_diff(expected: dict, got: dict) -> str:
    """Human-readable list of top-level fingerprint fields that differ."""
    keys = sorted(set(expected) | set(got))
    diffs = [k for k in keys if expected.get(k) != got.get(k)]
    return ", ".join(diffs) if diffs else "<none>"


def restore_engine(engine, checkpoint: EngineCheckpoint) -> None:
    """Install a checkpoint's state into a freshly configured engine.

    The engine must be built with the configuration that wrote the
    checkpoint (validated via the fingerprint).  Restore happens strictly
    *after* construction because variant ``bind()`` re-initialises the
    pheromone stack; the checkpointed trails overwrite that initialisation
    here.  After restore, ``engine.run(remaining, report_every=K)`` with
    the original ``K`` continues the interrupted run bit-identically.
    """
    expected = checkpoint.fingerprint
    got = engine_fingerprint(engine)
    if expected != got:
        raise CheckpointError(
            "checkpoint fingerprint does not match the engine configuration "
            f"(differs in: {_fingerprint_diff(expected, got)})"
        )
    bs = engine.state
    bk = engine.backend
    arrays = checkpoint.arrays
    meta = checkpoint.meta

    pher = np.asarray(arrays["pheromone"], dtype=np.float64)
    if pher.shape != (bs.B, bs.n, bs.n):
        raise CheckpointError(
            f"pheromone stack has shape {pher.shape}; engine expects "
            f"{(bs.B, bs.n, bs.n)}"
        )
    bs.pheromone[...] = bk.from_host(pher)

    if meta.get("has_best", "best_lengths" in arrays):
        bs.best_lengths = np.asarray(
            arrays["best_lengths"], dtype=np.int64
        ).copy()
        bs.best_tours = np.asarray(arrays["best_tours"], dtype=np.int32).copy()
    else:
        bs.best_lengths = None
        bs.best_tours = None
    # Force run() to re-seed the fold from the freshly installed records.
    engine._fold_len = None
    engine._fold_tours = None

    rng_arrays = {
        key[len("rng/") :]: arr
        for key, arr in arrays.items()
        if key.startswith("rng/")
    }
    try:
        engine.rng.load_state_arrays(rng_arrays)
    except (KeyError, ValueError) as exc:
        raise CheckpointError(f"cannot restore RNG state: {exc}") from exc
    engine.rng.samples_drawn = int(meta.get("rng_samples_drawn", 0))

    update = engine.variant.update
    if update.key == "trail_limits" and "mmas/tau_max" in arrays:
        update.tau_max = bk.from_host(
            np.asarray(arrays["mmas/tau_max"], dtype=np.float64)
        ).copy()
        update.tau_min = bk.from_host(
            np.asarray(arrays["mmas/tau_min"], dtype=np.float64)
        ).copy()
        update.reinit_count = bk.from_host(
            np.asarray(arrays["mmas/reinit_count"], dtype=np.int64)
        ).copy()

    bs.iteration = checkpoint.iteration
    engine.ls_exchanges_total = int(meta.get("ls_exchanges_total", 0))
    engine.ls_gain_total = int(meta.get("ls_gain_total", 0))
    engine.ls_wall_seconds = float(meta.get("ls_wall_seconds", 0.0))
