"""Pheromone-update strategy interface and shared functional math.

All five Table III/IV variants compute the *same* mathematical update
(paper eqs. 2-4):

* evaporation: ``tau <- (1 - rho) tau`` on every edge,
* deposit: every ant adds ``1/C_k`` to both triangle cells of each edge of
  its tour.

They differ only in the execution strategy — atomics vs scatter-to-gather,
tiling, symmetric thread halving — i.e. in the *ledger* they record.  The
functional arithmetic therefore lives here once, and the test-suite asserts
all variants leave bit-identical pheromone matrices (up to float addition
order, which `deposit` makes deterministic by using ``np.add.at``).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.report import StageReport
from repro.core.state import ColonyState
from repro.simt.counters import KernelStats
from repro.simt.device import DeviceSpec
from repro.simt.kernel import Kernel, LaunchConfig

__all__ = ["PheromoneUpdate", "evaporate", "deposit_all"]


def evaporate(state: ColonyState) -> None:
    """In-place evaporation ``tau *= (1 - rho)`` (paper eq. 2)."""
    state.pheromone *= 1.0 - state.params.rho


def deposit_all(
    state: ColonyState, tours: np.ndarray, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Symmetric deposit of every ant's ``1/C_k`` (paper eqs. 3-4), in place.

    Returns the flat forward indices, flat backward indices and per-edge
    deposit values so atomic-flavoured strategies can re-use them for
    contention accounting.
    """
    n = state.n
    frm = tours[:, :-1].astype(np.int64)
    to = tours[:, 1:].astype(np.int64)
    deltas = (1.0 / lengths.astype(np.float64))[:, None]
    values = np.broadcast_to(deltas, frm.shape).ravel()
    flat_fw = (frm * n + to).ravel()
    flat_bw = (to * n + frm).ravel()
    flat_tau = state.pheromone.reshape(-1)
    np.add.at(flat_tau, flat_fw, values)
    np.add.at(flat_tau, flat_bw, values)
    return flat_fw, flat_bw, values


class PheromoneUpdate(Kernel, abc.ABC):
    """Base class for the Table III/IV pheromone-update kernels.

    Class attributes identify the paper row: ``version`` (1-5), ``key``
    (registry id) and ``label`` (the row label as printed).  ``theta`` is
    the tile size for the tiled variants (the paper's θ).
    """

    version: int = 0
    key: str = ""
    label: str = ""

    @abc.abstractmethod
    def update(
        self, state: ColonyState, tours: np.ndarray, lengths: np.ndarray
    ) -> StageReport:
        """Apply the update in place, returning the stage report."""

    @abc.abstractmethod
    def predict_stats(
        self,
        n: int,
        m: int,
        device: DeviceSpec,
        *,
        hot_degree: float = 0.0,
    ) -> tuple[KernelStats, LaunchConfig]:
        """Closed-form ledger + dominant launch shape.

        ``hot_degree`` injects the measured hottest-cell multiplicity for
        the atomic variants (a stochastic quantity).
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} v{self.version} {self.label!r}>"
