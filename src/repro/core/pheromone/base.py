"""Pheromone-update strategy interface and shared functional math.

All five Table III/IV variants compute the *same* mathematical update
(paper eqs. 2-4):

* evaporation: ``tau <- (1 - rho) tau`` on every edge,
* deposit: every ant adds ``1/C_k`` to both triangle cells of each edge of
  its tour.

They differ only in the execution strategy — atomics vs scatter-to-gather,
tiling, symmetric thread halving — i.e. in the *ledger* they record.  The
functional arithmetic therefore lives here once, and the test-suite asserts
all variants leave bit-identical pheromone matrices (up to float addition
order, which `deposit` makes deterministic by using ``np.add.at``).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.report import StageReport
from repro.core.state import ColonyState
from repro.simt.counters import KernelStats
from repro.simt.device import DeviceSpec
from repro.simt.kernel import Kernel, LaunchConfig

__all__ = [
    "PheromoneUpdate",
    "evaporate",
    "deposit_all",
    "evaporate_batch",
    "deposit_all_batch",
]


#: per-colony cell count above which the batched deposit falls back from
#: dense bincount scratch (one float per cell per colony) to np.add.at
_BINCOUNT_CELL_LIMIT = 1 << 22

#: whole-batch counter budget for the single-pass bincount deposit; above
#: this the (bit-identical) per-row bincount loop bounds scratch at n² floats
_BINCOUNT_SCRATCH_LIMIT = 1 << 24


def evaporate(state: ColonyState) -> None:
    """In-place evaporation ``tau *= (1 - rho)`` (paper eq. 2)."""
    state.pheromone *= 1.0 - state.params.rho


def evaporate_batch(bstate) -> None:
    """Per-colony evaporation on a ``(B, n, n)`` pheromone stack.

    Elementwise multiply with a per-row ``(1 - rho)`` — bit-identical to the
    solo scalar multiply on each row.
    """
    # lint: hot-region
    bstate.pheromone *= (1.0 - bstate.rho)[:, None, None]


def deposit_all(
    state: ColonyState, tours: np.ndarray, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Symmetric deposit of every ant's ``1/C_k`` (paper eqs. 3-4), in place.

    Returns the flat forward indices, flat backward indices and per-edge
    deposit values so atomic-flavoured strategies can re-use them for
    contention accounting.
    """
    bk = state.backend
    xp = bk.xp
    n = state.n
    frm = tours[:, :-1].astype(np.int64)
    to = tours[:, 1:].astype(np.int64)
    deltas = (1.0 / lengths.astype(np.float64))[:, None]
    values = xp.broadcast_to(deltas, frm.shape).ravel()
    flat_fw = (frm * n + to).ravel()
    flat_bw = (to * n + frm).ravel()
    flat_tau = state.pheromone.reshape(-1)
    bk.scatter_add(flat_tau, flat_fw, values)
    bk.scatter_add(flat_tau, flat_bw, values)
    return flat_fw, flat_bw, values


def deposit_all_batch(
    bstate, tours: np.ndarray, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched symmetric deposit over ``(B, m, n + 1)`` tours, in place.

    Rows touch disjoint ``n²`` blocks of the flattened stack, and the code
    path taken depends only on per-colony quantities, so a row's result is
    exactly independent of how many rows share the batch — the invariant
    the engine (and ``AntSystem``, its B = 1 view) is built on.  Note the
    bincount fast path folds each cell's deposit *total* into ``tau`` in
    one add, which can differ in the last ulp from :func:`deposit_all`'s
    per-deposit ``np.add.at`` folding; the two functions are numerically
    equivalent, not bit-identical.

    Returns the per-colony *local* flat forward/backward indices (``(B,
    m * n)``, no batch offset) and the deposit values, for the atomic
    strategies' contention accounting.  When the state carries a
    :class:`~repro.backend.WorkBuffers` arena, every intermediate (edge
    endpoints, flat indices, per-edge deposit values) lives in hoisted
    buffers reused across iterations — the returned arrays are then arena
    views, valid until the next deposit.
    """
    # lint: hot-region
    bk = bstate.backend
    xp = bk.xp
    n, B = bstate.n, bstate.B
    wb = bstate.work
    m_t = tours.shape[1]
    if wb is None:
        frm = tours[:, :, :-1].astype(np.int64)
        to = tours[:, :, 1:].astype(np.int64)
        deltas = (1.0 / lengths.astype(np.float64))[:, :, None]
        values = xp.broadcast_to(deltas, frm.shape).reshape(B, -1)
        flat_fw = (frm * n + to).reshape(B, -1)
        flat_bw = (to * n + frm).reshape(B, -1)
        offsets = (xp.arange(B, dtype=np.int64) * (n * n))[:, None]

        def _global(local):
            return (local + offsets).ravel()
    else:
        # One int64 cast of the closed tours; endpoints are views into it.
        t64 = wb.get("dep.t64", (B, m_t, n + 1), np.int64)
        t64[...] = tours
        frm = t64[:, :, :-1]
        to = t64[:, :, 1:]
        deltas = wb.get("dep.delta", (B, m_t), np.float64)
        xp.divide(1.0, lengths, out=deltas)
        values = wb.get("dep.vals", (B, m_t * n), np.float64)
        values.reshape(B, m_t, n)[...] = deltas[:, :, None]
        flat_fw = wb.get("dep.fw", (B, m_t * n), np.int64)
        fw3 = flat_fw.reshape(B, m_t, n)
        xp.multiply(frm, n, out=fw3)
        xp.add(fw3, to, out=fw3)
        flat_bw = wb.get("dep.bw", (B, m_t * n), np.int64)
        bw3 = flat_bw.reshape(B, m_t, n)
        xp.multiply(to, n, out=bw3)
        xp.add(bw3, frm, out=bw3)
        offsets = wb.cached(
            f"dep.offsets.{B}x{n}",
            lambda: (xp.arange(B, dtype=np.int64) * (n * n))[:, None],
        )
        gbuf = wb.get("dep.gidx", (B, m_t * n), np.int64)

        def _global(local):
            xp.add(local, offsets, out=gbuf)
            return gbuf.reshape(-1)
    flat_tau = bstate.pheromone.reshape(-1)
    if n * n > _BINCOUNT_CELL_LIMIT:
        # Huge instances: scatter_add needs no counter scratch.  This branch
        # keys on the *per-colony* cell count (bincount and scatter_add fold
        # deposits differently in the last ulp), so a row's result never
        # depends on how many rows share the batch.
        bk.scatter_add(flat_tau, _global(flat_fw), values.reshape(-1))
        bk.scatter_add(flat_tau, _global(flat_bw), values.reshape(-1))
    elif B * n * n <= _BINCOUNT_SCRATCH_LIMIT:
        # bincount(..., weights=...) accumulates deposits per cell in input
        # order (the atomic-sum semantics of np.add.at) at a fraction of
        # its cost, then one vector add folds each direction into the
        # stack.
        vals = xp.ascontiguousarray(values.reshape(-1))
        flat_tau += bk.bincount(
            _global(flat_fw), weights=vals, minlength=flat_tau.size
        )
        flat_tau += bk.bincount(
            _global(flat_bw), weights=vals, minlength=flat_tau.size
        )
    else:
        # Whole-batch counter scratch would be excessive: bincount row by
        # row instead.  Rows are disjoint, so this is bit-identical to the
        # single-pass variant above — the split is purely about memory.
        for b in range(B):
            row_tau = bstate.pheromone[b].reshape(-1)
            row_vals = xp.ascontiguousarray(values[b])
            row_tau += bk.bincount(
                flat_fw[b], weights=row_vals, minlength=row_tau.size
            )
            row_tau += bk.bincount(
                flat_bw[b], weights=row_vals, minlength=row_tau.size
            )
    return flat_fw, flat_bw, values


class PheromoneUpdate(Kernel, abc.ABC):
    """Base class for the Table III/IV pheromone-update kernels.

    Class attributes identify the paper row: ``version`` (1-5), ``key``
    (registry id) and ``label`` (the row label as printed).  ``theta`` is
    the tile size for the tiled variants (the paper's θ).
    """

    version: int = 0
    key: str = ""
    label: str = ""

    @abc.abstractmethod
    def update(
        self, state: ColonyState, tours: np.ndarray, lengths: np.ndarray
    ) -> StageReport:
        """Apply the update in place, returning the stage report."""

    def update_batch(
        self, bstate, tours: np.ndarray, lengths: np.ndarray, collect: bool = True
    ) -> list[StageReport]:
        """Apply the update to ``B`` colonies in place; one report per colony.

        The default covers the scatter-to-gather family (versions 3-5),
        whose functional effect is exactly evaporation + deposit and whose
        ledger is closed-form; the atomic strategies override to measure
        per-colony contention.  ``collect=False`` (the amortized
        ``report_every`` loop between boundaries) skips report
        materialization and returns an empty list; the pheromone update
        itself is identical either way.
        """
        evaporate_batch(bstate)
        deposit_all_batch(bstate, tours, lengths)
        if not collect:
            return []
        stats, launch = self.predict_stats(bstate.n, bstate.m, bstate.device)
        report = StageReport(
            stage="pheromone", kernel=self.key, stats=stats, launch=launch
        )
        return [report] * bstate.B

    @abc.abstractmethod
    def predict_stats(
        self,
        n: int,
        m: int,
        device: DeviceSpec,
        *,
        hot_degree: float = 0.0,
    ) -> tuple[KernelStats, LaunchConfig]:
        """Closed-form ledger + dominant launch shape.

        ``hot_degree`` injects the measured hottest-cell multiplicity for
        the atomic variants (a stochastic quantity).
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} v{self.version} {self.label!r}>"
