"""Symmetric "Instruction & Thread Reduction" update: Table III/IV version 3.

The paper's refinement of scatter-to-gather for the *symmetric* TSP: since
``tau[i][j] == tau[j][i]``, only the upper triangle needs a gathering thread
— half the threads, and with tiling the total device traffic drops to
``ρ = n^4 / θ`` ("the number of accesses per thread remains the same", but
the overall count halves).  A final mirror pass copies the triangle to keep
the full matrix readable by row.

Ordering in the tables: version 3 beats versions 4-5 from a280 upward (half
the work), yet *loses* to them on att48 (Table IV: 0.83 vs 0.80/0.66 ms)
because n²/2 threads on a tiny instance cannot fill the machine — an
occupancy effect the cost model reproduces through the grid-fill throttle.
"""

from __future__ import annotations

from repro.core.pheromone.base import PheromoneUpdate, deposit_all, evaporate
from repro.core.pheromone.scatter_gather import SCAN_INT_OPS
from repro.core.report import StageReport
from repro.core.state import ColonyState
from repro.errors import ACOConfigError
from repro.simt.counters import KernelStats
from repro.simt.device import DeviceSpec
from repro.simt.kernel import LaunchConfig, grid_for
from repro.simt.memory import AccessPattern, GlobalMemory

__all__ = ["ReductionPheromone"]


class ReductionPheromone(PheromoneUpdate):
    """Version 3 — symmetric scatter-to-gather with tiling (half threads)."""

    version = 3
    key = "reduction"
    label = "Instruction & Thread Reduction"

    def __init__(self, theta: int = 256) -> None:
        if theta < 32:
            raise ACOConfigError(f"theta must be >= 32, got {theta}")
        self.theta = int(theta)

    def launch_config(self, device: DeviceSpec, *, n: int, m: int) -> LaunchConfig:
        block = min(self.theta, device.max_threads_per_block)
        cells_half = n * (n + 1) // 2
        return LaunchConfig(
            grid=grid_for(cells_half, block), block=block, smem_per_block=4 * block
        )

    # ------------------------------------------------------------------ run

    def update(
        self, state: ColonyState, tours: np.ndarray, lengths: np.ndarray
    ) -> StageReport:
        evaporate(state)
        deposit_all(state, tours, lengths)
        stats, launch = self.predict_stats(state.n, state.m, state.device)
        return StageReport(stage="pheromone", kernel=self.key, stats=stats, launch=launch)

    # --------------------------------------------------------------- ledger

    def predict_stats(
        self,
        n: int,
        m: int,
        device: DeviceSpec,
        *,
        hot_degree: float = 0.0,
    ) -> tuple[KernelStats, LaunchConfig]:
        stats = KernelStats()
        launch = self.launch_config(device, n=n, m=m)
        self.record_launch(stats, launch)
        gmem = GlobalMemory(device, stats)

        cells_half = float(n) * (n + 1) / 2.0
        # Each upper-triangle thread scans the full tour stream through
        # shared tiles; per-thread access count unchanged, total halved.
        scan_entries = cells_half * float(m) * (n + 1)
        gmem.load(2.0 * scan_entries / launch.block, 4, AccessPattern.COALESCED)
        stats.smem_accesses += 2.0 * scan_entries
        stats.smem_accesses += 2.0 * scan_entries / launch.block  # staging writes
        stats.int_ops += SCAN_INT_OPS * 2.0 * scan_entries

        # Fused evaporation + accumulate on the triangle cells.
        gmem.load(cells_half, 4, AccessPattern.COALESCED)
        gmem.store(cells_half, 4, AccessPattern.COALESCED)
        stats.flops += cells_half + 2.0 * float(m) * n
        gmem.load(float(m), 4, AccessPattern.BROADCAST)
        stats.special_ops += float(m)

        # Mirror kernel: copy the triangle to the lower half (transposed
        # stores are only partially coalesced).
        mirror_launch = LaunchConfig(
            grid=grid_for(max(1, int(cells_half)), launch.block), block=launch.block
        )
        self.record_launch(stats, mirror_launch)
        gmem.load(cells_half, 4, AccessPattern.COALESCED)
        gmem.store(cells_half, 4, AccessPattern.STRIDED)
        stats.int_ops += 2.0 * cells_half
        return stats, launch
